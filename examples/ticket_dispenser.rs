//! Ticket dispensing with the §8.2 m-valued fetch-and-increment.
//!
//! A venue has `m` tickets; more than `m` clients race to claim one. The
//! m-valued fetch-and-increment hands out the ticket numbers `0..m-1` exactly
//! once each and then saturates, and the recorded history is verified to be
//! linearizable against the object's sequential specification (Theorem 6).
//!
//! Run with:
//!
//! ```text
//! cargo run --example ticket_dispenser
//! ```

use adaptive_renaming::fetch_increment::FetchIncrementSpec;
use shmem::consistency::check_linearizable;
use shmem::history::Recorder;
use std::collections::BTreeMap;
use std::sync::Arc;
use strong_renaming::prelude::*;

fn main() {
    let tickets = 12u64;
    let clients = 20usize;

    let dispenser = Arc::new(BoundedFetchIncrement::new(tickets));
    let recorder: Arc<Recorder<(), u64>> = Arc::new(Recorder::new());

    let outcome = Executor::new(
        ExecConfig::new(11).with_yield_policy(YieldPolicy::Probabilistic(0.1)),
    )
    .run(clients, {
        let dispenser = Arc::clone(&dispenser);
        let recorder = Arc::clone(&recorder);
        move |ctx| {
            let invoke = recorder.invoke();
            let ticket = dispenser.fetch_and_increment(ctx);
            recorder.record(ctx.id(), (), ticket, invoke);
            ticket
        }
    });

    let mut counts: BTreeMap<u64, usize> = BTreeMap::new();
    for ticket in outcome.results() {
        *counts.entry(ticket).or_default() += 1;
    }
    println!("{clients} clients raced for {tickets} tickets:");
    for (ticket, holders) in &counts {
        if *ticket == tickets - 1 {
            println!("  ticket {ticket}: {holders} clients (the saturation value — sold out)");
        } else {
            println!("  ticket {ticket}: {holders} client(s)");
        }
    }

    // Tickets 0..m-2 are handed out exactly once; the rest of the clients all
    // see the saturation value m-1.
    for ticket in 0..tickets - 1 {
        assert_eq!(
            counts.get(&ticket).copied().unwrap_or(0),
            1,
            "ticket {ticket}"
        );
    }
    assert_eq!(
        counts.get(&(tickets - 1)).copied().unwrap_or(0),
        clients - (tickets as usize - 1)
    );

    let history = recorder.take_history();
    match check_linearizable(&FetchIncrementSpec { limit: tickets }, &history) {
        Ok(order) => println!(
            "\nThe recorded history of {} operations is linearizable (witness order of length {}).",
            history.len(),
            order.len()
        ),
        Err(violation) => panic!("linearizability violation: {violation}"),
    }
}
