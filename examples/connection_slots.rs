//! Connection-slot assignment: a server owns a fixed pool of `n` connection
//! slots and concurrent handler threads must each claim a distinct slot.
//!
//! This is the classic use case for *non-adaptive strong renaming*: the pool
//! size `n` is fixed up front and every slot should be usable. The example
//! runs the paper's BitBatching algorithm (§4) against the folklore
//! linear-probing baseline and reports how many test-and-set probes each
//! handler needed.
//!
//! Run with:
//!
//! ```text
//! cargo run --example connection_slots
//! ```

use std::sync::Arc;
use strong_renaming::prelude::*;

fn main() {
    let slots = 64usize;
    let handlers = 64usize;
    let seed = 42;

    // --- BitBatching: O(log² n) probes per handler w.h.p. -----------------
    let bitbatching = Arc::new(BitBatchingRenaming::new(slots));
    let outcome = Executor::new(ExecConfig::new(seed)).run(handlers, {
        let renaming = Arc::clone(&bitbatching);
        move |ctx| renaming.acquire_with_report(ctx).expect("enough slots")
    });
    let reports = outcome.results();
    let names: Vec<usize> = reports.iter().map(|r| r.name).collect();
    assert_tight_namespace(&names).expect("every slot is assigned exactly once");

    let max_probes = reports.iter().map(|r| r.probes).max().unwrap_or(0);
    let mean_probes: f64 =
        reports.iter().map(|r| r.probes as f64).sum::<f64>() / reports.len() as f64;
    println!("BitBatching over {slots} slots, {handlers} handlers:");
    println!("  every handler got a distinct slot in 1..={slots}");
    println!("  probes per handler: mean {mean_probes:.1}, max {max_probes}");
    println!(
        "  handlers that needed the sequential fallback stage: {}",
        reports.iter().filter(|r| r.entered_second_stage).count()
    );

    // --- Linear probing baseline: Θ(k) probes per handler ------------------
    let linear = Arc::new(LinearProbeRenaming::new(slots));
    let outcome = Executor::new(ExecConfig::new(seed)).run(handlers, {
        let renaming = Arc::clone(&linear);
        move |ctx| renaming.acquire_with_probes(ctx).expect("enough slots")
    });
    let probes: Vec<usize> = outcome.results().iter().map(|(_, p)| *p).collect();
    let max_linear = probes.iter().copied().max().unwrap_or(0);
    let mean_linear: f64 = probes.iter().map(|&p| p as f64).sum::<f64>() / probes.len() as f64;
    println!("\nLinear probing baseline:");
    println!("  probes per handler: mean {mean_linear:.1}, max {max_linear}");

    println!(
        "\nBitBatching's worst handler probed {max_probes} slots; linear probing's probed {max_linear}."
    );
}
