//! Connection-slot assignment: a server owns a fixed pool of `n` connection
//! slots and concurrent handler threads must each claim a distinct slot.
//!
//! This is the classic use case for *non-adaptive strong renaming*: the pool
//! size `n` is fixed up front and every slot should be usable. The example
//! builds the paper's BitBatching algorithm (§4) and the folklore
//! linear-probing baseline through the `Renaming::builder()` facade and
//! compares how many test-and-set invocations each handler needed.
//!
//! Run with:
//!
//! ```text
//! cargo run --example connection_slots
//! ```

use strong_renaming::prelude::*;

/// Runs `handlers` concurrent acquisitions against `renaming` and reports
/// the per-handler test-and-set invocation profile from the step statistics.
fn race(label: &str, renaming: std::sync::Arc<dyn Renaming>, handlers: usize, seed: u64) -> u64 {
    let outcome = Executor::new(ExecConfig::new(seed)).run(handlers, {
        let renaming = renaming.clone();
        move |ctx| renaming.acquire(ctx).expect("enough slots")
    });
    assert_tight_namespace(&outcome.results()).expect("every slot is assigned exactly once");

    let per_process = outcome.per_process_steps();
    let max_tas = per_process
        .iter()
        .map(|s| s.tas_invocations)
        .max()
        .unwrap_or(0);
    let mean_tas = per_process
        .iter()
        .map(|s| s.tas_invocations as f64)
        .sum::<f64>()
        / per_process.len() as f64;
    println!("{label}:");
    println!("  every handler got a distinct slot in 1..={handlers}");
    println!("  test-and-set invocations per handler: mean {mean_tas:.1}, max {max_tas}");
    max_tas
}

fn main() {
    let slots = 64usize;
    let handlers = 64usize;
    let seed = 42;

    // --- BitBatching: O(log² n) probes per handler w.h.p. -----------------
    let bitbatching = RenamingBuilder::new()
        .bit_batching()
        .capacity(slots)
        .seed(seed)
        .build()
        .expect("valid configuration");
    let max_bitbatching = race(
        &format!("BitBatching over {slots} slots, {handlers} handlers"),
        bitbatching,
        handlers,
        seed,
    );

    // --- Linear probing baseline: Θ(k) probes per handler ------------------
    let linear = RenamingBuilder::new()
        .linear_probe()
        .capacity(slots)
        .seed(seed)
        .build()
        .expect("valid configuration");
    let max_linear = race("\nLinear probing baseline", linear, handlers, seed);

    println!(
        "\nBitBatching's worst handler invoked {max_bitbatching} test-and-sets; \
         linear probing's invoked {max_linear}."
    );
}
