//! Quickstart: eight threads with arbitrary identities agree on the names
//! 1..=8 using the paper's adaptive strong renaming algorithm.
//!
//! Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::sync::Arc;
use strong_renaming::prelude::*;

fn main() {
    // The participants carry large, scattered initial identifiers — the
    // situation renaming exists to fix.
    let initial_ids = [90_210usize, 7, 123_456_789, 31_337, 4_242, 999, 17, 2_024];
    let ids: Vec<ProcessId> = initial_ids.iter().copied().map(ProcessId::new).collect();

    let renaming = Arc::new(AdaptiveRenaming::new());
    let executor = Executor::new(
        ExecConfig::new(0xC0FFEE).with_yield_policy(YieldPolicy::Probabilistic(0.05)),
    );

    let outcome = executor.run_with_ids(&ids, {
        let renaming = Arc::clone(&renaming);
        move |ctx| {
            let report = renaming
                .acquire_with_report(ctx)
                .expect("adaptive renaming never fails");
            (ctx.id().as_usize(), report)
        }
    });

    println!("initial id -> new name   (temp name, comparators played, register steps)");
    println!("----------------------------------------------------------------------");
    let mut rows: Vec<_> = outcome
        .iter()
        .filter_map(|(id, o)| o.result().map(|r| (*id, *r, o.steps())))
        .collect();
    rows.sort_by_key(|(_, (_, report), _)| report.name);
    for (_, (initial, report), steps) in &rows {
        println!(
            "{initial:>11} -> {:>8}   (temp {:>4}, {:>3} comparators, {:>4} steps)",
            report.name,
            report.temp_name,
            report.comparators_played,
            steps.total()
        );
    }

    let names: Vec<usize> = rows.iter().map(|(_, (_, r), _)| r.name).collect();
    assert_tight_namespace(&names).expect("strong adaptive renaming: names are exactly 1..=k");
    println!(
        "\nAll {} names are unique and form exactly 1..={}.",
        names.len(),
        names.len()
    );
    println!(
        "Total register steps across all processes: {}",
        outcome.total_steps().total()
    );
}
