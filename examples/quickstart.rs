//! Quickstart: eight threads with arbitrary identities agree on the names
//! 1..=8 using the paper's adaptive strong renaming algorithm, constructed
//! through the unified `Renaming::builder()` facade.
//!
//! Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use strong_renaming::prelude::*;

fn main() {
    // The participants carry large, scattered initial identifiers — the
    // situation renaming exists to fix.
    let initial_ids = [90_210usize, 7, 123_456_789, 31_337, 4_242, 999, 17, 2_024];
    let ids: Vec<ProcessId> = initial_ids.iter().copied().map(ProcessId::new).collect();

    // One builder configures everything: algorithm, engine, seed.
    let builder = RenamingBuilder::new().adaptive().seed(0xC0FFEE);
    let renaming = builder.build().expect("the default configuration is valid");
    let executor = Executor::new(
        builder
            .exec_config()
            .with_yield_policy(YieldPolicy::Probabilistic(0.05)),
    );

    let outcome = executor.run_with_ids(&ids, {
        let renaming = renaming.clone();
        move |ctx| {
            let name = renaming
                .acquire(ctx)
                .expect("adaptive renaming never fails");
            (ctx.id().as_usize(), name)
        }
    });

    println!("initial id -> new name   (register steps)");
    println!("-----------------------------------------");
    let mut rows: Vec<_> = outcome
        .iter()
        .filter_map(|(_, o)| o.result().map(|r| (*r, o.steps())))
        .collect();
    rows.sort_by_key(|((_, name), _)| *name);
    for ((initial, name), steps) in &rows {
        println!("{initial:>11} -> {name:>8}   ({:>4} steps)", steps.total());
    }

    let names: Vec<usize> = rows.iter().map(|((_, name), _)| *name).collect();
    assert_tight_namespace(&names).expect("strong adaptive renaming: names are exactly 1..=k");
    println!(
        "\nAll {} names are unique and form exactly 1..={}.",
        names.len(),
        names.len()
    );
    println!(
        "Total register steps across all processes: {}",
        outcome.total_steps().total()
    );
}
