//! The flight recorder surviving a crash: forked children record their
//! lease traffic into arena-resident event rings over a `MAP_SHARED`
//! mapping; one child is SIGKILLed mid-lease, and the sweeping parent
//! recovers the dead process's last recorded moments as a postmortem.
//!
//! This is the observability half of the crash-robustness story: the
//! `RobustLeaseTable` sweep reclaims the dead child's *name*
//! (`examples/name_server.rs` shows the lease protocol itself), and the
//! postmortem hook wired into `sweep_dead_processes` dumps the dead
//! child's *events* — what it was doing when it died — from the same
//! shared arena.
//!
//! Run with:
//!
//! ```text
//! cargo run --example flight_recorder
//! ```

#[cfg(all(unix, not(miri)))]
fn main() {
    use adaptive_renaming::robust::RobustLeaseTable;
    use obs::{FlightRecorder, MetricsSlab, Snapshot};
    use shmem::arena::Arena;
    use shmem::process::{ProcessCtx, ProcessId};
    use shmem::procs::{fork_child, kill_child, wait_child, wait_for_clean_exit};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    let children = 3usize;
    let rounds = 40usize;
    let capacity = 8usize;

    // Everything shared lives in one MAP_SHARED arena, allocated before the
    // forks: the lease table, one event ring per child, one metric stripe
    // per child, and a handshake line.
    let footprint = RobustLeaseTable::footprint(capacity)
        + FlightRecorder::footprint(children, 16)
        + MetricsSlab::footprint(children)
        + 64;
    let arena = Arena::shared(footprint).expect("anonymous MAP_SHARED mapping");
    let table = Arc::new(RobustLeaseTable::with_capacity_in(&arena, capacity));
    let recorder = FlightRecorder::new_in(&arena, children, 16);
    let slab = MetricsSlab::new_in(&arena, children);
    let handshake = arena.alloc::<AtomicU64>();

    let pids: Vec<i32> = (0..children)
        .map(|child| {
            let mut ctx = ProcessCtx::new(ProcessId::new(child), child as u64 + 1);
            fork_child({
                let arena = Arc::clone(&arena);
                let table = Arc::clone(&table);
                let recorder = Arc::clone(&recorder);
                let slab = Arc::clone(&slab);
                move || {
                    // Each child claims its own ring and metric stripe and
                    // binds them as this process's telemetry sinks; the
                    // instrumented acquire/release paths record from here on.
                    let writer = recorder.writer(child);
                    writer.attach_current_process();
                    obs::bind_ring(writer);
                    obs::bind_metrics(slab.writer(child));
                    // Register with the lease table: the returned tag (not
                    // the bare pid) goes into every lease, so the sweep can
                    // tell this incarnation from a later pid-reuse stranger.
                    let registration = table
                        .register_current_process()
                        .expect("the registry admits every child");
                    for round in 0..rounds {
                        let name = table
                            .acquire(&mut ctx, registration.tag())
                            .expect("table sized for all children");
                        // Child 1 crashes mid-lease, halfway through its
                        // rounds: SIGKILL arrives while it spins here, so
                        // its last recorded event is this grant.
                        if child == 1 && round == rounds / 2 {
                            handshake.get(&arena).store(name as u64, Ordering::SeqCst);
                            loop {
                                std::hint::spin_loop();
                            }
                        }
                        table.release(&mut ctx, name);
                    }
                }
            })
        })
        .collect();

    // Wait for the victim to hold a lease, then crash it without warning.
    while handshake.get(&arena).load(Ordering::SeqCst) == 0 {
        std::thread::yield_now();
    }
    let stuck_name = handshake.get(&arena).load(Ordering::SeqCst) as usize;
    let victim = pids[1];
    kill_child(victim);
    assert!(wait_child(victim).killed(), "the victim died of SIGKILL");
    for (child, pid) in pids.into_iter().enumerate() {
        if child != 1 {
            wait_for_clean_exit(pid);
        }
    }

    println!("killed child pid {victim} while it held name {stuck_name}");
    println!(
        "before the sweep: name {stuck_name} is held by pid {:?}, {} lease(s) live\n",
        table.owner_pid(stuck_name),
        adaptive_renaming::lease::LongLivedRenaming::live_leases(&*table),
    );

    // The surviving parent installs the recorder as the postmortem source
    // and sweeps: reclaiming the dead pid's name dumps its ring tail.
    obs::postmortem::install(Arc::clone(&recorder));
    let mut ctx = ProcessCtx::new(ProcessId::new(children), 99);
    let reclaimed = table.sweep_dead_processes(&mut ctx);
    println!("sweep_dead_processes reclaimed {reclaimed} name(s)\n");
    assert_eq!(reclaimed, 1);
    assert_eq!(table.holder(stuck_name), None);

    for report in obs::postmortem::take_reports() {
        println!("{}", report.rendered);
    }

    // The children's escrowed metric stripes merge into one dashboard —
    // including the dead child's, which survives in the shared slab.
    println!("merged telemetry of all {children} children:");
    print!("{}", Snapshot::collect(&slab).dashboard());
}

#[cfg(not(all(unix, not(miri))))]
fn main() {
    eprintln!("flight_recorder requires unix fork semantics (and not miri)");
}
