//! Event counting with the §8.1 monotone-consistent counter.
//!
//! Producer threads record events by incrementing the counter; a monitor
//! thread periodically reads it. The example records the full operation
//! history and verifies the monotone-consistency conditions of Lemma 4, then
//! compares the cost profile with the fetch-and-add baseline counter.
//!
//! Run with:
//!
//! ```text
//! cargo run --example event_counter
//! ```

use shmem::consistency::{check_monotone_consistent, CounterOp};
use shmem::history::Recorder;
use std::sync::Arc;
use strong_renaming::prelude::*;

fn main() {
    let producers = 8usize;
    let events_per_producer = 4usize;

    let counter = Arc::new(MonotoneCounter::new());
    let recorder: Arc<Recorder<CounterOp, u64>> = Arc::new(Recorder::new());

    let executor =
        Executor::new(ExecConfig::new(7).with_yield_policy(YieldPolicy::Probabilistic(0.1)));
    // Producers interleave increments with occasional reads; the last process
    // acts as a read-only monitor.
    let outcome = executor.run(producers + 1, {
        let counter = Arc::clone(&counter);
        let recorder = Arc::clone(&recorder);
        move |ctx| {
            if ctx.id().as_usize() == producers {
                // Monitor: read repeatedly.
                for _ in 0..2 * events_per_producer {
                    let invoke = recorder.invoke();
                    let value = counter.read(ctx);
                    recorder.record(ctx.id(), CounterOp::Read, value, invoke);
                }
            } else {
                for _ in 0..events_per_producer {
                    let invoke = recorder.invoke();
                    counter.increment(ctx);
                    recorder.record(ctx.id(), CounterOp::Increment, 0, invoke);
                }
            }
        }
    });

    let expected = (producers * events_per_producer) as u64;
    let mut quiescent = ProcessCtx::new(ProcessId::new(10_000), 0);
    let final_value = counter.read(&mut quiescent);
    println!("{producers} producers recorded {expected} events; the counter reads {final_value}.");
    assert_eq!(final_value, expected);

    let history = recorder.take_history();
    match check_monotone_consistent(&history, &[]) {
        Ok(()) => println!(
            "The recorded history of {} operations is monotone-consistent (Lemma 4).",
            history.len()
        ),
        Err(violation) => panic!("monotone-consistency violation: {violation}"),
    }

    let summary = outcome.step_summary();
    println!(
        "Renaming-based counter: max {} register steps per process, {} total.",
        summary.max_register_steps, summary.total_register_steps
    );

    // Baseline comparison: the fetch-and-add counter.
    let baseline = Arc::new(CasCounter::new());
    let outcome = Executor::new(ExecConfig::new(7)).run(producers, {
        let baseline = Arc::clone(&baseline);
        move |ctx| {
            for _ in 0..events_per_producer {
                baseline.increment(ctx);
            }
        }
    });
    println!(
        "Fetch-and-add baseline: max {} steps per process (uses read-modify-write, which the paper's model does not assume).",
        outcome.step_summary().max_register_steps
    );
}
