//! Event counting across the three counter backends.
//!
//! Producer threads record events by incrementing a shared counter; a
//! monitor thread periodically reads it. The same workload runs against
//! every backend of the `<dyn Counter>::builder()` facade:
//!
//! * `monotone` — the paper's §8.1 renaming + max-register counter
//!   (monotone-consistent, register-model-only),
//! * `network`  — the `cnet` counting-network counter (quiescently
//!   consistent, contention spread over a bitonic balancing network),
//! * `adaptive` — the elimination/diffraction front-end over a cascade of
//!   counting networks, routed by realized contention (quiescently
//!   consistent, narrow when quiet),
//! * `fetch_add` — the hardware fetch-and-add baseline (linearizable, one
//!   hot cache line).
//!
//! Each run records the full operation history, verifies the backend's
//! consistency guarantee (Lemma 4 monotone consistency for the renaming
//! counter, quiescent consistency for the network counter — the
//! fetch-and-add baseline satisfies both), and prints a three-way cost
//! comparison: wall time plus the step-model breakdown.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example event_counter
//! ```

use shmem::consistency::{check_monotone_consistent, check_quiescent_consistent, CounterOp};
use shmem::history::Recorder;
use std::sync::Arc;
use std::time::{Duration, Instant};
use strong_renaming::prelude::*;

const PRODUCERS: usize = 8;
const EVENTS_PER_PRODUCER: usize = 4;

struct RunReport {
    backend: CounterBackend,
    elapsed: Duration,
    max_steps: u64,
    total_steps: u64,
    balancer_toggles: u64,
    verdict: &'static str,
}

fn run_backend(backend: CounterBackend) -> RunReport {
    let builder = <dyn Counter>::builder()
        .backend(backend)
        .width(PRODUCERS.next_power_of_two())
        .seed(7);
    let counter = builder.build().expect("every backend builds");
    let recorder: Arc<Recorder<CounterOp, u64>> = Arc::new(Recorder::new());

    let executor = Executor::new(
        builder
            .exec_config()
            .with_yield_policy(YieldPolicy::Probabilistic(0.1)),
    );
    // Producers increment; the last process acts as a read-only monitor.
    let start = Instant::now();
    let outcome = executor.run(PRODUCERS + 1, {
        let counter = Arc::clone(&counter);
        let recorder = Arc::clone(&recorder);
        move |ctx| {
            if ctx.id().as_usize() == PRODUCERS {
                for _ in 0..2 * EVENTS_PER_PRODUCER {
                    let invoke = recorder.invoke();
                    let value = counter.read(ctx);
                    recorder.record(ctx.id(), CounterOp::Read, value, invoke);
                }
            } else {
                for _ in 0..EVENTS_PER_PRODUCER {
                    let invoke = recorder.invoke();
                    counter.increment(ctx);
                    recorder.record(ctx.id(), CounterOp::Increment, 0, invoke);
                }
            }
        }
    });
    let elapsed = start.elapsed();

    let expected = (PRODUCERS * EVENTS_PER_PRODUCER) as u64;
    let mut quiescent = ProcessCtx::new(ProcessId::new(10_000), 0);
    assert_eq!(
        counter.read(&mut quiescent),
        expected,
        "{backend:?}: the quiescent count must be exact"
    );

    // Verify the guarantee each backend actually makes. The linearizable
    // fetch-and-add baseline satisfies both weaker notions.
    let history = recorder.take_history();
    let verdict = match backend {
        CounterBackend::Monotone => {
            check_monotone_consistent(&history, &[])
                .unwrap_or_else(|violation| panic!("monotone-consistency violation: {violation}"));
            "monotone-consistent (Lemma 4)"
        }
        CounterBackend::Network => {
            check_quiescent_consistent(&history, &[])
                .unwrap_or_else(|violation| panic!("quiescent-consistency violation: {violation}"));
            "quiescently consistent"
        }
        CounterBackend::Adaptive => {
            check_quiescent_consistent(&history, &[])
                .unwrap_or_else(|violation| panic!("quiescent-consistency violation: {violation}"));
            "quiescently consistent"
        }
        CounterBackend::FetchAdd => {
            check_monotone_consistent(&history, &[])
                .unwrap_or_else(|violation| panic!("monotone-consistency violation: {violation}"));
            check_quiescent_consistent(&history, &[])
                .unwrap_or_else(|violation| panic!("quiescent-consistency violation: {violation}"));
            "linearizable (⇒ both)"
        }
    };

    let summary = outcome.step_summary();
    let totals = outcome.total_steps();
    RunReport {
        backend,
        elapsed,
        max_steps: summary.max_register_steps,
        total_steps: summary.total_register_steps,
        balancer_toggles: totals.balancer_toggles,
        verdict,
    }
}

fn main() {
    let expected = PRODUCERS * EVENTS_PER_PRODUCER;
    println!(
        "{PRODUCERS} producers record {expected} events under each counter backend \
         (plus one monitor reading throughout):\n"
    );

    let reports: Vec<RunReport> = [
        CounterBackend::Monotone,
        CounterBackend::Network,
        CounterBackend::Adaptive,
        CounterBackend::FetchAdd,
    ]
    .into_iter()
    .map(run_backend)
    .collect();

    println!(
        "{:<10} {:>10} {:>16} {:>13} {:>9}  consistency",
        "backend", "wall time", "max steps/proc", "total steps", "toggles"
    );
    for report in &reports {
        let name = match report.backend {
            CounterBackend::Monotone => "monotone",
            CounterBackend::Network => "network",
            CounterBackend::Adaptive => "adaptive",
            CounterBackend::FetchAdd => "fetch_add",
        };
        println!(
            "{:<10} {:>8.1?} {:>16} {:>13} {:>9}  {}",
            name,
            report.elapsed,
            report.max_steps,
            report.total_steps,
            report.balancer_toggles,
            report.verdict
        );
    }

    println!(
        "\nThe network counter trades the monotone counter's register-step budget for \
         {} balancer toggles spread across a width-{} bitonic network; the adaptive \
         counter eliminates colliding pairs and routes the rest through the narrowest \
         network covering realized contention ({} toggles); the fetch-and-add baseline \
         is a single hot word outside the paper's register-only model.",
        reports[1].balancer_toggles,
        PRODUCERS.next_power_of_two(),
        reports[2].balancer_toggles,
    );
}
