//! A long-lived name server: clients churn through a bounded pool of slot
//! names, holding each only for the duration of a request.
//!
//! The paper's renaming objects are one-shot — every acquisition consumes a
//! name forever. The long-lived extension wraps a one-shot object in a
//! `Recycler`: leases are served from a lock-free free list of released
//! names, and only growth in *concurrency* (not in total traffic) consumes
//! fresh names from the underlying object. The `NameLease` guard releases
//! its name on drop, so a crashed or early-returning handler can never leak
//! a slot.
//!
//! Run with:
//!
//! ```text
//! cargo run --example name_server
//! ```

use std::sync::Arc;
use strong_renaming::prelude::*;

fn main() {
    let workers = 8usize;
    let requests_per_worker = 200usize;
    let max_concurrent = workers;

    // The compiled §5 renaming network over 64 wires, recycled for at most
    // `workers` simultaneous holders. `builder.max_concurrent(n)
    // .build_long_lived()` would produce the same object behind
    // `Arc<dyn LongLivedRenaming>`; this example layers the `Recycler`
    // explicitly because the churn diagnostics printed below
    // (`fresh_names()`, `recycled_names()`, `peak_leases()`) live on the
    // concrete type.
    let builder = RenamingBuilder::new().network().capacity(64).seed(7);
    let server: Arc<Recycler<_>> = Arc::new(Recycler::new(
        builder.build().expect("valid configuration"),
        max_concurrent,
    ));

    let outcome = Executor::new(
        builder
            .exec_config()
            .with_yield_policy(YieldPolicy::Probabilistic(0.05)),
    )
    .run(workers, {
        let server = Arc::clone(&server);
        move |ctx| {
            let mut names = Vec::with_capacity(requests_per_worker);
            for _ in 0..requests_per_worker {
                // One request: lease a slot, "serve" (a couple of local coin
                // flips), release. Dropping the lease would release too; the
                // explicit form also records the release step.
                let lease = Arc::clone(&server).lease(ctx).expect("pool not exhausted");
                names.push(lease.name());
                ctx.flip();
                lease.release(ctx);
            }
            names
        }
    });

    let served: Vec<usize> = outcome.flattened_sorted();
    let total = served.len();
    let distinct = {
        let mut unique = served.clone();
        unique.dedup();
        unique.len()
    };
    assert_eq!(total, workers * requests_per_worker);
    assert!(
        served.iter().all(|&name| name <= max_concurrent),
        "every name stays within 1..=max_concurrent under churn"
    );

    println!("{workers} workers served {total} requests through the name server.");
    println!(
        "Names used: {distinct} distinct (namespace 1..={max_concurrent}), \
         peak concurrency {}.",
        server.peak_leases()
    );
    println!(
        "Fresh names drawn from the one-shot network: {} — everything else \
         was recycled ({} leases served from the free list).",
        server.fresh_names(),
        server.recycled_names()
    );
    println!(
        "Live leases after quiescence: {}; leaked names: {}.",
        server.live_leases(),
        server.leaked_names()
    );
    assert!(server.fresh_names() <= max_concurrent);
    assert_eq!(server.live_leases(), 0);

    // --- The loose, sharded variant -------------------------------------
    // `.sharded(n)` splits the server into n independent recyclers over
    // disjoint name ranges with per-process home shards: lease/release
    // traffic stays shard-local (no shared hot cache line), at the price of
    // the loose namespace bound — names live anywhere in 1..=shards×span
    // even at low contention. `lease_many` amortizes the admission work of
    // a burst of slots into one reservation.
    // Admission must cover the peak demand: all workers simultaneously
    // holding a full burst (lease_many is all-or-nothing and non-blocking,
    // so an undersized bound would reject bursts on multi-core hosts).
    let sharded = builder
        .clone()
        .capacity(16) // per shard when sharded
        .sharded(4)
        .max_concurrent(workers * 4)
        .build_long_lived()
        .expect("valid sharded configuration");

    let outcome = Executor::new(builder.exec_config()).run(workers, {
        let sharded = Arc::clone(&sharded);
        move |ctx| {
            let mut worst = 0usize;
            for _ in 0..requests_per_worker / 4 {
                // One burst: four slots leased together, served, released.
                let burst = Arc::clone(&sharded)
                    .lease_many(ctx, 4)
                    .expect("stealing finds slots across shards");
                ctx.flip();
                for lease in burst {
                    worst = worst.max(lease.name());
                    lease.release(ctx);
                }
            }
            worst
        }
    });
    let widest = outcome.results().into_iter().max().unwrap_or(0);
    println!(
        "Sharded server: 4 shards × 16 names, widest name granted {widest} \
         (loose bound {}).",
        4 * 16
    );
    assert!(widest <= 4 * 16, "the loose bound holds");
    assert_eq!(sharded.live_leases(), 0);
}
