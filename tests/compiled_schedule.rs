//! Property tests of the compiled-schedule engine: lowering any schedule
//! into flat arrays must change nothing observable. For odd-even, bitonic
//! and transposition networks across randomized widths, the compiled form
//! must agree with its source on every `(stage, wire)` query and on the
//! output of `apply_schedule`.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sortnet::batcher::{odd_even_network, OddEvenSchedule};
use sortnet::bitonic::bitonic_network;
use sortnet::compiled::CompiledSchedule;
use sortnet::network::ComparatorNetwork;
use sortnet::schedule::ComparatorSchedule;
use sortnet::transposition::transposition_network;

fn network_for(family: u8, width: usize) -> (ComparatorNetwork, &'static str) {
    match family % 3 {
        0 => (odd_even_network(width), "odd-even"),
        1 => (bitonic_network(width), "bitonic"),
        _ => (transposition_network(width), "transposition"),
    }
}

/// Every `(stage, wire)` query of the compiled schedule must match the
/// source, including out-of-range probes.
fn queries_agree<S: ComparatorSchedule>(
    compiled: &CompiledSchedule,
    source: &S,
) -> Result<(), proptest::test_runner::TestCaseError> {
    prop_assert_eq!(compiled.width(), source.width());
    prop_assert_eq!(compiled.depth(), source.depth());
    for stage in 0..source.depth() {
        prop_assert_eq!(
            compiled.stage(stage).to_vec(),
            source.stage_comparators(stage)
        );
        for wire in 0..source.width() {
            prop_assert_eq!(
                compiled.comparator_at(stage, wire),
                source.comparator_at(stage, wire),
                "stage {}, wire {}",
                stage,
                wire
            );
        }
    }
    prop_assert_eq!(compiled.comparator_at(source.depth(), 0), None);
    prop_assert_eq!(compiled.comparator_at(0, source.width()), None);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    /// Compiling a materialized network — of any of the three families —
    /// preserves every comparator query and every application output.
    #[test]
    fn compiled_network_agrees_with_its_source(
        width in 2usize..40,
        family in 0u8..3,
        seed in 0u64..1_000_000,
    ) {
        let (network, label) = network_for(family, width);
        let compiled = CompiledSchedule::compile(&network);
        prop_assert_eq!(compiled.size(), network.size(), "{}", label);
        queries_agree(&compiled, &network)?;

        let mut rng = StdRng::seed_from_u64(seed);
        let input: Vec<u32> = (0..width).map(|_| rng.gen_range(0..1000)).collect();
        let mut sorted = input.clone();
        sorted.sort_unstable();
        prop_assert_eq!(compiled.apply(&input), network.apply_schedule(&input), "{}", label);
        prop_assert_eq!(compiled.apply(&input), sorted, "{}: must still sort", label);
    }

    /// The analytic odd-even schedule (no materialization involved) compiles
    /// to the same answers as well.
    #[test]
    fn compiled_analytic_schedule_agrees_with_its_source(
        width in 2usize..40,
        seed in 0u64..1_000_000,
    ) {
        let schedule = OddEvenSchedule::new(width);
        let compiled = CompiledSchedule::compile(&schedule);
        queries_agree(&compiled, &schedule)?;

        let mut rng = StdRng::seed_from_u64(seed);
        let input: Vec<u32> = (0..width).map(|_| rng.gen_range(0..1000)).collect();
        prop_assert_eq!(compiled.apply(&input), schedule.apply_schedule(&input));
    }
}
