//! Cross-crate integration tests: the paper's objects assembled end to end,
//! exercised under the adversarial executor, with their correctness conditions
//! checked by the history-based checkers.

use adaptive_renaming::fetch_increment::FetchIncrementSpec;
use adaptive_renaming::ltas::BoundedTasSpec;
use shmem::consistency::{
    check_linearizable, check_monotone_consistent, CounterOp, CounterSpec, Violation,
};
use shmem::history::{History, OpRecord, Recorder};
use std::sync::Arc;
use std::time::Duration;
use strong_renaming::prelude::*;

#[test]
fn adaptive_renaming_handles_bursts_of_mixed_arrival_times() {
    for (seed, k) in [(1u64, 4usize), (2, 9), (3, 16), (4, 25)] {
        let renaming = <dyn Renaming>::builder()
            .build()
            .expect("valid configuration");
        let config = ExecConfig::new(seed)
            .with_arrival(ArrivalSchedule::RandomJitter {
                max_delay: Duration::from_micros(300),
            })
            .with_yield_policy(YieldPolicy::Probabilistic(0.1));
        let outcome = Executor::new(config).run(k, {
            let renaming = renaming.clone();
            move |ctx| renaming.acquire(ctx).unwrap()
        });
        assert_tight_namespace(&outcome.results())
            .unwrap_or_else(|e| panic!("k={k}, seed={seed}: {e}"));
    }
}

#[test]
fn adaptive_renaming_beats_linear_probing_on_worst_case_steps() {
    // E5/E7 sanity check at integration level: for k = 24, the worst-case
    // per-process test-and-set count of the adaptive algorithm is far below
    // the k probes linear probing needs.
    let k = 24usize;
    let adaptive = Arc::new(AdaptiveRenaming::default());
    let adaptive_outcome = Executor::new(ExecConfig::new(5)).run(k, {
        let adaptive = Arc::clone(&adaptive);
        move |ctx| adaptive.acquire_with_report(ctx).unwrap()
    });
    assert_tight_namespace(
        &adaptive_outcome
            .results()
            .iter()
            .map(|r| r.name)
            .collect::<Vec<_>>(),
    )
    .unwrap();

    let linear = Arc::new(LinearProbeRenaming::with_slots(
        (0..k)
            .map(|_| tas::ratrace::RatRaceTas::new())
            .collect::<Vec<_>>(),
    ));
    let linear_outcome = Executor::new(ExecConfig::new(5)).run(k, {
        let linear = Arc::clone(&linear);
        move |ctx| linear.acquire_with_probes(ctx).unwrap()
    });
    let max_linear_probes = linear_outcome
        .results()
        .iter()
        .map(|(_, probes)| *probes)
        .max()
        .unwrap();
    // Linear probing's unluckiest process probes k slots.
    assert_eq!(max_linear_probes, k);
}

#[test]
fn counter_histories_with_crashes_stay_monotone_consistent() {
    for seed in 0..4u64 {
        let counter = Arc::new(MonotoneCounter::new());
        let recorder: Arc<Recorder<CounterOp, u64>> = Arc::new(Recorder::new());
        let pending: Arc<parking_lot::Mutex<Vec<u64>>> =
            Arc::new(parking_lot::Mutex::new(Vec::new()));
        let k = 10usize;
        let config = ExecConfig::new(seed)
            .with_crash_plan(CrashPlan::Random {
                prob: 0.25,
                max_steps: 80,
            })
            .with_yield_policy(YieldPolicy::Probabilistic(0.1));
        let _ = Executor::new(config).run(k, {
            let counter = Arc::clone(&counter);
            let recorder = Arc::clone(&recorder);
            let pending = Arc::clone(&pending);
            move |ctx| {
                for round in 0..3 {
                    if (ctx.id().as_usize() + round) % 3 == 0 {
                        let invoke = recorder.invoke();
                        let value = counter.read(ctx);
                        recorder.record(ctx.id(), CounterOp::Read, value, invoke);
                    } else {
                        let invoke = recorder.invoke();
                        // Record the increment as pending before starting it:
                        // if the process crashes mid-increment the checker
                        // still knows the operation had begun.
                        pending.lock().push(invoke);
                        counter.increment(ctx);
                        pending.lock().retain(|&p| p != invoke);
                        recorder.record(ctx.id(), CounterOp::Increment, 0, invoke);
                    }
                }
            }
        });
        let history = recorder.take_history();
        let pending_invokes = pending.lock().clone();
        check_monotone_consistent(&history, &pending_invokes)
            .unwrap_or_else(|violation| panic!("seed {seed}: {violation}"));
    }
}

#[test]
fn paper_counterexample_history_is_monotone_but_not_linearizable() {
    // Experiment E9: the §8.1 schedule — p3's increment is pending, p2
    // completes with name 2, p1 later completes with name 1, and two reads
    // straddling p1's increment both return 2.
    fn op(
        process: usize,
        op: CounterOp,
        result: u64,
        invoke: u64,
        response: u64,
    ) -> OpRecord<CounterOp, u64> {
        OpRecord {
            process: ProcessId::new(process),
            op,
            result,
            invoke,
            response,
        }
    }
    let history = History::new(vec![
        op(2, CounterOp::Increment, 0, 2, 3),
        op(9, CounterOp::Read, 2, 4, 5),
        op(1, CounterOp::Increment, 0, 6, 7),
        op(9, CounterOp::Read, 2, 8, 9),
    ]);
    let pending_p3 = [1u64];
    assert_eq!(check_monotone_consistent(&history, &pending_p3), Ok(()));
    assert_eq!(
        check_linearizable(&CounterSpec, &history),
        Err(Violation::NotLinearizable)
    );
}

#[test]
fn bounded_tas_histories_remain_linearizable_under_crashes() {
    for seed in 0..4u64 {
        let limit = 3usize;
        let ltas = Arc::new(BoundedTas::new(limit));
        let recorder: Arc<Recorder<(), bool>> = Arc::new(Recorder::new());
        let config = ExecConfig::new(seed).with_crash_plan(CrashPlan::Random {
            prob: 0.2,
            max_steps: 60,
        });
        let _ = Executor::new(config).run(9, {
            let ltas = Arc::clone(&ltas);
            let recorder = Arc::clone(&recorder);
            move |ctx| {
                let invoke = recorder.invoke();
                let won = ltas.invoke(ctx);
                recorder.record(ctx.id(), (), won, invoke);
            }
        });
        // Crashed invocations never complete, so they are simply absent from
        // the history; the completed operations must still linearize.
        let history = recorder.take_history();
        check_linearizable(
            &BoundedTasSpec {
                limit: limit as u64,
            },
            &history,
        )
        .unwrap_or_else(|violation| panic!("seed {seed}: {violation}"));
    }
}

#[test]
fn fetch_and_increment_under_heavy_yielding_is_linearizable() {
    for seed in 0..3u64 {
        let limit = 32u64;
        let object = Arc::new(BoundedFetchIncrement::new(limit));
        let recorder: Arc<Recorder<(), u64>> = Arc::new(Recorder::new());
        let config = ExecConfig::new(seed)
            .with_yield_policy(YieldPolicy::EveryStep)
            .with_arrival(ArrivalSchedule::Simultaneous);
        let outcome = Executor::new(config).run(10, {
            let object = Arc::clone(&object);
            let recorder = Arc::clone(&recorder);
            move |ctx| {
                let invoke = recorder.invoke();
                let value = object.fetch_and_increment(ctx);
                recorder.record(ctx.id(), (), value, invoke);
                value
            }
        });
        assert_eq!(
            outcome.results_sorted(),
            (0..10u64).collect::<Vec<_>>(),
            "seed {seed}"
        );
        let history = recorder.take_history();
        check_linearizable(&FetchIncrementSpec { limit }, &history)
            .unwrap_or_else(|violation| panic!("seed {seed}: {violation}"));
    }
}

#[test]
fn renaming_network_and_adaptive_renaming_agree_on_tightness_for_shared_ids() {
    // The same scattered identifier set processed by both §5 (bounded network)
    // and §6 (adaptive) renaming gives a tight namespace both ways.
    let ids: Vec<ProcessId> = [3usize, 17, 64, 131, 255]
        .iter()
        .copied()
        .map(ProcessId::new)
        .collect();

    let bounded: Arc<RenamingNetwork<_>> = Arc::new(RenamingNetwork::new(
        sortnet::batcher::odd_even_network(256),
    ));
    let outcome = Executor::new(ExecConfig::new(31)).run_with_ids(&ids, {
        let bounded = Arc::clone(&bounded);
        move |ctx| bounded.acquire(ctx).unwrap()
    });
    assert_tight_namespace(&outcome.results()).unwrap();

    let adaptive = <dyn Renaming>::builder()
        .build()
        .expect("valid configuration");
    let outcome = Executor::new(ExecConfig::new(31)).run_with_ids(&ids, {
        let adaptive = adaptive.clone();
        move |ctx| adaptive.acquire(ctx).unwrap()
    });
    assert_tight_namespace(&outcome.results()).unwrap();
}

#[test]
fn counters_agree_with_the_fetch_and_add_baseline_at_quiescence() {
    let increments_per_process = 3usize;
    let k = 8usize;

    let monotone = Arc::new(MonotoneCounter::new());
    let baseline = Arc::new(CasCounter::new());
    let _ = Executor::new(ExecConfig::new(13)).run(k, {
        let monotone = Arc::clone(&monotone);
        let baseline = Arc::clone(&baseline);
        move |ctx| {
            for _ in 0..increments_per_process {
                monotone.increment(ctx);
                baseline.increment(ctx);
            }
        }
    });
    let mut ctx = ProcessCtx::new(ProcessId::new(999), 0);
    assert_eq!(monotone.read(&mut ctx), (k * increments_per_process) as u64);
    assert_eq!(baseline.read(&mut ctx), (k * increments_per_process) as u64);
}
