//! Replays every pinned schedule in `tests/schedules/` and checks each trace's
//! recorded expectation (`pass` or `violation`) against the scenario oracle.
//!
//! These traces are minimized counterexamples (and one regression schedule)
//! produced by the `mcheck` explorer; each file can also be replayed by hand:
//!
//! ```text
//! cargo run -p mcheck -- replay tests/schedules/mono_counter_3p_0.trace
//! ```

use mcheck::trace::{self, TraceFile};
use std::path::PathBuf;

fn schedules_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/schedules")
}

#[test]
fn every_pinned_trace_replays_to_its_expectation() {
    let mut seen = 0;
    for entry in std::fs::read_dir(schedules_dir()).expect("tests/schedules exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().is_none_or(|e| e != "trace") {
            continue;
        }
        seen += 1;
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
        let file =
            TraceFile::parse(&text).unwrap_or_else(|e| panic!("parsing {}: {e}", path.display()));
        match trace::verify(&file) {
            Ok(summary) => println!("{}: {summary}", path.display()),
            Err(e) => panic!("{}: {e}", path.display()),
        }
    }
    assert!(
        seen >= 3,
        "expected at least the three pinned traces, found {seen}"
    );
}

#[test]
fn pinned_counterexamples_are_replayed_deterministically() {
    // Replaying the same trace twice must visit byte-identical schedules and
    // reach the same verdict: the virtual executor is deterministic given a
    // schedule source.
    for name in ["mono_counter_3p_0", "cnet_stall_one_token_0"] {
        let path = schedules_dir().join(format!("{name}.trace"));
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
        let file = TraceFile::parse(&text).expect("pinned trace parses");
        let first = trace::verify(&file).expect("first replay");
        let second = trace::verify(&file).expect("second replay");
        assert_eq!(first, second, "replay of {name} must be deterministic");
    }
}
