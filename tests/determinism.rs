//! Determinism audit for the seeded executors.
//!
//! Replayable traces (`tests/schedules/*.trace`) only work if a seeded
//! execution reproduces byte-identically: same schedule, same per-process
//! step statistics, same recorded histories. The audit found no
//! order-sensitive `HashMap`/`HashSet` iteration in any hot path (balancer
//! and comparator maps are keyed lookups; the only iterations are
//! order-independent sums), so determinism rests on the seeded RNG streams —
//! which these tests pin down.

use shmem::adversary::{CrashPlan, ExecConfig};
use shmem::executor::Executor;
use shmem::history::Recorder;
use shmem::process::ProcessId;
use shmem::register::AtomicU64Register;
use shmem::vexec::{VirtualExecutor, VirtualRun};
use std::sync::Arc;

/// Runs a contended increment workload under a fresh seeded virtual
/// executor and returns everything observable about the run.
fn contended_virtual_run(
    seed: u64,
) -> (VirtualRun<u64>, shmem::history::History<&'static str, u64>) {
    let counter = Arc::new(AtomicU64Register::new(0));
    let recorder: Arc<Recorder<&'static str, u64>> = Arc::new(Recorder::new());
    let run = VirtualExecutor::with_seed(seed).run(3, {
        let counter = Arc::clone(&counter);
        let recorder = Arc::clone(&recorder);
        move |ctx| {
            let mut last = 0;
            for _ in 0..4 {
                let invoke = recorder.invoke();
                last = counter.fetch_add(ctx, 1);
                recorder.record(ctx.id(), "inc", last, invoke);
            }
            last
        }
    });
    (run, recorder.take_history())
}

/// Raw location ids are drawn from a global counter, so they differ between
/// two independent builds of the same workload. Renaming them by first
/// appearance in the event stream yields a canonical, comparable form.
fn canonical_events(run: &VirtualRun<u64>) -> Vec<(usize, String, u64)> {
    let mut names: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    run.trace
        .events
        .iter()
        .map(|event| {
            let raw = event.op.loc.as_u64();
            let renamed = if event.op.loc.is_anon() {
                0
            } else {
                let next = names.len() as u64 + 1;
                *names.entry(raw).or_insert(next)
            };
            (
                event.pid.as_usize(),
                format!("{:?}/{:?}", event.op.kind, event.op.access),
                renamed,
            )
        })
        .collect()
}

#[test]
fn seeded_virtual_executions_replay_byte_identically() {
    for seed in [0, 7, 0xDEAD_BEEF] {
        let (first, first_history) = contended_virtual_run(seed);
        let (second, second_history) = contended_virtual_run(seed);

        assert_eq!(
            first.trace.schedule, second.trace.schedule,
            "seed {seed}: schedules must be identical"
        );
        assert_eq!(
            canonical_events(&first),
            canonical_events(&second),
            "seed {seed}: event streams must be identical modulo location naming"
        );
        assert_eq!(
            first.outcome.per_process_steps(),
            second.outcome.per_process_steps(),
            "seed {seed}: per-process StepStats must be byte-identical"
        );
        assert_eq!(
            first.outcome.results_sorted(),
            second.outcome.results_sorted(),
            "seed {seed}: results must be identical"
        );
        assert_eq!(
            first_history, second_history,
            "seed {seed}: recorded histories must be byte-identical"
        );
    }
}

/// The satellite claim of the arena refactor: location identities derived
/// from arena offsets are *stable across backends*, so a seeded virtual
/// execution over a heap-backed arena and a `MAP_SHARED` one replays
/// byte-identically — same schedule, same step stats, same results, and the
/// same sequence of location *offsets* (only the per-arena id bits differ).
#[cfg(all(unix, not(miri)))]
#[test]
fn virtual_executions_replay_identically_on_both_arena_backends() {
    use adaptive_renaming::robust::RobustLeaseTable;
    use shmem::arena::Arena;

    const OFFSET_BITS: u64 = (1 << 34) - 1;

    fn arena_run(arena: Arc<Arena>, seed: u64) -> VirtualRun<u64> {
        let table = Arc::new(RobustLeaseTable::with_capacity_in(&arena, 3));
        VirtualExecutor::with_seed(seed).run(3, move |ctx| {
            let mut names = 0u64;
            for _ in 0..2 {
                if let Ok(name) = table.acquire(ctx, ctx.id().as_u64() as u32 + 1) {
                    names = names * 10 + name as u64;
                    table.release(ctx, name);
                }
            }
            names
        })
    }

    fn event_offsets(run: &VirtualRun<u64>) -> Vec<u64> {
        run.trace
            .events
            .iter()
            .filter(|event| !event.op.loc.is_anon())
            .map(|event| event.op.loc.as_u64() & OFFSET_BITS)
            .collect()
    }

    for seed in [0u64, 5, 31] {
        let heap = arena_run(Arena::heap(RobustLeaseTable::footprint(3)), seed);
        let shared = arena_run(
            Arena::shared(RobustLeaseTable::footprint(3)).expect("MAP_SHARED arena"),
            seed,
        );
        assert_eq!(
            heap.trace.schedule, shared.trace.schedule,
            "seed {seed}: schedules must agree across backends"
        );
        assert_eq!(
            canonical_events(&heap),
            canonical_events(&shared),
            "seed {seed}: event streams must agree across backends"
        );
        assert_eq!(
            event_offsets(&heap),
            event_offsets(&shared),
            "seed {seed}: arena-derived location offsets must be stable"
        );
        assert_eq!(
            heap.outcome.per_process_steps(),
            shared.outcome.per_process_steps(),
            "seed {seed}: per-process StepStats must be byte-identical"
        );
        assert_eq!(
            heap.outcome.results_sorted(),
            shared.outcome.results_sorted(),
            "seed {seed}: granted names must be identical"
        );
    }
}

#[test]
fn distinct_seeds_explore_distinct_schedules() {
    let (a, _) = contended_virtual_run(1);
    let (b, _) = contended_virtual_run(2);
    // Not a hard guarantee for any seed pair, but these two differ — which
    // shows the seed actually steers the schedule rather than being ignored.
    assert_ne!(a.trace.schedule, b.trace.schedule);
}

#[test]
fn threaded_executor_step_stats_are_deterministic_without_contention() {
    // Under real threads the interleaving is up to the OS, so only
    // contention-free workloads have schedule-independent step counts: each
    // process touches its own register. Two runs must agree byte-for-byte.
    let run = || {
        let slots: Vec<Arc<AtomicU64Register>> = (0..4)
            .map(|_| Arc::new(AtomicU64Register::new(0)))
            .collect();
        let outcome = Executor::with_seed(42).run(4, {
            let slots = slots.clone();
            move |ctx| {
                let slot = &slots[ctx.id().as_usize()];
                for step in 0..5 {
                    slot.write(ctx, step);
                }
                slot.read(ctx)
            }
        });
        (outcome.per_process_steps(), outcome.results_sorted())
    };
    let (first_steps, first_results) = run();
    let (second_steps, second_results) = run();
    assert_eq!(first_steps, second_steps);
    assert_eq!(first_results, second_results);
}

#[test]
fn threaded_executor_crash_plans_reproduce_from_the_seed() {
    // The per-process crash plan is derived from the configuration seed, so
    // the set of crashed processes must agree across runs (and with the
    // plan), even though thread interleaving varies.
    let crashed = || {
        let config = ExecConfig::new(9).with_crash_plan(CrashPlan::Fixed(vec![
            Some(2),
            None,
            Some(1),
            None,
        ]));
        let slots: Vec<Arc<AtomicU64Register>> = (0..4)
            .map(|_| Arc::new(AtomicU64Register::new(0)))
            .collect();
        let outcome = Executor::new(config).run(4, {
            let slots = slots.clone();
            move |ctx| {
                let slot = &slots[ctx.id().as_usize()];
                for step in 0..8 {
                    slot.write(ctx, step);
                }
                slot.read(ctx)
            }
        });
        let completed: Vec<ProcessId> = outcome.completed().map(|(pid, _)| pid).collect();
        completed
    };
    let first = crashed();
    let second = crashed();
    assert_eq!(first, second);
    assert_eq!(
        first,
        vec![ProcessId::new(1), ProcessId::new(3)],
        "processes 0 and 2 crash per the fixed plan"
    );
}
