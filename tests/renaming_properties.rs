//! Property-based tests of the renaming objects' safety guarantees.
//!
//! These properties hold in *every* execution, so they are exercised across
//! randomized contention levels, seeds, arrival schedules and yield policies.

use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;
use strong_renaming::prelude::*;

/// Builds an adversarial configuration from raw proptest inputs.
fn config(seed: u64, yield_percent: u8, arrival_choice: u8) -> ExecConfig {
    let arrival = match arrival_choice % 3 {
        0 => ArrivalSchedule::Simultaneous,
        1 => ArrivalSchedule::Unsynchronized,
        _ => ArrivalSchedule::RandomJitter {
            max_delay: Duration::from_micros(200),
        },
    };
    ExecConfig::new(seed)
        .with_yield_policy(YieldPolicy::Probabilistic(
            f64::from(yield_percent % 40) / 100.0,
        ))
        .with_arrival(arrival)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    /// Adaptive strong renaming returns exactly the names 1..=k, for any
    /// contention level, seed and schedule perturbation.
    #[test]
    fn adaptive_renaming_namespace_is_always_tight(
        k in 1usize..10,
        seed in 0u64..1_000_000,
        yield_percent in 0u8..40,
        arrival_choice in 0u8..3,
    ) {
        let renaming = <dyn Renaming>::builder().build().expect("valid configuration");
        let outcome = Executor::new(config(seed, yield_percent, arrival_choice)).run(k, {
            let renaming = renaming.clone();
            move |ctx| renaming.acquire(ctx).expect("adaptive renaming never fails")
        });
        prop_assert!(assert_tight_namespace(&outcome.results()).is_ok());
    }

    /// The renaming network over a fixed sorting network is tight for any
    /// subset of input ports.
    #[test]
    fn renaming_network_namespace_is_always_tight(
        seed in 0u64..1_000_000,
        yield_percent in 0u8..40,
        ports in proptest::collection::btree_set(0usize..32, 1..10),
    ) {
        let network: Arc<RenamingNetwork<_>> =
            Arc::new(RenamingNetwork::new(sortnet::batcher::odd_even_network(32)));
        let ids: Vec<ProcessId> = ports.iter().copied().map(ProcessId::new).collect();
        let outcome = Executor::new(config(seed, yield_percent, 0)).run_with_ids(&ids, {
            let network = Arc::clone(&network);
            move |ctx| network.acquire(ctx).expect("ports fit the namespace")
        });
        prop_assert!(assert_tight_namespace(&outcome.results()).is_ok());
    }

    /// BitBatching hands out unique names within 1..=n whenever at most n
    /// processes participate, and the namespace is exactly 1..=n under full
    /// load.
    #[test]
    fn bit_batching_names_are_unique_and_in_range(
        k in 1usize..12,
        seed in 0u64..1_000_000,
        yield_percent in 0u8..40,
    ) {
        let n = 16usize;
        let renaming = RenamingBuilder::new()
            .bit_batching()
            .capacity(n)
            .build()
            .expect("valid configuration");
        let outcome = Executor::new(config(seed, yield_percent, 0)).run(k, {
            let renaming = renaming.clone();
            move |ctx| renaming.acquire(ctx).expect("k <= n")
        });
        let names = outcome.results();
        prop_assert!(assert_unique_names(&names).is_ok());
        prop_assert!(names.iter().all(|&name| (1..=n).contains(&name)));
    }

    /// The ℓ-test-and-set admits exactly min(ℓ, k) winners.
    #[test]
    fn bounded_tas_has_exactly_limit_winners(
        k in 1usize..10,
        limit in 1usize..6,
        seed in 0u64..1_000_000,
        yield_percent in 0u8..40,
    ) {
        let ltas = Arc::new(BoundedTas::new(limit));
        let outcome = Executor::new(config(seed, yield_percent, 0)).run(k, {
            let ltas = Arc::clone(&ltas);
            move |ctx| ltas.invoke(ctx)
        });
        let winners = outcome.results().into_iter().filter(|w| *w).count();
        prop_assert_eq!(winners, limit.min(k));
    }

    /// The m-valued fetch-and-increment returns 0..k-1 when k ≤ m processes
    /// each perform one operation.
    #[test]
    fn fetch_and_increment_values_are_consecutive(
        k in 1usize..10,
        seed in 0u64..1_000_000,
        yield_percent in 0u8..40,
    ) {
        let object = Arc::new(BoundedFetchIncrement::new(32));
        let outcome = Executor::new(config(seed, yield_percent, 0)).run(k, {
            let object = Arc::clone(&object);
            move |ctx| object.fetch_and_increment(ctx)
        });
        let mut values = outcome.results();
        values.sort_unstable();
        prop_assert_eq!(values, (0..k as u64).collect::<Vec<_>>());
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        .. ProptestConfig::default()
    })]

    /// Crash faults never violate uniqueness, and survivors' names stay
    /// bounded by the number of participants.
    #[test]
    fn adaptive_renaming_is_safe_under_crashes(
        k in 2usize..10,
        seed in 0u64..1_000_000,
        crash_percent in 10u8..60,
    ) {
        let renaming = <dyn Renaming>::builder().build().expect("valid configuration");
        let exec_config = ExecConfig::new(seed).with_crash_plan(CrashPlan::Random {
            prob: f64::from(crash_percent) / 100.0,
            max_steps: 50,
        });
        let outcome = Executor::new(exec_config).run(k, {
            let renaming = renaming.clone();
            move |ctx| renaming.acquire(ctx).expect("adaptive renaming never fails")
        });
        let names = outcome.results();
        prop_assert!(assert_unique_names(&names).is_ok());
        prop_assert!(names.iter().all(|&name| name <= k));
    }
}
