//! Recovery idempotence and epoch-arbitration properties.
//!
//! The restart-recovery scan ([`adaptive_renaming::recovery`]) promises
//! `recover ∘ recover = recover`: running it again — at a later epoch, or
//! raced from a second fresh attacher at the *same* epoch — must not
//! change the observable lease state ([`RobustLeaseTable::state_snapshot`])
//! or the free-list words. These tests pin that over randomized crash
//! states (live and dead owners, torn lease slots, torn free-list pushes)
//! and over a real two-thread race for the epoch CAS.

use adaptive_renaming::free_list::{FreeList, FreeListKind};
use adaptive_renaming::lease::LongLivedRenaming;
use adaptive_renaming::recovery::{recover_with, RecoveryReport};
use adaptive_renaming::robust::RobustLeaseTable;
use proptest::prelude::*;
use shmem::process::{ProcessCtx, ProcessId};
use std::sync::Arc;

fn ctx(id: usize, seed: u64) -> ProcessCtx {
    ProcessCtx::new(ProcessId::new(id), seed)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        .. ProptestConfig::default()
    })]

    /// Random crash states: some owners dead, some alive, some lease slots
    /// torn (claimed with no owner published), some free-list pushes torn
    /// (data bit with no summary flag). One recovery repairs everything it
    /// can prove; a second recovery at the next epoch does zero work and
    /// leaves the observable state byte-identical; a replay at an
    /// already-claimed epoch loses the arbitration without touching
    /// anything.
    #[test]
    fn recovery_is_idempotent_over_random_crash_states(
        capacity in 2usize..12,
        owners in 1usize..4,
        seed in 0u64..1_000_000,
        dead_mask in 0u32..256,
        release_mask in 0u32..256,
        torn_slots in 0usize..3,
        torn_push in 1usize..64,
        presume in 0u8..2,
    ) {
        let table = RobustLeaseTable::with_capacity(capacity);
        let free = FreeList::with_kind(64, FreeListKind::Hierarchical);
        let mut driver = ctx(0, seed);

        let registrations: Vec<_> = (0..owners)
            .map(|index| table.register_process(1000 + index as u32).unwrap())
            .collect();
        let mut held = Vec::new();
        for index in 0..capacity {
            let registration = &registrations[index % owners];
            match table.acquire(&mut driver, registration.tag()) {
                Ok(name) => held.push(name),
                Err(_) => break,
            }
        }
        for (index, &name) in held.iter().enumerate() {
            if release_mask >> (index % 8) & 1 == 1 {
                table.release(&mut driver, name);
            }
        }
        let mut injected = 0;
        for name in 1..=capacity {
            if injected == torn_slots {
                break;
            }
            if table.inject_torn_slot(&mut driver, name) {
                injected += 1;
            }
        }
        let tore_push = free.inject_torn_push(torn_push);
        prop_assert!(tore_push, "data bit should set cleanly on an empty list");

        let is_dead = |pid: u32| dead_mask >> (pid - 1000) & 1 == 1;
        let presume_all_dead = presume == 1;
        let first = recover_with(&mut driver, &table, &[&free], 1, is_dead, presume_all_dead);
        prop_assert!(first.won);
        prop_assert_eq!(first.quarantined, injected);
        if tore_push {
            prop_assert!(first.summary_repairs >= 1, "torn push not re-flagged");
        }

        let snapshot = table.state_snapshot();
        let free_words = free.snapshot_words();

        let second = recover_with(&mut driver, &table, &[&free], 2, is_dead, presume_all_dead);
        prop_assert!(second.won);
        prop_assert_eq!(second.reclaimed, 0, "second recovery re-reclaimed");
        prop_assert_eq!(second.quarantined, 0, "second recovery re-quarantined");
        prop_assert_eq!(table.state_snapshot(), snapshot.clone());
        prop_assert_eq!(free.snapshot_words(), free_words.clone());

        let replay = recover_with(&mut driver, &table, &[&free], 2, is_dead, presume_all_dead);
        prop_assert!(!replay.won, "an already-claimed epoch was re-won");
        prop_assert_eq!(replay.reclaimed, 0);
        prop_assert_eq!(table.state_snapshot(), snapshot);
        prop_assert_eq!(free.snapshot_words(), free_words);
    }
}

/// Two fresh attachers racing `recover_with` at the *same* epoch (the
/// restart race: both read the same attach epoch from the arena header)
/// serialize through the epoch CAS: exactly one runs the scan, every dead
/// lease is reclaimed exactly once, and the loser touches nothing.
#[test]
fn racing_fresh_attachers_serialize_to_one_recovery() {
    for round in 0..64u64 {
        let table = Arc::new(RobustLeaseTable::with_capacity(8));
        let registration = table.register_process(4242).unwrap();
        let mut driver = ctx(0, round);
        for _ in 0..8 {
            table.acquire(&mut driver, registration.tag()).unwrap();
        }
        let free = FreeList::with_kind(16, FreeListKind::Hierarchical);

        let reports: Vec<RecoveryReport> = std::thread::scope(|scope| {
            let handles: Vec<_> = (1..=2)
                .map(|id| {
                    let table = Arc::clone(&table);
                    let free = &free;
                    scope.spawn(move || {
                        let mut attacher = ctx(id, round ^ id as u64);
                        recover_with(&mut attacher, &table, &[free], 1, |_| true, true)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("attacher panicked"))
                .collect()
        });

        let winners = reports.iter().filter(|report| report.won).count();
        assert_eq!(
            winners, 1,
            "round {round}: epoch won {winners} times: {reports:?}"
        );
        let reclaimed: usize = reports.iter().map(|report| report.reclaimed).sum();
        assert_eq!(
            reclaimed, 8,
            "round {round}: dead leases reclaimed {reclaimed} times"
        );
        assert_eq!(
            table.live_leases(),
            0,
            "round {round}: leases survived recovery"
        );
    }
}
