//! Cross-process crash tests over the `MAP_SHARED` arena backend.
//!
//! These tests `fork(2)` real child processes against an anonymous shared
//! mapping ([`Arena::shared`]) and verify the two cross-process claims of the
//! shared-memory substrate:
//!
//! * **Visibility** — atomic words allocated in a shared arena are the same
//!   physical memory in every forked process; handle structs (`ArenaBox`,
//!   compiled network wiring, lease-table slot vectors) are inherited by
//!   value and keep resolving against the shared base.
//! * **Crash-robust reclamation** — a child SIGKILLed mid-lease leaves its
//!   slot `HELD(pid)`; the surviving parent's
//!   [`RobustLeaseTable::sweep_dead_processes`] probes the pid, reclaims the
//!   name, and the namespace stays tight.
//!
//! The fork discipline (allocate everything before the fork; children touch
//! only atomics on the shared mapping and then `_exit`) is enforced by the
//! [`shmem::procs`] helpers these tests are built on.

#![cfg(all(unix, not(miri)))]

use adaptive_renaming::lease::LongLivedRenaming;
use adaptive_renaming::robust::RobustLeaseTable;
use shmem::arena::{os_process_alive, Arena, ArenaBackend};
use shmem::process::{ProcessCtx, ProcessId};
use shmem::procs::{fork_child, kill_child, wait_child, wait_for_clean_exit};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[test]
fn shared_arena_words_are_visible_across_fork() {
    let arena = Arena::shared(1 << 12).expect("anonymous MAP_SHARED mapping");
    assert_eq!(arena.backend(), ArenaBackend::Shared);
    let word = arena.alloc::<AtomicU64>();

    let pid = fork_child({
        let arena = Arc::clone(&arena);
        move || {
            word.get(&arena).store(0xC0FFEE, Ordering::SeqCst);
        }
    });
    wait_for_clean_exit(pid);
    assert_eq!(
        word.get(&arena).load(Ordering::SeqCst),
        0xC0FFEE,
        "a child's store through the shared mapping must be visible here"
    );
}

#[test]
fn forked_incrementers_share_one_arena_counter() {
    // Several children hammer one shared word; the total must be exact —
    // the mapping is genuinely shared, not copy-on-write.
    let arena = Arena::shared(1 << 12).expect("anonymous MAP_SHARED mapping");
    let word = arena.alloc::<AtomicU64>();
    let (children, increments) = (4, 1000u64);

    let pids: Vec<i32> = (0..children)
        .map(|_| {
            fork_child({
                let arena = Arc::clone(&arena);
                move || {
                    for _ in 0..increments {
                        word.get(&arena).fetch_add(1, Ordering::SeqCst);
                    }
                }
            })
        })
        .collect();
    for pid in pids {
        wait_for_clean_exit(pid);
    }
    assert_eq!(
        word.get(&arena).load(Ordering::SeqCst),
        children as u64 * increments
    );
}

#[test]
fn crashed_leaseholder_names_are_reclaimed_by_a_sweep() {
    let arena =
        Arena::shared(RobustLeaseTable::footprint(4) + 64).expect("anonymous MAP_SHARED mapping");
    let table = Arc::new(RobustLeaseTable::with_capacity_in(&arena, 4));
    // Handshake word: the child publishes its granted name here so the
    // parent knows the lease is held before delivering SIGKILL.
    let handshake = arena.alloc::<AtomicU64>();
    // Pre-fork context for the child (fork discipline: no post-fork
    // allocation — the context, the table handle and the arena all exist
    // before the fork and are inherited by value).
    let mut child_ctx = ProcessCtx::new(ProcessId::new(1), 7);

    let pid = fork_child({
        let arena = Arc::clone(&arena);
        let table = Arc::clone(&table);
        move || {
            // Registration is the child's first act on the shared table:
            // the returned tag (registry slot + start-generation) is what
            // gets stamped into the lease, so the sweeping parent can
            // prove this incarnation dead even if the OS recycles the pid.
            let registration = table
                .register_current_process()
                .expect("the registry admits the child");
            let name = table
                .acquire(&mut child_ctx, registration.tag())
                .expect("an empty table has free names");
            handshake.get(&arena).store(name as u64, Ordering::SeqCst);
            // Hold the lease until the parent kills us: the crash leaves the
            // slot HELD with our registration tag stamped as owner.
            loop {
                std::hint::spin_loop();
            }
        }
    });

    // Wait for the lease, then crash the holder without warning.
    while handshake.get(&arena).load(Ordering::SeqCst) == 0 {
        std::thread::yield_now();
    }
    let name = handshake.get(&arena).load(Ordering::SeqCst) as usize;
    kill_child(pid);
    assert!(
        wait_child(pid).killed(),
        "the child must have died of SIGKILL, not exited"
    );

    // The crash is now observable: the slot is held by a dead pid.
    let mut ctx = ProcessCtx::new(ProcessId::new(0), 3);
    assert!(!os_process_alive(pid as u32), "the reaped child is gone");
    assert_eq!(
        table.owner_pid(name),
        Some(pid as u32),
        "the held slot's tag resolves to the dead child's pid"
    );
    assert_eq!(
        table.live_leases(),
        1,
        "the crashed lease still counts as live"
    );

    // The surviving process sweeps and gets the name back.
    assert_eq!(table.sweep_dead_processes(&mut ctx), 1);
    assert_eq!(table.holder(name), None);
    assert_eq!(table.live_leases(), 0);
    let parent = table
        .register_current_process()
        .expect("the registry admits the parent");
    assert_eq!(
        table.acquire(&mut ctx, parent.tag()).unwrap(),
        name,
        "the reclaimed minimum is granted again — the namespace stays tight"
    );
    // A second sweep finds nothing: the reclamation was exactly-once.
    assert_eq!(table.sweep_dead_processes(&mut ctx), 0);
    assert_eq!(table.transitions(), 1);
}

#[test]
fn a_crashed_leaseholders_flight_recorder_tail_survives_the_sweep() {
    // The observability variant of the reclamation test: the child records
    // its lease events into an arena-resident flight-recorder ring; after
    // SIGKILL the sweeping parent recovers the dead child's last events —
    // including the grant of the very lease the sweep reclaims.
    use obs::{EventKind, FlightRecorder};

    let footprint = RobustLeaseTable::footprint(4) + FlightRecorder::footprint(2, 8) + 64;
    let arena = Arena::shared(footprint).expect("anonymous MAP_SHARED mapping");
    let table = Arc::new(RobustLeaseTable::with_capacity_in(&arena, 4));
    let recorder = FlightRecorder::new_in(&arena, 2, 8);
    let handshake = arena.alloc::<AtomicU64>();
    let mut child_ctx = ProcessCtx::new(ProcessId::new(1), 7);

    let pid = fork_child({
        let arena = Arc::clone(&arena);
        let table = Arc::clone(&table);
        let recorder = Arc::clone(&recorder);
        move || {
            // The child claims ring 1, registers its pid on it, and binds it
            // as this process's event sink: the robust table's acquire path
            // logs LeaseGranted into shared memory from here on.
            let writer = recorder.writer(1);
            writer.attach_current_process();
            obs::bind_ring(writer);
            let registration = table
                .register_current_process()
                .expect("the registry admits the child");
            let name = table
                .acquire(&mut child_ctx, registration.tag())
                .expect("an empty table has free names");
            handshake.get(&arena).store(name as u64, Ordering::SeqCst);
            loop {
                std::hint::spin_loop();
            }
        }
    });

    while handshake.get(&arena).load(Ordering::SeqCst) == 0 {
        std::thread::yield_now();
    }
    let name = handshake.get(&arena).load(Ordering::SeqCst) as usize;
    kill_child(pid);
    assert!(wait_child(pid).killed());

    // The dead child's ring is findable by pid and its tail is readable
    // even though the writer died without any shutdown handshake.
    assert_eq!(recorder.find_ring(pid as u32), Some(1));

    // The sweeping parent installs the recorder as the postmortem source;
    // reclaiming the dead pid's name dumps its tail.
    obs::postmortem::install(Arc::clone(&recorder));
    let mut ctx = ProcessCtx::new(ProcessId::new(0), 3);
    assert_eq!(table.sweep_dead_processes(&mut ctx), 1);
    obs::postmortem::uninstall();

    let reports = obs::postmortem::take_reports();
    assert_eq!(reports.len(), 1, "one dead pid, one postmortem");
    let report = &reports[0];
    assert_eq!(report.pid, pid as u32);
    assert_eq!(report.ring, 1);
    let last_lease = report
        .events
        .iter()
        .rev()
        .find(|event| event.kind == EventKind::LeaseGranted)
        .expect("the dead child's last lease event is in the recovered tail");
    assert_eq!(
        last_lease.name, name as u64,
        "the recovered grant names the lease the sweep reclaimed"
    );
    assert!(
        last_lease.payload >= 1 << 24,
        "stamped with the dead child's registration tag"
    );
    assert!(
        report.rendered.contains("LeaseGranted"),
        "{}",
        report.rendered
    );
}

#[test]
fn forked_clients_drive_a_shared_network_counter() {
    use cnet::counter::NetworkCounter;
    use cnet::family::CountingFamily;
    use cnet::verify::has_step_property;

    let (family, width) = (CountingFamily::Bitonic, 4);
    let arena =
        Arena::shared(NetworkCounter::footprint(family, width)).expect("MAP_SHARED mapping");
    let counter = Arc::new(NetworkCounter::new_in(family, width, &arena));
    let (children, increments) = (4usize, 200u64);

    let pids: Vec<i32> = (0..children)
        .map(|child| {
            // Pre-fork context, as above.
            let mut ctx = ProcessCtx::new(ProcessId::new(child), child as u64);
            fork_child({
                let counter = Arc::clone(&counter);
                move || {
                    for _ in 0..increments {
                        counter.increment(&mut ctx);
                    }
                }
            })
        })
        .collect();
    for pid in pids {
        wait_for_clean_exit(pid);
    }
    // Quiescent: every child token is accounted for, and the exit counts
    // satisfy the counting network's step property.
    assert_eq!(counter.peek(), children as u64 * increments);
    assert!(
        has_step_property(&counter.exit_counts()),
        "exit counts {:?} violate the step property",
        counter.exit_counts()
    );
}
