//! Property-based tests of the counting-network subsystem (`cnet`).
//!
//! Three guarantees are pinned across randomized schedules, widths and both
//! certified wirings:
//!
//! 1. **Step property** — at every quiescent point the output-wire counts
//!    form a staircase, sequentially (checked after every token) and after
//!    adversarial concurrent executions.
//! 2. **Quiescent consistency** — recorded histories pass
//!    `check_quiescent_consistent`: reads that overlap no increment are
//!    exact.
//! 3. **Non-linearizability** — the counter is *deliberately* weaker than
//!    linearizable: a stalled token lets a later increment steal an earlier
//!    ticket, mirroring the §8.1 non-linearizability argument for the
//!    monotone counter. The counterexample is driven deterministically
//!    through the real implementation for every certified wiring and width.
//! 4. **Elimination preserves counting** — every `Prism` visit resolves to
//!    an outcome whose weights sum back to the visit count (eliminated and
//!    combined tokens appear in matched pairs), and the full
//!    `AdaptiveNetworkCounter` built on those prisms stays exact and
//!    quiescently consistent under the same adversarial schedules as the
//!    fixed-width counter.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use shmem::consistency::{
    check_linearizable, check_quiescent_consistent, CounterOp, SequentialSpec, Violation,
};
use shmem::history::Recorder;
use std::sync::Arc;
use std::time::Duration;
use strong_renaming::prelude::*;

/// Sequential specification of an exact fetch-and-increment counter:
/// increments return the pre-increment count (their 0-indexed ticket), reads
/// return the count. Used to show recorded ticket histories are *not*
/// linearizable.
#[derive(Clone, Copy, Debug)]
struct FetchIncrementSpec;

impl SequentialSpec for FetchIncrementSpec {
    type Op = CounterOp;
    type Ret = u64;
    type State = u64;

    fn initial(&self) -> u64 {
        0
    }

    fn apply(&self, state: &u64, op: &CounterOp) -> (u64, u64) {
        match op {
            CounterOp::Increment => (*state + 1, *state),
            CounterOp::Read => (*state, *state),
        }
    }
}

fn config(seed: u64, yield_percent: u8, arrival_choice: u8) -> ExecConfig {
    let arrival = match arrival_choice % 3 {
        0 => ArrivalSchedule::Simultaneous,
        1 => ArrivalSchedule::Unsynchronized,
        _ => ArrivalSchedule::RandomJitter {
            max_delay: Duration::from_micros(200),
        },
    };
    ExecConfig::new(seed)
        .with_yield_policy(YieldPolicy::Probabilistic(
            f64::from(yield_percent % 40) / 100.0,
        ))
        .with_arrival(arrival)
}

fn families() -> [CountingFamily; 2] {
    CountingFamily::all()
}

fn width_from(raw: u8) -> usize {
    1usize << (1 + raw % 3) // 2, 4 or 8
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 10,
        .. ProptestConfig::default()
    })]

    /// Sequentially, both certified wirings satisfy the step property after
    /// every token, for arbitrary entry-wire sequences — and the live
    /// compiled engine lands tokens exactly where the pure simulation says.
    #[test]
    fn certified_wirings_count_sequentially(
        raw_width in 0u8..3,
        entries in proptest::collection::vec(0usize..64, 1..48),
    ) {
        let width = width_from(raw_width);
        for family in families() {
            let schedule = family.schedule(width);
            let entries: Vec<usize> = entries.iter().map(|e| e % width).collect();
            let counts = cnet::sequential_step_property(&*schedule, &entries)
                .map_err(|violation| {
                    TestCaseError::fail(format!("{family} width {width}: {violation}"))
                })?;
            prop_assert_eq!(counts.iter().sum::<u64>(), entries.len() as u64);

            // The live compiled engine agrees with the mathematical model.
            let counter = NetworkCounter::new(family, width);
            for &entry in &entries {
                let mut ctx = ProcessCtx::new(ProcessId::new(entry), 0);
                counter.increment(&mut ctx);
            }
            prop_assert_eq!(counter.exit_counts(), counts);
        }
    }

    /// After any adversarial concurrent execution drains, the exit-wire
    /// counts of both certified wirings form a staircase and sum to the
    /// exact number of increments.
    #[test]
    fn step_property_holds_at_quiescence_under_contention(
        threads in 2usize..9,
        ops_per_worker in 1usize..12,
        raw_width in 0u8..3,
        seed in 0u64..1_000_000,
        yield_percent in 0u8..40,
        arrival_choice in 0u8..3,
    ) {
        let width = width_from(raw_width);
        for family in families() {
            let counter = Arc::new(NetworkCounter::new(family, width));
            let outcome = Executor::new(config(seed, yield_percent, arrival_choice))
                .run(threads, {
                    let counter = Arc::clone(&counter);
                    move |ctx| {
                        for _ in 0..ops_per_worker {
                            counter.increment(ctx);
                        }
                    }
                });
            prop_assert_eq!(outcome.crashed_count(), 0);
            let counts = counter.exit_counts();
            if let Some(violation) = cnet::step_property_violation(&counts) {
                return Err(TestCaseError::fail(format!(
                    "{family} width {width}: {violation}"
                )));
            }
            prop_assert_eq!(
                counter.peek(),
                (threads * ops_per_worker) as u64,
                "{} width {}: tokens conserved", family, width
            );
        }
    }

    /// Recorded mixed workloads are quiescently consistent: every read that
    /// overlaps no increment returns the exact completed count. (The same
    /// histories are *not* required to be linearizable — see the
    /// counterexample tests below.)
    #[test]
    fn recorded_histories_are_quiescently_consistent(
        threads in 2usize..7,
        seed in 0u64..1_000_000,
        yield_percent in 0u8..40,
        raw_width in 0u8..3,
    ) {
        let width = width_from(raw_width);
        for family in families() {
            let counter = Arc::new(NetworkCounter::new(family, width));
            let recorder: Arc<Recorder<CounterOp, u64>> = Arc::new(Recorder::new());
            let outcome = Executor::new(config(seed, yield_percent, 0)).run(threads, {
                let counter = Arc::clone(&counter);
                let recorder = Arc::clone(&recorder);
                move |ctx| {
                    for round in 0..3 {
                        if (ctx.id().as_usize() + round) % 2 == 0 {
                            let invoke = recorder.invoke();
                            counter.increment(ctx);
                            recorder.record(ctx.id(), CounterOp::Increment, 0, invoke);
                        } else {
                            let invoke = recorder.invoke();
                            let value = counter.read(ctx);
                            recorder.record(ctx.id(), CounterOp::Read, value, invoke);
                        }
                    }
                }
            });
            prop_assert_eq!(outcome.crashed_count(), 0);
            // A final quiescent read must be exact by construction.
            let mut quiescent = ProcessCtx::new(ProcessId::new(10_000), 0);
            let invoke = recorder.invoke();
            let value = counter.read(&mut quiescent);
            recorder.record(quiescent.id(), CounterOp::Read, value, invoke);
            prop_assert_eq!(value, counter.peek());

            let history = recorder.take_history();
            if let Err(violation) = check_quiescent_consistent(&history, &[]) {
                return Err(TestCaseError::fail(format!(
                    "{family} width {width}: {violation}"
                )));
            }
        }
    }

    /// The non-linearizability counterexample, driven through the real
    /// implementation for every certified wiring and width: the first token
    /// stalls between its traversal and its deposit, the next `width`
    /// increments wrap around the exit wires, and the wrapping increment
    /// steals ticket 0 — after an increment that returned ticket 1 has
    /// already completed. The recorded history is rejected by the
    /// linearizability checker yet passes `check_quiescent_consistent`.
    #[test]
    fn stalled_tokens_pin_non_linearizability(
        raw_width in 0u8..3,
        stalled_entry in 0usize..8,
        seed in 0u64..1_000_000,
    ) {
        let width = width_from(raw_width);
        for family in families() {
            let counter = NetworkCounter::new(family, width);
            let recorder: Recorder<CounterOp, u64> = Recorder::new();

            // The stalled process traverses the empty network (exiting on
            // wire 0, as the first token must) and then pauses before its
            // exit-wire deposit.
            let mut stalled = ProcessCtx::new(ProcessId::new(100), seed);
            let stalled_invoke = recorder.invoke();
            let stalled_wire = counter.network().traverse(&mut stalled, stalled_entry % width);
            prop_assert_eq!(stalled_wire, 0, "the first token exits wire 0");

            // `width` full increments now run to completion. The step
            // property routes them to wires 1, 2, …, width−1 and then wraps
            // the last one onto wire 0, whose counter the stalled token has
            // not bumped yet: the wrapper gets ticket 0.
            let mut tickets = Vec::new();
            for process in 0..width {
                let mut ctx = ProcessCtx::new(ProcessId::new(process), seed);
                let invoke = recorder.invoke();
                let ticket = counter.fetch_increment(&mut ctx);
                recorder.record(ctx.id(), CounterOp::Increment, ticket, invoke);
                tickets.push(ticket);
            }
            let mut expected: Vec<u64> = (1..width as u64).collect();
            expected.push(0);
            prop_assert_eq!(&tickets, &expected, "{} width {}", family, width);

            // The stalled token finally deposits and takes ticket `width`.
            let ticket = counter.deposit(&mut stalled, stalled_wire);
            recorder.record(stalled.id(), CounterOp::Increment, ticket, stalled_invoke);
            prop_assert_eq!(ticket, width as u64);

            // A quiescent read closes the history.
            let mut reader = ProcessCtx::new(ProcessId::new(200), seed);
            let invoke = recorder.invoke();
            let value = counter.read(&mut reader);
            recorder.record(reader.id(), CounterOp::Read, value, invoke);
            prop_assert_eq!(value, width as u64 + 1);

            let history = recorder.take_history();
            // Ticket 1 completed strictly before ticket 0 was even invoked
            // (when width > 2 the wrap makes it even more lopsided): no
            // sequential fetch-and-increment order can reproduce this.
            prop_assert_eq!(
                check_linearizable(&FetchIncrementSpec, &history),
                Err(Violation::NotLinearizable),
                "{} width {}", family, width
            );
            // Yet the very same run is quiescently consistent.
            prop_assert_eq!(
                check_quiescent_consistent(&history, &[]),
                Ok(()),
                "{} width {}", family, width
            );
        }
    }

    /// Elimination never creates or destroys increments: across any
    /// adversarial schedule the outcome weights sum to the visit count, and
    /// eliminated tokens pair off one-for-one with combiners — exactly
    /// `pairs()` of each.
    #[test]
    fn prism_outcomes_conserve_tokens_under_contention(
        threads in 2usize..9,
        visits_per_worker in 1usize..12,
        raw_slots in 0u8..3,
        spin_limit in 1u32..64,
        seed in 0u64..1_000_000,
        yield_percent in 0u8..40,
        arrival_choice in 0u8..3,
    ) {
        use std::sync::atomic::{AtomicU64, Ordering};

        let slots = 1usize << (raw_slots % 3); // 1, 2 or 4
        let prism = Arc::new(Prism::new(slots, spin_limit));
        let tallies: Arc<[AtomicU64; 3]> = Arc::new([
            AtomicU64::new(0), // eliminated
            AtomicU64::new(0), // combined
            AtomicU64::new(0), // fell through
        ]);
        let outcome = Executor::new(config(seed, yield_percent, arrival_choice))
            .run(threads, {
                let prism = Arc::clone(&prism);
                let tallies = Arc::clone(&tallies);
                move |ctx| {
                    for _ in 0..visits_per_worker {
                        let slot = match prism.visit(ctx) {
                            PrismOutcome::Eliminated => 0,
                            PrismOutcome::Combined => 1,
                            PrismOutcome::FellThrough => 2,
                        };
                        tallies[slot].fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        prop_assert_eq!(outcome.crashed_count(), 0);

        let eliminated = tallies[0].load(Ordering::Relaxed);
        let combined = tallies[1].load(Ordering::Relaxed);
        let fell_through = tallies[2].load(Ordering::Relaxed);
        let visits = (threads * visits_per_worker) as u64;
        prop_assert_eq!(eliminated + combined + fell_through, visits);
        // Weight conservation: 0·eliminated + 2·combined + 1·fell_through
        // must equal the number of increments handed to the prism.
        prop_assert_eq!(2 * combined + fell_through, visits);
        prop_assert_eq!(eliminated, combined, "pairs are symmetric");
        prop_assert_eq!(prism.pairs(), combined, "pairs() counts each pairing once");
    }

    /// The adaptive counter is exact at quiescence under adversarial
    /// schedules — no increment is lost or duplicated by elimination,
    /// combining, or cascade routing — and every layer's exit wires satisfy
    /// the weighted step property.
    #[test]
    fn adaptive_counter_is_exact_at_quiescence(
        threads in 2usize..9,
        ops_per_worker in 1usize..12,
        raw_width in 0u8..3,
        seed in 0u64..1_000_000,
        yield_percent in 0u8..40,
        arrival_choice in 0u8..3,
    ) {
        let width = width_from(raw_width);
        for family in families() {
            let counter = Arc::new(AdaptiveNetworkCounter::new(family, width));
            let outcome = Executor::new(config(seed, yield_percent, arrival_choice))
                .run(threads, {
                    let counter = Arc::clone(&counter);
                    move |ctx| {
                        for _ in 0..ops_per_worker {
                            counter.increment(ctx);
                        }
                    }
                });
            prop_assert_eq!(outcome.crashed_count(), 0);
            prop_assert_eq!(
                counter.peek(),
                (threads * ops_per_worker) as u64,
                "{} max width {}: tokens conserved", family, width
            );
            if let Err(violation) = counter.check_step_property() {
                return Err(TestCaseError::fail(format!(
                    "{family} max width {width}: {violation}"
                )));
            }
        }
    }

    /// Recorded mixed workloads against the adaptive counter are
    /// quiescently consistent, exactly like the fixed-width counter it
    /// wraps: elimination and contention routing never let a read that
    /// overlaps no increment drift from the completed count.
    #[test]
    fn adaptive_histories_are_quiescently_consistent(
        threads in 2usize..7,
        seed in 0u64..1_000_000,
        yield_percent in 0u8..40,
        raw_width in 0u8..3,
    ) {
        let width = width_from(raw_width);
        for family in families() {
            let counter = Arc::new(AdaptiveNetworkCounter::new(family, width));
            let recorder: Arc<Recorder<CounterOp, u64>> = Arc::new(Recorder::new());
            let outcome = Executor::new(config(seed, yield_percent, 0)).run(threads, {
                let counter = Arc::clone(&counter);
                let recorder = Arc::clone(&recorder);
                move |ctx| {
                    for round in 0..3 {
                        if (ctx.id().as_usize() + round) % 2 == 0 {
                            let invoke = recorder.invoke();
                            counter.increment(ctx);
                            recorder.record(ctx.id(), CounterOp::Increment, 0, invoke);
                        } else {
                            let invoke = recorder.invoke();
                            let value = counter.read(ctx);
                            recorder.record(ctx.id(), CounterOp::Read, value, invoke);
                        }
                    }
                }
            });
            prop_assert_eq!(outcome.crashed_count(), 0);
            // A final quiescent read must be exact by construction.
            let mut quiescent = ProcessCtx::new(ProcessId::new(10_000), 0);
            let invoke = recorder.invoke();
            let value = counter.read(&mut quiescent);
            recorder.record(quiescent.id(), CounterOp::Read, value, invoke);
            prop_assert_eq!(value, counter.peek());

            let history = recorder.take_history();
            if let Err(violation) = check_quiescent_consistent(&history, &[]) {
                return Err(TestCaseError::fail(format!(
                    "{family} max width {width}: {violation}"
                )));
            }
        }
    }
}

/// The concrete §8.1-style counterexample, spelled out once with fixed
/// timestamps so the failure mode is documented even if the proptest above
/// ever shrinks away: width 2, single balancer.
#[test]
fn width_two_counterexample_is_pinned() {
    let counter = NetworkCounter::new(CountingFamily::Bitonic, 2);
    let recorder: Recorder<CounterOp, u64> = Recorder::new();

    // p traverses (toggling the lone balancer towards wire 1) and stalls.
    let mut p = ProcessCtx::new(ProcessId::new(100), 0);
    let p_invoke = recorder.invoke();
    let p_wire = counter.network().traverse(&mut p, 0);
    assert_eq!(p_wire, 0);

    // q completes: exits wire 1, ticket 0·2+1 = 1.
    let mut q = ProcessCtx::new(ProcessId::new(0), 0);
    let q_invoke = recorder.invoke();
    let q_ticket = counter.fetch_increment(&mut q);
    recorder.record(q.id(), CounterOp::Increment, q_ticket, q_invoke);
    assert_eq!(q_ticket, 1);

    // r starts after q responded and completes: exits wire 0, whose counter
    // p has not bumped — ticket 0·2+0 = 0, an inversion against q.
    let mut r = ProcessCtx::new(ProcessId::new(1), 0);
    let r_invoke = recorder.invoke();
    let r_ticket = counter.fetch_increment(&mut r);
    recorder.record(r.id(), CounterOp::Increment, r_ticket, r_invoke);
    assert_eq!(r_ticket, 0);

    // p deposits last: ticket 1·2+0 = 2. All three tickets are distinct and
    // complete {0, 1, 2} — counting is intact, order is not.
    let p_ticket = counter.deposit(&mut p, p_wire);
    recorder.record(p.id(), CounterOp::Increment, p_ticket, p_invoke);
    assert_eq!(p_ticket, 2);

    let history = recorder.take_history();
    assert_eq!(
        check_linearizable(&FetchIncrementSpec, &history),
        Err(Violation::NotLinearizable),
        "q's ticket 1 completed before r's ticket 0 was invoked"
    );
    assert_eq!(check_quiescent_consistent(&history, &[]), Ok(()));
}

/// The uncertified wirings really do miscount — the refutations that justify
/// `CountingFamily` rejecting them, executed against the same simulator the
/// certification tests use.
#[test]
fn uncertified_wirings_are_refuted_mechanically() {
    use sortnet::family::SortingFamily;

    // Batcher's odd-even merge: 4 tokens suffice at width 4.
    let odd_even = NetworkFamily::OddEven.schedule(4);
    assert!(cnet::sequential_step_property(&*odd_even, &[0, 0, 0, 2]).is_err());

    // One-pass odd-even transposition: 3 tokens suffice at width 4.
    let transposition = NetworkFamily::Transposition.schedule(4);
    assert!(cnet::sequential_step_property(&*transposition, &[0, 0, 0]).is_err());

    // Truncated bitonic (width 6): sorting survives truncation, counting
    // does not.
    let truncated = NetworkFamily::Bitonic.schedule(6);
    assert!(cnet::sequential_step_property(&*truncated, &[0; 12]).is_err());

    // All three remain perfectly good sorting networks.
    for schedule in [odd_even, transposition, truncated] {
        assert!(sortnet::verify::schedule_sorts_exhaustive(&schedule));
    }
}
