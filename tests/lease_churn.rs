//! Property-based tests of long-lived renaming under churn.
//!
//! Random acquire/release/crash interleavings against a `Recycler` over the
//! compiled renaming network must preserve the long-lived strong renaming
//! guarantees at every instant: no two live leases share a name, and every
//! granted name is bounded by the point contention of its grant. Histories
//! are recorded with logical timestamps and checked offline by
//! `assert_tight_lease_namespace`.

use parking_lot::Mutex;
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use strong_renaming::prelude::*;

/// Shared instrumentation: a logical clock and the records under
/// construction.
struct Journal {
    clock: AtomicU64,
    records: Mutex<Vec<LeaseRecord>>,
}

impl Journal {
    fn new() -> Self {
        Journal {
            clock: AtomicU64::new(0),
            records: Mutex::new(Vec::new()),
        }
    }

    fn now(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::AcqRel)
    }

    /// Opens a record at request time; returns its index.
    fn open(&self) -> usize {
        let requested_at = self.now();
        let mut records = self.records.lock();
        records.push(LeaseRecord {
            requested_at,
            ..Default::default()
        });
        records.len() - 1
    }

    fn grant(&self, index: usize, name: usize) {
        let at = self.now();
        let mut records = self.records.lock();
        records[index].name = Some(name);
        records[index].granted_at = Some(at);
    }

    /// A failed (but not crashed) attempt stops counting toward contention.
    fn fail(&self, index: usize) {
        let at = self.now();
        self.records.lock()[index].release_finished_at = Some(at);
    }
}

/// Holds a lease together with its journal record, stamping the release
/// boundaries even when dropped by a crash unwind.
struct RecordedLease {
    lease: Option<NameLease>,
    journal: Arc<Journal>,
    index: usize,
}

impl Drop for RecordedLease {
    fn drop(&mut self) {
        let started = self.journal.now();
        self.journal.records.lock()[self.index].release_started_at = Some(started);
        drop(self.lease.take());
        let finished = self.journal.now();
        self.journal.records.lock()[self.index].release_finished_at = Some(finished);
    }
}

/// Runs `k` workers through `rounds` lease/hold/release cycles against the
/// given long-lived object, with optional crash injection, and returns the
/// recorded history.
fn churn(
    object: Arc<dyn LongLivedRenaming>,
    k: usize,
    rounds: usize,
    config: ExecConfig,
) -> Vec<LeaseRecord> {
    let journal = Arc::new(Journal::new());
    let _ = Executor::new(config).run(k, {
        let object = Arc::clone(&object);
        let journal = Arc::clone(&journal);
        move |ctx| {
            for _ in 0..rounds {
                let index = journal.open();
                match Arc::clone(&object).lease(ctx) {
                    Ok(lease) => {
                        journal.grant(index, lease.name());
                        let holder = RecordedLease {
                            lease: Some(lease),
                            journal: Arc::clone(&journal),
                            index,
                        };
                        // Hold the name across a few steps so leases overlap
                        // (and so crash injection can strike mid-hold; the
                        // unwind then drops `holder`, which journals the
                        // release the recycler performs).
                        ctx.flip();
                        drop(holder);
                    }
                    Err(_) => journal.fail(index),
                }
            }
        }
    });
    Arc::try_unwrap(journal)
        .ok()
        .expect("all workers joined")
        .records
        .into_inner()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 10,
        .. ProptestConfig::default()
    })]

    /// Recycled leases over the compiled renaming network: under random
    /// interleavings, live names are distinct at every instant and bounded
    /// by the point contention of their grant.
    #[test]
    fn recycled_network_leases_stay_unique_and_tight(
        k in 2usize..8,
        rounds in 1usize..8,
        seed in 0u64..1_000_000,
        yield_percent in 0u8..40,
    ) {
        let recycler = Arc::new(Recycler::new(
            RenamingNetwork::<_>::new(sortnet::batcher::odd_even_network(64)),
            2 * k,
        ));
        let config = ExecConfig::new(seed)
            .with_yield_policy(YieldPolicy::Probabilistic(f64::from(yield_percent) / 100.0))
            .with_arrival(ArrivalSchedule::Simultaneous);
        let records = churn(Arc::clone(&recycler) as Arc<dyn LongLivedRenaming>, k, rounds, config);

        prop_assert_eq!(records.len(), k * rounds);
        let check = assert_tight_lease_namespace(&records);
        prop_assert!(check.is_ok(), "{check:?}");
        // Quiescent invariants: everything released, nothing leaked, and the
        // one-shot namespace consumed only in proportion to concurrency.
        prop_assert_eq!(recycler.live_leases(), 0);
        prop_assert_eq!(recycler.leaked_names(), 0);
        prop_assert!(recycler.fresh_names() <= k);
    }

    /// The same guarantees must survive crash injection: a crashed holder's
    /// lease is released by the unwind, a crash inside the acquisition keeps
    /// counting toward contention forever, and no interleaving ever yields
    /// duplicate live names.
    #[test]
    fn recycled_network_leases_survive_crashes(
        k in 2usize..8,
        rounds in 1usize..6,
        seed in 0u64..1_000_000,
        crash_percent in 10u8..60,
    ) {
        let recycler = Arc::new(Recycler::new(
            RenamingNetwork::<_>::new(sortnet::batcher::odd_even_network(64)),
            2 * k,
        ));
        let config = ExecConfig::new(seed).with_crash_plan(CrashPlan::Random {
            prob: f64::from(crash_percent) / 100.0,
            max_steps: 40,
        });
        let records = churn(Arc::clone(&recycler) as Arc<dyn LongLivedRenaming>, k, rounds, config);

        let check = assert_tight_lease_namespace(&records);
        prop_assert!(check.is_ok(), "{check:?}");
        prop_assert_eq!(recycler.leaked_names(), 0);
        prop_assert!(recycler.fresh_names() <= 2 * k);
    }

    /// The builder's long-lived surface composes the same way over the other
    /// strong adaptive backends.
    #[test]
    fn builder_long_lived_objects_stay_tight(
        k in 2usize..6,
        rounds in 1usize..5,
        seed in 0u64..1_000_000,
        algorithm in 0u8..3,
    ) {
        let builder = match algorithm % 3 {
            0 => RenamingBuilder::new().network().capacity(32),
            1 => RenamingBuilder::new().adaptive().adaptive_level(3),
            _ => RenamingBuilder::new().linear_probe().capacity(32),
        };
        let object = builder
            .max_concurrent(2 * k)
            .seed(seed)
            .build_long_lived()
            .unwrap();
        let records = churn(object, k, rounds, ExecConfig::new(seed));
        let check = assert_tight_lease_namespace(&records);
        prop_assert!(check.is_ok(), "{check:?}");
    }
}
