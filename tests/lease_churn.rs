//! Property-based tests of long-lived renaming under churn.
//!
//! Random acquire/release/crash interleavings against a `Recycler` over the
//! compiled renaming network must preserve the long-lived strong renaming
//! guarantees at every instant: no two live leases share a name, and every
//! granted name is bounded by the point contention of its grant. Histories
//! are recorded with logical timestamps and checked offline by
//! `assert_tight_lease_namespace`. The sharded variants run the same churn
//! against a `ShardedRecycler` and check the relaxed guarantee with
//! `assert_loose_lease_namespace`; the builder-default `BatchedRecycler`
//! variant checks uniqueness and the `max_concurrent` bound (batching
//! deliberately trades away per-grant tightness); the free-list properties
//! pin the hierarchical bitmap to the flat baseline op for op.

use parking_lot::Mutex;
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use strong_renaming::prelude::*;

/// Shared instrumentation: a logical clock and the records under
/// construction.
struct Journal {
    clock: AtomicU64,
    records: Mutex<Vec<LeaseRecord>>,
}

impl Journal {
    fn new() -> Self {
        Journal {
            clock: AtomicU64::new(0),
            records: Mutex::new(Vec::new()),
        }
    }

    fn now(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::AcqRel)
    }

    /// Opens a record at request time; returns its index.
    fn open(&self) -> usize {
        let requested_at = self.now();
        let mut records = self.records.lock();
        records.push(LeaseRecord {
            requested_at,
            ..Default::default()
        });
        records.len() - 1
    }

    fn grant(&self, index: usize, name: usize) {
        let at = self.now();
        let mut records = self.records.lock();
        records[index].name = Some(name);
        records[index].granted_at = Some(at);
    }

    /// A failed (but not crashed) attempt stops counting toward contention.
    fn fail(&self, index: usize) {
        let at = self.now();
        self.records.lock()[index].release_finished_at = Some(at);
    }
}

/// Holds a lease together with its journal record, stamping the release
/// boundaries even when dropped by a crash unwind.
struct RecordedLease {
    lease: Option<NameLease>,
    journal: Arc<Journal>,
    index: usize,
}

impl Drop for RecordedLease {
    fn drop(&mut self) {
        let started = self.journal.now();
        self.journal.records.lock()[self.index].release_started_at = Some(started);
        drop(self.lease.take());
        let finished = self.journal.now();
        self.journal.records.lock()[self.index].release_finished_at = Some(finished);
    }
}

/// Runs `k` workers through `rounds` lease/hold/release cycles against the
/// given long-lived object, with optional crash injection, and returns the
/// recorded history.
fn churn(
    object: Arc<dyn LongLivedRenaming>,
    k: usize,
    rounds: usize,
    config: ExecConfig,
) -> Vec<LeaseRecord> {
    let journal = Arc::new(Journal::new());
    let _ = Executor::new(config).run(k, {
        let object = Arc::clone(&object);
        let journal = Arc::clone(&journal);
        move |ctx| {
            for _ in 0..rounds {
                let index = journal.open();
                match Arc::clone(&object).lease(ctx) {
                    Ok(lease) => {
                        journal.grant(index, lease.name());
                        let holder = RecordedLease {
                            lease: Some(lease),
                            journal: Arc::clone(&journal),
                            index,
                        };
                        // Hold the name across a few steps so leases overlap
                        // (and so crash injection can strike mid-hold; the
                        // unwind then drops `holder`, which journals the
                        // release the recycler performs).
                        ctx.flip();
                        drop(holder);
                    }
                    Err(_) => journal.fail(index),
                }
            }
        }
    });
    Arc::try_unwrap(journal)
        .ok()
        .expect("all workers joined")
        .records
        .into_inner()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 10,
        .. ProptestConfig::default()
    })]

    /// Recycled leases over the compiled renaming network: under random
    /// interleavings, live names are distinct at every instant and bounded
    /// by the point contention of their grant.
    #[test]
    fn recycled_network_leases_stay_unique_and_tight(
        k in 2usize..8,
        rounds in 1usize..8,
        seed in 0u64..1_000_000,
        yield_percent in 0u8..40,
    ) {
        let recycler = Arc::new(Recycler::new(
            RenamingNetwork::<_>::new(sortnet::batcher::odd_even_network(64)),
            2 * k,
        ));
        let config = ExecConfig::new(seed)
            .with_yield_policy(YieldPolicy::Probabilistic(f64::from(yield_percent) / 100.0))
            .with_arrival(ArrivalSchedule::Simultaneous);
        let records = churn(Arc::clone(&recycler) as Arc<dyn LongLivedRenaming>, k, rounds, config);

        prop_assert_eq!(records.len(), k * rounds);
        let check = assert_tight_lease_namespace(&records);
        prop_assert!(check.is_ok(), "{check:?}");
        // Quiescent invariants: everything released, nothing leaked, and the
        // one-shot namespace consumed only in proportion to concurrency.
        prop_assert_eq!(recycler.live_leases(), 0);
        prop_assert_eq!(recycler.leaked_names(), 0);
        prop_assert!(recycler.fresh_names() <= k);
    }

    /// The same guarantees must survive crash injection: a crashed holder's
    /// lease is released by the unwind, a crash inside the acquisition keeps
    /// counting toward contention forever, and no interleaving ever yields
    /// duplicate live names.
    #[test]
    fn recycled_network_leases_survive_crashes(
        k in 2usize..8,
        rounds in 1usize..6,
        seed in 0u64..1_000_000,
        crash_percent in 10u8..60,
    ) {
        let recycler = Arc::new(Recycler::new(
            RenamingNetwork::<_>::new(sortnet::batcher::odd_even_network(64)),
            2 * k,
        ));
        let config = ExecConfig::new(seed).with_crash_plan(CrashPlan::Random {
            prob: f64::from(crash_percent) / 100.0,
            max_steps: 40,
        });
        let records = churn(Arc::clone(&recycler) as Arc<dyn LongLivedRenaming>, k, rounds, config);

        let check = assert_tight_lease_namespace(&records);
        prop_assert!(check.is_ok(), "{check:?}");
        prop_assert_eq!(recycler.leaked_names(), 0);
        prop_assert!(recycler.fresh_names() <= 2 * k);
    }

    /// The builder's long-lived surface composes the same way over the other
    /// strong adaptive backends, whichever free-list layout it is given.
    #[test]
    fn builder_long_lived_objects_stay_tight(
        k in 2usize..6,
        rounds in 1usize..5,
        seed in 0u64..1_000_000,
        algorithm in 0u8..3,
        hierarchical in 0u8..2,
    ) {
        let builder = match algorithm % 3 {
            0 => RenamingBuilder::new().network().capacity(32),
            1 => RenamingBuilder::new().adaptive().adaptive_level(3),
            _ => RenamingBuilder::new().linear_probe().capacity(32),
        };
        let kind = if hierarchical == 0 { FreeListKind::Flat } else { FreeListKind::Hierarchical };
        // .lease_batch(1) bypasses the default release-batching stash: only
        // the bare recycler guarantees per-grant tightness (the batched
        // default is covered by the unique-and-bounded test below).
        let object = builder
            .max_concurrent(2 * k)
            .free_list(kind)
            .lease_batch(1)
            .seed(seed)
            .build_long_lived()
            .unwrap();
        let records = churn(object, k, rounds, ExecConfig::new(seed));
        let check = assert_tight_lease_namespace(&records);
        prop_assert!(check.is_ok(), "{check:?}");
    }

    /// The builder's *default* long-lived object batches releases through a
    /// `BatchedRecycler` stash, which deliberately gives up per-grant
    /// tightness. What it must still guarantee, at every instant and under
    /// random interleavings: no two simultaneously-held leases share a
    /// name, every name stays within `1..=max_concurrent`, and the live
    /// accounting returns to zero at quiescence.
    #[test]
    fn batched_default_leases_stay_unique_and_bounded(
        k in 2usize..8,
        rounds in 1usize..8,
        seed in 0u64..1_000_000,
        yield_percent in 0u8..40,
    ) {
        let object = RenamingBuilder::new()
            .network()
            .capacity(64)
            .max_concurrent(2 * k)
            .seed(seed)
            .build_long_lived()
            .unwrap();
        let config = ExecConfig::new(seed)
            .with_yield_policy(YieldPolicy::Probabilistic(f64::from(yield_percent) / 100.0))
            .with_arrival(ArrivalSchedule::Simultaneous);
        let records = churn(Arc::clone(&object), k, rounds, config);

        prop_assert_eq!(records.len(), k * rounds);
        for (i, a) in records.iter().enumerate() {
            let (Some(name_a), Some(start_a)) = (a.name, a.granted_at) else { continue };
            prop_assert!(
                (1..=2 * k).contains(&name_a),
                "name {} above max_concurrent {}", name_a, 2 * k
            );
            // A holder occupies its name from the grant until its release
            // *starts* (the stash push lands inside the release window, so
            // any later grant of the same name is stamped after it).
            for b in &records[i + 1..] {
                let (Some(name_b), Some(start_b)) = (b.name, b.granted_at) else { continue };
                if name_a != name_b {
                    continue;
                }
                let end_a = a.release_started_at.unwrap_or(u64::MAX);
                let end_b = b.release_started_at.unwrap_or(u64::MAX);
                prop_assert!(
                    end_a <= start_b || end_b <= start_a,
                    "name {} held twice at once", name_a
                );
            }
        }
        prop_assert_eq!(object.live_leases(), 0);
    }

    /// Sharded leases under random interleavings: per-shard localized names
    /// stay unique and tight against shard contention — the documented
    /// loose bound `namespace ≤ shards × per-shard point contention`.
    #[test]
    fn sharded_recycler_leases_stay_unique_and_loose(
        k in 2usize..8,
        shards in 2usize..5,
        rounds in 1usize..8,
        seed in 0u64..1_000_000,
        yield_percent in 0u8..40,
    ) {
        let sharded = Arc::new(ShardedRecycler::new(
            (0..shards)
                .map(|_| RenamingNetwork::<_>::new(sortnet::batcher::odd_even_network(16)))
                .collect(),
            2 * k, // every shard could absorb the whole load via stealing
        ));
        let span = sharded.span();
        let config = ExecConfig::new(seed)
            .with_yield_policy(YieldPolicy::Probabilistic(f64::from(yield_percent) / 100.0))
            .with_arrival(ArrivalSchedule::Simultaneous);
        let records = churn(
            Arc::clone(&sharded) as Arc<dyn LongLivedRenaming>,
            k,
            rounds,
            config,
        );

        prop_assert_eq!(records.len(), k * rounds);
        let check = assert_loose_lease_namespace(&records, shards, span);
        prop_assert!(check.is_ok(), "{check:?}");
        prop_assert_eq!(sharded.live_leases(), 0);
        prop_assert_eq!(sharded.leaked_names(), 0);
        prop_assert!(sharded.fresh_names() <= k * rounds);
    }

    /// The loose guarantees survive crash injection exactly as the tight
    /// ones do: a crashed holder's lease is released by the unwind
    /// (re-entering its home shard's free list), a crash inside the
    /// acquisition keeps counting toward contention forever, and no
    /// interleaving yields duplicate live names in any shard.
    #[test]
    fn sharded_recycler_leases_survive_crashes(
        k in 2usize..8,
        shards in 2usize..5,
        rounds in 1usize..6,
        seed in 0u64..1_000_000,
        crash_percent in 10u8..60,
    ) {
        let sharded = Arc::new(ShardedRecycler::new(
            (0..shards)
                .map(|_| RenamingNetwork::<_>::new(sortnet::batcher::odd_even_network(16)))
                .collect(),
            2 * k,
        ));
        let span = sharded.span();
        let config = ExecConfig::new(seed).with_crash_plan(CrashPlan::Random {
            prob: f64::from(crash_percent) / 100.0,
            max_steps: 40,
        });
        let records = churn(
            Arc::clone(&sharded) as Arc<dyn LongLivedRenaming>,
            k,
            rounds,
            config,
        );

        let check = assert_loose_lease_namespace(&records, shards, span);
        prop_assert!(check.is_ok(), "{check:?}");
        prop_assert_eq!(sharded.leaked_names(), 0);
    }

    /// A dead home shard must not wedge stealers. A process that crashes
    /// inside an acquisition burns one of its home shard's admission slots
    /// forever; with per-shard admission this small, a couple of crashes
    /// wall off entire shards. The guarantee under test: a single fresh
    /// late-arriver can still collect *every* admission the crashes left
    /// behind — the overflow sweep walks past wedged shards instead of
    /// giving up at its home — and the namespace stays loose-tight
    /// throughout.
    #[test]
    fn dead_home_shards_do_not_wedge_stealers(
        k in 2usize..8,
        shards in 2usize..5,
        per_shard in 1usize..3,
        rounds in 1usize..5,
        seed in 0u64..1_000_000,
        crash_percent in 20u8..70,
    ) {
        let sharded = Arc::new(ShardedRecycler::new(
            (0..shards)
                .map(|_| RenamingNetwork::<_>::new(sortnet::batcher::odd_even_network(16)))
                .collect(),
            per_shard, // tiny: stealing is the common path, one crash wedges a shard
        ));
        let span = sharded.span();
        let config = ExecConfig::new(seed).with_crash_plan(CrashPlan::Random {
            prob: f64::from(crash_percent) / 100.0,
            max_steps: 30,
        });
        let records = churn(
            Arc::clone(&sharded) as Arc<dyn LongLivedRenaming>,
            k,
            rounds,
            config,
        );
        let check = assert_loose_lease_namespace(&records, shards, span);
        prop_assert!(check.is_ok(), "{check:?}");
        prop_assert_eq!(sharded.leaked_names(), 0);

        // Only admissions burned by mid-acquisition crashes stay live (a
        // crashed *holder*'s lease is released by its unwind).
        let burned = sharded.live_leases();
        let total = shards * per_shard;
        prop_assert!(burned <= total, "{burned} burned > {total} admissions");

        // The late arriver: home shard 0, which the crashes may have wedged
        // entirely. Every unburned admission anywhere must still be
        // stealable, the granted names globally distinct, and the first
        // failure after that must be plain exhaustion.
        let mut ctx = ProcessCtx::new(ProcessId::new(0), seed);
        let mut survivors = Vec::new();
        for _ in 0..total - burned {
            match Arc::clone(&sharded).lease(&mut ctx) {
                Ok(lease) => survivors.push(lease),
                Err(error) => prop_assert!(
                    false,
                    "sweep wedged with {} of {} admissions free: {error}",
                    total - burned - survivors.len(),
                    total
                ),
            }
        }
        let names: std::collections::BTreeSet<usize> =
            survivors.iter().map(|lease| lease.name()).collect();
        prop_assert_eq!(names.len(), survivors.len(), "duplicate live names");
        prop_assert!(
            Arc::clone(&sharded).lease(&mut ctx).is_err(),
            "lease granted beyond the admission bound"
        );
    }

    /// The hierarchical free list is pinned to the flat baseline: the same
    /// random push/pop/pop_coherent interleaving, replayed deterministically
    /// against both layouts, must produce identical pop-minimum results and
    /// identical coherent-miss verdicts at every step.
    #[test]
    fn hierarchical_free_list_agrees_with_flat_on_random_scripts(
        bound in 1usize..5000,
        ops in 1usize..400,
        seed in 0u64..1_000_000,
    ) {
        let flat = FreeList::with_kind(bound, FreeListKind::Flat);
        let hier = FreeList::with_kind(bound, FreeListKind::Hierarchical);
        prop_assert_eq!(flat.word_count(), hier.word_count());
        let mut state = seed.wrapping_mul(2).wrapping_add(1);
        let mut step = move || {
            // SplitMix64: a deterministic op stream from the sampled seed.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        for index in 0..ops {
            let draw = step();
            // Pushes dominate so the lists fill; names deliberately overshoot
            // the bound a little to exercise the rejection path.
            match draw % 4 {
                0 | 1 => {
                    let name = (step() % (bound as u64 + 2)) as usize;
                    prop_assert_eq!(
                        flat.push(name),
                        hier.push(name),
                        "op {}: push({}) verdicts diverge", index, name
                    );
                }
                2 => prop_assert_eq!(flat.pop(), hier.pop(), "op {}: pop", index),
                _ => prop_assert_eq!(
                    flat.pop_coherent(),
                    hier.pop_coherent(),
                    "op {}: pop_coherent", index
                ),
            }
        }
        // Drain both: remaining contents are identical, in identical order.
        loop {
            let (a, b) = (flat.pop_coherent(), hier.pop_coherent());
            prop_assert_eq!(a, b, "drain diverges");
            if a.is_none() {
                break;
            }
        }
        prop_assert_eq!(flat.pushes(), hier.pushes());
    }

    /// Concurrent differential churn: the same conservation workload (every
    /// popped name is pushed back) driven through real threads against both
    /// layouts must leave both lists holding exactly the initial name set —
    /// no coherent miss may ever swallow a name in either layout.
    #[test]
    fn free_list_layouts_conserve_names_under_concurrent_churn(
        bound in 64usize..4096,
        threads in 2usize..5,
        names in 1usize..16,
        iterations in 100usize..2000,
        seed in 0u64..1_000_000,
    ) {
        let expected: Vec<usize> = (0..names.min(bound))
            .map(|i| (seed as usize).wrapping_mul(31).wrapping_add(i * 97) % bound + 1)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        for kind in [FreeListKind::Flat, FreeListKind::Hierarchical] {
            let list = Arc::new(FreeList::with_kind(bound, kind));
            for &name in &expected {
                prop_assert!(list.push(name));
            }
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    let list = Arc::clone(&list);
                    scope.spawn(move || {
                        for _ in 0..iterations {
                            if let Some(name) = list.pop_coherent() {
                                assert!(list.push(name), "claimed names push back cleanly");
                            }
                        }
                    });
                }
            });
            let mut drained = Vec::new();
            while let Some(name) = list.pop_coherent() {
                drained.push(name);
            }
            prop_assert_eq!(&drained, &expected, "{:?} lost or invented names", kind);
        }
    }
}
