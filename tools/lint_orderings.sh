#!/usr/bin/env bash
# Atomics-ordering lint: forbids `Ordering::Relaxed` and `Ordering::AcqRel`
# outside a small allowlist of modules whose protocols have been audited
# end-to-end. Everything else must either use Acquire/Release/SeqCst or carry
# an explicit same-line (or preceding-line) escape comment:
#
#     // lint: relaxed-ok(<reason>)
#
# The reason is mandatory — an empty `relaxed-ok()` does not pass. Comment
# lines (including doc examples) are ignored; they are not executable code.
#
# Usage: tools/lint_orderings.sh   (exits non-zero listing every violation)
set -euo pipefail
cd "$(dirname "$0")/.."

# Modules whose relaxed/acq-rel use is audited as a whole.
ALLOWLIST=(
  crates/shmem/src/pad.rs
  crates/cnet/src/balancer.rs
  crates/core/src/free_list.rs
)

# A stale allowlist entry would silently exempt whatever file later takes
# the name; fail fast instead. (Deliberately NOT allowlisted: the arena and
# robust-lease modules — everything there is SeqCst and must stay that way.)
for entry in "${ALLOWLIST[@]}"; do
  if [[ ! -f "$entry" ]]; then
    echo "lint_orderings: stale allowlist entry: $entry does not exist" >&2
    exit 1
  fi
done

is_allowed() {
  local file=$1 entry
  for entry in "${ALLOWLIST[@]}"; do
    [[ "$file" == "$entry" ]] && return 0
  done
  return 1
}

fail=0
while IFS= read -r file; do
  if is_allowed "$file"; then
    continue
  fi
  violations=$(awk '
    {
      has_marker = ($0 ~ /lint: relaxed-ok\([^)]+\)/)
      is_comment = ($0 ~ /^[[:space:]]*\/\//)
      if (!is_comment && !has_marker && !prev_marker \
          && $0 ~ /Ordering::(Relaxed|AcqRel)/) {
        printf "%s:%d: %s\n", FILENAME, FNR, $0
      }
      prev_marker = has_marker
    }
  ' "$file")
  if [[ -n "$violations" ]]; then
    printf '%s\n' "$violations"
    fail=1
  fi
done < <(git ls-files 'crates/*/src/*.rs' 'crates/*/src/**/*.rs' 'src/*.rs' 'src/**/*.rs')

if [[ "$fail" -ne 0 ]]; then
  echo >&2
  echo "lint_orderings: forbidden memory orderings found." >&2
  echo "Use Acquire/Release/SeqCst, or justify with '// lint: relaxed-ok(reason)'." >&2
  exit 1
fi
echo "lint_orderings: clean"
