#!/usr/bin/env bash
# Long chaos soak: run the exp_chaos kill-storm → restart → recover → verify
# loop over many more seeds than the CI smoke tier covers.
#
# Each cycle creates a file-backed arena, forks a fleet of lease-churning
# children, fires a seeded FaultPlan (SIGKILL / SIGSTOP / torn-write
# injection), storms the rest, re-attaches by path and verifies recovery:
# one epoch winner, every dead child's postmortem tail, a tight re-granted
# namespace, repaired free-list summaries, idempotent second recovery.
# Seeds are 0..CYCLES, so any failure reported by a soak is replayable by
# running the same cycle count again.
#
# Usage: tools/chaos_soak.sh [CYCLES]   (default 1000; exits non-zero on
#                                        any violated cycle)
set -euo pipefail
cd "$(dirname "$0")/.."

CYCLES="${1:-1000}"

echo "chaos_soak: building exp_chaos (release)"
cargo build --release -q -p renaming-bench --bin exp_chaos

echo "chaos_soak: running ${CYCLES} kill-storm/restart cycles"
exec target/release/exp_chaos "${CYCLES}"
