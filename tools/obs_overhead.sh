#!/usr/bin/env bash
# Observability overhead gate: the telemetry-compiled-in build must run the
# fixed-work bench smokes within TOLERANCE_PERCENT (default 5%) of the
# telemetry-compiled-out (`obs-off`) build.
#
# Both builds run the identical `--smoke --no-obs` workload (the telemetry
# pass is skipped: its bound recording is deliberate, paid-for work, not
# overhead). The sweeps never bind an obs sink, so the price being measured
# is the instrumented hot paths' guard: one relaxed load of the process-wide
# enable flag and a predictable branch per site. Each build is run RUNS
# times (default 8) and the *best* wall-clock times are compared — the
# floor converges on the true cost while scheduler noise stays out of the
# verdict — with SLACK_MS (default 2) of absolute slack absorbing the
# millisecond granularity of short smoke runs.
#
# Usage: tools/obs_overhead.sh   (exits non-zero on a blown budget)
set -euo pipefail
cd "$(dirname "$0")/.."

RUNS="${RUNS:-8}"
TOLERANCE_PERCENT="${TOLERANCE_PERCENT:-5}"
SLACK_MS="${SLACK_MS:-2}"

echo "obs_overhead: building telemetry-on and telemetry-off smoke binaries"
cargo build --release -q -p renaming-bench --bin exp_counters --bin exp_lease_churn
# The obs-off build gets its own target dir so both binaries exist at once
# (the feature change would otherwise force a rebuild on every flip).
cargo build --release -q -p renaming-bench --bin exp_counters --bin exp_lease_churn \
  --features obs-off --target-dir target/obs-off

best_ms() {
  local bin="$1" best="" run start end ms
  for run in $(seq "$RUNS"); do
    start=$(date +%s%N)
    "$bin" --smoke --no-obs > /dev/null
    end=$(date +%s%N)
    ms=$(((end - start) / 1000000))
    if [[ -z "$best" || "$ms" -lt "$best" ]]; then best=$ms; fi
  done
  echo "$best"
}

fail=0
for exp in exp_counters exp_lease_churn; do
  on_ms=$(best_ms "target/release/$exp")
  off_ms=$(best_ms "target/obs-off/release/$exp")
  budget_ms=$((off_ms * (100 + TOLERANCE_PERCENT) / 100 + SLACK_MS))
  echo "obs_overhead: $exp best-of-$RUNS: on=${on_ms}ms off=${off_ms}ms" \
    "budget=${budget_ms}ms (off + ${TOLERANCE_PERCENT}% + ${SLACK_MS}ms)"
  if [[ "$on_ms" -gt "$budget_ms" ]]; then
    echo "obs_overhead: $exp telemetry-on exceeds the ${TOLERANCE_PERCENT}% budget" >&2
    fail=1
  fi
done

if [[ "$fail" -ne 0 ]]; then
  echo "obs_overhead: FAILED — telemetry must stay within ${TOLERANCE_PERCENT}% of obs-off" >&2
  exit 1
fi
echo "obs_overhead: telemetry overhead within ${TOLERANCE_PERCENT}%"
