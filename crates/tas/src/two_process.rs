//! Randomized two-process test-and-set from read/write registers.
//!
//! The paper uses the two-process test-and-set of Tromp and Vitányi \[20\] as
//! the comparator object of its renaming networks: expected `O(1)` steps, and
//! `O(log n)` steps with high probability (§2). [`TwoProcessTas`] reproduces
//! that object's interface and cost profile with a construction we can verify
//! directly:
//!
//! * Rounds of a **two-process commit-adopt gadget** built from single-writer
//!   registers. In each round a process writes its current preference
//!   (candidate winner), reads the other side's preference, and *commits* if
//!   it saw no conflict, otherwise *adopts* the other preference. The gadget
//!   guarantees that at most one value is ever committed and that once a value
//!   is committed every later decision agrees with it — this is what makes the
//!   object safe in **every** execution, no matter the schedule.
//! * A **randomized race conciliator** between rounds: each process either
//!   writes its preference to a shared race register before reading it, or
//!   reads first and only writes if the register is empty, choosing between
//!   the two orders by a fair coin. Under any realistic schedule the
//!   preferences coalesce within a couple of rounds, giving constant expected
//!   step complexity, matching the Tromp–Vitányi profile.
//! * An **arbiter escape hatch**: after [`RANDOM_ROUNDS`] rounds without a
//!   decision (an event we have never observed and whose probability decays
//!   geometrically), the conciliator of the final round is replaced by a
//!   single compare-and-swap that forces both preferences equal, after which
//!   the next commit-adopt round must decide. This bounds the worst case
//!   without ever compromising safety, and mirrors the paper's remark that
//!   hardware test-and-set/compare-and-swap may be assumed at unit cost.
//!
//! The substitution relative to the verbatim Tromp–Vitányi algorithm is
//! documented in `DESIGN.md`.

use crate::{Side, TwoPartyTas};
use shmem::process::ProcessCtx;
use shmem::register::AtomicUsizeRegister;
use shmem::steps::StepKind;

/// Number of purely register-based rounds before the arbiter escape hatch.
pub const RANDOM_ROUNDS: usize = 32;

/// Sentinel meaning "no value written yet".
const EMPTY: usize = usize::MAX;

/// One round's worth of shared registers.
#[derive(Debug)]
struct Round {
    /// Proposal register of the top-side process (single writer).
    proposal_top: AtomicUsizeRegister,
    /// Proposal register of the bottom-side process (single writer).
    proposal_bottom: AtomicUsizeRegister,
    /// Race register used by the randomized conciliator.
    race: AtomicUsizeRegister,
}

impl Round {
    fn new() -> Self {
        Round {
            proposal_top: AtomicUsizeRegister::new(EMPTY),
            proposal_bottom: AtomicUsizeRegister::new(EMPTY),
            race: AtomicUsizeRegister::new(EMPTY),
        }
    }

    fn proposal(&self, side: Side) -> &AtomicUsizeRegister {
        match side {
            Side::Top => &self.proposal_top,
            Side::Bottom => &self.proposal_bottom,
        }
    }
}

/// A one-shot randomized two-process test-and-set built from registers.
///
/// See the [module documentation](self) for the construction and its
/// guarantees: at most one winner in every execution, a solo participant
/// always wins, and constant expected step complexity.
///
/// # Example
///
/// ```
/// use shmem::process::{ProcessCtx, ProcessId};
/// use tas::two_process::TwoProcessTas;
/// use tas::{Side, TwoPartyTas};
///
/// let tas = TwoProcessTas::new();
/// let mut top = ProcessCtx::new(ProcessId::new(0), 7);
/// let mut bottom = ProcessCtx::new(ProcessId::new(1), 7);
/// let top_won = tas.play(&mut top, Side::Top);
/// let bottom_won = tas.play(&mut bottom, Side::Bottom);
/// assert!(top_won ^ bottom_won, "exactly one side wins");
/// ```
#[derive(Debug)]
pub struct TwoProcessTas {
    rounds: Vec<Round>,
    /// Compare-and-swap arbiter used only by the escape-hatch round.
    arbiter: AtomicUsizeRegister,
    /// Harness-only record of the decided winner side (no algorithmic role).
    decided: AtomicUsizeRegister,
}

impl TwoProcessTas {
    /// Creates an unwon two-process test-and-set.
    pub fn new() -> Self {
        TwoProcessTas {
            // RANDOM_ROUNDS randomized rounds, one arbiter round, and one
            // final round that is guaranteed to decide.
            rounds: (0..RANDOM_ROUNDS + 2).map(|_| Round::new()).collect(),
            arbiter: AtomicUsizeRegister::new(EMPTY),
            decided: AtomicUsizeRegister::new(EMPTY),
        }
    }

    /// The winner's side, if a winner has been determined (harness inspection
    /// hook; charges no steps).
    pub fn winner(&self) -> Option<Side> {
        match self.decided.peek() {
            0 => Some(Side::Top),
            1 => Some(Side::Bottom),
            _ => None,
        }
    }

    /// One commit-adopt round: returns `Ok(value)` if `value` was committed,
    /// `Err(adopted)` otherwise.
    fn commit_adopt(
        &self,
        ctx: &mut ProcessCtx,
        round: &Round,
        side: Side,
        preference: usize,
    ) -> Result<usize, usize> {
        round.proposal(side).write(ctx, preference);
        let other = round.proposal(side.other()).read(ctx);
        if other == EMPTY || other == preference {
            Ok(preference)
        } else {
            Err(other)
        }
    }

    /// The randomized race conciliator: nudges both preferences towards a
    /// common value.
    fn race_conciliator(&self, ctx: &mut ProcessCtx, round: &Round, preference: usize) -> usize {
        if ctx.flip() == 0 {
            round.race.write(ctx, preference);
            let seen = round.race.read(ctx);
            if seen == EMPTY {
                preference
            } else {
                seen
            }
        } else {
            let seen = round.race.read(ctx);
            if seen == EMPTY {
                round.race.write(ctx, preference);
                preference
            } else {
                seen
            }
        }
    }

    /// The arbiter conciliator: a single compare-and-swap that forces both
    /// preferences to the first value installed.
    fn arbiter_conciliator(&self, ctx: &mut ProcessCtx, preference: usize) -> usize {
        let _ = self.arbiter.compare_and_swap(ctx, EMPTY, preference);
        self.arbiter.read(ctx)
    }
}

impl Default for TwoProcessTas {
    fn default() -> Self {
        Self::new()
    }
}

impl TwoPartyTas for TwoProcessTas {
    fn play(&self, ctx: &mut ProcessCtx, side: Side) -> bool {
        ctx.record(StepKind::TasInvocation);
        let mut preference = side.index();
        for (index, round) in self.rounds.iter().enumerate() {
            match self.commit_adopt(ctx, round, side, preference) {
                Ok(winner) => {
                    // Harness bookkeeping only; not part of the algorithm.
                    if self.decided.peek() == EMPTY {
                        self.decided
                            .compare_and_swap(ctx, EMPTY, winner)
                            .map(|_| ())
                            .unwrap_or(());
                    }
                    return winner == side.index();
                }
                Err(adopted) => preference = adopted,
            }
            preference = if index < RANDOM_ROUNDS {
                self.race_conciliator(ctx, round, preference)
            } else {
                self.arbiter_conciliator(ctx, preference)
            };
        }
        unreachable!(
            "the round after the arbiter conciliator always commits: both \
             preferences are equal, so commit-adopt cannot conflict"
        )
    }

    fn has_winner(&self) -> bool {
        self.decided.peek() != EMPTY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmem::adversary::{ArrivalSchedule, ExecConfig, YieldPolicy};
    use shmem::executor::Executor;
    use shmem::process::ProcessId;
    use std::sync::Arc;

    #[test]
    fn solo_top_participant_wins() {
        let tas = TwoProcessTas::new();
        let mut ctx = ProcessCtx::new(ProcessId::new(0), 1);
        assert!(tas.play(&mut ctx, Side::Top));
        assert!(TwoPartyTas::has_winner(&tas));
        assert_eq!(tas.winner(), Some(Side::Top));
    }

    #[test]
    fn solo_bottom_participant_wins() {
        let tas = TwoProcessTas::new();
        let mut ctx = ProcessCtx::new(ProcessId::new(1), 1);
        assert!(tas.play(&mut ctx, Side::Bottom));
        assert_eq!(tas.winner(), Some(Side::Bottom));
    }

    #[test]
    fn sequential_contenders_yield_exactly_one_winner() {
        let tas = TwoProcessTas::new();
        let mut first = ProcessCtx::new(ProcessId::new(0), 3);
        let mut second = ProcessCtx::new(ProcessId::new(1), 3);
        let first_won = tas.play(&mut first, Side::Top);
        let second_won = tas.play(&mut second, Side::Bottom);
        assert!(first_won, "a participant running alone to completion wins");
        assert!(!second_won);
    }

    #[test]
    fn losers_see_the_winner_after_the_fact() {
        let tas = TwoProcessTas::new();
        let mut bottom = ProcessCtx::new(ProcessId::new(1), 9);
        assert!(tas.play(&mut bottom, Side::Bottom));
        let mut top = ProcessCtx::new(ProcessId::new(0), 9);
        assert!(!tas.play(&mut top, Side::Top));
        assert_eq!(tas.winner(), Some(Side::Bottom));
    }

    #[test]
    fn concurrent_contenders_always_produce_exactly_one_winner() {
        for seed in 0..50 {
            let tas = Arc::new(TwoProcessTas::new());
            let config = ExecConfig::new(seed)
                .with_yield_policy(YieldPolicy::Probabilistic(0.3))
                .with_arrival(ArrivalSchedule::Simultaneous);
            let outcome = Executor::new(config).run(2, {
                let tas = Arc::clone(&tas);
                move |ctx| {
                    let side = if ctx.id().as_usize() == 0 {
                        Side::Top
                    } else {
                        Side::Bottom
                    };
                    tas.play(ctx, side)
                }
            });
            let winners = outcome.results().into_iter().filter(|w| *w).count();
            assert_eq!(winners, 1, "seed {seed}: exactly one winner required");
        }
    }

    #[test]
    fn expected_step_complexity_is_small() {
        let mut total_steps = 0u64;
        let trials = 50;
        for seed in 0..trials {
            let tas = Arc::new(TwoProcessTas::new());
            let outcome = Executor::new(ExecConfig::new(seed)).run(2, {
                let tas = Arc::clone(&tas);
                move |ctx| {
                    let side = if ctx.id().as_usize() == 0 {
                        Side::Top
                    } else {
                        Side::Bottom
                    };
                    tas.play(ctx, side)
                }
            });
            total_steps += outcome.total_steps().total();
        }
        let mean_per_process = total_steps as f64 / (2 * trials) as f64;
        // The constant-expected-steps profile of Tromp–Vitányi: the mean
        // should be a small constant, far below even a single round per
        // process times the round limit.
        assert!(
            mean_per_process < 20.0,
            "mean steps per play was {mean_per_process}"
        );
    }

    #[test]
    fn winner_is_reported_only_after_a_decision() {
        let tas = TwoProcessTas::new();
        assert!(!TwoPartyTas::has_winner(&tas));
        assert_eq!(tas.winner(), None);
        let mut ctx = ProcessCtx::new(ProcessId::new(0), 2);
        tas.play(&mut ctx, Side::Top);
        assert!(TwoPartyTas::has_winner(&tas));
    }
}
