//! Randomized splitters.
//!
//! A splitter is the classic register-only object of Moir–Anderson/Lamport
//! fame: when `k ≥ 1` processes enter it, at most one *acquires* it, and a
//! process running alone always acquires it. The randomized splitter *tree*
//! of Attiya et al. \[25\] sends every non-acquiring process to a uniformly
//! random child; after `O(log k)` levels every process has acquired some node
//! with high probability. The paper uses this structure twice: inside the
//! RatRace adaptive test-and-set \[12\] (§2) and as the `TempName` first stage
//! of the adaptive renaming algorithm (§6.2).

use shmem::process::ProcessCtx;
use shmem::register::{AtomicBoolRegister, AtomicUsizeRegister};

/// Sentinel stored in the splitter's name register before any process writes.
const EMPTY: usize = usize::MAX;

/// The result of passing through a splitter.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SplitterOutcome {
    /// The process acquired (stopped at) this splitter. At most one process
    /// per splitter acquires it.
    Acquired,
    /// The process did not acquire the splitter and must continue (in the
    /// splitter tree: to a uniformly random child).
    Continue,
}

impl SplitterOutcome {
    /// Whether this outcome is [`SplitterOutcome::Acquired`].
    pub fn is_acquired(&self) -> bool {
        matches!(self, SplitterOutcome::Acquired)
    }
}

/// A child direction in a randomized splitter tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    /// The left child.
    Left,
    /// The right child.
    Right,
}

impl Direction {
    /// Chooses a direction uniformly at random using the process's local
    /// coin.
    pub fn random(ctx: &mut ProcessCtx) -> Direction {
        if ctx.flip() == 0 {
            Direction::Left
        } else {
            Direction::Right
        }
    }

    /// Index of the direction (0 for left, 1 for right).
    pub fn index(&self) -> usize {
        match self {
            Direction::Left => 0,
            Direction::Right => 1,
        }
    }
}

/// A one-shot splitter built from two registers.
///
/// # Guarantees
///
/// * At most one process ever returns [`SplitterOutcome::Acquired`].
/// * If exactly one process enters the splitter and runs to completion, it
///   acquires it.
/// * Every process returns after at most four register steps (wait-free).
///
/// # Example
///
/// ```
/// use shmem::process::{ProcessCtx, ProcessId};
/// use tas::splitter::{RandomizedSplitter, SplitterOutcome};
///
/// let splitter = RandomizedSplitter::new();
/// let mut ctx = ProcessCtx::new(ProcessId::new(4), 0);
/// assert_eq!(splitter.enter(&mut ctx), SplitterOutcome::Acquired);
/// assert!(splitter.is_acquired());
/// ```
#[derive(Debug, Default)]
pub struct RandomizedSplitter {
    /// The "name" register X: last process to enter.
    name: AtomicUsizeRegister,
    /// The "door" register Y: set once somebody has gone through.
    door: AtomicBoolRegister,
    /// Harness-only flag recording that some process acquired the splitter.
    acquired: AtomicBoolRegister,
}

impl RandomizedSplitter {
    /// Creates a fresh, unacquired splitter.
    pub fn new() -> Self {
        RandomizedSplitter {
            name: AtomicUsizeRegister::new(EMPTY),
            door: AtomicBoolRegister::new(false),
            acquired: AtomicBoolRegister::new(false),
        }
    }

    /// Passes the calling process through the splitter.
    pub fn enter(&self, ctx: &mut ProcessCtx) -> SplitterOutcome {
        let me = ctx.id().as_usize();
        self.name.write(ctx, me);
        if self.door.read(ctx) {
            return SplitterOutcome::Continue;
        }
        self.door.write(ctx, true);
        if self.name.read(ctx) == me {
            // Harness bookkeeping (does not affect the algorithm's semantics).
            self.acquired.write(ctx, true);
            SplitterOutcome::Acquired
        } else {
            SplitterOutcome::Continue
        }
    }

    /// Whether some process has acquired this splitter (harness inspection
    /// hook; charges no steps).
    pub fn is_acquired(&self) -> bool {
        self.acquired.peek()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmem::adversary::{ExecConfig, YieldPolicy};
    use shmem::executor::Executor;
    use shmem::process::ProcessId;
    use std::sync::Arc;

    #[test]
    fn solo_process_acquires_the_splitter() {
        let splitter = RandomizedSplitter::new();
        let mut ctx = ProcessCtx::new(ProcessId::new(7), 0);
        assert_eq!(splitter.enter(&mut ctx), SplitterOutcome::Acquired);
        assert!(splitter.is_acquired());
        assert!(SplitterOutcome::Acquired.is_acquired());
        assert!(!SplitterOutcome::Continue.is_acquired());
    }

    #[test]
    fn later_processes_do_not_acquire_after_a_solo_acquisition() {
        let splitter = RandomizedSplitter::new();
        let mut first = ProcessCtx::new(ProcessId::new(0), 0);
        let mut second = ProcessCtx::new(ProcessId::new(1), 0);
        assert_eq!(splitter.enter(&mut first), SplitterOutcome::Acquired);
        assert_eq!(splitter.enter(&mut second), SplitterOutcome::Continue);
    }

    #[test]
    fn splitter_costs_at_most_four_register_steps() {
        let splitter = RandomizedSplitter::new();
        let mut ctx = ProcessCtx::new(ProcessId::new(0), 0);
        splitter.enter(&mut ctx);
        assert!(ctx.stats().total() <= 5, "steps: {}", ctx.stats());
    }

    #[test]
    fn at_most_one_process_acquires_under_contention() {
        for seed in 0..30 {
            let splitter = Arc::new(RandomizedSplitter::new());
            let config = ExecConfig::new(seed).with_yield_policy(YieldPolicy::Probabilistic(0.4));
            let outcome = Executor::new(config).run(8, {
                let splitter = Arc::clone(&splitter);
                move |ctx| splitter.enter(ctx)
            });
            let acquired = outcome
                .results()
                .into_iter()
                .filter(SplitterOutcome::is_acquired)
                .count();
            assert!(acquired <= 1, "seed {seed}: {acquired} acquirers");
        }
    }

    #[test]
    fn random_direction_is_roughly_balanced() {
        let mut ctx = ProcessCtx::new(ProcessId::new(0), 123);
        let mut lefts = 0usize;
        let trials = 1000;
        for _ in 0..trials {
            if Direction::random(&mut ctx) == Direction::Left {
                lefts += 1;
            }
        }
        assert!(lefts > trials / 4 && lefts < 3 * trials / 4);
        assert_eq!(Direction::Left.index(), 0);
        assert_eq!(Direction::Right.index(), 1);
    }
}
