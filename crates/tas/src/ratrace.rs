//! RatRace-style adaptive `n`-process test-and-set.
//!
//! The paper's BitBatching algorithm (§4) and its temporary-name stage rely on
//! the adaptive test-and-set of Alistarh et al. \[12\] ("RatRace"), whose step
//! complexity is `O(log² k)` with high probability in the contention `k` —
//! crucially independent of `n` and of the size of the initial namespace.
//!
//! [`RatRaceTas`] follows the same blueprint:
//!
//! 1. **Descent.** The process walks down a lazily allocated binary tree of
//!    [randomized splitters](crate::splitter::RandomizedSplitter), moving to a
//!    uniformly random child whenever it fails to acquire the current node.
//!    With `k` participants, every process acquires a node within `O(log k)`
//!    levels with high probability.
//! 2. **Climb.** The acquirer of a node becomes its *owner* and races back to
//!    the root through three-player tournaments: at every node, the winner
//!    emerging from the left subtree plays the winner from the right subtree
//!    in a two-process test-and-set, and the survivor plays the node's owner
//!    in a second one. The process that survives the root tournament wins a
//!    final two-process game against the winner of the *backup* object (see
//!    below); the overall survivor wins the `RatRaceTas`.
//! 3. **Backup.** A process that descends past a configurable depth bound
//!    without acquiring a splitter — an event of polynomially small
//!    probability — falls back to a hardware-swap backup object, preserving
//!    wait-freedom without affecting safety. (The original RatRace uses a
//!    linear backup chain; the substitution is documented in `DESIGN.md`.)

use crate::hardware::HardwareTas;
use crate::splitter::{Direction, RandomizedSplitter};
use crate::two_process::TwoProcessTas;
use crate::{Side, TestAndSet, TwoPartyTas};
use parking_lot::RwLock;
use shmem::process::ProcessCtx;
use shmem::steps::StepKind;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Maximum descent depth before a process diverts to the backup object.
///
/// The probability that a process fails to acquire a splitter for this many
/// levels is at most `2^-O(BACKUP_DEPTH)` once contention is below
/// `2^BACKUP_DEPTH`, so the backup is effectively never used; it exists to
/// keep the object wait-free with a hard bound.
pub const BACKUP_DEPTH: usize = 48;

/// One node of the RatRace tree.
struct Node {
    splitter: RandomizedSplitter,
    /// Two-process game between the winners of the left and right subtrees.
    children_game: TwoProcessTas,
    /// Two-process game between the children-game survivor and this node's
    /// owner (the process that acquired the splitter).
    owner_game: TwoProcessTas,
}

impl Node {
    fn new() -> Self {
        Node {
            splitter: RandomizedSplitter::new(),
            children_game: TwoProcessTas::new(),
            owner_game: TwoProcessTas::new(),
        }
    }
}

/// An adaptive `n`-process test-and-set in the style of RatRace \[12\].
///
/// Step complexity is polylogarithmic in the contention `k` with high
/// probability, and the object is safe (at most one winner, a solo
/// participant wins) in every execution.
///
/// # Example
///
/// ```
/// use shmem::process::{ProcessCtx, ProcessId};
/// use tas::ratrace::RatRaceTas;
/// use tas::TestAndSet;
///
/// let tas = RatRaceTas::new();
/// let mut solo = ProcessCtx::new(ProcessId::new(42), 9);
/// assert!(tas.test_and_set(&mut solo));
/// ```
pub struct RatRaceTas {
    /// Lazily allocated tree nodes, keyed by heap index (root = 1, children
    /// of `i` are `2i` and `2i + 1`).
    nodes: RwLock<HashMap<u64, Arc<Node>>>,
    /// Final game between the primary-tree winner (top) and the backup winner
    /// (bottom).
    crown: TwoProcessTas,
    /// Backup object for processes that exceed [`BACKUP_DEPTH`].
    backup: HardwareTas,
}

impl RatRaceTas {
    /// Creates an unwon adaptive test-and-set.
    pub fn new() -> Self {
        RatRaceTas {
            nodes: RwLock::new(HashMap::new()),
            crown: TwoProcessTas::new(),
            backup: HardwareTas::new(),
        }
    }

    /// Number of tree nodes allocated so far (harness inspection hook).
    pub fn allocated_nodes(&self) -> usize {
        self.nodes.read().len()
    }

    fn node(&self, index: u64) -> Arc<Node> {
        if let Some(node) = self.nodes.read().get(&index) {
            return Arc::clone(node);
        }
        let mut nodes = self.nodes.write();
        Arc::clone(nodes.entry(index).or_insert_with(|| Arc::new(Node::new())))
    }

    /// Descends the splitter tree until acquiring a node; returns its heap
    /// index, or `None` if the depth bound was exceeded.
    fn descend(&self, ctx: &mut ProcessCtx) -> Option<u64> {
        let mut index: u64 = 1;
        for _ in 0..BACKUP_DEPTH {
            let node = self.node(index);
            if node.splitter.enter(ctx).is_acquired() {
                return Some(index);
            }
            index = match Direction::random(ctx) {
                Direction::Left => index * 2,
                Direction::Right => index * 2 + 1,
            };
        }
        None
    }

    /// Climbs from the owned node back to the root, playing the three-player
    /// tournament at every level. Returns `true` if the process survives the
    /// root tournament.
    fn climb(&self, ctx: &mut ProcessCtx, owned_index: u64) -> bool {
        // The owner first defends its own node against the survivor of its
        // subtrees.
        let owned = self.node(owned_index);
        if !owned.owner_game.play(ctx, Side::Bottom) {
            return false;
        }
        // Then it rises through the ancestors: at each parent, play the
        // children game on the side matching the child it came from, then the
        // owner game against that parent's owner.
        let mut index = owned_index;
        while index > 1 {
            let parent_index = index / 2;
            let parent = self.node(parent_index);
            let side = if index.is_multiple_of(2) {
                Side::Top
            } else {
                Side::Bottom
            };
            if !parent.children_game.play(ctx, side) {
                return false;
            }
            if !parent.owner_game.play(ctx, Side::Top) {
                return false;
            }
            index = parent_index;
        }
        true
    }
}

impl Default for RatRaceTas {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for RatRaceTas {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RatRaceTas")
            .field("allocated_nodes", &self.allocated_nodes())
            .field("has_winner", &TestAndSet::has_winner(self))
            .finish()
    }
}

impl TestAndSet for RatRaceTas {
    fn test_and_set(&self, ctx: &mut ProcessCtx) -> bool {
        ctx.record(StepKind::TasInvocation);
        match self.descend(ctx) {
            Some(owned_index) => {
                if !self.climb(ctx, owned_index) {
                    return false;
                }
                self.crown.play(ctx, Side::Top)
            }
            None => {
                // Depth bound exceeded: divert to the backup object, then
                // play the crown from the backup side.
                if !TestAndSet::test_and_set(&self.backup, ctx) {
                    return false;
                }
                self.crown.play(ctx, Side::Bottom)
            }
        }
    }

    fn has_winner(&self) -> bool {
        TwoPartyTas::has_winner(&self.crown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmem::adversary::{ArrivalSchedule, CrashPlan, ExecConfig, YieldPolicy};
    use shmem::executor::Executor;
    use shmem::process::ProcessId;
    use std::time::Duration;

    #[test]
    fn solo_process_wins_at_the_root() {
        let tas = RatRaceTas::new();
        let mut ctx = ProcessCtx::new(ProcessId::new(3), 5);
        assert!(tas.test_and_set(&mut ctx));
        assert!(TestAndSet::has_winner(&tas));
        // A solo process acquires the root splitter, so only one node exists.
        assert_eq!(tas.allocated_nodes(), 1);
    }

    #[test]
    fn sequential_processes_produce_exactly_one_winner() {
        let tas = RatRaceTas::new();
        let mut winners = 0;
        for id in 0..20 {
            let mut ctx = ProcessCtx::new(ProcessId::new(id), 11);
            if tas.test_and_set(&mut ctx) {
                winners += 1;
            }
        }
        assert_eq!(winners, 1);
    }

    #[test]
    fn concurrent_processes_produce_exactly_one_winner() {
        for seed in 0..15 {
            let tas = Arc::new(RatRaceTas::new());
            let config = ExecConfig::new(seed)
                .with_yield_policy(YieldPolicy::Probabilistic(0.2))
                .with_arrival(ArrivalSchedule::Simultaneous);
            let outcome = Executor::new(config).run(24, {
                let tas = Arc::clone(&tas);
                move |ctx| tas.test_and_set(ctx)
            });
            let winners = outcome.results().into_iter().filter(|w| *w).count();
            assert_eq!(winners, 1, "seed {seed}");
        }
    }

    #[test]
    fn crashes_never_create_a_second_winner() {
        for seed in 0..10 {
            let tas = Arc::new(RatRaceTas::new());
            let config = ExecConfig::new(seed).with_crash_plan(CrashPlan::Random {
                prob: 0.4,
                max_steps: 20,
            });
            let outcome = Executor::new(config).run(16, {
                let tas = Arc::clone(&tas);
                move |ctx| tas.test_and_set(ctx)
            });
            let winners = outcome.results().into_iter().filter(|w| *w).count();
            assert!(winners <= 1, "seed {seed}: {winners} winners");
        }
    }

    #[test]
    fn step_complexity_is_polylogarithmic_in_contention() {
        // With k = 16 concurrent participants the maximum per-process step
        // count should be far below the Θ(k) cost of a linear scan.
        let tas = Arc::new(RatRaceTas::new());
        let config = ExecConfig::new(77).with_arrival(ArrivalSchedule::RandomJitter {
            max_delay: Duration::from_micros(200),
        });
        let outcome = Executor::new(config).run(16, {
            let tas = Arc::clone(&tas);
            move |ctx| tas.test_and_set(ctx)
        });
        let summary = outcome.step_summary();
        assert!(
            summary.max_register_steps < 600,
            "max steps {}",
            summary.max_register_steps
        );
    }

    #[test]
    fn losers_observe_that_the_object_is_won() {
        let tas = RatRaceTas::new();
        let mut first = ProcessCtx::new(ProcessId::new(0), 2);
        assert!(tas.test_and_set(&mut first));
        let mut second = ProcessCtx::new(ProcessId::new(1), 2);
        assert!(!tas.test_and_set(&mut second));
        assert!(TestAndSet::has_winner(&tas));
        assert!(format!("{tas:?}").contains("RatRaceTas"));
    }
}
