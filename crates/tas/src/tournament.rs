//! A balanced-tournament `n`-process test-and-set.
//!
//! [`TournamentTas`] arranges two-process test-and-set objects in a balanced
//! binary tree with one leaf per potential participant. A process starts at
//! its own leaf and climbs towards the root, playing the two-process object at
//! each internal node against the winner coming up from the sibling subtree;
//! the process that wins at the root wins the object. The step complexity is
//! `Θ(log n)` regardless of contention, which makes this the natural
//! *non-adaptive* baseline against which the adaptive
//! [`RatRaceTas`](crate::ratrace::RatRaceTas) is compared.

use crate::two_process::TwoProcessTas;
use crate::{Side, TestAndSet, TwoPartyTas};
use shmem::process::ProcessCtx;
use shmem::steps::StepKind;

/// A non-adaptive `n`-process test-and-set built as a balanced tournament of
/// [`TwoProcessTas`] objects.
///
/// # Panics
///
/// [`TournamentTas::test_and_set`] panics if the calling process's identifier
/// is not smaller than the capacity the object was created with: the
/// tournament assigns one leaf per identifier, so identifiers must lie in
/// `0..capacity` and be distinct across participants.
///
/// # Example
///
/// ```
/// use shmem::process::{ProcessCtx, ProcessId};
/// use tas::tournament::TournamentTas;
/// use tas::TestAndSet;
///
/// let tas = TournamentTas::new(4);
/// let mut p2 = ProcessCtx::new(ProcessId::new(2), 0);
/// assert!(tas.test_and_set(&mut p2));
/// let mut p0 = ProcessCtx::new(ProcessId::new(0), 0);
/// assert!(!tas.test_and_set(&mut p0));
/// ```
#[derive(Debug)]
pub struct TournamentTas {
    capacity: usize,
    /// Number of leaves (capacity rounded up to a power of two).
    leaves: usize,
    /// Heap-indexed internal nodes: `games[1]` is the root, children of `i`
    /// are `2i` and `2i + 1`. Index 0 is unused.
    games: Vec<TwoProcessTas>,
}

impl TournamentTas {
    /// Creates a tournament test-and-set for identifiers `0..capacity`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TournamentTas capacity must be positive");
        let leaves = capacity.next_power_of_two().max(2);
        let games = (0..leaves).map(|_| TwoProcessTas::new()).collect();
        TournamentTas {
            capacity,
            leaves,
            games,
        }
    }

    /// The number of identifiers this object supports.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The depth of the tournament tree (number of games on a root path).
    pub fn depth(&self) -> usize {
        self.leaves.trailing_zeros() as usize
    }
}

impl TestAndSet for TournamentTas {
    fn test_and_set(&self, ctx: &mut ProcessCtx) -> bool {
        let id = ctx.id().as_usize();
        assert!(
            id < self.capacity,
            "process id {id} exceeds TournamentTas capacity {}",
            self.capacity
        );
        ctx.record(StepKind::TasInvocation);

        // Climb from the leaf's position in the implicit heap towards the
        // root, playing the sibling-subtree winner at every internal node.
        let mut position = self.leaves + id;
        while position > 1 {
            let parent = position / 2;
            let side = if position.is_multiple_of(2) {
                Side::Top
            } else {
                Side::Bottom
            };
            if !self.games[parent].play(ctx, side) {
                return false;
            }
            position = parent;
        }
        true
    }

    fn has_winner(&self) -> bool {
        TwoPartyTas::has_winner(&self.games[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmem::adversary::{ExecConfig, YieldPolicy};
    use shmem::executor::Executor;
    use shmem::process::ProcessId;
    use std::sync::Arc;

    #[test]
    fn solo_process_wins_for_any_leaf() {
        for id in 0..5 {
            let tas = TournamentTas::new(5);
            let mut ctx = ProcessCtx::new(ProcessId::new(id), 1);
            assert!(tas.test_and_set(&mut ctx), "leaf {id}");
            assert!(TestAndSet::has_winner(&tas));
        }
    }

    #[test]
    fn capacity_and_depth_round_up_to_powers_of_two() {
        let tas = TournamentTas::new(5);
        assert_eq!(tas.capacity(), 5);
        assert_eq!(tas.depth(), 3);
        let tiny = TournamentTas::new(1);
        assert_eq!(tiny.depth(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_rejected() {
        let _ = TournamentTas::new(0);
    }

    #[test]
    #[should_panic(expected = "exceeds TournamentTas capacity")]
    fn out_of_range_ids_are_rejected() {
        let tas = TournamentTas::new(2);
        let mut ctx = ProcessCtx::new(ProcessId::new(2), 0);
        let _ = tas.test_and_set(&mut ctx);
    }

    #[test]
    fn sequential_processes_produce_exactly_one_winner() {
        let tas = TournamentTas::new(8);
        let mut winners = 0;
        for id in 0..8 {
            let mut ctx = ProcessCtx::new(ProcessId::new(id), 3);
            if tas.test_and_set(&mut ctx) {
                winners += 1;
            }
        }
        assert_eq!(winners, 1);
    }

    #[test]
    fn concurrent_processes_produce_exactly_one_winner() {
        for seed in 0..20 {
            let tas = Arc::new(TournamentTas::new(16));
            let config = ExecConfig::new(seed).with_yield_policy(YieldPolicy::Probabilistic(0.2));
            let outcome = Executor::new(config).run(16, {
                let tas = Arc::clone(&tas);
                move |ctx| tas.test_and_set(ctx)
            });
            let winners = outcome.results().into_iter().filter(|w| *w).count();
            assert_eq!(winners, 1, "seed {seed}");
        }
    }

    #[test]
    fn step_complexity_grows_logarithmically_with_capacity() {
        // A solo winner's climb plays exactly depth() games, so its register
        // steps grow like log(capacity), not like capacity.
        let mut previous = 0;
        for exponent in [2u32, 4, 6, 8] {
            let capacity = 1usize << exponent;
            let tas = TournamentTas::new(capacity);
            let mut ctx = ProcessCtx::new(ProcessId::new(0), 0);
            assert!(tas.test_and_set(&mut ctx));
            let steps = ctx.stats().total();
            assert!(steps >= previous);
            // Roughly proportional to depth: allow a generous constant.
            assert!(
                steps <= 12 * exponent as u64 + 12,
                "capacity {capacity}: {steps} steps"
            );
            previous = steps;
        }
    }
}
