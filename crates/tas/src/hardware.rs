//! Hardware (atomic-swap) test-and-set.
//!
//! The paper states several bounds "counting test-and-set operations as having
//! unit cost", motivated by the fact that atomic test-and-set is available on
//! most modern machines (§2), and notes that the renaming-network results
//! become deterministic when hardware two-process test-and-set or
//! compare-and-swap is available (§1 Discussion, §9). [`HardwareTas`] is that
//! object: a single atomic swap.

use crate::{Side, TestAndSet, TwoPartyTas};
use shmem::process::ProcessCtx;
use shmem::register::AtomicBoolRegister;
use shmem::steps::StepKind;

/// A test-and-set backed by a single atomic swap instruction.
///
/// Winning costs exactly one read-modify-write step (plus the unit-cost
/// test-and-set invocation recorded for the paper's alternative cost
/// measure). Works for any number of participants and therefore implements
/// both [`TestAndSet`] and [`TwoPartyTas`].
///
/// # Example
///
/// ```
/// use shmem::process::{ProcessCtx, ProcessId};
/// use tas::hardware::HardwareTas;
/// use tas::TestAndSet;
///
/// let tas = HardwareTas::new();
/// let mut p0 = ProcessCtx::new(ProcessId::new(0), 1);
/// let mut p1 = ProcessCtx::new(ProcessId::new(1), 1);
/// assert!(tas.test_and_set(&mut p0));
/// assert!(!tas.test_and_set(&mut p1));
/// ```
#[derive(Debug, Default)]
pub struct HardwareTas {
    bit: AtomicBoolRegister,
}

impl HardwareTas {
    /// Creates an unwon test-and-set.
    pub fn new() -> Self {
        HardwareTas {
            bit: AtomicBoolRegister::new(false),
        }
    }
}

impl TestAndSet for HardwareTas {
    fn test_and_set(&self, ctx: &mut ProcessCtx) -> bool {
        ctx.record(StepKind::TasInvocation);
        // The previous value was `false` exactly for the first (winning) swap.
        !self.bit.test_and_set(ctx)
    }

    fn has_winner(&self) -> bool {
        self.bit.peek()
    }
}

impl TwoPartyTas for HardwareTas {
    fn play(&self, ctx: &mut ProcessCtx, _side: Side) -> bool {
        TestAndSet::test_and_set(self, ctx)
    }

    fn has_winner(&self) -> bool {
        self.bit.peek()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmem::adversary::ExecConfig;
    use shmem::executor::Executor;
    use shmem::process::ProcessId;
    use std::sync::Arc;

    #[test]
    fn first_caller_wins_rest_lose() {
        let tas = HardwareTas::new();
        assert!(!TestAndSet::has_winner(&tas));
        let mut first = ProcessCtx::new(ProcessId::new(0), 0);
        let mut second = ProcessCtx::new(ProcessId::new(1), 0);
        let mut third = ProcessCtx::new(ProcessId::new(2), 0);
        assert!(tas.test_and_set(&mut first));
        assert!(TestAndSet::has_winner(&tas));
        assert!(!tas.test_and_set(&mut second));
        assert!(!tas.test_and_set(&mut third));
    }

    #[test]
    fn charges_one_rmw_and_one_tas_invocation() {
        let tas = HardwareTas::new();
        let mut ctx = ProcessCtx::new(ProcessId::new(0), 0);
        tas.test_and_set(&mut ctx);
        assert_eq!(ctx.stats().rmws, 1);
        assert_eq!(ctx.stats().tas_invocations, 1);
    }

    #[test]
    fn two_party_interface_matches_test_and_set() {
        let tas = HardwareTas::new();
        let mut top = ProcessCtx::new(ProcessId::new(0), 0);
        let mut bottom = ProcessCtx::new(ProcessId::new(1), 0);
        assert!(tas.play(&mut top, Side::Top));
        assert!(!tas.play(&mut bottom, Side::Bottom));
        assert!(TwoPartyTas::has_winner(&tas));
    }

    #[test]
    fn exactly_one_winner_under_concurrency() {
        for seed in 0..10 {
            let tas = Arc::new(HardwareTas::new());
            let outcome = Executor::new(ExecConfig::new(seed)).run(16, {
                let tas = Arc::clone(&tas);
                move |ctx| tas.test_and_set(ctx)
            });
            let winners = outcome.results().into_iter().filter(|w| *w).count();
            assert_eq!(winners, 1, "seed {seed}");
        }
    }
}
