//! Test-and-set objects for asynchronous shared memory.
//!
//! Every renaming algorithm in the PODC 2011 paper is driven by test-and-set:
//! *BitBatching* (§4) assigns names by winning one of `n` adaptive
//! test-and-set objects, and the *renaming network* (§5–6) replaces every
//! comparator of a sorting network with a two-process test-and-set. This crate
//! provides the full menagerie the paper relies on:
//!
//! * [`HardwareTas`] — an atomic-swap test-and-set,
//!   the "unit cost" object the paper's hardware-assisted bounds assume
//!   (§1 Discussion, §2).
//! * [`TwoProcessTas`] — a randomized wait-free
//!   two-process test-and-set built from read/write registers, in the spirit
//!   of Tromp–Vitányi \[20\]: rounds of a register-based commit-adopt gadget
//!   plus a randomized race.
//! * [`RandomizedSplitter`] — the randomized
//!   splitter of Attiya et al. \[25\], the building block of the `TempName`
//!   stage and of the RatRace tree.
//! * [`TournamentTas`] — a deterministic-structure
//!   `n`-process test-and-set built as a balanced tournament of two-process
//!   objects (requires knowing `n`; non-adaptive baseline).
//! * [`RatRaceTas`] — an adaptive `n`-process
//!   test-and-set in the style of RatRace \[12\]: a randomized splitter tree
//!   in which the acquirer of a node climbs back to the root through
//!   three-player tournaments of two-process test-and-sets. Its step
//!   complexity is polylogarithmic in the contention `k`, not in `n`.
//!
//! All objects are *one-shot*: each process invokes them at most once, and at
//! most one process ever wins.
//!
//! # Example
//!
//! ```
//! use shmem::adversary::ExecConfig;
//! use shmem::executor::Executor;
//! use std::sync::Arc;
//! use tas::ratrace::RatRaceTas;
//! use tas::TestAndSet;
//!
//! let tas = Arc::new(RatRaceTas::new());
//! let outcome = Executor::new(ExecConfig::new(5)).run(8, {
//!     let tas = Arc::clone(&tas);
//!     move |ctx| tas.test_and_set(ctx)
//! });
//! let winners = outcome.results().into_iter().filter(|w| *w).count();
//! assert_eq!(winners, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod hardware;
pub mod ratrace;
pub mod splitter;
pub mod tournament;
pub mod two_process;

pub use hardware::HardwareTas;
pub use ratrace::RatRaceTas;
pub use splitter::{RandomizedSplitter, SplitterOutcome};
pub use tournament::TournamentTas;
pub use two_process::TwoProcessTas;

use shmem::process::ProcessCtx;

/// A one-shot `n`-process test-and-set object.
///
/// At most one invocation returns `true` ("wins"); all others return `false`
/// ("lose"). If a single process invokes the object and runs to completion, it
/// wins. Objects are not resettable.
pub trait TestAndSet: Send + Sync {
    /// Competes in the test-and-set, returning `true` if this process wins.
    fn test_and_set(&self, ctx: &mut ProcessCtx) -> bool;

    /// Whether some process has already won this object.
    ///
    /// This is a harness-level inspection hook (it charges no steps) used by
    /// tests and experiments; algorithms never call it.
    fn has_winner(&self) -> bool;
}

/// The side a process plays in a two-party object.
///
/// Two-process test-and-set objects distinguish their two potential
/// participants by a statically assigned side: in a renaming network the
/// process arriving on the comparator's top wire plays [`Side::Top`] and the
/// process arriving on the bottom wire plays [`Side::Bottom`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Side {
    /// The first participant (top wire of a comparator).
    Top,
    /// The second participant (bottom wire of a comparator).
    Bottom,
}

impl Side {
    /// The opposite side.
    pub fn other(self) -> Side {
        match self {
            Side::Top => Side::Bottom,
            Side::Bottom => Side::Top,
        }
    }

    /// Index of this side (0 for top, 1 for bottom).
    pub fn index(self) -> usize {
        match self {
            Side::Top => 0,
            Side::Bottom => 1,
        }
    }
}

/// A one-shot two-process test-and-set object.
///
/// Exactly two potential participants exist, distinguished by [`Side`]. At
/// most one of them wins; a participant that runs alone wins.
pub trait TwoPartyTas: Send + Sync {
    /// Competes on the given side, returning `true` if this process wins.
    fn play(&self, ctx: &mut ProcessCtx, side: Side) -> bool;

    /// Whether some process has already won this object (harness inspection
    /// hook; charges no steps).
    fn has_winner(&self) -> bool;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn side_other_and_index_are_consistent() {
        assert_eq!(Side::Top.other(), Side::Bottom);
        assert_eq!(Side::Bottom.other(), Side::Top);
        assert_eq!(Side::Top.index(), 0);
        assert_eq!(Side::Bottom.index(), 1);
        assert_ne!(Side::Top, Side::Bottom);
    }
}
