//! Invoke/response history recording for concurrent objects.
//!
//! Correctness arguments in the paper (linearizability of the ℓ-test-and-set
//! and fetch-and-increment objects, monotone consistency of the counter) are
//! statements about *histories*: sequences of operation invocations and
//! responses with their real-time order. The [`Recorder`] assigns globally
//! ordered timestamps to invocations and responses so the checkers in
//! [`consistency`](crate::consistency) can reconstruct the real-time partial
//! order of any execution.

use crate::process::ProcessId;
use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// One completed operation in a history.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpRecord<O, V> {
    /// The process that performed the operation.
    pub process: ProcessId,
    /// The operation performed.
    pub op: O,
    /// The value the operation returned.
    pub result: V,
    /// Logical timestamp at invocation.
    pub invoke: u64,
    /// Logical timestamp at response. Always greater than `invoke`.
    pub response: u64,
}

impl<O, V> OpRecord<O, V> {
    /// Whether this operation's response precedes `other`'s invocation
    /// (i.e. it strictly precedes `other` in real time).
    pub fn precedes(&self, other: &OpRecord<O, V>) -> bool {
        self.response < other.invoke
    }

    /// Whether this operation overlaps `other` in real time.
    pub fn overlaps(&self, other: &OpRecord<O, V>) -> bool {
        !self.precedes(other) && !other.precedes(self)
    }
}

/// A completed-operation history, ordered by invocation timestamp.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct History<O, V> {
    records: Vec<OpRecord<O, V>>,
}

impl<O, V> History<O, V> {
    /// Builds a history from raw records, sorting them by invocation time.
    pub fn new(mut records: Vec<OpRecord<O, V>>) -> Self {
        records.sort_by_key(|r| r.invoke);
        History { records }
    }

    /// Number of operations in the history.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the history contains no operations.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over the records in invocation order.
    pub fn iter(&self) -> std::slice::Iter<'_, OpRecord<O, V>> {
        self.records.iter()
    }

    /// The records in invocation order.
    pub fn records(&self) -> &[OpRecord<O, V>] {
        &self.records
    }

    /// Consumes the history, returning its records in invocation order.
    pub fn into_records(self) -> Vec<OpRecord<O, V>> {
        self.records
    }

    /// Returns the sub-history of operations satisfying `predicate`,
    /// preserving timestamps.
    pub fn filter<F>(&self, predicate: F) -> History<O, V>
    where
        O: Clone,
        V: Clone,
        F: Fn(&OpRecord<O, V>) -> bool,
    {
        History {
            records: self
                .records
                .iter()
                .filter(|r| predicate(r))
                .cloned()
                .collect(),
        }
    }
}

impl<O, V> IntoIterator for History<O, V> {
    type Item = OpRecord<O, V>;
    type IntoIter = std::vec::IntoIter<OpRecord<O, V>>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.into_iter()
    }
}

impl<'a, O, V> IntoIterator for &'a History<O, V> {
    type Item = &'a OpRecord<O, V>;
    type IntoIter = std::slice::Iter<'a, OpRecord<O, V>>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

impl<O, V> FromIterator<OpRecord<O, V>> for History<O, V> {
    fn from_iter<I: IntoIterator<Item = OpRecord<O, V>>>(iter: I) -> Self {
        History::new(iter.into_iter().collect())
    }
}

/// A thread-safe recorder that timestamps operation invocations and responses
/// with a global logical clock.
///
/// # Example
///
/// ```
/// use shmem::history::Recorder;
/// use shmem::process::ProcessId;
///
/// let recorder: Recorder<&'static str, u64> = Recorder::new();
/// let invoke = recorder.invoke();
/// // ... perform the operation on the shared object ...
/// recorder.record(ProcessId::new(0), "increment", 1, invoke);
/// let history = recorder.take_history();
/// assert_eq!(history.len(), 1);
/// assert!(history.records()[0].invoke < history.records()[0].response);
/// ```
pub struct Recorder<O, V> {
    clock: AtomicU64,
    records: Mutex<Vec<OpRecord<O, V>>>,
}

impl<O, V> Recorder<O, V> {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Recorder {
            clock: AtomicU64::new(1),
            records: Mutex::new(Vec::new()),
        }
    }

    /// Returns an invocation timestamp. Call this immediately before invoking
    /// the operation on the shared object.
    pub fn invoke(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::SeqCst)
    }

    /// Records a completed operation. The response timestamp is assigned at
    /// the moment of this call, so call it immediately after the operation
    /// returns.
    pub fn record(&self, process: ProcessId, op: O, result: V, invoke: u64) {
        let response = self.clock.fetch_add(1, Ordering::SeqCst);
        self.records.lock().push(OpRecord {
            process,
            op,
            result,
            invoke,
            response,
        });
    }

    /// Number of operations recorded so far.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.records.lock().is_empty()
    }

    /// Takes the recorded operations, leaving the recorder empty.
    pub fn take_history(&self) -> History<O, V> {
        History::new(std::mem::take(&mut *self.records.lock()))
    }

    /// Clones the recorded operations without clearing the recorder.
    pub fn snapshot(&self) -> History<O, V>
    where
        O: Clone,
        V: Clone,
    {
        History::new(self.records.lock().clone())
    }
}

impl<O, V> Default for Recorder<O, V> {
    fn default() -> Self {
        Recorder::new()
    }
}

impl<O, V> fmt::Debug for Recorder<O, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Recorder")
            .field("clock", &self.clock.load(Ordering::SeqCst))
            .field("recorded", &self.records.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(invoke: u64, response: u64, result: u64) -> OpRecord<&'static str, u64> {
        OpRecord {
            process: ProcessId::new(0),
            op: "op",
            result,
            invoke,
            response,
        }
    }

    #[test]
    fn precedes_and_overlaps_follow_real_time() {
        let a = record(1, 2, 0);
        let b = record(3, 4, 0);
        let c = record(2, 5, 0);
        assert!(a.precedes(&b));
        assert!(!b.precedes(&a));
        assert!(a.overlaps(&c));
        assert!(c.overlaps(&b));
        assert!(!a.overlaps(&b));
    }

    #[test]
    fn history_sorts_by_invocation_time() {
        let history = History::new(vec![record(5, 6, 2), record(1, 2, 0), record(3, 4, 1)]);
        let invokes: Vec<u64> = history.iter().map(|r| r.invoke).collect();
        assert_eq!(invokes, vec![1, 3, 5]);
        assert_eq!(history.len(), 3);
        assert!(!history.is_empty());
    }

    #[test]
    fn history_filter_preserves_matching_records() {
        let history = History::new(vec![record(1, 2, 10), record(3, 4, 20), record(5, 6, 30)]);
        let filtered = history.filter(|r| r.result >= 20);
        assert_eq!(filtered.len(), 2);
        assert!(filtered.iter().all(|r| r.result >= 20));
    }

    #[test]
    fn history_collects_from_iterator() {
        let history: History<&str, u64> = vec![record(9, 10, 1), record(1, 2, 2)]
            .into_iter()
            .collect();
        assert_eq!(history.records()[0].invoke, 1);
        let back: Vec<_> = (&history).into_iter().collect();
        assert_eq!(back.len(), 2);
        let owned: Vec<_> = history.into_iter().collect();
        assert_eq!(owned.len(), 2);
    }

    #[test]
    fn recorder_assigns_increasing_timestamps() {
        let recorder: Recorder<&'static str, u64> = Recorder::new();
        assert!(recorder.is_empty());
        let t0 = recorder.invoke();
        recorder.record(ProcessId::new(1), "read", 7, t0);
        let t1 = recorder.invoke();
        recorder.record(ProcessId::new(2), "read", 8, t1);
        assert_eq!(recorder.len(), 2);

        let history = recorder.snapshot();
        assert_eq!(history.len(), 2);
        let first = &history.records()[0];
        let second = &history.records()[1];
        assert!(first.invoke < first.response);
        assert!(second.invoke < second.response);
        assert!(first.response < second.response);

        let taken = recorder.take_history();
        assert_eq!(taken.len(), 2);
        assert!(recorder.is_empty());
    }

    #[test]
    fn recorder_is_usable_across_threads() {
        use std::sync::Arc;
        let recorder: Arc<Recorder<&'static str, usize>> = Arc::new(Recorder::new());
        std::thread::scope(|scope| {
            for process in 0..4 {
                let recorder = Arc::clone(&recorder);
                scope.spawn(move || {
                    for round in 0..8 {
                        let t = recorder.invoke();
                        recorder.record(ProcessId::new(process), "op", round, t);
                    }
                });
            }
        });
        let history = recorder.take_history();
        assert_eq!(history.len(), 32);
        // Every record has invoke < response, and timestamps are unique.
        let mut stamps: Vec<u64> = Vec::new();
        for r in &history {
            assert!(r.invoke < r.response);
            stamps.push(r.invoke);
            stamps.push(r.response);
        }
        stamps.sort_unstable();
        stamps.dedup();
        assert_eq!(stamps.len(), 64);
    }

    #[test]
    fn recorder_debug_is_nonempty() {
        let recorder: Recorder<u8, u8> = Recorder::new();
        assert!(format!("{recorder:?}").contains("Recorder"));
    }
}
