//! A relocatable, offset-addressed backing store for shared structures.
//!
//! The paper's model is crash-prone *processes* communicating through shared
//! atomic registers. Everything else in this crate works equally well for
//! threads in one address space, but pointers do not survive a process
//! boundary: a `MAP_SHARED` mapping lands at a different virtual address in
//! every process that maps it. This module therefore stores shared state in
//! an [`Arena`] — a single contiguous region addressed by *offsets* — and
//! hands out [`ArenaBox<T>`]/[`ArenaSlice<T>`] handles that resolve
//! `base + offset` at access time. Handles are plain `Copy` integers, so a
//! structure built from them is relocatable by construction: fork the
//! process (or map the region elsewhere) and every handle still resolves.
//!
//! Three backends are provided:
//!
//! * [`ArenaBackend::Heap`] (default): a process-private 64-byte-aligned
//!   heap block. Identical layout and code paths to the shared backend, but
//!   safe under miri and on every platform. This is what the rest of the
//!   workspace uses unless a caller explicitly asks for cross-process
//!   sharing.
//! * [`ArenaBackend::Shared`]: an anonymous `MAP_SHARED` mmap (unix only,
//!   not under miri). A child created with `fork()` inherits the mapping at
//!   the same address — but nothing relies on that: all access goes through
//!   offsets, and the handles themselves are inherited by-value.
//! * [`ArenaBackend::File`]: a *named* `MAP_SHARED` mmap over a regular
//!   file, so **unrelated** processes attach by path instead of by fork
//!   inheritance ([`Arena::file_create`] / [`Arena::file_attach`]). The
//!   first 64 bytes of the file hold a validated [`FileHeader`] — magic,
//!   layout version, capacity, an attach-epoch counter bumped on every
//!   attach, and a dirty flag that survives a crash — which is what makes
//!   crash-consistent restart recovery possible (see `core::recovery`).
//!   An attached arena is opened in *preserve* mode: the `*_with`
//!   allocators claim offsets in construction order but skip their
//!   initializing writes, so re-running a structure's `*_in` constructor
//!   re-derives the same handles over the surviving bytes.
//!
//! # Allocation discipline
//!
//! The arena is a bump allocator: allocations only grow it, nothing is ever
//! freed until the whole arena drops. Every allocation starts on a fresh
//! 64-byte boundary, so any single allocated object (a register word, a
//! free-list `pushes` counter) owns its cache line outright, and a slice
//! allocation packs its elements contiguously from an aligned base — the
//! layout the compiled flat wire-map/CSR structures were designed for.
//! Allocating past [`Arena::capacity`] panics; callers size arenas with the
//! `footprint` helpers next to each structure's `*_in` constructor.
//!
//! Only [`ArenaPod`] types may live in an arena: no destructors, valid when
//! zero-initialized, no interior pointers. Atomics and plain integers (and
//! `#[repr(C)]` structs thereof) qualify; anything holding a pointer, a
//! `Box` or a lock does not.
//!
//! # Stable locations
//!
//! Registers placed in an arena derive their [`Loc`] from the arena id and
//! the word's offset ([`Arena::loc_for`]) instead of the global fresh-`Loc`
//! counter, so the schedule explorer's conflict classes are identical no
//! matter which backend backs the run — the property the cross-backend
//! replay regression test pins down.
//!
//! # Example
//!
//! ```
//! use shmem::arena::Arena;
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! let arena = Arena::heap(4096);
//! let word = arena.alloc::<AtomicU64>();
//! let slab = arena.alloc_slice::<AtomicU64>(8);
//! word.get(&arena).store(7, Ordering::SeqCst);
//! slab.at(&arena, 3).store(9, Ordering::SeqCst);
//! assert_eq!(word.get(&arena).load(Ordering::SeqCst), 7);
//! assert_eq!(slab.get(&arena)[3].load(Ordering::SeqCst), 9);
//! // Handles are plain offsets: relocatable, Copy, process-boundary safe.
//! assert_eq!(word.offset() % 64, 0);
//! ```

// The one module in this crate that needs raw memory: the arena owns an
// untyped region (heap block or mmap) and hands out typed views into it.
// Everything unsafe is confined to `Storage` and `Arena::resolve`.
#![allow(unsafe_code)]

use crate::pad::CachePadded;
use crate::vexec::Loc;
use std::alloc::{alloc_zeroed, dealloc, Layout};
use std::fmt;
use std::marker::PhantomData;
use std::ptr::NonNull;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Cache-line size assumed throughout the workspace (see [`crate::pad`]).
pub const ARENA_ALIGN: usize = 64;

/// The largest capacity an arena may have: offsets must fit in the 34-bit
/// field of the derived [`Loc`] encoding (16 GiB is far beyond any structure
/// in this workspace).
pub const MAX_ARENA_CAPACITY: usize = 1 << 34;

static NEXT_ARENA_ID: AtomicU64 = AtomicU64::new(1);

/// Which kind of memory backs an [`Arena`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ArenaBackend {
    /// A process-private, 64-byte-aligned heap block (miri-safe default).
    #[default]
    Heap,
    /// An anonymous `MAP_SHARED` mapping: visible to children created with
    /// `fork()`. Unix only; unavailable under miri.
    Shared,
    /// A file-backed `MAP_SHARED` mapping with a validated [`FileHeader`]:
    /// unrelated processes attach by path ([`Arena::file_attach`]) and the
    /// bytes survive every process detaching. Unix only; unavailable under
    /// miri. The variant is payload-free (handles stay `Copy`); the path
    /// is carried by the constructors and [`Arena::path`].
    File,
}

impl fmt::Display for ArenaBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArenaBackend::Heap => f.write_str("heap"),
            ArenaBackend::Shared => f.write_str("shared"),
            ArenaBackend::File => f.write_str("file"),
        }
    }
}

impl FromStr for ArenaBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "heap" | "private" => Ok(ArenaBackend::Heap),
            "shared" | "mmap" => Ok(ArenaBackend::Shared),
            "file" | "named" => Ok(ArenaBackend::File),
            other => Err(format!(
                "unknown arena backend {other:?} (expected \"heap\", \"shared\" or \"file\")"
            )),
        }
    }
}

/// Why an arena could not be created.
#[derive(Debug)]
pub enum ArenaError {
    /// The requested backend is not available on this platform (e.g.
    /// [`ArenaBackend::Shared`] on non-unix targets or under miri).
    UnsupportedBackend(ArenaBackend),
    /// The requested capacity is zero or exceeds [`MAX_ARENA_CAPACITY`].
    InvalidCapacity(usize),
    /// The underlying `mmap` call failed.
    MapFailed(std::io::Error),
    /// The [`ArenaBackend::File`] backend needs a path: use
    /// [`Arena::file_create`] / [`Arena::file_attach`], not `with_backend`.
    PathRequired,
    /// Creating, opening or sizing the backing file failed.
    Io(std::io::Error),
    /// The file exists but its [`FileHeader`] does not validate (wrong
    /// magic, unknown layout version, or a capacity that disagrees with
    /// the file's size) — it is not an arena this build can attach to.
    BadHeader(String),
}

impl fmt::Display for ArenaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArenaError::UnsupportedBackend(b) => {
                write!(f, "arena backend {b} is not available on this platform")
            }
            ArenaError::InvalidCapacity(cap) => {
                write!(
                    f,
                    "arena capacity {cap} out of range (1..={MAX_ARENA_CAPACITY})"
                )
            }
            ArenaError::MapFailed(err) => write!(f, "mmap failed: {err}"),
            ArenaError::PathRequired => {
                write!(
                    f,
                    "the file backend needs a path: use Arena::file_create / file_attach"
                )
            }
            ArenaError::Io(err) => write!(f, "arena file i/o failed: {err}"),
            ArenaError::BadHeader(why) => write!(f, "arena file header invalid: {why}"),
        }
    }
}

impl std::error::Error for ArenaError {}

/// Magic tag in the first word of a file-backed arena ("ARENAv1\0", little
/// endian). A file without it is not an arena and is refused at attach.
pub const ARENA_MAGIC: u64 = 0x0031_764e_4552_4141;

/// Layout version stamped at [`Arena::file_create`] and required verbatim at
/// [`Arena::file_attach`]. Bump whenever the byte layout of any
/// arena-resident structure changes incompatibly.
pub const ARENA_LAYOUT_VERSION: u64 = 1;

/// Bytes reserved at the start of a file-backed arena for the validated
/// header — exactly one allocation line, so the first real allocation still
/// lands on a fresh 64-byte boundary.
pub const FILE_HEADER_BYTES: usize = 64;

/// The validated header at offset 0 of a file-backed arena.
///
/// All fields are atomics because unrelated live processes share the
/// mapping: the attach-epoch bump and the dirty-flag handshake race with
/// other attachers by design. The header occupies the first of the file's
/// [`FILE_HEADER_BYTES`]; the remaining header bytes are reserved (zero).
#[derive(Debug)]
#[repr(C)]
pub struct FileHeader {
    /// [`ARENA_MAGIC`], written last at create so a torn create never
    /// validates.
    pub magic: AtomicU64,
    /// [`ARENA_LAYOUT_VERSION`] of the creating build.
    pub layout_version: AtomicU64,
    /// Usable capacity in bytes (the file is this plus the header line).
    pub capacity: AtomicU64,
    /// Count of attaches (create included); bumped by every
    /// [`Arena::file_attach`]. Recovery uses it to arbitrate which fresh
    /// attacher repairs a dirty arena.
    pub attach_epoch: AtomicU64,
    /// Raised on attach, cleared only by an explicit [`Arena::mark_clean`]:
    /// a process that dies (or merely exits) without the clean handshake
    /// leaves the flag up, telling the next attacher to run recovery.
    pub dirty: AtomicU64,
}

/// Marker for types that may be placed in an [`Arena`].
///
/// # Safety
///
/// Implementors must guarantee all of:
///
/// * **Zero-valid**: the all-zero byte pattern is a valid, fully initialized
///   value (arena memory is zeroed at creation and never constructed
///   per-object unless a `*_with` allocator is used).
/// * **No destructor**: dropping the arena discards the bytes without
///   running `Drop` for the objects inside.
/// * **Self-contained**: the value holds no pointers, references or other
///   address-space-local state, so its bytes mean the same thing in every
///   process mapping the region.
/// * **Sync**: the arena hands out `&T` to multiple threads and processes
///   concurrently.
pub unsafe trait ArenaPod: Sized + Send + Sync + 'static {}

// Safety: atomics and bare integers are zero-valid, drop-free,
// address-space independent and (for the atomics) Sync. Plain integers are
// only reachable immutably through arena handles, so sharing &T is safe.
unsafe impl ArenaPod for AtomicU64 {}
unsafe impl ArenaPod for AtomicUsize {}
unsafe impl ArenaPod for AtomicU32 {}
unsafe impl ArenaPod for AtomicBool {}
unsafe impl ArenaPod for u8 {}
unsafe impl ArenaPod for u32 {}
unsafe impl ArenaPod for u64 {}
unsafe impl ArenaPod for usize {}

// Safety: padding preserves every ArenaPod invariant (the pad bytes are
// zero-valid and meaningless), and CachePadded's 64-byte alignment is
// exactly the arena allocation alignment.
unsafe impl<T: ArenaPod> ArenaPod for CachePadded<T> {}

/// The raw region behind an arena.
enum Storage {
    Heap {
        base: NonNull<u8>,
        layout: Layout,
    },
    #[cfg(all(unix, not(miri)))]
    Shared {
        base: NonNull<u8>,
        len: usize,
    },
    /// A file-backed `MAP_SHARED` mapping. The fd is closed right after
    /// mapping (the mapping keeps the file pinned); dropping unmaps only —
    /// the bytes live on in the file until someone unlinks it.
    #[cfg(all(unix, not(miri)))]
    File {
        base: NonNull<u8>,
        len: usize,
    },
}

impl Storage {
    fn base(&self) -> NonNull<u8> {
        match self {
            Storage::Heap { base, .. } => *base,
            #[cfg(all(unix, not(miri)))]
            Storage::Shared { base, .. } => *base,
            #[cfg(all(unix, not(miri)))]
            Storage::File { base, .. } => *base,
        }
    }
}

impl Drop for Storage {
    fn drop(&mut self) {
        match self {
            Storage::Heap { base, layout } => {
                // Safety: allocated with exactly this layout in Arena::heap.
                unsafe { dealloc(base.as_ptr(), *layout) };
            }
            #[cfg(all(unix, not(miri)))]
            Storage::Shared { base, len } | Storage::File { base, len } => {
                // Safety: mapped with exactly this length in map_shared /
                // map_file. A forked child that exits via `_exit` never runs
                // this; a child that returns normally unmaps only its own
                // address space, not the parent's mapping (and for the file
                // backend, never the file's bytes).
                unsafe { libc::munmap(base.as_ptr().cast(), *len) };
            }
        }
    }
}

/// A relocatable bump-allocated region of shared memory.
///
/// See the [module docs](self) for the full story. Arenas are always used
/// behind an [`Arc`], because the handles resolve against `&Arena` and the
/// structures built on top keep the arena alive.
pub struct Arena {
    storage: Storage,
    capacity: usize,
    cursor: AtomicUsize,
    backend: ArenaBackend,
    id: u64,
    /// Attach/preserve mode ([`Arena::file_attach`]): the `*_with`
    /// allocators claim offsets but skip their initializing writes, so the
    /// bytes a previous fleet left behind survive re-construction.
    preserve: bool,
    /// The backing file's path (file backend only).
    path: Option<std::path::PathBuf>,
    /// This mapping's attach epoch (file backend only): the post-bump value
    /// of the header's attach counter.
    attach_epoch: Option<u64>,
    /// Whether the header's dirty flag was already up when this process
    /// attached — i.e. some earlier attacher never completed the
    /// [`Arena::mark_clean`] handshake and recovery should run.
    attached_dirty: bool,
}

// Safety: the region is only ever accessed through `&T` where `T: ArenaPod`
// (hence Sync), the cursor is atomic, and the storage pointer itself is
// never mutated after construction.
unsafe impl Send for Arena {}
unsafe impl Sync for Arena {}

impl fmt::Debug for Arena {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Arena")
            .field("backend", &self.backend)
            .field("capacity", &self.capacity)
            .field("used", &self.used())
            .field("id", &self.id)
            .finish()
    }
}

impl Arena {
    /// Creates a process-private heap-backed arena with the given capacity
    /// in bytes. Panics if the capacity is out of range or the allocation
    /// fails (consistent with `Box`/`Vec` on OOM).
    pub fn heap(capacity: usize) -> Arc<Arena> {
        match Arena::with_backend(ArenaBackend::Heap, capacity) {
            Ok(arena) => arena,
            Err(err) => panic!("failed to create heap arena: {err}"),
        }
    }

    /// Creates an anonymous `MAP_SHARED` arena with the given capacity in
    /// bytes. Children created with `fork()` share the memory (writes are
    /// mutually visible); unrelated processes cannot attach.
    #[cfg(all(unix, not(miri)))]
    pub fn shared(capacity: usize) -> Result<Arc<Arena>, ArenaError> {
        Arena::with_backend(ArenaBackend::Shared, capacity)
    }

    /// Creates an arena on the requested backend. [`ArenaBackend::Shared`]
    /// fails with [`ArenaError::UnsupportedBackend`] on non-unix platforms
    /// and under miri; [`ArenaBackend::File`] always fails here with
    /// [`ArenaError::PathRequired`] — use [`Arena::file_create`] /
    /// [`Arena::file_attach`].
    pub fn with_backend(backend: ArenaBackend, capacity: usize) -> Result<Arc<Arena>, ArenaError> {
        if capacity == 0 || capacity > MAX_ARENA_CAPACITY {
            return Err(ArenaError::InvalidCapacity(capacity));
        }
        let storage = match backend {
            ArenaBackend::Heap => {
                let layout = Layout::from_size_align(capacity, ARENA_ALIGN)
                    .map_err(|_| ArenaError::InvalidCapacity(capacity))?;
                // Safety: layout has non-zero size (capacity >= 1).
                let raw = unsafe { alloc_zeroed(layout) };
                let base = NonNull::new(raw).unwrap_or_else(|| {
                    std::alloc::handle_alloc_error(layout);
                });
                Storage::Heap { base, layout }
            }
            ArenaBackend::Shared => Self::map_shared(capacity)?,
            ArenaBackend::File => return Err(ArenaError::PathRequired),
        };
        Ok(Arc::new(Arena {
            storage,
            capacity,
            cursor: AtomicUsize::new(0),
            backend,
            id: NEXT_ARENA_ID.fetch_add(1, Ordering::SeqCst),
            preserve: false,
            path: None,
            attach_epoch: None,
            attached_dirty: false,
        }))
    }

    /// Creates a **named** arena: a fresh file at `path` sized
    /// `capacity + FILE_HEADER_BYTES`, mapped `MAP_SHARED`, with a validated
    /// [`FileHeader`] stamped at offset 0. `capacity` is the usable byte
    /// count — size it with the same `footprint` helpers as any other
    /// backend. Fails if the file already exists (chaos/restart loops unlink
    /// stale arenas explicitly; silently reusing one would hide a leak).
    #[cfg(all(unix, not(miri)))]
    pub fn file_create(
        path: impl AsRef<std::path::Path>,
        capacity: usize,
    ) -> Result<Arc<Arena>, ArenaError> {
        let path = path.as_ref();
        if capacity == 0 || capacity > MAX_ARENA_CAPACITY {
            return Err(ArenaError::InvalidCapacity(capacity));
        }
        let total = capacity + FILE_HEADER_BYTES;
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(path)
            .map_err(ArenaError::Io)?;
        file.set_len(total as u64).map_err(ArenaError::Io)?;
        let storage = Self::map_file(&file, total)?;
        // The fd closes when `file` drops below; the mapping outlives it.
        let arena = Arena {
            storage,
            capacity: total,
            cursor: AtomicUsize::new(FILE_HEADER_BYTES),
            backend: ArenaBackend::File,
            id: NEXT_ARENA_ID.fetch_add(1, Ordering::SeqCst),
            preserve: false,
            path: Some(path.to_path_buf()),
            attach_epoch: Some(1),
            attached_dirty: false,
        };
        let header = arena.file_header().expect("file backend has a header");
        header
            .layout_version
            .store(ARENA_LAYOUT_VERSION, Ordering::SeqCst);
        header.capacity.store(capacity as u64, Ordering::SeqCst);
        header.attach_epoch.store(1, Ordering::SeqCst);
        header.dirty.store(1, Ordering::SeqCst);
        // Magic last: a create torn before this line never validates.
        header.magic.store(ARENA_MAGIC, Ordering::SeqCst);
        Ok(Arc::new(arena))
    }

    /// Attaches to an existing named arena by path, validating its
    /// [`FileHeader`] (magic, layout version, capacity vs file size). On
    /// success the header's attach epoch is bumped, the dirty flag is
    /// raised, and the arena is returned in *preserve* mode: re-running the
    /// same `*_in` constructors in the same order re-claims the same offsets
    /// **without** re-initializing the bytes — [`Arena::was_dirty`] then
    /// tells the caller whether recovery must run over the surviving state.
    #[cfg(all(unix, not(miri)))]
    pub fn file_attach(path: impl AsRef<std::path::Path>) -> Result<Arc<Arena>, ArenaError> {
        let path = path.as_ref();
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(ArenaError::Io)?;
        let total = file.metadata().map_err(ArenaError::Io)?.len();
        if (total as usize) < FILE_HEADER_BYTES + ARENA_ALIGN
            || total as usize > MAX_ARENA_CAPACITY + FILE_HEADER_BYTES
        {
            return Err(ArenaError::BadHeader(format!(
                "file size {total} cannot hold a header plus any capacity"
            )));
        }
        let total = total as usize;
        let storage = Self::map_file(&file, total)?;
        let mut arena = Arena {
            storage,
            capacity: total,
            cursor: AtomicUsize::new(FILE_HEADER_BYTES),
            backend: ArenaBackend::File,
            id: NEXT_ARENA_ID.fetch_add(1, Ordering::SeqCst),
            preserve: true,
            path: Some(path.to_path_buf()),
            attach_epoch: None,
            attached_dirty: false,
        };
        {
            let header = arena.file_header().expect("file backend has a header");
            let magic = header.magic.load(Ordering::SeqCst);
            if magic != ARENA_MAGIC {
                return Err(ArenaError::BadHeader(format!(
                    "magic {magic:#018x} != {ARENA_MAGIC:#018x} (not an arena, or a torn create)"
                )));
            }
            let version = header.layout_version.load(Ordering::SeqCst);
            if version != ARENA_LAYOUT_VERSION {
                return Err(ArenaError::BadHeader(format!(
                    "layout version {version} != {ARENA_LAYOUT_VERSION}"
                )));
            }
            let capacity = header.capacity.load(Ordering::SeqCst);
            if capacity as usize != total - FILE_HEADER_BYTES {
                return Err(ArenaError::BadHeader(format!(
                    "header capacity {capacity} disagrees with file size {total}"
                )));
            }
        }
        // Validated: join the arena. The dirty flag is a swap so we learn
        // whether a previous fleet left without the clean handshake, and the
        // epoch bump gives this attacher a unique recovery-arbitration
        // ticket.
        let (was_dirty, epoch) = {
            let header = arena.file_header().expect("validated above");
            (
                header.dirty.swap(1, Ordering::SeqCst) != 0,
                header.attach_epoch.fetch_add(1, Ordering::SeqCst) + 1,
            )
        };
        arena.attached_dirty = was_dirty;
        arena.attach_epoch = Some(epoch);
        Ok(Arc::new(arena))
    }

    #[cfg(all(unix, not(miri)))]
    fn map_file(file: &std::fs::File, len: usize) -> Result<Storage, ArenaError> {
        use std::os::unix::io::AsRawFd;
        // Safety: mapping a regular file we just opened read/write, length
        // checked against the file size by the callers; the result is
        // checked against MAP_FAILED before use.
        let raw = unsafe {
            libc::mmap(
                std::ptr::null_mut(),
                len,
                libc::PROT_READ | libc::PROT_WRITE,
                libc::MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if raw == libc::MAP_FAILED {
            return Err(ArenaError::MapFailed(std::io::Error::last_os_error()));
        }
        let base = NonNull::new(raw.cast::<u8>())
            .ok_or_else(|| ArenaError::MapFailed(std::io::Error::last_os_error()))?;
        Ok(Storage::File { base, len })
    }

    #[cfg(all(unix, not(miri)))]
    fn map_shared(capacity: usize) -> Result<Storage, ArenaError> {
        // Safety: anonymous mapping, no fd, flags and prot are constants;
        // the result is checked against MAP_FAILED before use. An anonymous
        // mapping is zero-filled by the kernel, satisfying the zero-valid
        // ArenaPod contract the same way alloc_zeroed does.
        let raw = unsafe {
            libc::mmap(
                std::ptr::null_mut(),
                capacity,
                libc::PROT_READ | libc::PROT_WRITE,
                libc::MAP_SHARED | libc::MAP_ANONYMOUS,
                -1,
                0,
            )
        };
        if raw == libc::MAP_FAILED {
            return Err(ArenaError::MapFailed(std::io::Error::last_os_error()));
        }
        let base = NonNull::new(raw.cast::<u8>())
            .ok_or_else(|| ArenaError::MapFailed(std::io::Error::last_os_error()))?;
        Ok(Storage::Shared {
            base,
            len: capacity,
        })
    }

    #[cfg(not(all(unix, not(miri))))]
    fn map_shared(_capacity: usize) -> Result<Storage, ArenaError> {
        Err(ArenaError::UnsupportedBackend(ArenaBackend::Shared))
    }

    /// The backend this arena was created on.
    pub fn backend(&self) -> ArenaBackend {
        self.backend
    }

    /// The backing file's path (file backend only).
    pub fn path(&self) -> Option<&std::path::Path> {
        self.path.as_deref()
    }

    /// Whether this arena is in attach/preserve mode: the `*_with`
    /// allocators claim offsets but keep the bytes found in the file.
    pub fn preserves_contents(&self) -> bool {
        self.preserve
    }

    /// This mapping's attach epoch (file backend only): 1 for the creator,
    /// bumped once per [`Arena::file_attach`]. Distinct per attacher, which
    /// is what recovery's single-winner arbitration keys on.
    pub fn attach_epoch(&self) -> Option<u64> {
        self.attach_epoch
    }

    /// Whether the dirty flag was already up when this process attached —
    /// i.e. a previous fleet died (or exited) without [`Arena::mark_clean`]
    /// and the surviving state needs recovery. Always `false` for the
    /// creator and for non-file backends.
    pub fn was_dirty(&self) -> bool {
        self.attached_dirty
    }

    /// The header's dirty flag as of now (file backend only; `false`
    /// otherwise). Raised by every attach, cleared only by
    /// [`Arena::mark_clean`].
    pub fn is_dirty(&self) -> bool {
        self.file_header()
            .map(|h| h.dirty.load(Ordering::SeqCst) != 0)
            .unwrap_or(false)
    }

    /// Clears the dirty flag — the orderly-shutdown handshake. Call only
    /// when every structure in the arena is quiescent (no leases held, no
    /// operations in flight); the next attacher will then skip recovery.
    /// No-op on non-file backends.
    pub fn mark_clean(&self) {
        if let Some(header) = self.file_header() {
            header.dirty.store(0, Ordering::SeqCst);
        }
    }

    /// The validated header of a file-backed arena; `None` for the heap and
    /// anonymous-shared backends (which have no header line).
    pub fn file_header(&self) -> Option<&FileHeader> {
        #[cfg(all(unix, not(miri)))]
        if matches!(self.storage, Storage::File { .. }) {
            debug_assert!(std::mem::size_of::<FileHeader>() <= FILE_HEADER_BYTES);
            // Safety: the file backend reserves the first FILE_HEADER_BYTES
            // (one mapped, page-aligned line) for exactly this struct, whose
            // fields are all atomics (zero-valid, Sync); the bump cursor
            // starts past it so no allocation can alias it.
            return Some(unsafe { &*self.storage.base().as_ptr().cast::<FileHeader>() });
        }
        None
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes consumed by allocations so far (always a multiple of 64).
    pub fn used(&self) -> usize {
        self.cursor.load(Ordering::SeqCst)
    }

    /// Bytes still available for allocation.
    pub fn remaining(&self) -> usize {
        self.capacity - self.used()
    }

    /// This arena's process-local id, the high bits of every derived
    /// [`Loc`]. Ids are allocation-order stable within a process, which is
    /// all the schedule explorer's conflict analysis needs.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The stable [`Loc`] for the word at `offset`.
    ///
    /// Encoding: bit 63 tags arena-derived locations (keeping them disjoint
    /// from the global fresh-`Loc` counter), bits 34..63 hold the arena id
    /// and bits 0..34 the byte offset. Two registers in the same arena thus
    /// conflict iff they occupy the same offset, regardless of backend.
    pub fn loc_for(&self, offset: usize) -> Loc {
        debug_assert!(offset < MAX_ARENA_CAPACITY);
        Loc::from_raw((1 << 63) | ((self.id & 0x1FFF_FFFF) << 34) | offset as u64)
    }

    /// Claims `size` bytes at the next 64-byte boundary, returning the
    /// offset. Panics if the arena is exhausted.
    fn bump(&self, size: usize) -> usize {
        let padded = size
            .checked_add(ARENA_ALIGN - 1)
            .map(|s| s & !(ARENA_ALIGN - 1))
            .unwrap_or(usize::MAX);
        let mut current = self.cursor.load(Ordering::SeqCst);
        loop {
            let next = current.saturating_add(padded);
            assert!(
                next <= self.capacity,
                "arena exhausted: {size} bytes requested, {} of {} in use \
                 (size the arena with the structure's footprint helper)",
                current,
                self.capacity
            );
            match self
                .cursor
                .compare_exchange(current, next, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return current,
                Err(actual) => current = actual,
            }
        }
    }

    fn check_pod_layout<T: ArenaPod>() {
        assert!(
            std::mem::align_of::<T>() <= ARENA_ALIGN,
            "ArenaPod alignment exceeds the arena's 64-byte allocation grain"
        );
    }

    /// Allocates one zero-initialized `T`, on its own cache line.
    pub fn alloc<T: ArenaPod>(&self) -> ArenaBox<T> {
        Self::check_pod_layout::<T>();
        let offset = self.bump(std::mem::size_of::<T>().max(1));
        ArenaBox {
            offset,
            _marker: PhantomData,
        }
    }

    /// Allocates one `T` initialized to `value`, on its own cache line. In
    /// attach/preserve mode ([`Arena::file_attach`]) the offset is claimed
    /// but the initializing write is skipped: the bytes already in the file
    /// are the value (T is zero-valid and pointer-free, so whatever a
    /// previous fleet left is a valid T — possibly a torn one, which is
    /// recovery's problem, not memory safety's).
    pub fn alloc_with<T: ArenaPod>(&self, value: T) -> ArenaBox<T> {
        let handle = self.alloc::<T>();
        if !self.preserve {
            // Safety: bump() just handed this region out exclusively; nothing
            // can hold a reference into it yet, and T has no Drop to leak.
            unsafe { std::ptr::write(self.raw_at::<T>(handle.offset), value) };
        }
        handle
    }

    /// Allocates a zero-initialized slice of `len` elements, contiguous
    /// from a 64-byte-aligned base.
    pub fn alloc_slice<T: ArenaPod>(&self, len: usize) -> ArenaSlice<T> {
        Self::check_pod_layout::<T>();
        let bytes = std::mem::size_of::<T>()
            .checked_mul(len)
            .expect("slice size overflow");
        let offset = self.bump(bytes.max(1));
        ArenaSlice {
            offset,
            len,
            _marker: PhantomData,
        }
    }

    /// Allocates a slice of `len` elements, initializing element `i` with
    /// `init(i, loc)` where `loc` is the element's derived [`Loc`]. In
    /// attach/preserve mode the offsets are claimed but the writes are
    /// skipped, exactly as in [`Arena::alloc_with`] (the init closure still
    /// runs, since callers may rely on its side effects for bookkeeping).
    pub fn alloc_slice_with<T: ArenaPod>(
        &self,
        len: usize,
        mut init: impl FnMut(usize, Loc) -> T,
    ) -> ArenaSlice<T> {
        let handle = self.alloc_slice::<T>(len);
        for i in 0..len {
            let elem_offset = handle.offset + i * std::mem::size_of::<T>();
            let value = init(i, self.loc_for(elem_offset));
            if !self.preserve {
                // Safety: freshly claimed exclusive region, as in alloc_with.
                unsafe { std::ptr::write(self.raw_at::<T>(elem_offset), value) };
            }
        }
        handle
    }

    /// Raw pointer to `offset`, bounds-checked against the allocated prefix.
    fn raw_at<T>(&self, offset: usize) -> *mut T {
        let size = std::mem::size_of::<T>();
        assert!(
            offset
                .checked_add(size)
                .is_some_and(|end| end <= self.used()),
            "arena handle out of bounds (offset {offset}, size {size}, used {})",
            self.used()
        );
        debug_assert_eq!(offset % std::mem::align_of::<T>().max(1), 0);
        // Safety: offset + size lies within the allocated (hence mapped and
        // initialized) prefix of the region.
        unsafe { self.storage.base().as_ptr().add(offset).cast::<T>() }
    }

    /// Resolves a typed reference at `offset`. Internal: use the handle
    /// methods ([`ArenaBox::get`], [`ArenaSlice::get`]).
    fn resolve<T: ArenaPod>(&self, offset: usize) -> &T {
        // Safety: raw_at bounds-checks; ArenaPod guarantees the zeroed (or
        // explicitly written) bytes are a valid T and that &T is Sync.
        unsafe { &*self.raw_at::<T>(offset) }
    }

    fn resolve_slice<T: ArenaPod>(&self, offset: usize, len: usize) -> &[T] {
        if len == 0 {
            return &[];
        }
        let bytes = std::mem::size_of::<T>()
            .checked_mul(len)
            .expect("slice size overflow");
        assert!(
            offset
                .checked_add(bytes)
                .is_some_and(|end| end <= self.used()),
            "arena slice handle out of bounds"
        );
        // Safety: as in resolve, for the whole contiguous run.
        unsafe { std::slice::from_raw_parts(self.raw_at::<T>(offset), len) }
    }
}

/// A relocatable handle to a single `T` in an [`Arena`].
///
/// The handle is a bare byte offset: `Copy`, process-boundary safe, and
/// only meaningful against the arena that allocated it (resolving against
/// a different arena is caught by the bounds check at best — don't).
pub struct ArenaBox<T> {
    offset: usize,
    _marker: PhantomData<fn() -> T>,
}

impl<T> Clone for ArenaBox<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for ArenaBox<T> {}

impl<T> fmt::Debug for ArenaBox<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ArenaBox")
            .field("offset", &self.offset)
            .finish()
    }
}

impl<T: ArenaPod> ArenaBox<T> {
    /// The byte offset of the value within its arena.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Resolves the handle against its arena.
    pub fn get<'a>(&self, arena: &'a Arena) -> &'a T {
        arena.resolve(self.offset)
    }

    /// The stable [`Loc`] of this word (see [`Arena::loc_for`]).
    pub fn loc(&self, arena: &Arena) -> Loc {
        arena.loc_for(self.offset)
    }

    /// Resolves the handle **once** and pins the result: the returned
    /// [`ArenaRef`] keeps the arena alive and dereferences with no per-access
    /// offset arithmetic or bounds check. Use it wherever the same word is
    /// accessed repeatedly (hot paths); keep the `ArenaBox` form for state
    /// that crosses a process boundary.
    pub fn pin(self, arena: &Arc<Arena>) -> ArenaRef<T> {
        ArenaRef {
            ptr: NonNull::from(arena.resolve::<T>(self.offset)),
            offset: self.offset,
            arena: Arc::clone(arena),
        }
    }
}

/// A single shared word that lives either *inline* (inside its owning
/// structure, the process-private default — exactly the pre-arena layout)
/// or in an [`Arena`], where it is addressable by offset from any process
/// mapping the region.
///
/// This is the building block downstream crates use to make a structure
/// arena-capable without writing any unsafe code: store an
/// `ArenaCell<AtomicU64>`, call [`ArenaCell::get`] on the hot path, and
/// offer a `*_in` constructor that forwards to [`ArenaCell::new_in`].
#[derive(Debug)]
pub struct ArenaCell<T: ArenaPod>(CellRepr<T>);

#[derive(Debug)]
enum CellRepr<T: ArenaPod> {
    Inline(T),
    /// Pinned at construction: the hot-path `get` is a plain dereference,
    /// never a per-access `base + offset` resolution.
    Arena(ArenaRef<T>),
}

impl<T: ArenaPod> ArenaCell<T> {
    /// Wraps a value stored inline in the owning structure.
    pub fn inline(value: T) -> Self {
        ArenaCell(CellRepr::Inline(value))
    }

    /// Allocates the value in `arena`, on its own cache line.
    pub fn new_in(arena: &Arc<Arena>, value: T) -> Self {
        ArenaCell(CellRepr::Arena(arena.alloc_with(value).pin(arena)))
    }

    /// Resolves the word, wherever it lives.
    #[inline]
    pub fn get(&self) -> &T {
        match &self.0 {
            CellRepr::Inline(value) => value,
            CellRepr::Arena(word) => word,
        }
    }

    /// The stable offset-derived [`Loc`] of an arena-resident word; `None`
    /// for inline cells (whose owner allocates a fresh global `Loc`).
    pub fn loc(&self) -> Option<Loc> {
        match &self.0 {
            CellRepr::Inline(_) => None,
            CellRepr::Arena(word) => Some(word.loc()),
        }
    }
}

impl<T: ArenaPod + Default> Default for ArenaCell<T> {
    fn default() -> Self {
        ArenaCell::inline(T::default())
    }
}

/// A relocatable handle to a contiguous `[T]` in an [`Arena`].
pub struct ArenaSlice<T> {
    offset: usize,
    len: usize,
    _marker: PhantomData<fn() -> T>,
}

impl<T> Clone for ArenaSlice<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for ArenaSlice<T> {}

impl<T> fmt::Debug for ArenaSlice<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ArenaSlice")
            .field("offset", &self.offset)
            .field("len", &self.len)
            .finish()
    }
}

impl<T: ArenaPod> ArenaSlice<T> {
    /// The byte offset of the first element within its arena.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Resolves the whole slice against its arena.
    pub fn get<'a>(&self, arena: &'a Arena) -> &'a [T] {
        arena.resolve_slice(self.offset, self.len)
    }

    /// Resolves element `index` (panics if out of range).
    pub fn at<'a>(&self, arena: &'a Arena, index: usize) -> &'a T {
        assert!(index < self.len, "arena slice index out of range");
        arena.resolve(self.offset + index * std::mem::size_of::<T>())
    }

    /// The stable [`Loc`] of element `index` (see [`Arena::loc_for`]).
    pub fn loc_at(&self, arena: &Arena, index: usize) -> Loc {
        assert!(index < self.len, "arena slice index out of range");
        arena.loc_for(self.offset + index * std::mem::size_of::<T>())
    }

    /// Resolves the slice **once** and pins the result (see
    /// [`ArenaBox::pin`]): the returned [`ArenaSliceRef`] dereferences to
    /// `&[T]` with no per-access resolution.
    pub fn pin(self, arena: &Arc<Arena>) -> ArenaSliceRef<T> {
        let resolved = arena.resolve_slice::<T>(self.offset, self.len);
        ArenaSliceRef {
            // An empty slice resolves to a dangling-but-well-aligned base,
            // exactly what from_raw_parts requires for len 0.
            ptr: NonNull::from(resolved).cast::<T>(),
            len: self.len,
            offset: self.offset,
            arena: Arc::clone(arena),
        }
    }
}

/// A pinned, pre-resolved view of a single `T` in an [`Arena`].
///
/// [`ArenaBox`] is the *relocatable* form of a handle — a bare offset that
/// survives a process boundary. `ArenaRef` is its in-process companion: the
/// `base + offset` resolution (bounds check included) happens **once**, at
/// [`ArenaBox::pin`], and the resulting pointer is stored next to an owning
/// [`Arc<Arena>`] so it can never dangle. Dereferencing is a plain pointer
/// access, which is what makes arena-backed structures match the performance
/// of their pre-arena `Box`-based layouts on hot paths.
pub struct ArenaRef<T: ArenaPod> {
    ptr: NonNull<T>,
    offset: usize,
    /// Keeps the storage mapped for as long as the pointer is handed out.
    arena: Arc<Arena>,
}

// Safety: the only access an ArenaRef offers is `&T`, and ArenaPod requires
// T: Sync (and Send); the Arc keeps the region alive on every thread.
unsafe impl<T: ArenaPod> Send for ArenaRef<T> {}
unsafe impl<T: ArenaPod> Sync for ArenaRef<T> {}

impl<T: ArenaPod> ArenaRef<T> {
    /// The byte offset of the value within its arena.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// The arena holding the value.
    pub fn arena(&self) -> &Arc<Arena> {
        &self.arena
    }

    /// The stable [`Loc`] of this word (see [`Arena::loc_for`]).
    pub fn loc(&self) -> Loc {
        self.arena.loc_for(self.offset)
    }

    /// The relocatable [`ArenaBox`] form of this handle (for shipping the
    /// location across a process boundary).
    pub fn handle(&self) -> ArenaBox<T> {
        ArenaBox {
            offset: self.offset,
            _marker: PhantomData,
        }
    }
}

impl<T: ArenaPod> std::ops::Deref for ArenaRef<T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        // Safety: pinned at construction from a bounds-checked resolve; the
        // owned Arc keeps the backing region mapped for &self's lifetime.
        unsafe { self.ptr.as_ref() }
    }
}

impl<T: ArenaPod> Clone for ArenaRef<T> {
    fn clone(&self) -> Self {
        ArenaRef {
            ptr: self.ptr,
            offset: self.offset,
            arena: Arc::clone(&self.arena),
        }
    }
}

impl<T: ArenaPod> fmt::Debug for ArenaRef<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ArenaRef")
            .field("offset", &self.offset)
            .finish()
    }
}

/// A pinned, pre-resolved view of a contiguous `[T]` in an [`Arena`]
/// (see [`ArenaRef`]; this is the slice form, produced by
/// [`ArenaSlice::pin`]).
pub struct ArenaSliceRef<T: ArenaPod> {
    ptr: NonNull<T>,
    len: usize,
    offset: usize,
    arena: Arc<Arena>,
}

// Safety: as for ArenaRef — shared access only, T: Sync, region kept alive.
unsafe impl<T: ArenaPod> Send for ArenaSliceRef<T> {}
unsafe impl<T: ArenaPod> Sync for ArenaSliceRef<T> {}

impl<T: ArenaPod> ArenaSliceRef<T> {
    /// The byte offset of the first element within its arena.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// The arena holding the elements.
    pub fn arena(&self) -> &Arc<Arena> {
        &self.arena
    }

    /// The stable [`Loc`] of element `index` (see [`Arena::loc_for`]).
    pub fn loc_at(&self, index: usize) -> Loc {
        assert!(index < self.len, "arena slice index out of range");
        self.arena
            .loc_for(self.offset + index * std::mem::size_of::<T>())
    }

    /// The relocatable [`ArenaSlice`] form of this handle.
    pub fn handle(&self) -> ArenaSlice<T> {
        ArenaSlice {
            offset: self.offset,
            len: self.len,
            _marker: PhantomData,
        }
    }
}

impl<T: ArenaPod> std::ops::Deref for ArenaSliceRef<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        // Safety: pinned at construction from a bounds-checked resolve_slice;
        // the owned Arc keeps the backing region mapped for &self's lifetime.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }
}

impl<T: ArenaPod> Clone for ArenaSliceRef<T> {
    fn clone(&self) -> Self {
        ArenaSliceRef {
            ptr: self.ptr,
            len: self.len,
            offset: self.offset,
            arena: Arc::clone(&self.arena),
        }
    }
}

impl<T: ArenaPod> fmt::Debug for ArenaSliceRef<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ArenaSliceRef")
            .field("offset", &self.offset)
            .field("len", &self.len)
            .finish()
    }
}

/// The calling operating-system process's identifier, for stamping lease
/// ownership in cross-process deployments (see the crash-robust reclamation
/// layer in the `adaptive_renaming` crate).
#[cfg(all(unix, not(miri)))]
pub fn os_pid() -> u32 {
    // SAFETY: getpid takes no arguments and cannot fail.
    #[allow(unsafe_code)]
    let pid = unsafe { libc::getpid() };
    pid as u32
}

/// Probes whether the operating-system process `pid` is alive: the classical
/// `kill(pid, 0)` existence check (signal 0 delivers nothing). A `0` pid is
/// reported alive — it addresses the caller's process group, never a
/// peer, so it can never be a crashed lease owner.
///
/// `EPERM` failures (a live process owned by another user) are
/// indistinguishable from death here; deployments sharing an arena across
/// users would need a richer probe. For the sibling processes forked by this
/// workspace's tests and benchmarks the check is exact.
#[cfg(all(unix, not(miri)))]
pub fn os_process_alive(pid: u32) -> bool {
    if pid == 0 {
        return true;
    }
    // SAFETY: signal 0 performs permission and existence checking only; no
    // signal is delivered to the target.
    #[allow(unsafe_code)]
    let rc = unsafe { libc::kill(pid as libc::pid_t, 0) };
    rc == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_cache_line_aligned_and_zeroed() {
        let arena = Arena::heap(4096);
        let a = arena.alloc::<AtomicU64>();
        let b = arena.alloc::<AtomicU64>();
        let s = arena.alloc_slice::<AtomicU64>(5);
        for offset in [a.offset(), b.offset(), s.offset()] {
            assert_eq!(offset % ARENA_ALIGN, 0, "allocation not line-aligned");
        }
        assert_ne!(a.offset(), b.offset());
        assert_eq!(a.get(&arena).load(Ordering::SeqCst), 0);
        assert!(s.get(&arena).iter().all(|w| w.load(Ordering::SeqCst) == 0));
        // Single allocations each own a full line; slices pack contiguously.
        assert!(b.offset() - a.offset() >= 64);
        let base = s.at(&arena, 0) as *const AtomicU64 as usize;
        let next = s.at(&arena, 1) as *const AtomicU64 as usize;
        assert_eq!(next - base, std::mem::size_of::<AtomicU64>());
        // The resolved base pointer is itself 64-byte aligned.
        assert_eq!(base % 64, 0);
    }

    #[test]
    fn alloc_with_and_slice_with_initialize_values() {
        let arena = Arena::heap(4096);
        let word = arena.alloc_with(AtomicU64::new(41));
        assert_eq!(word.get(&arena).load(Ordering::SeqCst), 41);
        let slab = arena.alloc_slice_with::<u64>(4, |i, loc| {
            assert!(!loc.is_anon());
            (i as u64) * 10
        });
        assert_eq!(slab.get(&arena), &[0, 10, 20, 30]);
    }

    #[test]
    fn derived_locs_are_stable_unique_and_tagged() {
        let arena = Arena::heap(4096);
        let a = arena.alloc::<AtomicU64>();
        let b = arena.alloc::<AtomicU64>();
        let la = a.loc(&arena);
        let lb = b.loc(&arena);
        assert_ne!(la, lb);
        assert_eq!(
            la,
            arena.loc_for(a.offset()),
            "locs are pure offset functions"
        );
        assert!(la.as_u64() & (1 << 63) != 0, "arena locs carry the tag bit");
        assert!(!la.is_anon());
        let s = arena.alloc_slice::<AtomicU64>(3);
        assert_ne!(s.loc_at(&arena, 0), s.loc_at(&arena, 1));
    }

    #[test]
    fn used_grows_in_line_multiples_and_remaining_tracks() {
        let arena = Arena::heap(1024);
        assert_eq!(arena.used(), 0);
        arena.alloc::<u8>();
        assert_eq!(arena.used(), 64, "even a byte claims a full line");
        arena.alloc_slice::<AtomicU64>(9); // 72 bytes -> 128
        assert_eq!(arena.used(), 192);
        assert_eq!(arena.remaining(), 1024 - 192);
    }

    #[test]
    #[should_panic(expected = "arena exhausted")]
    fn exhaustion_panics_with_context() {
        let arena = Arena::heap(128);
        arena.alloc_slice::<AtomicU64>(8);
        arena.alloc_slice::<AtomicU64>(9);
    }

    #[test]
    fn zero_capacity_and_oversize_are_rejected() {
        assert!(matches!(
            Arena::with_backend(ArenaBackend::Heap, 0),
            Err(ArenaError::InvalidCapacity(0))
        ));
        assert!(Arena::with_backend(ArenaBackend::Heap, MAX_ARENA_CAPACITY + 1).is_err());
    }

    #[test]
    fn backend_parse_and_display_round_trip() {
        assert_eq!("heap".parse::<ArenaBackend>().unwrap(), ArenaBackend::Heap);
        assert_eq!(
            "mmap".parse::<ArenaBackend>().unwrap(),
            ArenaBackend::Shared
        );
        assert_eq!(
            "shared".parse::<ArenaBackend>().unwrap(),
            ArenaBackend::Shared
        );
        assert!("bogus".parse::<ArenaBackend>().is_err());
        assert_eq!(ArenaBackend::Heap.to_string(), "heap");
        assert_eq!(ArenaBackend::default(), ArenaBackend::Heap);
    }

    #[test]
    fn concurrent_bump_hands_out_disjoint_lines() {
        let arena = Arena::heap(64 * 256);
        let offsets: Vec<usize> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let arena = Arc::clone(&arena);
                    s.spawn(move || {
                        (0..64)
                            .map(|_| arena.alloc::<AtomicU64>().offset())
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let mut sorted = offsets.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), offsets.len(), "no two allocations overlap");
    }

    #[cfg(all(unix, not(miri)))]
    #[test]
    fn shared_backend_allocates_and_stores() {
        let arena = Arena::shared(4096).expect("anonymous MAP_SHARED mapping");
        assert_eq!(arena.backend(), ArenaBackend::Shared);
        let word = arena.alloc_with(AtomicU64::new(3));
        word.get(&arena).fetch_add(4, Ordering::SeqCst);
        assert_eq!(word.get(&arena).load(Ordering::SeqCst), 7);
    }

    #[cfg(all(unix, not(miri)))]
    mod file_backend {
        use super::*;

        fn scratch_path(tag: &str) -> std::path::PathBuf {
            let path = std::env::temp_dir().join(format!(
                "arena_{}_{}_{tag}.shm",
                std::process::id(),
                NEXT_ARENA_ID.load(Ordering::SeqCst)
            ));
            let _ = std::fs::remove_file(&path);
            path
        }

        #[test]
        fn create_write_drop_attach_round_trips_bytes() {
            let path = scratch_path("roundtrip");
            let created = Arena::file_create(&path, 4096).expect("file arena");
            assert_eq!(created.backend(), ArenaBackend::File);
            assert_eq!(created.path(), Some(path.as_path()));
            assert_eq!(created.attach_epoch(), Some(1));
            assert!(!created.was_dirty(), "the creator never sees dirt");
            assert!(created.is_dirty(), "attached processes raise the flag");
            assert!(!created.preserves_contents());
            let word = created.alloc_with(AtomicU64::new(7));
            let slab = created.alloc_slice::<AtomicU64>(4);
            slab.at(&created, 2).store(99, Ordering::SeqCst);
            word.get(&created).store(41, Ordering::SeqCst);
            drop(created);

            // A fresh, unrelated mapping of the same path sees the bytes.
            let attached = Arena::file_attach(&path).expect("attach by path");
            assert!(attached.preserves_contents());
            assert_eq!(attached.attach_epoch(), Some(2));
            assert!(attached.was_dirty(), "no clean handshake happened");
            // Re-run the same allocation sequence: same offsets, preserved
            // values (alloc_with must NOT overwrite the surviving 41).
            let word2 = attached.alloc_with(AtomicU64::new(0));
            let slab2 = attached.alloc_slice::<AtomicU64>(4);
            assert_eq!(word2.offset(), word.offset());
            assert_eq!(slab2.offset(), slab.offset());
            assert_eq!(word2.get(&attached).load(Ordering::SeqCst), 41);
            assert_eq!(slab2.at(&attached, 2).load(Ordering::SeqCst), 99);
            std::fs::remove_file(&path).unwrap();
        }

        #[test]
        fn clean_handshake_clears_the_dirty_flag_for_the_next_attach() {
            let path = scratch_path("clean");
            let created = Arena::file_create(&path, 1024).expect("file arena");
            created.mark_clean();
            assert!(!created.is_dirty());
            drop(created);
            let attached = Arena::file_attach(&path).expect("attach");
            assert!(!attached.was_dirty(), "the handshake was completed");
            assert!(attached.is_dirty(), "but attaching re-raises the flag");
            std::fs::remove_file(&path).unwrap();
        }

        #[test]
        fn header_validation_rejects_non_arenas_and_torn_creates() {
            // Not a file at all.
            let missing = scratch_path("missing");
            assert!(matches!(
                Arena::file_attach(&missing),
                Err(ArenaError::Io(_))
            ));
            // A too-small file cannot hold the header.
            let tiny = scratch_path("tiny");
            std::fs::write(&tiny, b"hi").unwrap();
            assert!(matches!(
                Arena::file_attach(&tiny),
                Err(ArenaError::BadHeader(_))
            ));
            std::fs::remove_file(&tiny).unwrap();
            // A right-sized file of zeros has no magic: exactly what a
            // create torn before its final magic store leaves behind.
            let torn = scratch_path("torn");
            std::fs::write(&torn, vec![0u8; 4096 + FILE_HEADER_BYTES]).unwrap();
            assert!(matches!(
                Arena::file_attach(&torn),
                Err(ArenaError::BadHeader(_))
            ));
            std::fs::remove_file(&torn).unwrap();
        }

        #[test]
        fn create_refuses_existing_files_and_with_backend_needs_a_path() {
            let path = scratch_path("exists");
            let arena = Arena::file_create(&path, 1024).expect("file arena");
            assert!(matches!(
                Arena::file_create(&path, 1024),
                Err(ArenaError::Io(_))
            ));
            drop(arena);
            std::fs::remove_file(&path).unwrap();
            assert!(matches!(
                Arena::with_backend(ArenaBackend::File, 1024),
                Err(ArenaError::PathRequired)
            ));
            assert!(matches!(
                Arena::file_create(scratch_path("zero"), 0),
                Err(ArenaError::InvalidCapacity(0))
            ));
        }

        #[test]
        fn file_backend_parses_and_displays() {
            assert_eq!("file".parse::<ArenaBackend>().unwrap(), ArenaBackend::File);
            assert_eq!("named".parse::<ArenaBackend>().unwrap(), ArenaBackend::File);
            assert_eq!(ArenaBackend::File.to_string(), "file");
        }

        #[test]
        fn header_line_is_reserved_and_capacity_accounts_for_it() {
            let path = scratch_path("layout");
            let arena = Arena::file_create(&path, 1024).expect("file arena");
            // The first allocation lands after the header line.
            let first = arena.alloc::<AtomicU64>();
            assert_eq!(first.offset(), FILE_HEADER_BYTES);
            // The full requested capacity is usable beyond the header.
            assert_eq!(arena.remaining(), 1024 - 64);
            let header = arena.file_header().expect("file arenas have headers");
            assert_eq!(header.magic.load(Ordering::SeqCst), ARENA_MAGIC);
            assert_eq!(header.capacity.load(Ordering::SeqCst), 1024);
            drop(arena);
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[cfg(miri)]
    #[test]
    fn shared_backend_is_rejected_under_miri() {
        assert!(matches!(
            Arena::with_backend(ArenaBackend::Shared, 4096),
            Err(ArenaError::UnsupportedBackend(_))
        ));
    }

    #[test]
    fn pinned_refs_alias_their_handles_and_survive_threads() {
        let arena = Arena::heap(4096);
        let word = arena.alloc_with(AtomicU64::new(3));
        let pinned = word.pin(&arena);
        // Same offset, same Loc, same physical word as the relocatable form.
        assert_eq!(pinned.offset(), word.offset());
        assert_eq!(pinned.loc(), word.loc(&arena));
        assert_eq!(pinned.handle().offset(), word.offset());
        word.get(&arena).store(9, Ordering::SeqCst);
        assert_eq!(pinned.load(Ordering::SeqCst), 9);

        let slab = arena.alloc_slice::<AtomicU64>(4);
        let pinned_slab = slab.pin(&arena);
        assert_eq!(pinned_slab.len(), 4);
        assert_eq!(pinned_slab.offset(), slab.offset());
        assert_eq!(pinned_slab.loc_at(2), slab.loc_at(&arena, 2));
        assert_eq!(pinned_slab.handle().len(), 4);
        slab.at(&arena, 2).store(7, Ordering::SeqCst);
        assert_eq!(pinned_slab[2].load(Ordering::SeqCst), 7);

        // Clones are cheap aliases, and refs cross threads (the Arc inside
        // keeps the region alive even if the caller drops its own handle).
        let other = pinned.clone();
        drop(arena);
        std::thread::scope(|scope| {
            scope.spawn(move || other.fetch_add(1, Ordering::SeqCst));
        });
        assert_eq!(pinned.load(Ordering::SeqCst), 10);
        assert!(format!("{pinned:?}").contains("ArenaRef"));
        assert!(format!("{pinned_slab:?}").contains("ArenaSliceRef"));
    }
}
