//! Multi-threaded execution harness.
//!
//! The [`Executor`] runs `k` processes — each an OS thread executing the same
//! closure against `Arc`-shared objects — under an adversarial
//! [`ExecConfig`]: arrival schedule, yield
//! injection and crash injection. It collects every process's return value and
//! step statistics into an [`ExecutionOutcome`], the raw material for all
//! correctness checks and experiments.

use crate::adversary::ExecConfig;
use crate::process::{install_crash_panic_silencer, CrashSignal, ProcessCtx, ProcessId};
use crate::steps::{StepStats, StepSummary};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::panic::AssertUnwindSafe;
use std::time::Duration;

/// The fate of one process in an execution.
#[derive(Clone, Debug, PartialEq)]
pub enum ProcessOutcome<R> {
    /// The process's operation returned a value.
    Completed {
        /// The value returned by the process's closure.
        result: R,
        /// Shared-memory steps the process took.
        steps: StepStats,
    },
    /// The process crashed (stopped taking steps) before returning.
    Crashed {
        /// Shared-memory steps the process took before crashing.
        steps: StepStats,
    },
}

impl<R> ProcessOutcome<R> {
    /// The steps taken by the process, whether or not it completed.
    pub fn steps(&self) -> StepStats {
        match self {
            ProcessOutcome::Completed { steps, .. } | ProcessOutcome::Crashed { steps } => *steps,
        }
    }

    /// The result if the process completed.
    pub fn result(&self) -> Option<&R> {
        match self {
            ProcessOutcome::Completed { result, .. } => Some(result),
            ProcessOutcome::Crashed { .. } => None,
        }
    }

    /// Whether the process crashed.
    pub fn is_crashed(&self) -> bool {
        matches!(self, ProcessOutcome::Crashed { .. })
    }
}

/// The collected results of one adversarial execution of `k` processes.
#[must_use = "an execution outcome carries the results and step statistics every check needs"]
#[derive(Clone, Debug, PartialEq)]
pub struct ExecutionOutcome<R> {
    outcomes: Vec<(ProcessId, ProcessOutcome<R>)>,
}

impl<R> ExecutionOutcome<R> {
    /// Assembles an outcome from per-process reports (used by the executors).
    pub(crate) fn from_outcomes(outcomes: Vec<(ProcessId, ProcessOutcome<R>)>) -> Self {
        ExecutionOutcome { outcomes }
    }

    /// Number of processes that participated (completed or crashed).
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether no process participated.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Iterates over `(process, outcome)` pairs in process-index order.
    pub fn iter(&self) -> impl Iterator<Item = &(ProcessId, ProcessOutcome<R>)> {
        self.outcomes.iter()
    }

    /// Iterates over the processes that completed, with their results.
    pub fn completed(&self) -> impl Iterator<Item = (ProcessId, &R)> {
        self.outcomes
            .iter()
            .filter_map(|(id, outcome)| match outcome {
                ProcessOutcome::Completed { result, .. } => Some((*id, result)),
                ProcessOutcome::Crashed { .. } => None,
            })
    }

    /// The results of all completed processes, in process-index order.
    pub fn results(&self) -> Vec<R>
    where
        R: Clone,
    {
        self.completed().map(|(_, r)| r.clone()).collect()
    }

    /// The results of all completed processes, sorted ascending.
    ///
    /// Replaces the ubiquitous `let mut v = outcome.results();
    /// v.sort_unstable();` pattern in tests and examples.
    ///
    /// # Example
    ///
    /// ```
    /// use shmem::executor::Executor;
    ///
    /// let outcome = Executor::with_seed(3).run(4, |ctx| ctx.id().as_usize());
    /// assert_eq!(outcome.results_sorted(), vec![0, 1, 2, 3]);
    /// ```
    pub fn results_sorted(&self) -> Vec<R>
    where
        R: Clone + Ord,
    {
        let mut results = self.results();
        results.sort_unstable();
        results
    }

    /// Number of processes that crashed.
    pub fn crashed_count(&self) -> usize {
        self.outcomes.iter().filter(|(_, o)| o.is_crashed()).count()
    }

    /// Per-process step statistics (completed and crashed alike), in
    /// process-index order.
    pub fn per_process_steps(&self) -> Vec<StepStats> {
        self.outcomes.iter().map(|(_, o)| o.steps()).collect()
    }

    /// Step statistics of completed processes only.
    pub fn completed_steps(&self) -> Vec<StepStats> {
        self.outcomes
            .iter()
            .filter(|(_, o)| !o.is_crashed())
            .map(|(_, o)| o.steps())
            .collect()
    }

    /// Total steps across all processes.
    pub fn total_steps(&self) -> StepStats {
        self.outcomes.iter().map(|(_, o)| o.steps()).sum()
    }

    /// Summary statistics (max / mean / total) over per-process step counts.
    pub fn step_summary(&self) -> StepSummary {
        StepSummary::from_stats(&self.per_process_steps())
    }
}

impl<R> ExecutionOutcome<Vec<R>> {
    /// Flattens the per-process result vectors of a multi-operation execution
    /// (each process performing several operations and returning a `Vec`)
    /// into one list over all completed processes, in process-index order.
    pub fn flattened(&self) -> Vec<R>
    where
        R: Clone,
    {
        self.completed()
            .flat_map(|(_, ops)| ops.iter().cloned())
            .collect()
    }

    /// Like [`ExecutionOutcome::flattened`], sorted ascending.
    pub fn flattened_sorted(&self) -> Vec<R>
    where
        R: Clone + Ord,
    {
        let mut results = self.flattened();
        results.sort_unstable();
        results
    }
}

impl<R> IntoIterator for ExecutionOutcome<R> {
    type Item = (ProcessId, ProcessOutcome<R>);
    type IntoIter = std::vec::IntoIter<Self::Item>;

    fn into_iter(self) -> Self::IntoIter {
        self.outcomes.into_iter()
    }
}

impl<'a, R> IntoIterator for &'a ExecutionOutcome<R> {
    type Item = &'a (ProcessId, ProcessOutcome<R>);
    type IntoIter = std::slice::Iter<'a, (ProcessId, ProcessOutcome<R>)>;

    fn into_iter(self) -> Self::IntoIter {
        self.outcomes.iter()
    }
}

/// Runs `k` processes concurrently against shared objects under an
/// adversarial configuration.
///
/// # Example
///
/// ```
/// use shmem::adversary::ExecConfig;
/// use shmem::executor::Executor;
/// use shmem::register::AtomicUsizeRegister;
/// use std::sync::Arc;
///
/// let slots = Arc::new(AtomicUsizeRegister::new(0));
/// let exec = Executor::new(ExecConfig::new(1));
/// let outcome = exec.run(4, {
///     let slots = Arc::clone(&slots);
///     move |ctx| slots.fetch_add(ctx, 1)
/// });
/// assert_eq!(outcome.results_sorted(), vec![0, 1, 2, 3]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Executor {
    config: ExecConfig,
}

impl Executor {
    /// Creates an executor with the given adversarial configuration.
    pub fn new(config: ExecConfig) -> Self {
        Executor { config }
    }

    /// Creates an executor with a benign configuration and the given seed.
    pub fn with_seed(seed: u64) -> Self {
        Executor {
            config: ExecConfig::new(seed),
        }
    }

    /// The configuration this executor runs with.
    pub fn config(&self) -> &ExecConfig {
        &self.config
    }

    /// Runs `k` processes with consecutive identifiers `0..k`.
    ///
    /// Each process executes `f(&mut ctx)`; the closure is shared by all
    /// processes, so per-process state must live in the `ProcessCtx` or in
    /// values captured behind `Arc`.
    pub fn run<R, F>(&self, k: usize, f: F) -> ExecutionOutcome<R>
    where
        R: Send,
        F: Fn(&mut ProcessCtx) -> R + Send + Sync,
    {
        let ids: Vec<ProcessId> = (0..k).map(ProcessId::new).collect();
        self.run_with_ids(&ids, f)
    }

    /// Runs one process per entry of `ids`, using each entry as the process's
    /// initial name. This is how experiments model a large, sparse initial
    /// namespace (`M ≫ k`).
    pub fn run_with_ids<R, F>(&self, ids: &[ProcessId], f: F) -> ExecutionOutcome<R>
    where
        R: Send,
        F: Fn(&mut ProcessCtx) -> R + Send + Sync,
    {
        install_crash_panic_silencer();
        let k = ids.len();
        if k == 0 {
            return ExecutionOutcome {
                outcomes: Vec::new(),
            };
        }

        // Pre-compute each process's adversarial parameters from the global
        // seed so the whole execution is reproducible.
        let mut plan_rng = StdRng::seed_from_u64(self.config.seed ^ 0xA5A5_5A5A_DEAD_BEEF);
        let params: Vec<(ProcessId, Duration, Option<u64>)> = ids
            .iter()
            .enumerate()
            .map(|(index, id)| {
                let delay = self.config.arrival.delay_for(index, &mut plan_rng);
                let crash_at = self.config.crash_plan.crash_step_for(index, &mut plan_rng);
                (*id, delay, crash_at)
            })
            .collect();

        let barrier = std::sync::Barrier::new(k);
        let use_barrier = self.config.arrival.uses_barrier();
        let f = &f;
        let barrier = &barrier;
        let yield_policy = self.config.yield_policy;
        let seed = self.config.seed;

        let mut outcomes: Vec<(ProcessId, ProcessOutcome<R>)> = Vec::with_capacity(k);
        std::thread::scope(|scope| {
            let handles: Vec<_> = params
                .iter()
                .map(|&(id, delay, crash_at)| {
                    scope.spawn(move || {
                        if use_barrier {
                            barrier.wait();
                        }
                        if !delay.is_zero() {
                            std::thread::sleep(delay);
                        }
                        let mut ctx = ProcessCtx::with_adversary(id, seed, yield_policy, crash_at);
                        let run = std::panic::catch_unwind(AssertUnwindSafe(|| f(&mut ctx)));
                        match run {
                            Ok(result) => (
                                id,
                                ProcessOutcome::Completed {
                                    result,
                                    steps: ctx.stats(),
                                },
                            ),
                            Err(payload) => {
                                if let Some(signal) = payload.downcast_ref::<CrashSignal>() {
                                    (
                                        id,
                                        ProcessOutcome::Crashed {
                                            steps: signal.steps,
                                        },
                                    )
                                } else {
                                    // A genuine bug in the algorithm under
                                    // test: propagate it.
                                    std::panic::resume_unwind(payload)
                                }
                            }
                        }
                    })
                })
                .collect();
            for handle in handles {
                outcomes.push(handle.join().expect("process thread panicked"));
            }
        });

        ExecutionOutcome { outcomes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{ArrivalSchedule, CrashPlan, YieldPolicy};
    use crate::register::AtomicUsizeRegister;
    use std::sync::Arc;

    #[test]
    fn run_with_zero_processes_is_empty() {
        let outcome: ExecutionOutcome<()> = Executor::with_seed(0).run(0, |_| ());
        assert!(outcome.is_empty());
        assert_eq!(outcome.len(), 0);
        assert_eq!(outcome.total_steps().total_all(), 0);
    }

    #[test]
    fn every_process_completes_and_reports_steps() {
        let reg = Arc::new(AtomicUsizeRegister::new(0));
        let outcome = Executor::with_seed(7).run(8, {
            let reg = Arc::clone(&reg);
            move |ctx| {
                reg.write(ctx, ctx.id().as_usize());
                reg.read(ctx)
            }
        });
        assert_eq!(outcome.len(), 8);
        assert_eq!(outcome.crashed_count(), 0);
        assert_eq!(outcome.completed().count(), 8);
        for stats in outcome.per_process_steps() {
            assert_eq!(stats.total(), 2);
        }
        assert_eq!(outcome.total_steps().total(), 16);
        assert_eq!(outcome.step_summary().processes, 8);
    }

    #[test]
    fn fetch_add_hands_out_distinct_values_under_contention() {
        let reg = Arc::new(AtomicUsizeRegister::new(0));
        let outcome =
            Executor::new(ExecConfig::new(3).with_yield_policy(YieldPolicy::Probabilistic(0.3)))
                .run(16, {
                    let reg = Arc::clone(&reg);
                    move |ctx| reg.fetch_add(ctx, 1)
                });
        assert_eq!(outcome.results_sorted(), (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn run_with_ids_passes_sparse_initial_names() {
        let ids = vec![
            ProcessId::new(10),
            ProcessId::new(999),
            ProcessId::new(5000),
        ];
        let outcome = Executor::with_seed(1).run_with_ids(&ids, |ctx| ctx.id().as_usize());
        assert_eq!(outcome.results_sorted(), vec![10, 999, 5000]);
    }

    #[test]
    fn crashed_processes_are_reported_not_joined_on() {
        let reg = Arc::new(AtomicUsizeRegister::new(0));
        let config = ExecConfig::new(11).with_crash_plan(CrashPlan::Fixed(vec![
            Some(3),
            None,
            Some(1),
            None,
        ]));
        let outcome = Executor::new(config).run(4, {
            let reg = Arc::clone(&reg);
            move |ctx| {
                for _ in 0..10 {
                    reg.fetch_add(ctx, 1);
                }
                ctx.id().as_usize()
            }
        });
        assert_eq!(outcome.len(), 4);
        assert_eq!(outcome.crashed_count(), 2);
        assert_eq!(outcome.completed().count(), 2);
        // Crashed processes still report the steps they took before stopping.
        for (_, o) in outcome.iter().filter(|(_, o)| o.is_crashed()) {
            assert!(o.steps().total_all() >= 1);
            assert!(o.result().is_none());
        }
    }

    #[test]
    fn staggered_and_jittered_arrivals_still_complete() {
        for arrival in [
            ArrivalSchedule::Staggered {
                gap: Duration::from_micros(200),
            },
            ArrivalSchedule::RandomJitter {
                max_delay: Duration::from_micros(500),
            },
            ArrivalSchedule::Unsynchronized,
        ] {
            let outcome = Executor::new(ExecConfig::new(5).with_arrival(arrival)).run(6, |ctx| {
                ctx.flip();
                ctx.id().as_usize()
            });
            assert_eq!(outcome.completed().count(), 6);
        }
    }

    #[test]
    fn execution_outcome_into_iter_yields_all_processes() {
        let outcome = Executor::with_seed(2).run(3, |ctx| ctx.id().as_usize());
        let borrowed: Vec<_> = (&outcome).into_iter().collect();
        assert_eq!(borrowed.len(), 3);
        let collected: Vec<_> = outcome.into_iter().collect();
        assert_eq!(collected.len(), 3);
    }

    #[test]
    fn multi_operation_outcomes_flatten() {
        let outcome = Executor::with_seed(4).run(3, |ctx| {
            let base = ctx.id().as_usize() * 10;
            vec![base, base + 1]
        });
        assert_eq!(outcome.flattened().len(), 6);
        assert_eq!(outcome.flattened_sorted(), vec![0, 1, 10, 11, 20, 21]);
    }

    #[test]
    #[should_panic(expected = "process thread panicked")]
    fn genuine_panics_inside_processes_propagate() {
        let _ = Executor::with_seed(0).run(2, |ctx| {
            if ctx.id().as_usize() == 1 {
                panic!("algorithm bug");
            }
            0usize
        });
    }
}
