//! Process identities and the per-process execution context.
//!
//! Every algorithm in this workspace is written in direct style: a process is
//! a closure that performs shared-memory operations on `Arc`-shared objects.
//! The closure receives a [`ProcessCtx`] carrying everything the paper's model
//! attaches to a process — its identity (initial name), its local coin flips,
//! the step accounting of §2, and the adversary's scheduling/crash decisions.

use crate::adversary::YieldPolicy;
use crate::steps::{StepKind, StepStats};
use crate::vexec::{Gate, Loc, PendingOp, ScheduleAbort};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::sync::Arc;

/// A process identifier — the process's *initial name* drawn from the large
/// namespace of size `M` (§2). Identifiers need not be consecutive; renaming
/// exists precisely to map them down to a small namespace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(usize);

impl ProcessId {
    /// Creates a process identifier from its initial name.
    pub fn new(id: usize) -> Self {
        ProcessId(id)
    }

    /// The identifier as a `usize`.
    pub fn as_usize(&self) -> usize {
        self.0
    }

    /// The identifier as a `u64`.
    pub fn as_u64(&self) -> u64 {
        self.0 as u64
    }
}

impl From<usize> for ProcessId {
    fn from(id: usize) -> Self {
        ProcessId(id)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Panic payload used internally to simulate a crash fault: the process stops
/// taking steps and never returns from its operation.
///
/// The [`Executor`](crate::executor::Executor) catches this payload and
/// reports the process as crashed together with the steps it took before
/// stopping. User code never observes it.
#[derive(Clone, Copy, Debug)]
pub struct CrashSignal {
    /// The process that crashed.
    pub id: ProcessId,
    /// Steps the process had taken when it crashed.
    pub steps: StepStats,
}

/// Installs a process-wide panic hook that suppresses the default "thread
/// panicked" message for the internal [`CrashSignal`] payload, while
/// delegating every other panic to the previously installed hook.
///
/// The executor calls this once before simulating crashes so injected crash
/// faults do not flood test output. Calling it multiple times is harmless.
pub fn install_crash_panic_silencer() {
    use std::sync::Once;
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<CrashSignal>().is_none() {
                previous(info);
            }
        }));
    });
}

/// Per-process execution context: identity, seeded randomness, step
/// accounting, adversarial yield injection and crash injection.
///
/// Shared objects take `&mut ProcessCtx` on every operation and call
/// [`ProcessCtx::record`] once per shared-memory step, which keeps the cost
/// model centralized in the substrate instead of scattered through algorithm
/// code.
///
/// # Example
///
/// ```
/// use shmem::process::{ProcessCtx, ProcessId};
/// use shmem::steps::StepKind;
///
/// let mut ctx = ProcessCtx::new(ProcessId::new(3), 12345);
/// ctx.record(StepKind::RegisterRead);
/// let coin = ctx.flip();
/// assert!(coin == 0 || coin == 1);
/// assert_eq!(ctx.stats().reads, 1);
/// assert_eq!(ctx.stats().coin_flips, 1);
/// ```
#[derive(Debug)]
pub struct ProcessCtx {
    id: ProcessId,
    rng: StdRng,
    stats: StepStats,
    yield_policy: YieldPolicy,
    crash_at: Option<u64>,
    flipped_since_last_shared_op: bool,
    gate: Option<Arc<Gate>>,
}

impl ProcessCtx {
    /// Creates a context with no adversarial yielding and no crash plan.
    ///
    /// The random stream is derived from `seed` and the process identifier so
    /// distinct processes sharing a global seed still flip independent coins.
    pub fn new(id: ProcessId, seed: u64) -> Self {
        Self::with_adversary(id, seed, YieldPolicy::None, None)
    }

    /// Creates a context with an explicit yield policy and optional crash
    /// step (the total number of shared-memory steps after which the process
    /// crashes).
    pub fn with_adversary(
        id: ProcessId,
        seed: u64,
        yield_policy: YieldPolicy,
        crash_at: Option<u64>,
    ) -> Self {
        let stream = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(id.as_u64().wrapping_mul(0xD1B5_4A32_D192_ED03));
        ProcessCtx {
            id,
            rng: StdRng::seed_from_u64(stream),
            stats: StepStats::new(),
            yield_policy,
            crash_at,
            flipped_since_last_shared_op: false,
            gate: None,
        }
    }

    /// Installs the virtual executor's per-process gate: every subsequent
    /// non-local recorded step parks on it before the operation executes,
    /// handing the scheduling decision to the coordinator.
    pub(crate) fn install_gate(&mut self, gate: Arc<Gate>) {
        self.gate = Some(gate);
    }

    /// The process identifier (initial name).
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// A snapshot of the steps taken so far.
    pub fn stats(&self) -> StepStats {
        self.stats
    }

    /// Records one shared-memory step of the given kind, then applies the
    /// adversary's yield policy and crash plan.
    ///
    /// Equivalent to [`ProcessCtx::record_at`] with the anonymous location
    /// [`Loc::ANON`], which the schedule explorer treats as conflicting with
    /// every other operation. Registers pass their real location through
    /// `record_at`; call sites without a meaningful location (accounting
    /// markers) can keep using `record`.
    ///
    /// # Panics
    ///
    /// Panics with an internal [`CrashSignal`] payload when the configured
    /// crash step is reached; the executor converts this into a
    /// [`ProcessOutcome::Crashed`](crate::executor::ProcessOutcome) report.
    pub fn record(&mut self, kind: StepKind) {
        self.record_at(kind, Loc::ANON);
    }

    /// Records one shared-memory step of the given kind on the given
    /// location, then applies the adversary's yield policy and crash plan.
    ///
    /// This is the instrumentation point of the virtual executor
    /// ([`VirtualExecutor`](crate::vexec::VirtualExecutor)): when a gate is
    /// installed, the process parks here — *before* the operation's atomic
    /// access executes — announcing `(kind, loc)`, and proceeds only once the
    /// scheduler grants it the step.
    ///
    /// # Panics
    ///
    /// Panics with an internal [`CrashSignal`] payload when the configured
    /// crash step is reached, and with an internal
    /// [`ScheduleAbort`] payload when the
    /// virtual executor abandons the execution.
    pub fn record_at(&mut self, kind: StepKind, loc: Loc) {
        self.stats.record(kind);
        if kind != StepKind::CoinFlip {
            self.flipped_since_last_shared_op = false;
        }
        if let Some(limit) = self.crash_at {
            if self.stats.total_all() >= limit {
                std::panic::panic_any(CrashSignal {
                    id: self.id,
                    steps: self.stats,
                });
            }
        }
        if let Some(gate) = &self.gate {
            let op = PendingOp::step(kind, loc);
            if op.access != crate::vexec::AccessClass::Local {
                let gate = Arc::clone(gate);
                if !gate.park(op) {
                    std::panic::panic_any(ScheduleAbort);
                }
            }
            // Yields are meaningless under cooperative serialization.
            return;
        }
        if self
            .yield_policy
            .should_yield(self.stats.total_all(), &mut self.rng)
        {
            std::thread::yield_now();
        }
    }

    /// Records a coin-flip step if this is the first flip since the last
    /// shared-memory operation (the paper counts all coin flips between two
    /// shared-memory operations as a single step, §2).
    fn record_flip(&mut self) {
        if !self.flipped_since_last_shared_op {
            self.flipped_since_last_shared_op = true;
            self.stats.record(StepKind::CoinFlip);
        }
    }

    /// Flips a fair coin, returning 0 or 1.
    pub fn flip(&mut self) -> u8 {
        self.record_flip();
        self.rng.gen_range(0..2u8)
    }

    /// Flips a biased coin that is `true` with probability `p` (clamped to
    /// `[0, 1]`).
    pub fn flip_with_probability(&mut self, p: f64) -> bool {
        self.record_flip();
        self.rng.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Draws a uniformly random index in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn random_index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "random_index bound must be positive");
        self.record_flip();
        self.rng.gen_range(0..bound)
    }

    /// Draws a uniformly random value in the inclusive range `[low, high]`.
    ///
    /// # Panics
    ///
    /// Panics if `low > high`.
    pub fn random_in(&mut self, low: u64, high: u64) -> u64 {
        assert!(low <= high, "random_in requires low <= high");
        self.record_flip();
        self.rng.gen_range(low..=high)
    }

    /// Mutable access to the raw random number generator for callers that need
    /// more elaborate distributions. The caller is responsible for recording a
    /// coin-flip step if the draw influences shared-memory behaviour.
    pub fn rng(&mut self) -> &mut impl Rng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_id_conversions_round_trip() {
        let id = ProcessId::new(17);
        assert_eq!(id.as_usize(), 17);
        assert_eq!(id.as_u64(), 17);
        assert_eq!(ProcessId::from(17usize), id);
        assert_eq!(format!("{id}"), "p17");
    }

    #[test]
    fn record_counts_steps_by_kind() {
        let mut ctx = ProcessCtx::new(ProcessId::new(0), 1);
        ctx.record(StepKind::RegisterRead);
        ctx.record(StepKind::RegisterWrite);
        ctx.record(StepKind::ReadModifyWrite);
        ctx.record(StepKind::TasInvocation);
        let stats = ctx.stats();
        assert_eq!(stats.reads, 1);
        assert_eq!(stats.writes, 1);
        assert_eq!(stats.rmws, 1);
        assert_eq!(stats.tas_invocations, 1);
    }

    #[test]
    fn consecutive_flips_count_as_one_step() {
        let mut ctx = ProcessCtx::new(ProcessId::new(0), 1);
        ctx.flip();
        ctx.flip();
        ctx.random_index(10);
        assert_eq!(ctx.stats().coin_flips, 1);

        // A shared-memory operation resets the batch.
        ctx.record(StepKind::RegisterRead);
        ctx.flip();
        ctx.flip_with_probability(0.5);
        assert_eq!(ctx.stats().coin_flips, 2);
    }

    #[test]
    fn distinct_processes_draw_distinct_streams() {
        let mut a = ProcessCtx::new(ProcessId::new(0), 99);
        let mut b = ProcessCtx::new(ProcessId::new(1), 99);
        let draws_a: Vec<usize> = (0..32).map(|_| a.random_index(1_000_000)).collect();
        let draws_b: Vec<usize> = (0..32).map(|_| b.random_index(1_000_000)).collect();
        assert_ne!(draws_a, draws_b);
    }

    #[test]
    fn same_seed_and_id_reproduce_the_stream() {
        let mut a = ProcessCtx::new(ProcessId::new(4), 7);
        let mut b = ProcessCtx::new(ProcessId::new(4), 7);
        let draws_a: Vec<u64> = (0..32).map(|_| a.random_in(0, 1 << 40)).collect();
        let draws_b: Vec<u64> = (0..32).map(|_| b.random_in(0, 1 << 40)).collect();
        assert_eq!(draws_a, draws_b);
    }

    #[test]
    fn random_index_stays_in_bounds() {
        let mut ctx = ProcessCtx::new(ProcessId::new(2), 5);
        for _ in 0..200 {
            assert!(ctx.random_index(7) < 7);
        }
        for _ in 0..200 {
            let v = ctx.random_in(3, 9);
            assert!((3..=9).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn random_index_rejects_zero_bound() {
        let mut ctx = ProcessCtx::new(ProcessId::new(0), 0);
        ctx.random_index(0);
    }

    #[test]
    fn crash_at_panics_with_crash_signal() {
        install_crash_panic_silencer();
        let result = std::panic::catch_unwind(|| {
            let mut ctx =
                ProcessCtx::with_adversary(ProcessId::new(5), 0, YieldPolicy::None, Some(2));
            ctx.record(StepKind::RegisterRead);
            ctx.record(StepKind::RegisterWrite); // reaches the crash limit
            ctx.record(StepKind::RegisterRead); // never executed
        });
        let payload = result.expect_err("crash must unwind");
        let signal = payload
            .downcast_ref::<CrashSignal>()
            .expect("payload must be a CrashSignal");
        assert_eq!(signal.id, ProcessId::new(5));
        assert_eq!(signal.steps.total_all(), 2);
    }

    #[test]
    fn yield_policy_every_step_still_counts_correctly() {
        let mut ctx =
            ProcessCtx::with_adversary(ProcessId::new(1), 3, YieldPolicy::EveryStep, None);
        for _ in 0..10 {
            ctx.record(StepKind::RegisterRead);
        }
        assert_eq!(ctx.stats().reads, 10);
    }
}
