//! Multi-writer multi-reader atomic registers with step accounting.
//!
//! The paper's processes "communicate through multiple-writer-multiple-reader
//! atomic registers" (§2). Registers here are backed by `std` atomics (for the
//! common word-sized cases) or a `parking_lot` lock (for arbitrary `Copy`
//! values); both give linearizable single-word semantics, and every operation
//! reports exactly one step to the calling process's [`ProcessCtx`].
//!
//! Read-modify-write operations (`compare_and_swap`, `swap`, `fetch_add`) are
//! also provided. The renaming algorithms themselves never need them — they
//! are used by baseline implementations (e.g. a CAS counter) and by the
//! hardware test-and-set object that the paper's "unit-cost test-and-set"
//! bounds assume.

use crate::arena::{Arena, ArenaCell};
use crate::process::ProcessCtx;
use crate::steps::StepKind;
use crate::vexec::Loc;
use parking_lot::RwLock;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// A multi-writer multi-reader atomic register holding a `u64`.
#[derive(Debug)]
pub struct AtomicU64Register {
    cell: ArenaCell<AtomicU64>,
    loc: Loc,
}

impl Default for AtomicU64Register {
    fn default() -> Self {
        AtomicU64Register::new(0)
    }
}

impl AtomicU64Register {
    /// Creates a register with the given initial value.
    pub fn new(initial: u64) -> Self {
        AtomicU64Register {
            cell: ArenaCell::inline(AtomicU64::new(initial)),
            loc: Loc::fresh(),
        }
    }

    /// Creates a register whose word lives in `arena`, on its own cache
    /// line. The register's [`Loc`] is derived from the word's offset
    /// ([`Arena::loc_for`]), so conflict classes are identical on every
    /// backend and across processes sharing the arena.
    pub fn new_in(arena: &Arc<Arena>, initial: u64) -> Self {
        let cell = ArenaCell::new_in(arena, AtomicU64::new(initial));
        AtomicU64Register {
            loc: cell.loc().expect("arena cells have derived locs"),
            cell,
        }
    }

    /// The register's location identifier, used by the schedule explorer to
    /// key read/write dependencies.
    pub fn loc(&self) -> Loc {
        self.loc
    }

    /// Atomically reads the register, charging one read step.
    pub fn read(&self, ctx: &mut ProcessCtx) -> u64 {
        ctx.record_at(StepKind::RegisterRead, self.loc);
        self.cell.get().load(Ordering::SeqCst)
    }

    /// Atomically writes the register, charging one write step.
    pub fn write(&self, ctx: &mut ProcessCtx, value: u64) {
        ctx.record_at(StepKind::RegisterWrite, self.loc);
        self.cell.get().store(value, Ordering::SeqCst);
    }

    /// Atomically replaces the value, returning the previous one and charging
    /// one read-modify-write step.
    pub fn swap(&self, ctx: &mut ProcessCtx, value: u64) -> u64 {
        ctx.record_at(StepKind::ReadModifyWrite, self.loc);
        self.cell.get().swap(value, Ordering::SeqCst)
    }

    /// Atomically performs compare-and-swap, charging one read-modify-write
    /// step. Returns `Ok(previous)` on success and `Err(actual)` on failure.
    pub fn compare_and_swap(
        &self,
        ctx: &mut ProcessCtx,
        expected: u64,
        new: u64,
    ) -> Result<u64, u64> {
        ctx.record_at(StepKind::ReadModifyWrite, self.loc);
        self.cell
            .get()
            .compare_exchange(expected, new, Ordering::SeqCst, Ordering::SeqCst)
    }

    /// Atomically adds `delta`, returning the previous value and charging one
    /// read-modify-write step.
    pub fn fetch_add(&self, ctx: &mut ProcessCtx, delta: u64) -> u64 {
        ctx.record_at(StepKind::ReadModifyWrite, self.loc);
        self.cell.get().fetch_add(delta, Ordering::SeqCst)
    }

    /// Reads the register without charging any step. Intended for harness and
    /// test inspection only, never from algorithm code.
    pub fn peek(&self) -> u64 {
        self.cell.get().load(Ordering::SeqCst)
    }
}

/// A multi-writer multi-reader atomic register holding a `usize`.
#[derive(Debug)]
pub struct AtomicUsizeRegister {
    cell: ArenaCell<AtomicUsize>,
    loc: Loc,
}

impl Default for AtomicUsizeRegister {
    fn default() -> Self {
        AtomicUsizeRegister::new(0)
    }
}

impl AtomicUsizeRegister {
    /// Creates a register with the given initial value.
    pub fn new(initial: usize) -> Self {
        AtomicUsizeRegister {
            cell: ArenaCell::inline(AtomicUsize::new(initial)),
            loc: Loc::fresh(),
        }
    }

    /// Creates a register whose word lives in `arena`, on its own cache
    /// line (see [`AtomicU64Register::new_in`]).
    pub fn new_in(arena: &Arc<Arena>, initial: usize) -> Self {
        let cell = ArenaCell::new_in(arena, AtomicUsize::new(initial));
        AtomicUsizeRegister {
            loc: cell.loc().expect("arena cells have derived locs"),
            cell,
        }
    }

    /// The register's location identifier (see [`AtomicU64Register::loc`]).
    pub fn loc(&self) -> Loc {
        self.loc
    }

    /// Atomically reads the register, charging one read step.
    pub fn read(&self, ctx: &mut ProcessCtx) -> usize {
        ctx.record_at(StepKind::RegisterRead, self.loc);
        self.cell.get().load(Ordering::SeqCst)
    }

    /// Atomically writes the register, charging one write step.
    pub fn write(&self, ctx: &mut ProcessCtx, value: usize) {
        ctx.record_at(StepKind::RegisterWrite, self.loc);
        self.cell.get().store(value, Ordering::SeqCst);
    }

    /// Atomically replaces the value, returning the previous one and charging
    /// one read-modify-write step.
    pub fn swap(&self, ctx: &mut ProcessCtx, value: usize) -> usize {
        ctx.record_at(StepKind::ReadModifyWrite, self.loc);
        self.cell.get().swap(value, Ordering::SeqCst)
    }

    /// Atomically performs compare-and-swap, charging one read-modify-write
    /// step. Returns `Ok(previous)` on success and `Err(actual)` on failure.
    pub fn compare_and_swap(
        &self,
        ctx: &mut ProcessCtx,
        expected: usize,
        new: usize,
    ) -> Result<usize, usize> {
        ctx.record_at(StepKind::ReadModifyWrite, self.loc);
        self.cell
            .get()
            .compare_exchange(expected, new, Ordering::SeqCst, Ordering::SeqCst)
    }

    /// Atomically adds `delta`, returning the previous value and charging one
    /// read-modify-write step.
    pub fn fetch_add(&self, ctx: &mut ProcessCtx, delta: usize) -> usize {
        ctx.record_at(StepKind::ReadModifyWrite, self.loc);
        self.cell.get().fetch_add(delta, Ordering::SeqCst)
    }

    /// Reads the register without charging any step (harness/test use only).
    pub fn peek(&self) -> usize {
        self.cell.get().load(Ordering::SeqCst)
    }
}

/// A multi-writer multi-reader atomic register holding a `bool`.
#[derive(Debug)]
pub struct AtomicBoolRegister {
    cell: ArenaCell<AtomicBool>,
    loc: Loc,
}

impl Default for AtomicBoolRegister {
    fn default() -> Self {
        AtomicBoolRegister::new(false)
    }
}

impl AtomicBoolRegister {
    /// Creates a register with the given initial value.
    pub fn new(initial: bool) -> Self {
        AtomicBoolRegister {
            cell: ArenaCell::inline(AtomicBool::new(initial)),
            loc: Loc::fresh(),
        }
    }

    /// Creates a register whose word lives in `arena`, on its own cache
    /// line (see [`AtomicU64Register::new_in`]).
    pub fn new_in(arena: &Arc<Arena>, initial: bool) -> Self {
        let cell = ArenaCell::new_in(arena, AtomicBool::new(initial));
        AtomicBoolRegister {
            loc: cell.loc().expect("arena cells have derived locs"),
            cell,
        }
    }

    /// The register's location identifier (see [`AtomicU64Register::loc`]).
    pub fn loc(&self) -> Loc {
        self.loc
    }

    /// Atomically reads the register, charging one read step.
    pub fn read(&self, ctx: &mut ProcessCtx) -> bool {
        ctx.record_at(StepKind::RegisterRead, self.loc);
        self.cell.get().load(Ordering::SeqCst)
    }

    /// Atomically writes the register, charging one write step.
    pub fn write(&self, ctx: &mut ProcessCtx, value: bool) {
        ctx.record_at(StepKind::RegisterWrite, self.loc);
        self.cell.get().store(value, Ordering::SeqCst);
    }

    /// Atomically sets the register to `true`, returning the previous value
    /// and charging one read-modify-write step. This is the hardware
    /// test-and-set instruction.
    pub fn test_and_set(&self, ctx: &mut ProcessCtx) -> bool {
        ctx.record_at(StepKind::ReadModifyWrite, self.loc);
        self.cell.get().swap(true, Ordering::SeqCst)
    }

    /// Reads the register without charging any step (harness/test use only).
    pub fn peek(&self) -> bool {
        self.cell.get().load(Ordering::SeqCst)
    }
}

/// A multi-writer multi-reader atomic register holding an arbitrary `Copy`
/// value, backed by a `parking_lot::RwLock`.
///
/// Single-word registers ([`AtomicU64Register`], [`AtomicUsizeRegister`],
/// [`AtomicBoolRegister`]) should be preferred where they fit; this type
/// exists for compound values such as splitter states or labelled names.
///
/// `ValueRegister` is the one register that cannot be arena-backed: its
/// lock is address-space-local state, so it has no `new_in`. Structures
/// that must work across processes use the single-word registers.
pub struct ValueRegister<T: Copy> {
    cell: RwLock<T>,
    loc: Loc,
}

impl<T: Copy> ValueRegister<T> {
    /// Creates a register with the given initial value.
    pub fn new(initial: T) -> Self {
        ValueRegister {
            cell: RwLock::new(initial),
            loc: Loc::fresh(),
        }
    }

    /// The register's location identifier (see [`AtomicU64Register::loc`]).
    pub fn loc(&self) -> Loc {
        self.loc
    }

    /// Atomically reads the register, charging one read step.
    pub fn read(&self, ctx: &mut ProcessCtx) -> T {
        ctx.record_at(StepKind::RegisterRead, self.loc);
        *self.cell.read()
    }

    /// Atomically writes the register, charging one write step.
    pub fn write(&self, ctx: &mut ProcessCtx, value: T) {
        ctx.record_at(StepKind::RegisterWrite, self.loc);
        *self.cell.write() = value;
    }

    /// Atomically applies `f` to the stored value, charging one
    /// read-modify-write step, and returns the value the update produced.
    ///
    /// This is provided for baselines and harness bookkeeping; the paper's
    /// algorithms only require read/write registers plus test-and-set.
    pub fn update<F>(&self, ctx: &mut ProcessCtx, f: F) -> T
    where
        F: FnOnce(T) -> T,
    {
        ctx.record_at(StepKind::ReadModifyWrite, self.loc);
        let mut guard = self.cell.write();
        *guard = f(*guard);
        *guard
    }

    /// Reads the register without charging any step (harness/test use only).
    pub fn peek(&self) -> T {
        *self.cell.read()
    }
}

impl<T: Copy + fmt::Debug> fmt::Debug for ValueRegister<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ValueRegister")
            .field("value", &*self.cell.read())
            .finish()
    }
}

impl<T: Copy + Default> Default for ValueRegister<T> {
    fn default() -> Self {
        ValueRegister::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::ProcessId;

    fn ctx() -> ProcessCtx {
        ProcessCtx::new(ProcessId::new(0), 42)
    }

    #[test]
    fn u64_register_read_write_swap_cas() {
        let mut ctx = ctx();
        let reg = AtomicU64Register::new(5);
        assert_eq!(reg.read(&mut ctx), 5);
        reg.write(&mut ctx, 9);
        assert_eq!(reg.peek(), 9);
        assert_eq!(reg.swap(&mut ctx, 11), 9);
        assert_eq!(reg.compare_and_swap(&mut ctx, 11, 20), Ok(11));
        assert_eq!(reg.compare_and_swap(&mut ctx, 11, 30), Err(20));
        assert_eq!(reg.fetch_add(&mut ctx, 2), 20);
        assert_eq!(reg.peek(), 22);

        let stats = ctx.stats();
        assert_eq!(stats.reads, 1);
        assert_eq!(stats.writes, 1);
        assert_eq!(stats.rmws, 4);
    }

    #[test]
    fn usize_register_read_write_swap_cas() {
        let mut ctx = ctx();
        let reg = AtomicUsizeRegister::new(1);
        assert_eq!(reg.read(&mut ctx), 1);
        reg.write(&mut ctx, 2);
        assert_eq!(reg.swap(&mut ctx, 3), 2);
        assert_eq!(reg.compare_and_swap(&mut ctx, 3, 4), Ok(3));
        assert_eq!(reg.fetch_add(&mut ctx, 10), 4);
        assert_eq!(reg.peek(), 14);
    }

    #[test]
    fn bool_register_test_and_set_returns_previous_value() {
        let mut ctx = ctx();
        let reg = AtomicBoolRegister::new(false);
        assert!(!reg.read(&mut ctx));
        assert!(!reg.test_and_set(&mut ctx), "first TAS sees false");
        assert!(reg.test_and_set(&mut ctx), "second TAS sees true");
        reg.write(&mut ctx, false);
        assert!(!reg.peek());
    }

    #[test]
    fn value_register_update_applies_closure_atomically() {
        let mut ctx = ctx();
        let reg: ValueRegister<(u32, u32)> = ValueRegister::new((1, 2));
        assert_eq!(reg.read(&mut ctx), (1, 2));
        reg.write(&mut ctx, (3, 4));
        let updated = reg.update(&mut ctx, |(a, b)| (a + 10, b + 20));
        assert_eq!(updated, (13, 24));
        assert_eq!(reg.peek(), (13, 24));
    }

    #[test]
    fn value_register_default_and_debug() {
        let reg: ValueRegister<u8> = ValueRegister::default();
        assert_eq!(reg.peek(), 0);
        assert!(format!("{reg:?}").contains("ValueRegister"));
    }

    #[test]
    fn arena_backed_registers_behave_identically() {
        use crate::arena::Arena;

        let mut ctx = ctx();
        let arena = Arena::heap(4096);
        let reg = AtomicU64Register::new_in(&arena, 5);
        assert_eq!(reg.read(&mut ctx), 5);
        reg.write(&mut ctx, 9);
        assert_eq!(reg.swap(&mut ctx, 11), 9);
        assert_eq!(reg.compare_and_swap(&mut ctx, 11, 20), Ok(11));
        assert_eq!(reg.fetch_add(&mut ctx, 2), 20);
        assert_eq!(reg.peek(), 22);

        let flag = AtomicBoolRegister::new_in(&arena, false);
        assert!(!flag.test_and_set(&mut ctx));
        assert!(flag.test_and_set(&mut ctx));

        let count = AtomicUsizeRegister::new_in(&arena, 1);
        assert_eq!(count.fetch_add(&mut ctx, 3), 1);
        assert_eq!(count.peek(), 4);
    }

    #[test]
    fn arena_backed_locs_are_offset_derived_and_distinct() {
        use crate::arena::Arena;

        let arena = Arena::heap(4096);
        let a = AtomicU64Register::new_in(&arena, 0);
        let b = AtomicU64Register::new_in(&arena, 0);
        assert_ne!(a.loc(), b.loc());
        assert!(a.loc().as_u64() & (1 << 63) != 0, "arena-derived loc tag");
        // A heap register's loc comes from the global counter: untagged.
        let c = AtomicU64Register::new(0);
        assert_eq!(c.loc().as_u64() & (1 << 63), 0);
    }

    #[test]
    fn registers_charge_exactly_one_step_per_operation() {
        let mut ctx = ctx();
        let reg = AtomicU64Register::new(0);
        let before = ctx.stats().total_all();
        reg.read(&mut ctx);
        reg.write(&mut ctx, 1);
        let after = ctx.stats().total_all();
        assert_eq!(after - before, 2);
    }
}
