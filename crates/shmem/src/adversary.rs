//! Schedule perturbation standing in for the strong adaptive adversary.
//!
//! The paper's adversary controls scheduling and crashes and may observe local
//! coin flips (§2). A true worst-case adaptive adversary cannot be enumerated
//! at runtime, so the execution harness approximates it with three orthogonal
//! knobs, all of which the safety properties of the algorithms must tolerate:
//!
//! * [`ArrivalSchedule`] — when each process begins taking steps (simultaneous
//!   burst, staggered arrival, random jitter). Contention patterns are the
//!   main lever an adversary has against *adaptive* algorithms, whose
//!   complexity must track the realized contention `k`.
//! * [`YieldPolicy`] — forced descheduling points injected between
//!   shared-memory steps, widening the space of interleavings explored.
//! * [`CrashPlan`] — crash-fault injection: a process silently stops taking
//!   steps after a chosen number of shared-memory operations.
//!
//! [`ExecConfig`] bundles the three together with a global random seed so an
//! execution is reproducible given its configuration.

use crate::vexec::{ExploreHandle, Schedule};
use rand::Rng;
use std::time::Duration;

/// Policy describing when the harness forces a process to yield the CPU
/// between shared-memory steps.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum YieldPolicy {
    /// Never inject yields; only the OS scheduler interleaves processes.
    #[default]
    None,
    /// Yield after every shared-memory step. Maximizes interleaving at the
    /// cost of slower executions.
    EveryStep,
    /// Yield after each step independently with the given probability.
    Probabilistic(f64),
    /// Yield after every `n`-th shared-memory step taken by the process.
    EveryNth(u64),
}

impl YieldPolicy {
    /// Decides whether to yield after a step, given the per-process step
    /// counter and the process-local random number generator.
    pub fn should_yield<R: Rng + ?Sized>(&self, steps_taken: u64, rng: &mut R) -> bool {
        match *self {
            YieldPolicy::None => false,
            YieldPolicy::EveryStep => true,
            YieldPolicy::Probabilistic(p) => rng.gen_bool(p.clamp(0.0, 1.0)),
            YieldPolicy::EveryNth(n) => n > 0 && steps_taken.is_multiple_of(n),
        }
    }
}

/// When each of the `k` processes starts taking steps.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum ArrivalSchedule {
    /// All processes start together behind a barrier (maximum contention).
    #[default]
    Simultaneous,
    /// Processes start as soon as their thread is spawned, with no barrier.
    Unsynchronized,
    /// Process `i` starts roughly `i * gap` after the barrier opens
    /// (staggered, low-contention arrivals).
    Staggered {
        /// Gap between consecutive arrivals.
        gap: Duration,
    },
    /// Each process waits a uniformly random delay in `[0, max_delay]` after
    /// the barrier opens.
    RandomJitter {
        /// Upper bound on the random arrival delay.
        max_delay: Duration,
    },
}

impl ArrivalSchedule {
    /// Whether the schedule requires a start barrier shared by all processes.
    pub fn uses_barrier(&self) -> bool {
        !matches!(self, ArrivalSchedule::Unsynchronized)
    }

    /// The delay process `index` should wait after the start barrier opens.
    pub fn delay_for<R: Rng + ?Sized>(&self, index: usize, rng: &mut R) -> Duration {
        match *self {
            ArrivalSchedule::Simultaneous | ArrivalSchedule::Unsynchronized => Duration::ZERO,
            ArrivalSchedule::Staggered { gap } => gap.saturating_mul(index as u32),
            ArrivalSchedule::RandomJitter { max_delay } => {
                if max_delay.is_zero() {
                    Duration::ZERO
                } else {
                    let nanos =
                        rng.gen_range(0..=max_delay.as_nanos().min(u64::MAX as u128) as u64);
                    Duration::from_nanos(nanos)
                }
            }
        }
    }
}

/// Crash-fault injection plan.
///
/// A crashed process stops taking shared-memory steps forever; it never
/// returns from its operation. The renaming algorithms must remain safe (names
/// stay unique, the namespace stays tight with respect to *participating*
/// processes) in the presence of such crashes.
#[derive(Clone, Debug, Default, PartialEq)]
pub enum CrashPlan {
    /// No process crashes.
    #[default]
    None,
    /// Process `i` crashes after `steps[i]` shared-memory steps (if `Some`).
    /// Processes beyond the vector's length do not crash.
    Fixed(Vec<Option<u64>>),
    /// Each process independently crashes with probability `prob`, after a
    /// uniformly random number of steps in `[1, max_steps]`.
    Random {
        /// Probability that an individual process crashes at all.
        prob: f64,
        /// Upper bound on the step at which a crashing process stops.
        max_steps: u64,
    },
    /// Crash every process with index `>= first_survivors` after the given
    /// number of steps — a deterministic "half the system dies" scenario.
    CrashSuffix {
        /// Number of low-indexed processes that never crash.
        survivors: usize,
        /// Step count after which the rest crash.
        after_steps: u64,
    },
}

impl CrashPlan {
    /// Computes the crash step for process `index`, or `None` if it runs to
    /// completion.
    pub fn crash_step_for<R: Rng + ?Sized>(&self, index: usize, rng: &mut R) -> Option<u64> {
        match self {
            CrashPlan::None => None,
            CrashPlan::Fixed(steps) => steps.get(index).copied().flatten(),
            CrashPlan::Random { prob, max_steps } => {
                if *max_steps == 0 || !rng.gen_bool(prob.clamp(0.0, 1.0)) {
                    None
                } else {
                    Some(rng.gen_range(1..=*max_steps))
                }
            }
            CrashPlan::CrashSuffix {
                survivors,
                after_steps,
            } => {
                if index >= *survivors {
                    Some((*after_steps).max(1))
                } else {
                    None
                }
            }
        }
    }
}

/// Where the interleaving of a *virtual* (serialized) execution comes from.
///
/// The threaded [`Executor`](crate::executor::Executor) ignores this field —
/// its interleavings come from the OS scheduler, perturbed by the other
/// adversary knobs. The [`VirtualExecutor`](crate::vexec::VirtualExecutor)
/// consults it at every step:
///
/// * [`ScheduleSource::Random`] — a seeded uniformly random scheduler, the
///   deterministic analogue of the threaded executor's sampling.
/// * [`ScheduleSource::Replay`] — replay a recorded [`Schedule`] verbatim
///   (with deterministic fallback for shrunk or stale schedules), the
///   substrate of `tests/schedules/*.trace` regression replays.
/// * [`ScheduleSource::Explore`] — delegate every decision to a shared
///   [`Scheduler`](crate::vexec::Scheduler), the hook the `mcheck` crate's
///   DPOR / preemption-bounded / coverage-guided explorers drive.
#[derive(Clone, Debug, PartialEq)]
pub enum ScheduleSource {
    /// Uniformly random scheduling decisions from the given seed.
    Random(u64),
    /// Replay of a recorded schedule.
    Replay(Schedule),
    /// Decisions delegated to an external exploration scheduler.
    Explore(ExploreHandle),
}

impl Default for ScheduleSource {
    fn default() -> Self {
        ScheduleSource::Random(0)
    }
}

/// Configuration for one adversarial execution: seed, arrival schedule, yield
/// policy and crash plan.
///
/// # Example
///
/// ```
/// use shmem::adversary::{ArrivalSchedule, CrashPlan, ExecConfig, YieldPolicy};
/// use std::time::Duration;
///
/// let config = ExecConfig::default()
///     .with_seed(42)
///     .with_yield_policy(YieldPolicy::Probabilistic(0.1))
///     .with_arrival(ArrivalSchedule::Staggered { gap: Duration::from_micros(50) })
///     .with_crash_plan(CrashPlan::Random { prob: 0.2, max_steps: 100 });
/// assert_eq!(config.seed, 42);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ExecConfig {
    /// Global random seed; each process derives its own stream from it.
    pub seed: u64,
    /// Forced-yield policy applied after shared-memory steps.
    pub yield_policy: YieldPolicy,
    /// Arrival schedule for the participating processes.
    pub arrival: ArrivalSchedule,
    /// Crash-fault injection plan.
    pub crash_plan: CrashPlan,
    /// Schedule source for virtual (serialized) executions; ignored by the
    /// threaded executor.
    pub schedule: ScheduleSource,
}

impl ExecConfig {
    /// Creates a configuration with the given seed and default (benign)
    /// adversary settings.
    pub fn new(seed: u64) -> Self {
        ExecConfig {
            seed,
            ..Default::default()
        }
    }

    /// Sets the global random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the yield policy.
    pub fn with_yield_policy(mut self, policy: YieldPolicy) -> Self {
        self.yield_policy = policy;
        self
    }

    /// Sets the arrival schedule.
    pub fn with_arrival(mut self, arrival: ArrivalSchedule) -> Self {
        self.arrival = arrival;
        self
    }

    /// Sets the crash plan.
    pub fn with_crash_plan(mut self, plan: CrashPlan) -> Self {
        self.crash_plan = plan;
        self
    }

    /// Sets the schedule source consulted by the
    /// [`VirtualExecutor`](crate::vexec::VirtualExecutor).
    pub fn with_schedule(mut self, schedule: ScheduleSource) -> Self {
        self.schedule = schedule;
        self
    }
}

/// What the chaos harness does to one child at a chosen moment.
///
/// Unlike [`CrashPlan`], which terminates *virtual* processes inside the
/// executor, a fault plan drives **real OS signals** from a supervising
/// parent ([`crate::procs::kill_child`], [`crate::procs::stop_child`]):
/// children publish per-operation progress words, and the parent fires
/// each fault when its child's progress crosses the planned index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// SIGKILL: the child dies uncooperatively, leases in hand.
    Kill,
    /// SIGSTOP for `pause_ops` observed operations of the other children
    /// (then SIGCONT): the child is *stalled, not dead* — a sweep that
    /// reclaims its leases is wrong, which is exactly what this arm tests.
    Stall {
        /// How much forward progress (summed over live children) the
        /// parent waits for before delivering SIGCONT.
        pause_ops: u64,
    },
    /// Torn-write injection: the parent flips arena words into the
    /// half-written states a kill can leave (a lease slot claimed with no
    /// owner published, a free-list data bit without its summary flag) via
    /// the structures' fault hooks. The child itself is untouched.
    TornWrite,
}

/// One planned fault: `child` gets `action` once it has performed
/// `at_op` operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChildFault {
    /// Index of the targeted child (the forker's ordinal, not a pid).
    pub child: usize,
    /// The child-local operation count at which the fault fires.
    pub at_op: u64,
    /// What happens.
    pub action: FaultAction,
}

/// A deterministic, seeded schedule of kill/stall/torn-write faults over a
/// fleet of forked children — same seed, same storm.
///
/// # Example
///
/// ```
/// use shmem::adversary::FaultPlan;
///
/// let plan = FaultPlan::from_seed(7, 4, 100);
/// assert_eq!(plan, FaultPlan::from_seed(7, 4, 100), "deterministic");
/// assert!(plan.faults().iter().all(|fault| fault.child < 4));
/// assert!(!plan.faults().is_empty(), "a storm plans at least one fault");
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<ChildFault>,
}

impl FaultPlan {
    /// Derives a plan for `children` children performing `ops` operations
    /// each. Roughly half the children draw a fault: mostly kills (the
    /// storm), some stalls, an occasional torn write; at least one child
    /// is always killed so every seed exercises recovery. Fault indices
    /// are uniform over `1..=ops`, so kills land anywhere from the first
    /// lease to the last release.
    pub fn from_seed(seed: u64, children: usize, ops: u64) -> Self {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFA_017_9A5);
        let mut faults = Vec::new();
        for child in 0..children {
            if !rng.gen_bool(0.5) {
                continue;
            }
            let at_op = rng.gen_range(1..=ops.max(1));
            let action = match rng.gen_range(0..10u32) {
                0..=5 => FaultAction::Kill,
                6..=8 => FaultAction::Stall {
                    pause_ops: rng.gen_range(1..=ops.max(1)),
                },
                _ => FaultAction::TornWrite,
            };
            faults.push(ChildFault {
                child,
                at_op,
                action,
            });
        }
        if !faults.iter().any(|fault| fault.action == FaultAction::Kill) {
            let child = rng.gen_range(0..children.max(1));
            let at_op = rng.gen_range(1..=ops.max(1));
            faults.retain(|fault| fault.child != child);
            faults.push(ChildFault {
                child,
                at_op,
                action: FaultAction::Kill,
            });
        }
        FaultPlan { faults }
    }

    /// The planned faults, at most one per child.
    pub fn faults(&self) -> &[ChildFault] {
        &self.faults
    }

    /// The children this plan SIGKILLs.
    pub fn killed_children(&self) -> impl Iterator<Item = usize> + '_ {
        self.faults
            .iter()
            .filter(|fault| fault.action == FaultAction::Kill)
            .map(|fault| fault.child)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xfeed)
    }

    #[test]
    fn fault_plans_always_kill_and_target_each_child_at_most_once() {
        for seed in 0..200 {
            let plan = FaultPlan::from_seed(seed, 6, 50);
            assert!(
                plan.killed_children().next().is_some(),
                "seed {seed}: every storm kills someone"
            );
            let mut children: Vec<usize> = plan.faults().iter().map(|fault| fault.child).collect();
            children.sort_unstable();
            children.dedup();
            assert_eq!(
                children.len(),
                plan.faults().len(),
                "seed {seed}: at most one fault per child"
            );
            for fault in plan.faults() {
                assert!((1..=50).contains(&fault.at_op), "seed {seed}: {fault:?}");
            }
        }
    }

    #[test]
    fn yield_policy_none_never_yields() {
        let mut r = rng();
        for step in 0..100 {
            assert!(!YieldPolicy::None.should_yield(step, &mut r));
        }
    }

    #[test]
    fn yield_policy_every_step_always_yields() {
        let mut r = rng();
        for step in 0..100 {
            assert!(YieldPolicy::EveryStep.should_yield(step, &mut r));
        }
    }

    #[test]
    fn yield_policy_every_nth_yields_on_multiples() {
        let mut r = rng();
        let policy = YieldPolicy::EveryNth(3);
        assert!(policy.should_yield(3, &mut r));
        assert!(policy.should_yield(6, &mut r));
        assert!(!policy.should_yield(4, &mut r));
        // n == 0 must not divide by zero and never yields.
        assert!(!YieldPolicy::EveryNth(0).should_yield(5, &mut r));
    }

    #[test]
    fn yield_policy_probabilistic_clamps_probability() {
        let mut r = rng();
        // Out-of-range probabilities are clamped rather than panicking.
        assert!(YieldPolicy::Probabilistic(2.0).should_yield(0, &mut r));
        assert!(!YieldPolicy::Probabilistic(-1.0).should_yield(0, &mut r));
    }

    #[test]
    fn simultaneous_arrival_has_zero_delay_and_barrier() {
        let mut r = rng();
        let schedule = ArrivalSchedule::Simultaneous;
        assert!(schedule.uses_barrier());
        assert_eq!(schedule.delay_for(5, &mut r), Duration::ZERO);
    }

    #[test]
    fn unsynchronized_arrival_skips_barrier() {
        assert!(!ArrivalSchedule::Unsynchronized.uses_barrier());
    }

    #[test]
    fn staggered_arrival_grows_linearly() {
        let mut r = rng();
        let schedule = ArrivalSchedule::Staggered {
            gap: Duration::from_micros(10),
        };
        assert_eq!(schedule.delay_for(0, &mut r), Duration::ZERO);
        assert_eq!(schedule.delay_for(3, &mut r), Duration::from_micros(30));
    }

    #[test]
    fn random_jitter_stays_within_bound() {
        let mut r = rng();
        let max = Duration::from_micros(100);
        let schedule = ArrivalSchedule::RandomJitter { max_delay: max };
        for i in 0..50 {
            assert!(schedule.delay_for(i, &mut r) <= max);
        }
        let zero = ArrivalSchedule::RandomJitter {
            max_delay: Duration::ZERO,
        };
        assert_eq!(zero.delay_for(1, &mut r), Duration::ZERO);
    }

    #[test]
    fn crash_plan_none_never_crashes() {
        let mut r = rng();
        assert_eq!(CrashPlan::None.crash_step_for(0, &mut r), None);
    }

    #[test]
    fn crash_plan_fixed_uses_per_process_entries() {
        let mut r = rng();
        let plan = CrashPlan::Fixed(vec![Some(5), None, Some(9)]);
        assert_eq!(plan.crash_step_for(0, &mut r), Some(5));
        assert_eq!(plan.crash_step_for(1, &mut r), None);
        assert_eq!(plan.crash_step_for(2, &mut r), Some(9));
        // Out-of-range processes never crash.
        assert_eq!(plan.crash_step_for(3, &mut r), None);
    }

    #[test]
    fn crash_plan_random_respects_bounds() {
        let mut r = rng();
        let plan = CrashPlan::Random {
            prob: 1.0,
            max_steps: 10,
        };
        for i in 0..50 {
            let step = plan.crash_step_for(i, &mut r).expect("prob=1 must crash");
            assert!((1..=10).contains(&step));
        }
        let never = CrashPlan::Random {
            prob: 0.0,
            max_steps: 10,
        };
        assert_eq!(never.crash_step_for(0, &mut r), None);
        let zero_steps = CrashPlan::Random {
            prob: 1.0,
            max_steps: 0,
        };
        assert_eq!(zero_steps.crash_step_for(0, &mut r), None);
    }

    #[test]
    fn crash_suffix_spares_survivors() {
        let mut r = rng();
        let plan = CrashPlan::CrashSuffix {
            survivors: 2,
            after_steps: 7,
        };
        assert_eq!(plan.crash_step_for(0, &mut r), None);
        assert_eq!(plan.crash_step_for(1, &mut r), None);
        assert_eq!(plan.crash_step_for(2, &mut r), Some(7));
        assert_eq!(plan.crash_step_for(9, &mut r), Some(7));
    }

    #[test]
    fn exec_config_builder_sets_fields() {
        let config = ExecConfig::new(3)
            .with_yield_policy(YieldPolicy::EveryStep)
            .with_arrival(ArrivalSchedule::Unsynchronized)
            .with_crash_plan(CrashPlan::CrashSuffix {
                survivors: 1,
                after_steps: 2,
            });
        assert_eq!(config.seed, 3);
        assert_eq!(config.yield_policy, YieldPolicy::EveryStep);
        assert_eq!(config.arrival, ArrivalSchedule::Unsynchronized);
        assert!(matches!(config.crash_plan, CrashPlan::CrashSuffix { .. }));
    }
}
