//! Cache-line padding for contended shared words.
//!
//! The simulated cost model counts *steps*, but the wall-clock experiments in
//! `crates/bench` also care about mechanical sympathy: two logically
//! independent atomic words that share a cache line serialize on real
//! hardware through coherence traffic (false sharing). [`CachePadded`] is a
//! zero-logic wrapper that aligns its contents to a 64-byte boundary so every
//! wrapped word owns its line. It is used for balancer toggle words, counting
//! network exit wires, elimination-prism slots and free-list summary words —
//! the places profiles show neighbouring hot words.
//!
//! The alignment is fixed at 64 bytes, the line size of the x86-64 machines
//! the benchmarks run on. (Some ARM parts prefetch in 128-byte pairs; padding
//! there would want 128. The constant lives in one place so that is a
//! one-line change.)

use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to a 64-byte cache line to avoid false sharing.
///
/// `CachePadded<T>` derefs to `T`, so wrapped atomics are used exactly as the
/// bare value would be:
///
/// ```
/// use shmem::pad::CachePadded;
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// let counters: Vec<CachePadded<AtomicU64>> =
///     (0..4).map(|_| CachePadded::new(AtomicU64::new(0))).collect();
/// counters[2].fetch_add(1, Ordering::Relaxed);
/// assert_eq!(counters[2].load(Ordering::Relaxed), 1);
/// // Each element owns a full line: no two elements share one.
/// assert_eq!(std::mem::align_of::<CachePadded<AtomicU64>>(), 64);
/// ```
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps a value in cache-line padding.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Unwraps the padded value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn padded_values_occupy_distinct_lines() {
        let slots: Vec<CachePadded<AtomicU64>> = (0..8)
            .map(|_| CachePadded::new(AtomicU64::new(0)))
            .collect();
        assert_eq!(std::mem::size_of::<CachePadded<AtomicU64>>(), 64);
        assert_eq!(std::mem::align_of::<CachePadded<AtomicU64>>(), 64);
        let base = &*slots[0] as *const AtomicU64 as usize;
        let next = &*slots[1] as *const AtomicU64 as usize;
        assert!(next - base >= 64, "adjacent elements must not share a line");
    }

    #[test]
    fn deref_and_into_inner_round_trip() {
        let mut padded = CachePadded::new(41u64);
        *padded += 1;
        assert_eq!(*padded, 42);
        assert_eq!(padded.into_inner(), 42);

        let from: CachePadded<u64> = 7u64.into();
        assert_eq!(*from, 7);

        let atomic = CachePadded::new(AtomicU64::new(5));
        atomic.fetch_add(2, Ordering::Relaxed);
        assert_eq!(atomic.into_inner().into_inner(), 7);
    }
}
