//! The paper's cost model: per-process step accounting.
//!
//! The complexity of every algorithm in the paper is measured in *process
//! steps* — shared-memory reads and writes, with all coin flips between two
//! shared-memory operations counted as one step (§2). Because atomic
//! test-and-set operations are available on most modern machines, several
//! upper bounds are also stated counting test-and-set invocations as having
//! unit cost. [`StepStats`] tracks all of these categories separately so the
//! experiments can report either cost measure.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// The category of a single shared-memory step.
///
/// Each variant corresponds to one class of operation counted by the paper's
/// cost model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StepKind {
    /// A read of a shared atomic register.
    RegisterRead,
    /// A write to a shared atomic register.
    RegisterWrite,
    /// A read-modify-write on a shared register (compare-and-swap, swap,
    /// fetch-and-add). Used by baselines and by hardware test-and-set.
    ReadModifyWrite,
    /// An invocation of a test-and-set *object* (the unit-cost measure the
    /// paper uses when hardware test-and-set is assumed available). The
    /// register steps performed *inside* a software test-and-set are counted
    /// separately under the other categories.
    TasInvocation,
    /// A batch of local coin flips between two shared-memory operations
    /// (counted as a single step, per §2).
    CoinFlip,
    /// A release of a previously acquired name back to a long-lived renaming
    /// object (one push onto its free list). The paper's objects are
    /// one-shot, so this category only appears in long-lived executions; it
    /// is tracked separately so the one-shot cost measures stay comparable.
    Release,
    /// A toggle of a balancer in a balancing (counting) network — one atomic
    /// flip deciding whether a traversing token exits on the top or bottom
    /// wire. Balancers are the counting-network analogue of the renaming
    /// network's two-process test-and-sets, so their unit-cost measure is
    /// tracked separately (like [`StepKind::TasInvocation`]) rather than
    /// being folded into the generic read-modify-write bucket.
    Balancer,
    /// An operation on an elimination/diffraction prism slot — the loads,
    /// compare-and-swaps and resets by which two colliding increments pair
    /// off *before* entering a counting network. Tracked as its own
    /// unit-cost measure (like [`StepKind::Balancer`]) so experiments can
    /// report how much of an adaptive counter's work the prism absorbs.
    Elimination,
}

impl fmt::Display for StepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            StepKind::RegisterRead => "register-read",
            StepKind::RegisterWrite => "register-write",
            StepKind::ReadModifyWrite => "read-modify-write",
            StepKind::TasInvocation => "tas-invocation",
            StepKind::CoinFlip => "coin-flip",
            StepKind::Release => "release",
            StepKind::Balancer => "balancer-toggle",
            StepKind::Elimination => "elimination",
        };
        f.write_str(name)
    }
}

/// Per-process step counts, broken down by [`StepKind`].
///
/// `StepStats` is the value returned for every process by the
/// [`Executor`](crate::executor::Executor) and is the quantity all
/// experiments in `EXPERIMENTS.md` report.
///
/// # Example
///
/// ```
/// use shmem::steps::{StepKind, StepStats};
///
/// let mut stats = StepStats::new();
/// stats.record(StepKind::RegisterRead);
/// stats.record(StepKind::RegisterWrite);
/// stats.record(StepKind::TasInvocation);
/// assert_eq!(stats.total(), 2); // TAS invocations are tracked separately
/// assert_eq!(stats.tas_invocations, 1);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct StepStats {
    /// Number of shared register reads.
    pub reads: u64,
    /// Number of shared register writes.
    pub writes: u64,
    /// Number of read-modify-write operations.
    pub rmws: u64,
    /// Number of test-and-set object invocations (unit-cost measure).
    pub tas_invocations: u64,
    /// Number of coin-flip steps (batches of local coin flips).
    pub coin_flips: u64,
    /// Number of name releases performed against long-lived renaming objects.
    pub releases: u64,
    /// Number of balancer toggles performed while traversing balancing
    /// (counting) networks — a unit-cost measure like
    /// [`StepStats::tas_invocations`].
    pub balancer_toggles: u64,
    /// Number of elimination-prism slot operations (install, capture,
    /// timeout and reset) performed in front of counting networks — a
    /// unit-cost measure like [`StepStats::balancer_toggles`].
    pub eliminations: u64,
}

impl StepStats {
    /// Creates an all-zero step count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a single step of the given kind.
    pub fn record(&mut self, kind: StepKind) {
        match kind {
            StepKind::RegisterRead => self.reads += 1,
            StepKind::RegisterWrite => self.writes += 1,
            StepKind::ReadModifyWrite => self.rmws += 1,
            StepKind::TasInvocation => self.tas_invocations += 1,
            StepKind::CoinFlip => self.coin_flips += 1,
            StepKind::Release => self.releases += 1,
            StepKind::Balancer => self.balancer_toggles += 1,
            StepKind::Elimination => self.eliminations += 1,
        }
    }

    /// Total *register* steps: reads + writes + read-modify-writes +
    /// coin-flip steps. This is the paper's primary step-complexity measure.
    ///
    /// Test-and-set invocations are excluded because they are an alternative
    /// unit-cost measure layered on top of the register steps performed inside
    /// the test-and-set implementation; see [`StepStats::total_unit_tas`].
    pub fn total(&self) -> u64 {
        self.reads + self.writes + self.rmws + self.coin_flips
    }

    /// Total steps under the unit-cost test-and-set measure: every
    /// test-and-set invocation counts as one step and register operations are
    /// ignored. This matches the paper's statements such as "the total number
    /// of test-and-set operations performed in an execution is `O(n log n)`"
    /// (Corollary 2).
    pub fn total_unit_tas(&self) -> u64 {
        self.tas_invocations
    }

    /// Total shared-memory operations of any kind (register steps plus
    /// test-and-set invocations, releases, balancer toggles and elimination
    /// operations). Useful as a conservative upper bound.
    pub fn total_all(&self) -> u64 {
        self.total()
            + self.tas_invocations
            + self.releases
            + self.balancer_toggles
            + self.eliminations
    }

    /// Returns `true` if no steps of any kind have been recorded.
    pub fn is_empty(&self) -> bool {
        self.total_all() == 0
    }

    /// Every step counter as stable `(name, value)` pairs, in declaration
    /// order — the exporter surface telemetry snapshots embed so step
    /// accounting and latency histograms land in one report.
    pub fn as_pairs(&self) -> [(&'static str, u64); 8] {
        [
            ("reads", self.reads),
            ("writes", self.writes),
            ("rmws", self.rmws),
            ("tas_invocations", self.tas_invocations),
            ("coin_flips", self.coin_flips),
            ("releases", self.releases),
            ("balancer_toggles", self.balancer_toggles),
            ("eliminations", self.eliminations),
        ]
    }
}

impl Add for StepStats {
    type Output = StepStats;

    fn add(self, rhs: StepStats) -> StepStats {
        StepStats {
            reads: self.reads + rhs.reads,
            writes: self.writes + rhs.writes,
            rmws: self.rmws + rhs.rmws,
            tas_invocations: self.tas_invocations + rhs.tas_invocations,
            coin_flips: self.coin_flips + rhs.coin_flips,
            releases: self.releases + rhs.releases,
            balancer_toggles: self.balancer_toggles + rhs.balancer_toggles,
            eliminations: self.eliminations + rhs.eliminations,
        }
    }
}

impl AddAssign for StepStats {
    fn add_assign(&mut self, rhs: StepStats) {
        *self = *self + rhs;
    }
}

impl Sum for StepStats {
    fn sum<I: Iterator<Item = StepStats>>(iter: I) -> StepStats {
        iter.fold(StepStats::new(), Add::add)
    }
}

impl fmt::Display for StepStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reads={} writes={} rmws={} tas={} flips={} releases={} balancers={} elims={} (register steps={})",
            self.reads,
            self.writes,
            self.rmws,
            self.tas_invocations,
            self.coin_flips,
            self.releases,
            self.balancer_toggles,
            self.eliminations,
            self.total()
        )
    }
}

/// Summary statistics over the per-process step counts of one execution.
///
/// # Example
///
/// ```
/// use shmem::steps::{StepStats, StepSummary};
///
/// let per_process = vec![
///     StepStats { reads: 10, ..Default::default() },
///     StepStats { reads: 30, ..Default::default() },
/// ];
/// let summary = StepSummary::from_stats(&per_process);
/// assert_eq!(summary.max_register_steps, 30);
/// assert_eq!(summary.total_register_steps, 40);
/// assert!((summary.mean_register_steps - 20.0).abs() < 1e-9);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StepSummary {
    /// Number of processes aggregated.
    pub processes: usize,
    /// Maximum register steps taken by any single process (the paper's
    /// "local" or "per-process" step complexity).
    pub max_register_steps: u64,
    /// Mean register steps per process.
    pub mean_register_steps: f64,
    /// Total register steps across all processes (the paper's "total step
    /// complexity").
    pub total_register_steps: u64,
    /// Maximum test-and-set invocations by any single process.
    pub max_tas_invocations: u64,
    /// Total test-and-set invocations across all processes.
    pub total_tas_invocations: u64,
}

impl StepSummary {
    /// Builds a summary from a slice of per-process statistics.
    ///
    /// Returns an all-zero summary for an empty slice.
    pub fn from_stats(stats: &[StepStats]) -> Self {
        if stats.is_empty() {
            return Self::default();
        }
        let total: StepStats = stats.iter().copied().sum();
        let max_register_steps = stats.iter().map(StepStats::total).max().unwrap_or(0);
        let max_tas_invocations = stats.iter().map(|s| s.tas_invocations).max().unwrap_or(0);
        StepSummary {
            processes: stats.len(),
            max_register_steps,
            mean_register_steps: total.total() as f64 / stats.len() as f64,
            total_register_steps: total.total(),
            max_tas_invocations,
            total_tas_invocations: total.tas_invocations,
        }
    }
}

impl fmt::Display for StepSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "processes={} max-steps={} mean-steps={:.1} total-steps={} max-tas={} total-tas={}",
            self.processes,
            self.max_register_steps,
            self.mean_register_steps,
            self.total_register_steps,
            self.max_tas_invocations,
            self.total_tas_invocations
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_each_kind_updates_the_matching_counter() {
        let mut stats = StepStats::new();
        stats.record(StepKind::RegisterRead);
        stats.record(StepKind::RegisterRead);
        stats.record(StepKind::RegisterWrite);
        stats.record(StepKind::ReadModifyWrite);
        stats.record(StepKind::TasInvocation);
        stats.record(StepKind::CoinFlip);
        stats.record(StepKind::Release);
        stats.record(StepKind::Balancer);
        stats.record(StepKind::Elimination);
        assert_eq!(stats.reads, 2);
        assert_eq!(stats.writes, 1);
        assert_eq!(stats.rmws, 1);
        assert_eq!(stats.tas_invocations, 1);
        assert_eq!(stats.coin_flips, 1);
        assert_eq!(stats.releases, 1);
        assert_eq!(stats.balancer_toggles, 1);
        assert_eq!(stats.eliminations, 1);
    }

    #[test]
    fn total_excludes_tas_invocations_releases_and_balancer_toggles() {
        let stats = StepStats {
            reads: 3,
            writes: 2,
            rmws: 1,
            tas_invocations: 100,
            coin_flips: 4,
            releases: 7,
            balancer_toggles: 9,
            eliminations: 5,
        };
        assert_eq!(stats.total(), 10);
        assert_eq!(stats.total_unit_tas(), 100);
        assert_eq!(stats.total_all(), 131);
    }

    #[test]
    fn empty_stats_report_empty() {
        assert!(StepStats::new().is_empty());
        let mut stats = StepStats::new();
        stats.record(StepKind::CoinFlip);
        assert!(!stats.is_empty());
    }

    #[test]
    fn add_and_sum_accumulate_componentwise() {
        let a = StepStats {
            reads: 1,
            writes: 2,
            rmws: 3,
            tas_invocations: 4,
            coin_flips: 5,
            releases: 6,
            balancer_toggles: 7,
            eliminations: 8,
        };
        let b = StepStats {
            reads: 10,
            writes: 20,
            rmws: 30,
            tas_invocations: 40,
            coin_flips: 50,
            releases: 60,
            balancer_toggles: 70,
            eliminations: 80,
        };
        let c = a + b;
        assert_eq!(c.reads, 11);
        assert_eq!(c.writes, 22);
        assert_eq!(c.rmws, 33);
        assert_eq!(c.tas_invocations, 44);
        assert_eq!(c.coin_flips, 55);
        assert_eq!(c.releases, 66);
        assert_eq!(c.balancer_toggles, 77);
        assert_eq!(c.eliminations, 88);

        let summed: StepStats = vec![a, b, c].into_iter().sum();
        assert_eq!(summed.reads, 22);
        assert_eq!(summed.total(), (a.total() + b.total()) * 2);
    }

    #[test]
    fn summary_of_empty_slice_is_zero() {
        let summary = StepSummary::from_stats(&[]);
        assert_eq!(summary.processes, 0);
        assert_eq!(summary.total_register_steps, 0);
    }

    #[test]
    fn summary_computes_max_mean_and_totals() {
        let stats = vec![
            StepStats {
                reads: 5,
                tas_invocations: 2,
                ..Default::default()
            },
            StepStats {
                writes: 15,
                tas_invocations: 8,
                ..Default::default()
            },
            StepStats {
                rmws: 10,
                ..Default::default()
            },
        ];
        let summary = StepSummary::from_stats(&stats);
        assert_eq!(summary.processes, 3);
        assert_eq!(summary.max_register_steps, 15);
        assert_eq!(summary.total_register_steps, 30);
        assert!((summary.mean_register_steps - 10.0).abs() < 1e-9);
        assert_eq!(summary.max_tas_invocations, 8);
        assert_eq!(summary.total_tas_invocations, 10);
    }

    #[test]
    fn display_formats_are_nonempty() {
        assert!(!format!("{}", StepKind::RegisterRead).is_empty());
        assert!(!format!("{}", StepStats::new()).is_empty());
        assert!(!format!("{}", StepSummary::default()).is_empty());
    }
}
