//! Consistency checkers: linearizability and monotone consistency.
//!
//! Two correctness notions appear in the paper's applications:
//!
//! * **Linearizability** — required of the ℓ-test-and-set (Lemma 5) and the
//!   m-valued fetch-and-increment (Theorem 6). [`check_linearizable`] is a
//!   Wing&Gong-style exhaustive checker with memoization, suitable for the
//!   small histories produced by stress tests.
//! * **Monotone consistency** — the weaker guarantee the §8.1 counter
//!   provides. [`check_monotone_consistent`] implements the three conditions
//!   of Lemma 4 directly on a recorded history.
//! * **Quiescent consistency** — the guarantee of counting-network counters
//!   (the `cnet` crate): any read not overlapping an increment must see the
//!   exact number of completed increments. [`check_quiescent_consistent`]
//!   verifies it on a recorded history.
//!
//! All checkers consume [`History`] values produced by a
//! [`Recorder`](crate::history::Recorder).

use crate::history::{History, OpRecord};
use std::collections::HashSet;
use std::fmt;
use std::hash::Hash;

/// A sequential specification of a shared object, used by the
/// linearizability checker.
///
/// Implementations describe the object's state machine: starting from
/// [`initial`](SequentialSpec::initial), applying operations one at a time in
/// some sequential order must reproduce the results observed in the concurrent
/// history.
pub trait SequentialSpec {
    /// Operation type.
    type Op;
    /// Result type returned by operations.
    type Ret: PartialEq;
    /// Object state.
    type State: Clone + Eq + Hash;

    /// The object's initial state.
    fn initial(&self) -> Self::State;

    /// Applies `op` to `state`, returning the successor state and the result
    /// the operation returns in that sequential execution.
    fn apply(&self, state: &Self::State, op: &Self::Op) -> (Self::State, Self::Ret);
}

/// The reason a history failed a consistency check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// No linearization order consistent with real time reproduces the
    /// observed results.
    NotLinearizable,
    /// Two reads ordered in real time returned decreasing values
    /// (monotone-consistency condition 1).
    NonMonotoneReads {
        /// Value returned by the earlier read.
        earlier: u64,
        /// Value returned by the later read.
        later: u64,
    },
    /// A read returned less than the number of increments that had completed
    /// before it started (monotone-consistency condition 2).
    ReadBelowCompletedIncrements {
        /// Value the read returned.
        returned: u64,
        /// Number of increments completed before the read's invocation.
        completed: u64,
    },
    /// A read returned more than the number of increments that had started
    /// before it responded (monotone-consistency condition 3).
    ReadAboveStartedIncrements {
        /// Value the read returned.
        returned: u64,
        /// Number of increments started before the read's response.
        started: u64,
    },
    /// A read performed at a quiescent point (no increment overlapping it)
    /// did not return the exact number of completed increments.
    QuiescentReadMismatch {
        /// Value the read returned.
        returned: u64,
        /// Number of increments completed before the read's invocation.
        expected: u64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::NotLinearizable => write!(f, "history is not linearizable"),
            Violation::NonMonotoneReads { earlier, later } => write!(
                f,
                "reads are not monotone: an earlier read returned {earlier} but a later read returned {later}"
            ),
            Violation::ReadBelowCompletedIncrements { returned, completed } => write!(
                f,
                "a read returned {returned} but {completed} increments had already completed"
            ),
            Violation::ReadAboveStartedIncrements { returned, started } => write!(
                f,
                "a read returned {returned} but only {started} increments had started"
            ),
            Violation::QuiescentReadMismatch { returned, expected } => write!(
                f,
                "a quiescent read returned {returned} but exactly {expected} increments had completed"
            ),
        }
    }
}

impl std::error::Error for Violation {}

/// Checks whether `history` is linearizable with respect to `spec`.
///
/// On success, returns one witness linearization as a list of indices into
/// `history.records()`.
///
/// The search is exponential in the worst case (linearizability checking is
/// NP-complete); memoization over (set of linearized operations, object state)
/// keeps it fast for the history sizes produced by the test suite (tens of
/// operations).
///
/// # Errors
///
/// Returns [`Violation::NotLinearizable`] if no valid linearization exists.
pub fn check_linearizable<S>(
    spec: &S,
    history: &History<S::Op, S::Ret>,
) -> Result<Vec<usize>, Violation>
where
    S: SequentialSpec,
{
    let records = history.records();
    let n = records.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    assert!(
        n <= 64,
        "the exhaustive linearizability checker supports at most 64 operations per history"
    );

    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut visited: HashSet<(u64, S::State)> = HashSet::new();
    if search(spec, records, 0, &spec.initial(), &mut order, &mut visited) {
        Ok(order)
    } else {
        Err(Violation::NotLinearizable)
    }
}

fn search<S>(
    spec: &S,
    records: &[OpRecord<S::Op, S::Ret>],
    done_mask: u64,
    state: &S::State,
    order: &mut Vec<usize>,
    visited: &mut HashSet<(u64, S::State)>,
) -> bool
where
    S: SequentialSpec,
{
    let n = records.len();
    if order.len() == n {
        return true;
    }
    if !visited.insert((done_mask, state.clone())) {
        return false;
    }

    // Minimum response among operations not yet linearized: an operation can
    // only be linearized next if no other pending operation finished entirely
    // before it began.
    let min_response = records
        .iter()
        .enumerate()
        .filter(|(i, _)| done_mask & (1 << i) == 0)
        .map(|(_, r)| r.response)
        .min()
        .expect("at least one pending operation");

    for (i, record) in records.iter().enumerate() {
        if done_mask & (1 << i) != 0 || record.invoke > min_response {
            continue;
        }
        let (next_state, result) = spec.apply(state, &record.op);
        if result != record.result {
            continue;
        }
        order.push(i);
        if search(
            spec,
            records,
            done_mask | (1 << i),
            &next_state,
            order,
            visited,
        ) {
            return true;
        }
        order.pop();
    }
    false
}

/// Operations of a counter object, as used by the §8.1 monotone-consistent
/// counter and its baselines.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CounterOp {
    /// Increment the counter. Counter increments return no value to callers;
    /// by convention records of increments carry result `0`, and both
    /// checkers ignore it.
    Increment,
    /// Read the counter. The recorded result is the value returned.
    Read,
}

/// Sequential specification of a standard counter: increments add one (and by
/// convention "return" 0), reads return the current value. Used to check
/// *linearizability* of counter histories (which the paper's counter
/// deliberately does not satisfy).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CounterSpec;

impl SequentialSpec for CounterSpec {
    type Op = CounterOp;
    type Ret = u64;
    type State = u64;

    fn initial(&self) -> u64 {
        0
    }

    fn apply(&self, state: &u64, op: &CounterOp) -> (u64, u64) {
        match op {
            // Increments have no return value; records carry 0 by convention.
            CounterOp::Increment => (*state + 1, 0),
            CounterOp::Read => (*state, *state),
        }
    }
}

/// Checks the three monotone-consistency conditions of Lemma 4 on a counter
/// history.
///
/// 1. There is a total order on reads, consistent with their real-time order,
///    along which returned values are non-decreasing.
/// 2. Every read returns at least the number of increments completed before it
///    started.
/// 3. Every read returns at most the number of increments started before it
///    responded.
///
/// Increment results are ignored; only their invocation/response times matter.
/// `pending_increment_invokes` lists the invocation timestamps of increments
/// that started but never completed in the recorded execution (crashed
/// processes, or operations still in flight when recording stopped); they
/// count towards condition 3 but not condition 2.
///
/// # Errors
///
/// Returns the first [`Violation`] found.
pub fn check_monotone_consistent(
    history: &History<CounterOp, u64>,
    pending_increment_invokes: &[u64],
) -> Result<(), Violation> {
    let reads: Vec<&OpRecord<CounterOp, u64>> =
        history.iter().filter(|r| r.op == CounterOp::Read).collect();
    let increments: Vec<&OpRecord<CounterOp, u64>> = history
        .iter()
        .filter(|r| r.op == CounterOp::Increment)
        .collect();

    // Condition 1: pairwise — if R1 finishes before R2 starts, then
    // value(R1) <= value(R2). (Sorting reads by value with invoke-time
    // tie-breaks then yields a witness total order.)
    for r1 in &reads {
        for r2 in &reads {
            if r1.response < r2.invoke && r1.result > r2.result {
                return Err(Violation::NonMonotoneReads {
                    earlier: r1.result,
                    later: r2.result,
                });
            }
        }
    }

    for read in &reads {
        // Condition 2: completed increments before the read started.
        let completed = increments
            .iter()
            .filter(|inc| inc.response < read.invoke)
            .count() as u64;
        if read.result < completed {
            return Err(Violation::ReadBelowCompletedIncrements {
                returned: read.result,
                completed,
            });
        }
        // Condition 3: started increments (completed or pending) before the
        // read responded.
        let started = increments
            .iter()
            .filter(|inc| inc.invoke < read.response)
            .count() as u64
            + pending_increment_invokes
                .iter()
                .filter(|&&invoke| invoke < read.response)
                .count() as u64;
        if read.result > started {
            return Err(Violation::ReadAboveStartedIncrements {
                returned: read.result,
                started,
            });
        }
    }
    Ok(())
}

/// Checks *quiescent consistency* of a counter history: every read performed
/// at a quiescent point sees the exact number of completed increments.
///
/// A read is **quiescent** when no increment overlaps it: every recorded
/// increment either responded before the read invoked or invoked after the
/// read responded, and no pending increment (one that started but never
/// completed) invoked before the read responded. Reads that do overlap an
/// increment are unconstrained by this checker — that is precisely the
/// guarantee counting networks provide (see the `cnet` crate), strictly
/// weaker than linearizability but incomparable to monotone consistency
/// (quiescent consistency says nothing about the order of concurrent reads).
///
/// Increment results are ignored; only their invocation/response times
/// matter. `pending_increment_invokes` lists invocation timestamps of
/// increments that started but never completed (crashed processes, or
/// operations still in flight when recording stopped): a read they overlap
/// is not quiescent.
///
/// # Errors
///
/// Returns [`Violation::QuiescentReadMismatch`] for the first quiescent read
/// whose value is not exactly the completed-increment count.
pub fn check_quiescent_consistent(
    history: &History<CounterOp, u64>,
    pending_increment_invokes: &[u64],
) -> Result<(), Violation> {
    let increments: Vec<&OpRecord<CounterOp, u64>> = history
        .iter()
        .filter(|r| r.op == CounterOp::Increment)
        .collect();

    for read in history.iter().filter(|r| r.op == CounterOp::Read) {
        let overlaps_completed = increments
            .iter()
            .any(|inc| inc.invoke < read.response && inc.response > read.invoke);
        let overlaps_pending = pending_increment_invokes
            .iter()
            .any(|&invoke| invoke < read.response);
        if overlaps_completed || overlaps_pending {
            continue; // not a quiescent point; the read is unconstrained
        }
        let completed = increments
            .iter()
            .filter(|inc| inc.response < read.invoke)
            .count() as u64;
        if read.result != completed {
            return Err(Violation::QuiescentReadMismatch {
                returned: read.result,
                expected: completed,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::ProcessId;

    fn op(
        process: usize,
        op: CounterOp,
        result: u64,
        invoke: u64,
        response: u64,
    ) -> OpRecord<CounterOp, u64> {
        OpRecord {
            process: ProcessId::new(process),
            op,
            result,
            invoke,
            response,
        }
    }

    /// Sequential spec of a single-value register for checker tests.
    #[derive(Clone, Copy, Debug)]
    struct RegisterSpec;

    #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
    enum RegOp {
        Write(u64),
        Read,
    }

    impl SequentialSpec for RegisterSpec {
        type Op = RegOp;
        type Ret = u64;
        type State = u64;

        fn initial(&self) -> u64 {
            0
        }

        fn apply(&self, state: &u64, op: &RegOp) -> (u64, u64) {
            match op {
                RegOp::Write(v) => (*v, *v),
                RegOp::Read => (*state, *state),
            }
        }
    }

    fn reg(op_: RegOp, result: u64, invoke: u64, response: u64) -> OpRecord<RegOp, u64> {
        OpRecord {
            process: ProcessId::new(0),
            op: op_,
            result,
            invoke,
            response,
        }
    }

    #[test]
    fn empty_history_is_linearizable() {
        let history: History<RegOp, u64> = History::new(vec![]);
        assert_eq!(check_linearizable(&RegisterSpec, &history), Ok(vec![]));
    }

    #[test]
    fn sequential_register_history_is_linearizable() {
        let history = History::new(vec![
            reg(RegOp::Write(5), 5, 1, 2),
            reg(RegOp::Read, 5, 3, 4),
            reg(RegOp::Write(9), 9, 5, 6),
            reg(RegOp::Read, 9, 7, 8),
        ]);
        let order = check_linearizable(&RegisterSpec, &history).expect("linearizable");
        assert_eq!(order.len(), 4);
    }

    #[test]
    fn stale_read_after_write_is_not_linearizable() {
        // Write(7) completes strictly before the read starts, yet the read
        // returns the initial value 0.
        let history = History::new(vec![
            reg(RegOp::Write(7), 7, 1, 2),
            reg(RegOp::Read, 0, 3, 4),
        ]);
        assert_eq!(
            check_linearizable(&RegisterSpec, &history),
            Err(Violation::NotLinearizable)
        );
    }

    #[test]
    fn overlapping_ops_may_linearize_in_either_order() {
        // The read overlaps the write, so returning either 0 or 7 is fine.
        for observed in [0u64, 7] {
            let history = History::new(vec![
                reg(RegOp::Write(7), 7, 1, 4),
                reg(RegOp::Read, observed, 2, 3),
            ]);
            assert!(check_linearizable(&RegisterSpec, &history).is_ok());
        }
    }

    #[test]
    fn counter_spec_linearizability_accepts_correct_histories() {
        let history = History::new(vec![
            op(0, CounterOp::Increment, 0, 1, 2),
            op(1, CounterOp::Read, 1, 3, 4),
            op(2, CounterOp::Increment, 0, 5, 6),
            op(1, CounterOp::Read, 2, 7, 8),
        ]);
        assert!(check_linearizable(&CounterSpec, &history).is_ok());
    }

    #[test]
    fn linearization_witness_respects_real_time_order() {
        let history = History::new(vec![
            op(0, CounterOp::Increment, 0, 1, 2),
            op(1, CounterOp::Increment, 0, 3, 4),
            op(2, CounterOp::Read, 2, 5, 6),
        ]);
        let order = check_linearizable(&CounterSpec, &history).expect("linearizable");
        // The read is last in real time, so it must be last in the witness.
        assert_eq!(*order.last().unwrap(), 2);
    }

    #[test]
    fn monotone_consistency_accepts_a_valid_history() {
        let history = History::new(vec![
            op(0, CounterOp::Increment, 0, 1, 4),
            op(1, CounterOp::Increment, 0, 2, 6),
            op(2, CounterOp::Read, 1, 5, 7),
            op(2, CounterOp::Read, 2, 8, 9),
        ]);
        assert_eq!(check_monotone_consistent(&history, &[]), Ok(()));
    }

    #[test]
    fn monotone_consistency_rejects_decreasing_reads() {
        let history = History::new(vec![
            op(0, CounterOp::Increment, 0, 1, 2),
            op(1, CounterOp::Increment, 0, 3, 4),
            op(2, CounterOp::Read, 2, 5, 6),
            op(2, CounterOp::Read, 1, 7, 8),
        ]);
        assert!(matches!(
            check_monotone_consistent(&history, &[]),
            Err(Violation::NonMonotoneReads {
                earlier: 2,
                later: 1
            })
        ));
    }

    #[test]
    fn monotone_consistency_rejects_reads_below_completed_increments() {
        let history = History::new(vec![
            op(0, CounterOp::Increment, 0, 1, 2),
            op(1, CounterOp::Increment, 0, 3, 4),
            op(2, CounterOp::Read, 1, 5, 6),
        ]);
        assert!(matches!(
            check_monotone_consistent(&history, &[]),
            Err(Violation::ReadBelowCompletedIncrements {
                returned: 1,
                completed: 2
            })
        ));
    }

    #[test]
    fn monotone_consistency_rejects_reads_above_started_increments() {
        let history = History::new(vec![
            op(0, CounterOp::Increment, 0, 1, 2),
            op(2, CounterOp::Read, 3, 3, 4),
        ]);
        assert!(matches!(
            check_monotone_consistent(&history, &[]),
            Err(Violation::ReadAboveStartedIncrements {
                returned: 3,
                started: 1
            })
        ));
    }

    #[test]
    fn pending_increments_count_towards_started_but_not_completed() {
        // One completed increment plus one pending increment: a read of 2 is
        // fine (condition 3 counts the pending one), but a read of 3 is not.
        let history = History::new(vec![
            op(0, CounterOp::Increment, 0, 1, 2),
            op(2, CounterOp::Read, 2, 4, 5),
        ]);
        assert_eq!(check_monotone_consistent(&history, &[3]), Ok(()));

        let too_high = History::new(vec![
            op(0, CounterOp::Increment, 0, 1, 2),
            op(2, CounterOp::Read, 3, 4, 5),
        ]);
        assert!(check_monotone_consistent(&too_high, &[3]).is_err());

        // A pending increment that starts only after the read responded does
        // not count.
        let late_pending = History::new(vec![
            op(0, CounterOp::Increment, 0, 1, 2),
            op(2, CounterOp::Read, 2, 4, 5),
        ]);
        assert!(check_monotone_consistent(&late_pending, &[9]).is_err());
    }

    #[test]
    fn paper_counterexample_is_monotone_but_not_linearizable() {
        // The §8.1 non-linearizability scenario: p3 starts an increment and
        // stalls before writing the max register; concurrently p2 increments
        // and obtains name 2. A read R1 then returns 2. Afterwards p1
        // increments, obtains name 1 (possible in a renaming network), and a
        // second read R2 still returns 2. p1's completed increment lies
        // strictly between two reads returning the same value, so the history
        // is not linearizable — but it is monotone-consistent because p3's
        // increment has started.
        let history = History::new(vec![
            op(2, CounterOp::Increment, 0, 2, 3), // p2 obtains name 2
            op(9, CounterOp::Read, 2, 4, 5),      // R1 returns 2
            op(1, CounterOp::Increment, 0, 6, 7), // p1 obtains name 1
            op(9, CounterOp::Read, 2, 8, 9),      // R2 still returns 2
        ]);
        let pending_p3 = [1u64]; // p3's increment started at time 1, never finished
        assert_eq!(check_monotone_consistent(&history, &pending_p3), Ok(()));
        assert_eq!(
            check_linearizable(&CounterSpec, &history),
            Err(Violation::NotLinearizable)
        );
    }

    #[test]
    fn monotone_consistency_of_empty_and_read_only_histories() {
        let empty: History<CounterOp, u64> = History::new(vec![]);
        assert_eq!(check_monotone_consistent(&empty, &[]), Ok(()));

        let reads_only = History::new(vec![op(0, CounterOp::Read, 0, 1, 2)]);
        assert_eq!(check_monotone_consistent(&reads_only, &[]), Ok(()));

        let bad_read = History::new(vec![op(0, CounterOp::Read, 1, 1, 2)]);
        assert!(check_monotone_consistent(&bad_read, &[]).is_err());
    }

    #[test]
    fn quiescent_consistency_accepts_exact_quiescent_reads() {
        // Two completed increments, then a read of 2, then another increment
        // and a read of 3: every read is quiescent and exact.
        let history = History::new(vec![
            op(0, CounterOp::Increment, 0, 1, 2),
            op(1, CounterOp::Increment, 0, 3, 4),
            op(2, CounterOp::Read, 2, 5, 6),
            op(0, CounterOp::Increment, 0, 7, 8),
            op(2, CounterOp::Read, 3, 9, 10),
        ]);
        assert_eq!(check_quiescent_consistent(&history, &[]), Ok(()));
    }

    #[test]
    fn quiescent_consistency_rejects_inexact_quiescent_reads() {
        // The read starts after both increments completed but returns 1.
        let history = History::new(vec![
            op(0, CounterOp::Increment, 0, 1, 2),
            op(1, CounterOp::Increment, 0, 3, 4),
            op(2, CounterOp::Read, 1, 5, 6),
        ]);
        assert_eq!(
            check_quiescent_consistent(&history, &[]),
            Err(Violation::QuiescentReadMismatch {
                returned: 1,
                expected: 2
            })
        );
        // Over-counting at a quiescent point is just as wrong.
        let too_high = History::new(vec![
            op(0, CounterOp::Increment, 0, 1, 2),
            op(2, CounterOp::Read, 2, 3, 4),
        ]);
        assert!(matches!(
            check_quiescent_consistent(&too_high, &[]),
            Err(Violation::QuiescentReadMismatch {
                returned: 2,
                expected: 1
            })
        ));
    }

    #[test]
    fn reads_overlapping_increments_are_unconstrained() {
        // The read overlaps the second increment, so returning 1 or 2 (or
        // even 0 — quiescent consistency says nothing here) is accepted.
        for observed in [0u64, 1, 2] {
            let history = History::new(vec![
                op(0, CounterOp::Increment, 0, 1, 2),
                op(1, CounterOp::Increment, 0, 4, 7),
                op(2, CounterOp::Read, observed, 5, 6),
            ]);
            assert_eq!(
                check_quiescent_consistent(&history, &[]),
                Ok(()),
                "observed {observed}"
            );
        }
    }

    #[test]
    fn pending_increments_make_overlapping_reads_non_quiescent() {
        // A pending increment started at time 3 never completes: the read at
        // [4, 5] overlaps it and is unconstrained...
        let history = History::new(vec![
            op(0, CounterOp::Increment, 0, 1, 2),
            op(2, CounterOp::Read, 2, 4, 5),
        ]);
        assert_eq!(check_quiescent_consistent(&history, &[3]), Ok(()));
        // ...but a pending increment started only after the read responded
        // leaves the read quiescent, so the stale value is a violation.
        assert!(matches!(
            check_quiescent_consistent(&history, &[9]),
            Err(Violation::QuiescentReadMismatch {
                returned: 2,
                expected: 1
            })
        ));
    }

    #[test]
    fn quiescent_consistency_of_empty_and_read_only_histories() {
        let empty: History<CounterOp, u64> = History::new(vec![]);
        assert_eq!(check_quiescent_consistent(&empty, &[]), Ok(()));

        let reads_only = History::new(vec![op(0, CounterOp::Read, 0, 1, 2)]);
        assert_eq!(check_quiescent_consistent(&reads_only, &[]), Ok(()));

        let bad_read = History::new(vec![op(0, CounterOp::Read, 5, 1, 2)]);
        assert!(check_quiescent_consistent(&bad_read, &[]).is_err());
    }

    #[test]
    fn quiescent_consistency_is_weaker_than_linearizability_on_reads() {
        // The §8.1-style history: non-linearizable (R1 and R2 both return 2
        // around a completed increment) yet quiescently consistent, because
        // both reads overlap the pending increment that started at time 1.
        let history = History::new(vec![
            op(2, CounterOp::Increment, 0, 2, 3),
            op(9, CounterOp::Read, 2, 4, 5),
            op(1, CounterOp::Increment, 0, 6, 7),
            op(9, CounterOp::Read, 2, 8, 9),
        ]);
        let pending = [1u64];
        assert_eq!(check_quiescent_consistent(&history, &pending), Ok(()));
        assert_eq!(
            check_linearizable(&CounterSpec, &history),
            Err(Violation::NotLinearizable)
        );
    }

    #[test]
    fn violation_display_is_informative() {
        let violations = vec![
            Violation::NotLinearizable,
            Violation::NonMonotoneReads {
                earlier: 2,
                later: 1,
            },
            Violation::ReadBelowCompletedIncrements {
                returned: 0,
                completed: 3,
            },
            Violation::ReadAboveStartedIncrements {
                returned: 5,
                started: 2,
            },
            Violation::QuiescentReadMismatch {
                returned: 4,
                expected: 3,
            },
        ];
        for v in violations {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "at most 64 operations")]
    fn linearizability_checker_rejects_oversized_histories() {
        let records: Vec<OpRecord<CounterOp, u64>> = (0..65)
            .map(|i| {
                op(
                    i,
                    CounterOp::Increment,
                    i as u64 + 1,
                    2 * i as u64 + 1,
                    2 * i as u64 + 2,
                )
            })
            .collect();
        let _ = check_linearizable(&CounterSpec, &History::new(records));
    }
}
