//! Asynchronous shared-memory substrate for the adaptive strong renaming
//! reproduction.
//!
//! The PODC 2011 paper *Optimal-Time Adaptive Strong Renaming, with
//! Applications to Counting* assumes an asynchronous shared-memory system of
//! `n` processes communicating through multiple-writer multiple-reader atomic
//! registers, scheduled by a strong adaptive adversary, where up to `t < n`
//! processes may crash. This crate provides that substrate:
//!
//! * [`register`] — MWMR atomic registers with per-operation step accounting.
//! * [`arena`] — a relocatable, offset-addressed backing store for shared
//!   structures ([`arena::ArenaBox`]/[`arena::ArenaSlice`] handles resolving
//!   `base + offset`), with a process-private heap backend and an anonymous
//!   `MAP_SHARED` mmap backend for true cross-process operation.
//! * [`steps`] — the paper's cost model: counts of shared-memory reads,
//!   writes, read-modify-writes and test-and-set invocations per process.
//! * [`process`] — [`ProcessId`] and
//!   [`ProcessCtx`], the handle each simulated process
//!   threads through every shared-memory operation (identity, seeded
//!   randomness, step accounting, adversarial yielding and crash injection).
//! * [`adversary`] — schedule-perturbation policies standing in for the strong
//!   adaptive adversary: arrival schedules, yield injection and crash plans.
//! * [`executor`] — a multi-threaded execution harness that runs `k` processes
//!   against a shared object and collects results, step statistics and crash
//!   outcomes.
//! * [`vexec`] — a deterministic *virtual* executor that serializes process
//!   threads at every shared-memory operation behind per-process gates, so a
//!   [`vexec::Scheduler`] chooses the interleaving step by step:
//!   the substrate for systematic schedule exploration (the `mcheck` crate),
//!   schedule replay and DPOR model checking.
//! * [`pad`] — a 64-byte-aligned [`CachePadded`] wrapper used to keep
//!   contended atomic words on distinct cache lines.
//! * [`history`] — invoke/response history recording for concurrent objects.
//! * [`consistency`] — a linearizability checker for small histories and the
//!   monotone-consistency checker used for the paper's counter (§8.1).
//!
//! # Example
//!
//! Run eight processes that each write and read a shared register, collecting
//! per-process step counts:
//!
//! ```
//! use shmem::executor::Executor;
//! use shmem::adversary::ExecConfig;
//! use shmem::register::AtomicU64Register;
//! use std::sync::Arc;
//!
//! let reg = Arc::new(AtomicU64Register::new(0));
//! let exec = Executor::new(ExecConfig::default().with_seed(7));
//! let outcome = exec.run(8, {
//!     let reg = Arc::clone(&reg);
//!     move |ctx| {
//!         reg.write(ctx, ctx.id().as_u64() + 1);
//!         reg.read(ctx)
//!     }
//! });
//! assert_eq!(outcome.completed().count(), 8);
//! assert!(outcome.total_steps().total() >= 16);
//! ```

// `deny` rather than `forbid`: the arena and procs modules opt back in with
// a scoped `#![allow(unsafe_code)]` — they are the only places raw memory
// and raw OS calls are handled, and the reason this crate can back its
// registers with a MAP_SHARED mapping shared across forked processes.
// Everything else in the crate remains unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adversary;
pub mod arena;
pub mod consistency;
pub mod executor;
pub mod history;
pub mod pad;
pub mod process;
#[cfg(all(unix, not(miri)))]
pub mod procs;
pub mod register;
pub mod steps;
pub mod vexec;

pub use adversary::{ArrivalSchedule, CrashPlan, ExecConfig, ScheduleSource, YieldPolicy};
pub use arena::{
    Arena, ArenaBackend, ArenaBox, ArenaCell, ArenaError, ArenaPod, ArenaRef, ArenaSlice,
    ArenaSliceRef,
};
pub use executor::{ExecutionOutcome, Executor, ProcessOutcome};
pub use history::{History, OpRecord, Recorder};
pub use pad::CachePadded;
pub use process::{ProcessCtx, ProcessId};
pub use register::{AtomicBoolRegister, AtomicU64Register, AtomicUsizeRegister, ValueRegister};
pub use steps::{StepKind, StepStats};
pub use vexec::{
    AccessClass, ExecTrace, ExploreHandle, Loc, OpEvent, PendingOp, Schedule, Scheduler,
    SchedulerDecision, VirtualExecutor, VirtualRun,
};
