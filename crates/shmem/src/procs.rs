//! Fork-based child-process helpers for cross-process tests and benchmarks.
//!
//! The `MAP_SHARED` arena backend ([`crate::arena::Arena::shared`]) is
//! exercised by real operating-system processes created with `fork(2)`.
//! This module wraps the tiny unsafe surface that requires — fork, waitpid
//! and SIGKILL — behind safe helpers with the workspace's fork discipline
//! baked in:
//!
//! * everything (arenas, tables, process contexts) is allocated **before**
//!   the fork and inherited by value;
//! * a child runs only its closure — atomics on pre-mapped shared memory —
//!   and then terminates via `_exit`, never unwinding into the parent's
//!   harness, running `atexit` handlers, or touching the allocator/locks
//!   (which a forked child of a threaded parent must never do).
//!
//! Unix only, not available under miri (as the shared backend itself).

// The one other module in this crate that needs raw OS calls; everything
// unsafe is confined to the libc invocations below.
#![allow(unsafe_code)]

/// How a waited-for child process terminated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChildExit {
    /// Normal termination with the given exit status.
    Exited(i32),
    /// Killed by the given signal.
    Signaled(i32),
}

impl ChildExit {
    /// Whether the child exited normally with status 0.
    pub fn clean(self) -> bool {
        self == ChildExit::Exited(0)
    }

    /// Whether the child died of SIGKILL — the "crashed process" the
    /// robust-reclamation tests simulate.
    pub fn killed(self) -> bool {
        self == ChildExit::Signaled(libc::SIGKILL)
    }
}

/// Forks; runs `child` in the child process and terminates it with
/// `_exit(0)`; returns the child's pid in the parent.
///
/// The closure must confine itself to atomic operations on pre-mapped
/// shared memory (see the module docs). Panics if the fork fails.
pub fn fork_child(child: impl FnOnce()) -> i32 {
    // SAFETY: the child closure confines itself to atomics on pre-mapped
    // shared memory, which is fork-safe even from a threaded parent.
    let pid = unsafe { libc::fork() };
    assert!(pid >= 0, "fork failed");
    if pid == 0 {
        child();
        // SAFETY: terminating the child without running atexit handlers or
        // unwinding into the parent's harness is exactly what we want.
        unsafe { libc::_exit(0) };
    }
    pid
}

/// Blocks until `pid` terminates and reports how it went.
pub fn wait_child(pid: i32) -> ChildExit {
    let mut status: libc::c_int = 0;
    // SAFETY: status points at a live local; waitpid blocks until the
    // child changes state.
    let waited = unsafe { libc::waitpid(pid, &mut status, 0) };
    assert_eq!(waited, pid, "waitpid returned the wrong child");
    if libc::WIFEXITED(status) {
        ChildExit::Exited(libc::WEXITSTATUS(status))
    } else if libc::WIFSIGNALED(status) {
        ChildExit::Signaled(libc::WTERMSIG(status))
    } else {
        panic!("child {pid} neither exited nor was signaled (status {status})");
    }
}

/// Blocks until `pid` terminates; panics unless it exited cleanly.
pub fn wait_for_clean_exit(pid: i32) {
    let exit = wait_child(pid);
    assert!(exit.clean(), "child {pid} did not exit cleanly: {exit:?}");
}

/// Delivers SIGKILL to `pid` — the uncooperative mid-operation crash the
/// robust lease table's reclamation sweep exists for.
pub fn kill_child(pid: i32) {
    // SAFETY: SIGKILL to a child we forked cannot be mishandled; a stale
    // pid would at worst return ESRCH, which we ignore (the child is gone
    // either way — the caller still waits on it).
    unsafe { libc::kill(pid, libc::SIGKILL) };
}

/// Delivers SIGSTOP to `pid`: the child freezes mid-operation but stays
/// *alive* — `kill(pid, 0)` still succeeds, so a liveness sweep must NOT
/// reclaim its leases. The chaos harness uses stalls to test exactly that
/// boundary (a stalled process is slow, not dead). Pair with
/// [`resume_child`], or with [`kill_child`] (SIGKILL terminates stopped
/// processes too).
pub fn stop_child(pid: i32) {
    // SAFETY: as kill_child — SIGSTOP cannot be caught, blocked or ignored,
    // and a stale pid at worst returns ESRCH.
    unsafe { libc::kill(pid, libc::SIGSTOP) };
}

/// Delivers SIGCONT to `pid`, resuming a child frozen by [`stop_child`].
pub fn resume_child(pid: i32) {
    // SAFETY: as kill_child.
    unsafe { libc::kill(pid, libc::SIGCONT) };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::Arena;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn forked_children_exit_cleanly_and_report_through_shared_memory() {
        let arena = Arena::shared(4096).expect("MAP_SHARED arena");
        let word = arena.alloc::<AtomicU64>().pin(&arena);
        let pid = fork_child({
            let word = word.clone();
            move || {
                word.store(41, Ordering::SeqCst);
            }
        });
        wait_for_clean_exit(pid);
        assert_eq!(word.load(Ordering::SeqCst), 41);
    }

    #[test]
    fn stopped_children_stay_alive_and_resume() {
        let arena = Arena::shared(4096).expect("MAP_SHARED arena");
        let word = arena.alloc::<AtomicU64>().pin(&arena);
        let pid = fork_child({
            let word = word.clone();
            move || {
                while word.load(Ordering::SeqCst) == 0 {
                    std::hint::spin_loop();
                }
                word.store(2, Ordering::SeqCst);
            }
        });
        // Freeze the child before letting it proceed: the pid still probes
        // alive (a stall is not a crash), and nothing moves while stopped.
        stop_child(pid);
        assert!(crate::arena::os_process_alive(pid as u32));
        word.store(1, Ordering::SeqCst);
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(word.load(Ordering::SeqCst), 1, "a stopped child is frozen");
        resume_child(pid);
        wait_for_clean_exit(pid);
        assert_eq!(word.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn killed_children_report_the_signal() {
        let pid = fork_child(|| loop {
            std::hint::spin_loop();
        });
        kill_child(pid);
        let exit = wait_child(pid);
        assert!(exit.killed(), "expected SIGKILL, got {exit:?}");
        assert!(!exit.clean());
    }
}
