//! Deterministic virtual executor: cooperative serialization of process
//! threads at every shared-memory operation.
//!
//! The threaded [`Executor`](crate::executor::Executor) lets the OS scheduler
//! interleave processes, which samples schedules but can neither enumerate nor
//! replay them. The [`VirtualExecutor`] instead runs the *same* process
//! closures under a cooperative protocol: every process parks at each
//! shared-memory operation (the [`ProcessCtx::record_at`] instrumentation
//! point, called by every register before the underlying atomic executes) and
//! announces the operation it is about to perform — its [`StepKind`], the
//! [`Loc`] of the memory word it touches and its [`AccessClass`]. A
//! coordinator thread waits until every live process is parked, asks a
//! [`Scheduler`] to pick the next process, and grants exactly one process at a
//! time. The result is a fully serialized, deterministic execution whose
//! interleaving is chosen step by step — the substrate the `mcheck` crate's
//! DPOR/bounded/coverage explorers are built on.
//!
//! The schedule actually taken is returned as an [`ExecTrace`] alongside the
//! ordinary [`ExecutionOutcome`], and can be replayed verbatim through
//! [`ScheduleSource::Replay`](crate::adversary::ScheduleSource).
//!
//! # Example
//!
//! ```
//! use shmem::adversary::ExecConfig;
//! use shmem::register::AtomicU64Register;
//! use shmem::vexec::VirtualExecutor;
//! use std::sync::Arc;
//!
//! let reg = Arc::new(AtomicU64Register::new(0));
//! let exec = VirtualExecutor::new(ExecConfig::new(7));
//! let run = exec.run(3, {
//!     let reg = Arc::clone(&reg);
//!     move |ctx| {
//!         reg.write(ctx, ctx.id().as_u64() + 1);
//!         reg.read(ctx)
//!     }
//! });
//! assert_eq!(run.outcome.completed().count(), 3);
//! // Replaying the recorded schedule reproduces the execution exactly.
//! let replay = VirtualExecutor::new(
//!     ExecConfig::new(7).with_schedule(shmem::adversary::ScheduleSource::Replay(
//!         run.trace.schedule.clone(),
//!     )),
//! )
//! .run(3, {
//!     let reg = Arc::new(AtomicU64Register::new(0));
//!     move |ctx| {
//!         reg.write(ctx, ctx.id().as_u64() + 1);
//!         reg.read(ctx)
//!     }
//! });
//! assert_eq!(replay.trace.schedule, run.trace.schedule);
//! ```

use crate::adversary::{ExecConfig, ScheduleSource};
use crate::executor::{ExecutionOutcome, ProcessOutcome};
use crate::process::{install_crash_panic_silencer, CrashSignal, ProcessCtx, ProcessId};
use crate::steps::StepKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Identifier of a shared-memory location (one register, balancer word or
/// other atomic cell), used to key read/write dependency analysis.
///
/// Every register allocates a fresh `Loc` at construction from a global
/// counter, so two operations conflict only if they touch the same word.
/// Construction order is deterministic for a given program, which is all the
/// dependency analysis needs: locations are only ever compared *within* one
/// execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Loc(u64);

static NEXT_LOC: AtomicU64 = AtomicU64::new(1);

impl Loc {
    /// The anonymous location, used by [`ProcessCtx::record`] call sites that
    /// predate location tracking. It conservatively conflicts with every
    /// other location.
    pub const ANON: Loc = Loc(0);

    /// Allocates a fresh, globally unique location identifier.
    pub fn fresh() -> Loc {
        Loc(NEXT_LOC.fetch_add(1, Ordering::Relaxed)) // lint: relaxed-ok(unique id allocation only; no data is published through this counter)
    }

    /// Whether this is the anonymous (conservatively conflicting) location.
    pub fn is_anon(&self) -> bool {
        self.0 == 0
    }

    /// The raw identifier.
    pub fn as_u64(&self) -> u64 {
        self.0
    }

    /// Reconstructs a location from a raw identifier (`0` is [`Loc::ANON`]).
    ///
    /// Intended for schedule-exploration tooling that renames locations into
    /// a run-local namespace (global allocation order is not stable across
    /// re-executions that rebuild their shared objects); renamed locations
    /// compare and conflict exactly like allocated ones.
    pub fn from_raw(raw: u64) -> Loc {
        Loc(raw)
    }
}

/// The dependency class of a shared-memory operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AccessClass {
    /// A purely local step (coin flips, accounting markers such as
    /// test-and-set invocation counts, arrival). Never conflicts.
    Local,
    /// A read of a shared location. Conflicts with writes and RMWs on the
    /// same location.
    Read,
    /// A write to a shared location. Conflicts with every access to the same
    /// location.
    Write,
    /// A read-modify-write (CAS, swap, fetch-add, balancer toggle,
    /// test-and-set word). Conflicts with every access to the same location.
    Rmw,
}

impl AccessClass {
    /// The dependency class implied by a [`StepKind`].
    ///
    /// `TasInvocation`, `Release` and `Elimination` are unit-cost accounting
    /// markers — the shared-memory operations they summarize are recorded
    /// separately by the registers involved — so they classify as `Local`.
    pub fn of(kind: StepKind) -> AccessClass {
        match kind {
            StepKind::RegisterRead => AccessClass::Read,
            StepKind::RegisterWrite => AccessClass::Write,
            StepKind::ReadModifyWrite | StepKind::Balancer => AccessClass::Rmw,
            StepKind::TasInvocation
            | StepKind::CoinFlip
            | StepKind::Release
            | StepKind::Elimination => AccessClass::Local,
        }
    }

    /// Whether this class can modify memory.
    pub fn is_writing(&self) -> bool {
        matches!(self, AccessClass::Write | AccessClass::Rmw)
    }
}

/// The operation a parked process has announced it will perform next.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PendingOp {
    /// The step kind, or `None` for the arrival pseudo-step a process takes
    /// before its closure runs.
    pub kind: Option<StepKind>,
    /// The location the operation touches ([`Loc::ANON`] if unknown).
    pub loc: Loc,
    /// The dependency class of the operation.
    pub access: AccessClass,
}

impl PendingOp {
    /// The arrival pseudo-operation each process announces before running.
    pub fn begin() -> PendingOp {
        PendingOp {
            kind: None,
            loc: Loc::ANON,
            access: AccessClass::Local,
        }
    }

    /// Builds the pending operation for a recorded step.
    pub fn step(kind: StepKind, loc: Loc) -> PendingOp {
        PendingOp {
            kind: Some(kind),
            loc,
            access: AccessClass::of(kind),
        }
    }

    /// Whether the two operations are *dependent*: reordering adjacent
    /// occurrences can change the execution. Local steps never conflict; an
    /// anonymous location conservatively conflicts with every non-local
    /// operation; otherwise two operations conflict iff they touch the same
    /// location and at least one writes it.
    pub fn conflicts_with(&self, other: &PendingOp) -> bool {
        if self.access == AccessClass::Local || other.access == AccessClass::Local {
            return false;
        }
        if self.loc.is_anon() || other.loc.is_anon() {
            return true;
        }
        self.loc == other.loc && (self.access.is_writing() || other.access.is_writing())
    }
}

/// Internal panic payload used by the coordinator to stop a process whose
/// execution the scheduler has abandoned (schedule truncation or sleep-set
/// pruning). The process is reported as crashed. User code never observes it.
#[derive(Clone, Copy, Debug)]
pub struct ScheduleAbort;

/// Installs a panic hook silencing the internal [`ScheduleAbort`] payload
/// (in addition to the [`CrashSignal`] silencer). Called by the virtual
/// executor; calling it multiple times is harmless.
pub fn install_abort_panic_silencer() {
    use std::sync::Once;
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<ScheduleAbort>().is_none() {
                previous(info);
            }
        }));
    });
}

#[derive(Debug, Default)]
struct GateState {
    pending: Option<PendingOp>,
    granted: bool,
    abort: bool,
    finished: bool,
}

/// The per-process rendezvous through which the coordinator serializes
/// shared-memory steps. Installed into each [`ProcessCtx`] by the virtual
/// executor; [`ProcessCtx::record_at`] parks on it before every non-local
/// operation.
#[derive(Default)]
pub(crate) struct Gate {
    state: Mutex<GateState>,
    cv: Condvar,
}

impl fmt::Debug for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Gate").finish_non_exhaustive()
    }
}

impl Gate {
    /// Worker side: announce `op`, block until the coordinator grants this
    /// process the next step. Returns `false` if the coordinator asked the
    /// process to abort instead of proceeding.
    pub(crate) fn park(&self, op: PendingOp) -> bool {
        let mut st = self.state.lock().expect("gate poisoned");
        st.pending = Some(op);
        self.cv.notify_all();
        while !st.granted {
            st = self.cv.wait(st).expect("gate poisoned");
        }
        st.granted = false;
        !st.abort
    }

    /// Worker side: mark the process finished (returned, crashed or aborted).
    fn mark_finished(&self) {
        let mut st = self.state.lock().expect("gate poisoned");
        st.finished = true;
        self.cv.notify_all();
    }

    /// Coordinator side: block until the process is parked (returning its
    /// announced operation) or finished (returning `None`).
    fn wait_parked(&self) -> Option<PendingOp> {
        let mut st = self.state.lock().expect("gate poisoned");
        loop {
            if let Some(op) = st.pending {
                return Some(op);
            }
            if st.finished {
                return None;
            }
            st = self.cv.wait(st).expect("gate poisoned");
        }
    }

    /// Coordinator side: let the parked process take its announced step (or
    /// abort it). Consumes `pending` here — not in [`Gate::park`] — so the
    /// coordinator's next [`Gate::wait_parked`] blocks until the worker
    /// actually reaches its *next* park rather than re-observing a stale op.
    fn grant(&self, abort: bool) {
        let mut st = self.state.lock().expect("gate poisoned");
        st.granted = true;
        st.abort = abort;
        st.pending = None;
        self.cv.notify_all();
    }
}

/// One granted step of a virtual execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpEvent {
    /// The process that took the step.
    pub pid: ProcessId,
    /// The operation it performed.
    pub op: PendingOp,
    /// Snapshot of every parked process and its announced operation at the
    /// moment of the scheduling decision, in process-index order. This is the
    /// "enabled set" the scheduler chose from.
    pub enabled: Vec<(ProcessId, PendingOp)>,
}

/// A recorded schedule: the sequence of processes granted steps, in order.
/// Replayable through [`ScheduleSource::Replay`]; entries that name a process
/// that is not enabled at replay time are skipped, and an exhausted schedule
/// falls back to the lowest-index enabled process, so shrunk or hand-edited
/// schedules still replay deterministically.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Schedule {
    /// The granted process at each step (arrival pseudo-steps included).
    pub choices: Vec<ProcessId>,
}

impl Schedule {
    /// Creates a schedule from explicit choices.
    pub fn new(choices: Vec<ProcessId>) -> Self {
        Schedule { choices }
    }

    /// Number of choices.
    pub fn len(&self) -> usize {
        self.choices.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.choices.is_empty()
    }
}

/// The full trace of one virtual execution.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ExecTrace {
    /// Every granted step, in execution order.
    pub events: Vec<OpEvent>,
    /// The schedule actually taken (the `pid` of each event, in order).
    pub schedule: Schedule,
    /// Whether the execution was cut off by the step budget.
    pub truncated: bool,
    /// Whether the scheduler abandoned the execution ([`SchedulerDecision::Abort`]).
    pub aborted: bool,
}

/// The decision a [`Scheduler`] returns at each step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedulerDecision {
    /// Grant the next step to this process (must be one of the enabled).
    Pick(ProcessId),
    /// Abandon the execution: all remaining processes are aborted and
    /// reported as crashed, and the trace is marked
    /// [`aborted`](ExecTrace::aborted).
    Abort,
}

/// Chooses the next process to step at each point of a virtual execution.
///
/// `enabled` is non-empty and sorted by process index; each entry carries the
/// operation the process will perform if granted. Implementations must be
/// deterministic functions of their own state and the arguments for replays
/// to be byte-identical.
pub trait Scheduler: Send {
    /// Chooses the process to grant the `step`-th step (0-based).
    fn choose(&mut self, step: usize, enabled: &[(ProcessId, PendingOp)]) -> SchedulerDecision;
}

/// A uniformly random scheduler, seeded for reproducibility.
#[derive(Debug)]
pub struct RandomScheduler {
    rng: StdRng,
}

impl RandomScheduler {
    /// Creates the scheduler from a seed.
    pub fn new(seed: u64) -> Self {
        RandomScheduler {
            rng: StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1)),
        }
    }
}

impl Scheduler for RandomScheduler {
    fn choose(&mut self, _step: usize, enabled: &[(ProcessId, PendingOp)]) -> SchedulerDecision {
        let i = self.rng.gen_range(0..enabled.len());
        SchedulerDecision::Pick(enabled[i].0)
    }
}

/// Replays a recorded [`Schedule`]. Choices naming a process that is not
/// currently enabled are skipped; once the schedule is exhausted the lowest
/// enabled process is chosen, so arbitrary subsequences of a valid schedule
/// (as produced by ddmin minimization) remain replayable.
#[derive(Clone, Debug)]
pub struct ReplayScheduler {
    choices: Vec<ProcessId>,
    pos: usize,
}

impl ReplayScheduler {
    /// Creates the scheduler from a recorded schedule.
    pub fn new(schedule: Schedule) -> Self {
        ReplayScheduler {
            choices: schedule.choices,
            pos: 0,
        }
    }
}

impl Scheduler for ReplayScheduler {
    fn choose(&mut self, _step: usize, enabled: &[(ProcessId, PendingOp)]) -> SchedulerDecision {
        while self.pos < self.choices.len() {
            let c = self.choices[self.pos];
            self.pos += 1;
            if enabled.iter().any(|(p, _)| *p == c) {
                return SchedulerDecision::Pick(c);
            }
        }
        SchedulerDecision::Pick(enabled[0].0)
    }
}

/// A cloneable, comparable handle to a shared [`Scheduler`], so that
/// [`ScheduleSource::Explore`] fits in the `Clone + Debug + PartialEq`
/// derives of [`ExecConfig`]. The explorer keeps a clone and inspects or
/// reseeds the scheduler between executions.
#[derive(Clone)]
pub struct ExploreHandle {
    inner: Arc<Mutex<dyn Scheduler>>,
}

impl ExploreHandle {
    /// Wraps a scheduler in a shareable handle.
    pub fn new<S: Scheduler + 'static>(scheduler: S) -> Self {
        ExploreHandle {
            inner: Arc::new(Mutex::new(scheduler)),
        }
    }

    /// Locks the underlying scheduler for a scheduling decision or for
    /// between-execution state manipulation.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, dyn Scheduler + 'static> {
        self.inner.lock().expect("explore handle poisoned")
    }
}

impl fmt::Debug for ExploreHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExploreHandle").finish_non_exhaustive()
    }
}

impl PartialEq for ExploreHandle {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

/// The result of one virtual execution: the ordinary outcome plus the trace.
#[derive(Clone, Debug)]
pub struct VirtualRun<R> {
    /// Per-process results and step statistics, as from the threaded
    /// executor. Processes aborted by the scheduler are reported as crashed.
    pub outcome: ExecutionOutcome<R>,
    /// The serialized schedule taken and every operation performed.
    pub trace: ExecTrace,
}

/// Runs `k` processes one shared-memory step at a time under a
/// [`Scheduler`] chosen by the configuration's
/// [`ScheduleSource`].
///
/// Unlike the threaded [`Executor`](crate::executor::Executor), executions
/// are fully deterministic: the same configuration produces byte-identical
/// traces, step statistics and results. Arrival schedules and yield policies
/// are ignored (arrival order is part of the explored schedule; yields are
/// meaningless under cooperative serialization); crash plans are honored.
///
/// The executor requires process closures not to block on locks held across
/// a recorded step by another process. All objects in this workspace park
/// *before* acquiring any internal lock and release it before the next
/// recorded step, so they satisfy the requirement by construction.
#[derive(Clone, Debug)]
pub struct VirtualExecutor {
    config: ExecConfig,
    max_steps: u64,
}

/// Default per-execution step budget; a safety net against divergent
/// schedules, far above anything the small configurations explored by
/// `mcheck` take.
pub const DEFAULT_MAX_STEPS: u64 = 1_000_000;

impl VirtualExecutor {
    /// Creates a virtual executor with the given configuration.
    pub fn new(config: ExecConfig) -> Self {
        VirtualExecutor {
            config,
            max_steps: DEFAULT_MAX_STEPS,
        }
    }

    /// Creates a virtual executor with a benign configuration and the given
    /// seed (random scheduling seeded by the configuration seed).
    pub fn with_seed(seed: u64) -> Self {
        VirtualExecutor::new(ExecConfig::new(seed).with_schedule(ScheduleSource::Random(seed)))
    }

    /// Sets the per-execution step budget. Executions exceeding it are cut
    /// off: remaining processes are reported as crashed and the trace is
    /// marked [`truncated`](ExecTrace::truncated).
    pub fn with_max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps.max(1);
        self
    }

    /// The configuration this executor runs with.
    pub fn config(&self) -> &ExecConfig {
        &self.config
    }

    /// Runs `k` processes with consecutive identifiers `0..k`.
    pub fn run<R, F>(&self, k: usize, f: F) -> VirtualRun<R>
    where
        R: Send,
        F: Fn(&mut ProcessCtx) -> R + Send + Sync,
    {
        let ids: Vec<ProcessId> = (0..k).map(ProcessId::new).collect();
        self.run_with_ids(&ids, f)
    }

    /// Runs one process per entry of `ids`, using each entry as the
    /// process's initial name.
    pub fn run_with_ids<R, F>(&self, ids: &[ProcessId], f: F) -> VirtualRun<R>
    where
        R: Send,
        F: Fn(&mut ProcessCtx) -> R + Send + Sync,
    {
        install_crash_panic_silencer();
        install_abort_panic_silencer();
        let k = ids.len();
        if k == 0 {
            return VirtualRun {
                outcome: ExecutionOutcome::from_outcomes(Vec::new()),
                trace: ExecTrace::default(),
            };
        }

        // Derive per-process crash steps exactly as the threaded executor
        // does (drawing and discarding the arrival delays keeps the plan RNG
        // stream aligned, so a CrashPlan reproduces identically under both
        // executors).
        let mut plan_rng = StdRng::seed_from_u64(self.config.seed ^ 0xA5A5_5A5A_DEAD_BEEF);
        let params: Vec<(ProcessId, Option<u64>)> = ids
            .iter()
            .enumerate()
            .map(|(index, id)| {
                let _ = self.config.arrival.delay_for(index, &mut plan_rng);
                (
                    *id,
                    self.config.crash_plan.crash_step_for(index, &mut plan_rng),
                )
            })
            .collect();

        let gates: Vec<Arc<Gate>> = (0..k).map(|_| Arc::new(Gate::default())).collect();
        let seed = self.config.seed;
        let f = &f;

        let mut scheduler = self.resolve_scheduler();
        let mut trace = ExecTrace::default();
        let mut outcomes: Vec<Option<(ProcessId, ProcessOutcome<R>)>> =
            (0..k).map(|_| None).collect();

        std::thread::scope(|scope| {
            let handles: Vec<_> = params
                .iter()
                .zip(gates.iter())
                .map(|(&(id, crash_at), gate)| {
                    let gate = Arc::clone(gate);
                    scope.spawn(move || {
                        let mut ctx = ProcessCtx::with_adversary(
                            id,
                            seed,
                            crate::adversary::YieldPolicy::None,
                            crash_at,
                        );
                        if !gate.park(PendingOp::begin()) {
                            gate.mark_finished();
                            return (id, ProcessOutcome::Crashed { steps: ctx.stats() });
                        }
                        ctx.install_gate(Arc::clone(&gate));
                        let run = std::panic::catch_unwind(AssertUnwindSafe(|| f(&mut ctx)));
                        let steps = ctx.stats();
                        gate.mark_finished();
                        match run {
                            Ok(result) => (id, ProcessOutcome::Completed { result, steps }),
                            Err(payload) => {
                                if let Some(signal) = payload.downcast_ref::<CrashSignal>() {
                                    (
                                        id,
                                        ProcessOutcome::Crashed {
                                            steps: signal.steps,
                                        },
                                    )
                                } else if payload.downcast_ref::<ScheduleAbort>().is_some() {
                                    (id, ProcessOutcome::Crashed { steps })
                                } else {
                                    std::panic::resume_unwind(payload)
                                }
                            }
                        }
                    })
                })
                .collect();

            // Coordinator loop: wait for every live process to park, pick
            // one, grant it, repeat.
            let mut finished = vec![false; k];
            let mut step: usize = 0;
            loop {
                let mut enabled: Vec<(ProcessId, PendingOp)> = Vec::with_capacity(k);
                let mut enabled_idx: Vec<usize> = Vec::with_capacity(k);
                for (i, gate) in gates.iter().enumerate() {
                    if finished[i] {
                        continue;
                    }
                    match gate.wait_parked() {
                        Some(op) => {
                            enabled.push((params[i].0, op));
                            enabled_idx.push(i);
                        }
                        None => finished[i] = true,
                    }
                }
                if enabled.is_empty() {
                    break;
                }
                let abort_all =
                    |reason_truncated: bool, trace: &mut ExecTrace, finished: &mut [bool]| {
                        if reason_truncated {
                            trace.truncated = true;
                        } else {
                            trace.aborted = true;
                        }
                        for (i, gate) in gates.iter().enumerate() {
                            if finished[i] {
                                continue;
                            }
                            // The process is parked; abort it and wait for the
                            // unwind to complete.
                            if gate.wait_parked().is_some() {
                                gate.grant(true);
                            }
                            while gate.wait_parked().is_some() {
                                gate.grant(true);
                            }
                            finished[i] = true;
                        }
                    };
                if step as u64 >= self.max_steps {
                    abort_all(true, &mut trace, &mut finished);
                    break;
                }
                match scheduler.choose(step, &enabled) {
                    SchedulerDecision::Pick(pid) => {
                        let slot = enabled
                            .iter()
                            .position(|(p, _)| *p == pid)
                            .expect("scheduler picked a process that is not enabled");
                        let op = enabled[slot].1;
                        trace.events.push(OpEvent {
                            pid,
                            op,
                            enabled: enabled.clone(),
                        });
                        trace.schedule.choices.push(pid);
                        gates[enabled_idx[slot]].grant(false);
                        step += 1;
                    }
                    SchedulerDecision::Abort => {
                        abort_all(false, &mut trace, &mut finished);
                        break;
                    }
                }
            }

            for handle in handles {
                let (id, outcome) = handle.join().expect("process thread panicked");
                let index = params
                    .iter()
                    .position(|(pid, _)| *pid == id)
                    .expect("unknown process id");
                outcomes[index] = Some((id, outcome));
            }
        });

        VirtualRun {
            outcome: ExecutionOutcome::from_outcomes(
                outcomes
                    .into_iter()
                    .map(|o| o.expect("every process reports an outcome"))
                    .collect(),
            ),
            trace,
        }
    }

    fn resolve_scheduler(&self) -> Box<dyn SchedulerSlot + '_> {
        match &self.config.schedule {
            ScheduleSource::Random(seed) => Box::new(Owned(RandomScheduler::new(*seed))),
            ScheduleSource::Replay(schedule) => {
                Box::new(Owned(ReplayScheduler::new(schedule.clone())))
            }
            ScheduleSource::Explore(handle) => Box::new(Shared(handle)),
        }
    }
}

/// Internal adapter unifying owned schedulers and shared explore handles.
trait SchedulerSlot {
    fn choose(&mut self, step: usize, enabled: &[(ProcessId, PendingOp)]) -> SchedulerDecision;
}

struct Owned<S: Scheduler>(S);

impl<S: Scheduler> SchedulerSlot for Owned<S> {
    fn choose(&mut self, step: usize, enabled: &[(ProcessId, PendingOp)]) -> SchedulerDecision {
        self.0.choose(step, enabled)
    }
}

struct Shared<'a>(&'a ExploreHandle);

impl SchedulerSlot for Shared<'_> {
    fn choose(&mut self, step: usize, enabled: &[(ProcessId, PendingOp)]) -> SchedulerDecision {
        self.0.lock().choose(step, enabled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::CrashPlan;
    use crate::register::{AtomicU64Register, AtomicUsizeRegister};
    use std::sync::Arc;

    #[test]
    fn loc_fresh_is_unique_and_not_anon() {
        let a = Loc::fresh();
        let b = Loc::fresh();
        assert_ne!(a, b);
        assert!(!a.is_anon());
        assert!(Loc::ANON.is_anon());
    }

    #[test]
    fn conflicts_require_same_loc_and_a_writer() {
        let l1 = Loc::fresh();
        let l2 = Loc::fresh();
        let r1 = PendingOp::step(StepKind::RegisterRead, l1);
        let w1 = PendingOp::step(StepKind::RegisterWrite, l1);
        let w2 = PendingOp::step(StepKind::RegisterWrite, l2);
        let rmw1 = PendingOp::step(StepKind::ReadModifyWrite, l1);
        let flip = PendingOp::step(StepKind::CoinFlip, Loc::ANON);
        let anon_w = PendingOp::step(StepKind::RegisterWrite, Loc::ANON);

        assert!(!r1.conflicts_with(&r1), "read-read is independent");
        assert!(r1.conflicts_with(&w1));
        assert!(w1.conflicts_with(&r1));
        assert!(w1.conflicts_with(&rmw1));
        assert!(
            !w1.conflicts_with(&w2),
            "distinct locations are independent"
        );
        assert!(!flip.conflicts_with(&w1), "local steps never conflict");
        assert!(!PendingOp::begin().conflicts_with(&w1));
        assert!(anon_w.conflicts_with(&r1), "anonymous is conservative");
    }

    fn three_writer_body(
        reg: &Arc<AtomicU64Register>,
    ) -> impl Fn(&mut ProcessCtx) -> u64 + Send + Sync {
        let reg = Arc::clone(reg);
        move |ctx| {
            reg.write(ctx, ctx.id().as_u64() + 1);
            reg.read(ctx)
        }
    }

    #[test]
    fn virtual_execution_completes_and_counts_steps() {
        let reg = Arc::new(AtomicU64Register::new(0));
        let run = VirtualExecutor::with_seed(3).run(3, three_writer_body(&reg));
        assert_eq!(run.outcome.completed().count(), 3);
        assert_eq!(run.outcome.total_steps().total(), 6);
        // 3 begin events + 6 operations.
        assert_eq!(run.trace.events.len(), 9);
        assert!(!run.trace.truncated);
        assert!(!run.trace.aborted);
    }

    #[test]
    fn same_seed_gives_byte_identical_traces_and_stats() {
        let mk = || {
            let reg = Arc::new(AtomicU64Register::new(0));
            VirtualExecutor::with_seed(42).run(4, three_writer_body(&reg))
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.trace.schedule, b.trace.schedule);
        assert_eq!(a.outcome.per_process_steps(), b.outcome.per_process_steps());
        assert_eq!(a.outcome.results(), b.outcome.results());
        // Events compare equal modulo the location ids, which differ between
        // register instances; the pid/kind/access skeleton must match.
        let skel = |t: &ExecTrace| {
            t.events
                .iter()
                .map(|e| (e.pid, e.op.kind, e.op.access))
                .collect::<Vec<_>>()
        };
        assert_eq!(skel(&a.trace), skel(&b.trace));
    }

    #[test]
    fn replay_reproduces_a_random_schedule_exactly() {
        let mk = |source: ScheduleSource| {
            let reg = Arc::new(AtomicU64Register::new(0));
            VirtualExecutor::new(ExecConfig::new(9).with_schedule(source))
                .run(3, three_writer_body(&reg))
        };
        let original = mk(ScheduleSource::Random(1234));
        let replay = mk(ScheduleSource::Replay(original.trace.schedule.clone()));
        assert_eq!(replay.trace.schedule, original.trace.schedule);
        assert_eq!(replay.outcome.results(), original.outcome.results());
    }

    #[test]
    fn replay_falls_back_on_invalid_and_exhausted_schedules() {
        let reg = Arc::new(AtomicUsizeRegister::new(0));
        // A nonsense schedule: process 7 never exists, and it is far too
        // short — the fallback must still complete the run deterministically.
        let schedule = Schedule::new(vec![ProcessId::new(7), ProcessId::new(1)]);
        let run = VirtualExecutor::new(
            ExecConfig::new(0).with_schedule(ScheduleSource::Replay(schedule)),
        )
        .run(2, {
            let reg = Arc::clone(&reg);
            move |ctx| reg.fetch_add(ctx, 1)
        });
        assert_eq!(run.outcome.results_sorted(), vec![0, 1]);
    }

    #[test]
    fn fixed_sequential_schedule_serializes_processes() {
        // Grant p1 everything first, then p0: p1 must see the initial value,
        // p0 must see p1's write.
        let reg = Arc::new(AtomicU64Register::new(0));
        let choices = vec![
            ProcessId::new(0),
            ProcessId::new(1), // begins (p0's begin first: both are local)
            ProcessId::new(1),
            ProcessId::new(1), // p1: write, read
            ProcessId::new(0),
            ProcessId::new(0), // p0: write, read
        ];
        let run = VirtualExecutor::new(
            ExecConfig::new(0).with_schedule(ScheduleSource::Replay(Schedule::new(choices))),
        )
        .run(2, {
            let reg = Arc::clone(&reg);
            move |ctx| {
                reg.write(ctx, ctx.id().as_u64() + 1);
                reg.read(ctx)
            }
        });
        let results: Vec<(ProcessId, u64)> =
            run.outcome.completed().map(|(id, r)| (id, *r)).collect();
        assert!(results.contains(&(ProcessId::new(1), 2)));
        assert!(results.contains(&(ProcessId::new(0), 1)));
    }

    #[test]
    fn crash_plans_are_honored_deterministically() {
        let reg = Arc::new(AtomicUsizeRegister::new(0));
        let config = ExecConfig::new(5).with_crash_plan(CrashPlan::Fixed(vec![Some(2), None]));
        let run = VirtualExecutor::new(config).run(2, {
            let reg = Arc::clone(&reg);
            move |ctx| {
                for _ in 0..4 {
                    reg.fetch_add(ctx, 1);
                }
                ctx.id().as_usize()
            }
        });
        assert_eq!(run.outcome.crashed_count(), 1);
        assert_eq!(run.outcome.completed().count(), 1);
    }

    #[test]
    fn step_budget_truncates_and_reports() {
        let reg = Arc::new(AtomicUsizeRegister::new(0));
        let run = VirtualExecutor::with_seed(1).with_max_steps(5).run(2, {
            let reg = Arc::clone(&reg);
            move |ctx| {
                for _ in 0..100 {
                    reg.fetch_add(ctx, 1);
                }
            }
        });
        assert!(run.trace.truncated);
        assert_eq!(run.outcome.crashed_count(), 2);
        assert!(run.trace.events.len() <= 5);
    }

    /// A scheduler that aborts immediately.
    struct AbortNow;
    impl Scheduler for AbortNow {
        fn choose(
            &mut self,
            _step: usize,
            _enabled: &[(ProcessId, PendingOp)],
        ) -> SchedulerDecision {
            SchedulerDecision::Abort
        }
    }

    #[test]
    fn explore_handle_drives_scheduling_and_abort() {
        let handle = ExploreHandle::new(AbortNow);
        let run = VirtualExecutor::new(
            ExecConfig::new(0).with_schedule(ScheduleSource::Explore(handle.clone())),
        )
        .run(2, |ctx| ctx.flip());
        assert!(run.trace.aborted);
        assert_eq!(run.outcome.crashed_count(), 2);
        assert_eq!(handle, handle.clone());
    }

    #[test]
    fn enabled_sets_are_recorded_in_process_order() {
        let reg = Arc::new(AtomicU64Register::new(0));
        let run = VirtualExecutor::with_seed(11).run(3, three_writer_body(&reg));
        for event in &run.trace.events {
            let pids: Vec<usize> = event.enabled.iter().map(|(p, _)| p.as_usize()).collect();
            let mut sorted = pids.clone();
            sorted.sort_unstable();
            assert_eq!(pids, sorted);
            assert!(event.enabled.iter().any(|(p, _)| *p == event.pid));
        }
    }

    #[test]
    fn zero_processes_yield_an_empty_run() {
        let run: VirtualRun<()> = VirtualExecutor::with_seed(0).run(0, |_| ());
        assert!(run.outcome.is_empty());
        assert!(run.trace.events.is_empty());
    }
}
