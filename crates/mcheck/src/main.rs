//! The `mcheck` command-line front end.
//!
//! ```text
//! mcheck list
//! mcheck explore [--scenario NAME] [--mode dpor|brute|bounded] [--bound N]
//!                [--max-executions N] [--stop-on-violation] [--write-traces DIR]
//! mcheck fuzz --scenario NAME [--seconds S] [--seed S] [--write-traces DIR]
//! mcheck replay <FILE.trace>
//! ```
//!
//! `explore` exhausts the schedule space of each selected scenario, prints
//! the reduction achieved against naive enumeration, and (with
//! `--write-traces`) serializes every violation as a minimized replayable
//! trace file. Exit status is non-zero when a scenario's outcome contradicts
//! its registration (an unexpected violation, or a counterexample hunt that
//! found nothing).

use mcheck::bounded::{self, BoundedConfig};
use mcheck::coverage::{fuzz, FuzzConfig};
use mcheck::dpor::{self, Counterexample, ExploreConfig, ExploreMode};
use mcheck::minimize::minimize_counterexample;
use mcheck::scenarios::{self, ScenarioDef};
use mcheck::trace::{Expectation, TraceFile};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("explore") => cmd_explore(&args[1..]),
        Some("fuzz") => cmd_fuzz(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        _ => {
            eprintln!("usage: mcheck <list|explore|fuzz|replay> [options]");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("mcheck: {message}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_list() -> Result<(), String> {
    for def in scenarios::all() {
        println!(
            "{:<22} {} procs  {}{}",
            def.name,
            def.procs,
            if def.expect_violations {
                "[counterexample hunt] "
            } else {
                ""
            },
            def.about
        );
    }
    Ok(())
}

struct Flags {
    scenario: Option<String>,
    mode: String,
    bound: u32,
    max_executions: usize,
    seconds: f64,
    seed: u64,
    stop_on_violation: bool,
    write_traces: Option<PathBuf>,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags {
        scenario: None,
        mode: "dpor".into(),
        bound: 2,
        max_executions: 200_000,
        seconds: 5.0,
        seed: 0,
        stop_on_violation: false,
        write_traces: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--scenario" => flags.scenario = Some(value("--scenario")?),
            "--mode" => flags.mode = value("--mode")?,
            "--bound" => {
                flags.bound = value("--bound")?
                    .parse()
                    .map_err(|e| format!("--bound: {e}"))?;
            }
            "--max-executions" => {
                flags.max_executions = value("--max-executions")?
                    .parse()
                    .map_err(|e| format!("--max-executions: {e}"))?;
            }
            "--seconds" => {
                flags.seconds = value("--seconds")?
                    .parse()
                    .map_err(|e| format!("--seconds: {e}"))?;
            }
            "--seed" => {
                flags.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--stop-on-violation" => flags.stop_on_violation = true,
            "--write-traces" => flags.write_traces = Some(PathBuf::from(value("--write-traces")?)),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(flags)
}

fn selected(flags: &Flags) -> Result<Vec<ScenarioDef>, String> {
    match &flags.scenario {
        Some(name) => scenarios::find(name)
            .map(|d| vec![d])
            .ok_or_else(|| format!("unknown scenario {name:?} (try `mcheck list`)")),
        None => Ok(scenarios::all()),
    }
}

fn cmd_explore(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let mut failed = false;
    // A bare `explore` sweeps the exhaustive tier; heavy scenarios (whose
    // schedule spaces defeat exhaustive search) must be named explicitly
    // and are meant for the bounded / fuzz modes.
    let sweep = flags.scenario.is_none();
    for def in selected(&flags)? {
        if sweep && !def.exhaustive {
            println!(
                "{:<22} skipped (heavy tier; name it with --scenario)",
                def.name
            );
            continue;
        }
        let (violations, summary) = match flags.mode.as_str() {
            "dpor" | "brute" => {
                let config = ExploreConfig {
                    mode: if flags.mode == "brute" {
                        ExploreMode::BruteForce
                    } else {
                        ExploreMode::Dpor
                    },
                    max_executions: flags.max_executions,
                    stop_on_violation: flags.stop_on_violation || def.expect_violations,
                    ..ExploreConfig::default()
                };
                let report = dpor::explore(&def, &config);
                let summary = format!(
                    "{} executions ({} complete, {} sleep-blocked, {} truncated), \
                     {} classes, naive baseline ≈ {:.0} interleavings{}",
                    report.executions,
                    report.complete,
                    report.sleep_blocked,
                    report.truncated,
                    report.classes.len(),
                    report.naive_interleavings(),
                    if report.capped { " [CAPPED]" } else { "" },
                );
                (report.violations, summary)
            }
            "bounded" => {
                let config = BoundedConfig {
                    bound: flags.bound,
                    max_executions: flags.max_executions,
                    stop_on_violation: flags.stop_on_violation || def.expect_violations,
                    ..BoundedConfig::default()
                };
                let report = bounded::explore(&def, &config);
                let summary = format!(
                    "{} executions ({} complete, {} truncated), {} classes, bound {}{}",
                    report.executions,
                    report.complete,
                    report.truncated,
                    report.classes.len(),
                    flags.bound,
                    if report.capped { " [CAPPED]" } else { "" },
                );
                (report.violations, summary)
            }
            other => return Err(format!("unknown mode {other:?} (dpor|brute|bounded)")),
        };
        println!("{:<22} {}", def.name, summary);
        let ok = report_outcome(&def, &violations, flags.write_traces.as_deref())?;
        failed |= !ok;
    }
    if failed {
        Err("at least one scenario contradicted its registration".into())
    } else {
        Ok(())
    }
}

fn cmd_fuzz(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let mut failed = false;
    for def in selected(&flags)? {
        let config = FuzzConfig {
            seconds: flags.seconds,
            seed: flags.seed,
            stop_on_violation: flags.stop_on_violation || def.expect_violations,
            ..FuzzConfig::default()
        };
        let report = fuzz(&def, &config);
        println!(
            "{:<22} {} iterations, {} classes, corpus {}, longest trace {}, max result {}",
            def.name,
            report.iterations,
            report.classes.len(),
            report.corpus,
            report.max_trace_len,
            report.max_result,
        );
        let ok = report_outcome(&def, &report.violations, flags.write_traces.as_deref())?;
        failed |= !ok;
    }
    if failed {
        Err("at least one scenario contradicted its registration".into())
    } else {
        Ok(())
    }
}

/// Prints violations (minimized), optionally writes trace files, and returns
/// whether the outcome matches the scenario's registration.
fn report_outcome(
    def: &ScenarioDef,
    violations: &[Counterexample],
    write_traces: Option<&Path>,
) -> Result<bool, String> {
    for (index, cx) in violations.iter().enumerate() {
        let minimized = minimize_counterexample(def, cx, 100_000);
        println!(
            "  violation: {} (schedule minimized {} -> {} choices)",
            minimized.message,
            cx.schedule.len(),
            minimized.schedule.len(),
        );
        if let Some(dir) = write_traces {
            let file = trace_file_for(def, &minimized);
            let path = dir.join(format!("{}_{index}.trace", def.name));
            std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
            std::fs::write(&path, file.render(&format!("minimized from {}", def.name)))
                .map_err(|e| format!("writing {}: {e}", path.display()))?;
            println!("  wrote {}", path.display());
        }
    }
    let ok = violations.is_empty() != def.expect_violations;
    if !ok {
        println!(
            "  UNEXPECTED: {} violations on a scenario registered with expect_violations={}",
            violations.len(),
            def.expect_violations
        );
    }
    Ok(ok)
}

/// Converts a (minimized) counterexample into its trace-file form.
fn trace_file_for(def: &ScenarioDef, cx: &Counterexample) -> TraceFile {
    let crashes = cx
        .crash_plan
        .iter()
        .flatten()
        .enumerate()
        .filter_map(|(pid, steps)| steps.map(|s| (pid, s)))
        .collect();
    TraceFile {
        scenario: def.name.to_string(),
        procs: def.procs,
        seed: 0,
        crashes,
        expect: Expectation::Violation,
        schedule: cx.schedule.clone(),
    }
}

fn cmd_replay(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("replay needs a trace file path")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let file = TraceFile::parse(&text)?;
    let summary = mcheck::trace::verify(&file)?;
    println!("{summary}");
    Ok(())
}
