//! Coverage-guided schedule fuzzing.
//!
//! Exhaustive search caps out at a handful of processes; random scheduling
//! alone keeps re-sampling the fat head of the schedule distribution. The
//! fuzzer sits in between: a corpus of interesting schedules is mutated
//! (truncate at a random point, then continue with fresh random choices) and
//! a run earns its way into the corpus by **novelty** — an unseen
//! Mazurkiewicz dependency-class hash — or by pushing an **objective**
//! outlier: the longest trace seen (step-count outlier, e.g. recycler retry
//! storms) or the largest per-process result (namespace-bound outlier for
//! renaming scenarios).

use crate::classes::class_hash;
use crate::dpor::Counterexample;
use crate::scenarios::ScenarioDef;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shmem::{
    CrashPlan, ExecConfig, ExploreHandle, PendingOp, ProcessId, Schedule, ScheduleSource,
    Scheduler, SchedulerDecision, VirtualExecutor,
};
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Knobs of one fuzzing campaign.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Wall-clock budget.
    pub seconds: f64,
    /// Campaign seed: drives mutation and tail scheduling.
    pub seed: u64,
    /// Per-execution step budget.
    pub max_steps: u64,
    /// Hard cap on iterations (safety net under CI timers).
    pub max_iters: usize,
    /// Stop at the first oracle violation.
    pub stop_on_violation: bool,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seconds: 5.0,
            seed: 0,
            max_steps: 100_000,
            max_iters: 1_000_000,
            stop_on_violation: false,
        }
    }
}

/// What a fuzzing campaign observed.
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    /// Executions launched.
    pub iterations: usize,
    /// Executions that ran to completion and were oracle-checked.
    pub complete: usize,
    /// Executions cut off by the step budget.
    pub truncated: usize,
    /// Distinct Mazurkiewicz class hashes observed.
    pub classes: BTreeSet<u64>,
    /// Every oracle violation found.
    pub violations: Vec<Counterexample>,
    /// Final corpus size.
    pub corpus: usize,
    /// Longest complete trace observed (step-count objective).
    pub max_trace_len: usize,
    /// Largest per-process result observed (namespace-bound objective).
    pub max_result: u64,
}

/// Replays a schedule prefix (skipping entries naming a non-enabled
/// process), then continues with uniformly random choices.
struct PrefixRandomScheduler {
    prefix: Vec<ProcessId>,
    pos: usize,
    rng: StdRng,
}

impl Scheduler for PrefixRandomScheduler {
    fn choose(&mut self, _step: usize, enabled: &[(ProcessId, PendingOp)]) -> SchedulerDecision {
        while self.pos < self.prefix.len() {
            let pid = self.prefix[self.pos];
            self.pos += 1;
            if enabled.iter().any(|(p, _)| *p == pid) {
                return SchedulerDecision::Pick(pid);
            }
        }
        let index = self.rng.gen_range(0..enabled.len());
        SchedulerDecision::Pick(enabled[index].0)
    }
}

/// Runs a coverage-guided fuzzing campaign over one scenario.
pub fn fuzz(def: &ScenarioDef, config: &FuzzConfig) -> FuzzReport {
    const CORPUS_CAP: usize = 512;
    let mut report = FuzzReport::default();
    let mut corpus: Vec<Schedule> = Vec::new();
    let mut rng =
        StdRng::seed_from_u64(config.seed.wrapping_mul(0x517c_c1b7_2722_0a95) ^ 0x5eed_0fc0_ffee);
    let plans = def.crash_plans();
    let deadline = Instant::now() + Duration::from_secs_f64(config.seconds.max(0.0));

    while report.iterations < config.max_iters && Instant::now() < deadline {
        report.iterations += 1;

        // Mutation: three-quarters of the time, truncate a corpus schedule
        // at a random point and let the random tail diverge from there.
        let prefix: Vec<ProcessId> = if !corpus.is_empty() && rng.gen_bool(0.75) {
            let parent = &corpus[rng.gen_range(0..corpus.len())];
            let cut = rng.gen_range(0..=parent.choices.len());
            parent.choices[..cut].to_vec()
        } else {
            Vec::new()
        };
        let plan = &plans[rng.gen_range(0..plans.len())];

        let scheduler = PrefixRandomScheduler {
            prefix,
            pos: 0,
            rng: StdRng::seed_from_u64(rng.gen()),
        };
        let built = (def.build)();
        let mut cfg = ExecConfig::new(0)
            .with_schedule(ScheduleSource::Explore(ExploreHandle::new(scheduler)));
        if let Some(plan) = plan {
            cfg = cfg.with_crash_plan(CrashPlan::Fixed(plan.clone()));
        }
        let body = Arc::clone(&built.body);
        let run = VirtualExecutor::new(cfg)
            .with_max_steps(config.max_steps)
            .run(def.procs, move |ctx| body(ctx));

        if run.trace.truncated {
            report.truncated += 1;
            continue;
        }
        report.complete += 1;

        // Novelty and objectives decide corpus admission.
        let mut interesting = report.classes.insert(class_hash(&run.trace.events));
        if run.trace.events.len() > report.max_trace_len {
            report.max_trace_len = run.trace.events.len();
            interesting = true;
        }
        let best = run.outcome.completed().map(|(_, &r)| r).max().unwrap_or(0);
        if best > report.max_result {
            report.max_result = best;
            interesting = true;
        }
        if interesting && corpus.len() < CORPUS_CAP {
            corpus.push(run.trace.schedule.clone());
        }

        if let Err(message) = (built.check)(&run) {
            report.violations.push(Counterexample {
                scenario: def.name.to_string(),
                crash_plan: plan.clone(),
                schedule: run.trace.schedule.clone(),
                message,
            });
            if config.stop_on_violation {
                break;
            }
        }
    }
    report.corpus = corpus.len();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios;

    fn quick(seed: u64) -> FuzzConfig {
        FuzzConfig {
            seconds: 2.0,
            seed,
            max_steps: 100_000,
            max_iters: 400,
            stop_on_violation: false,
        }
    }

    #[test]
    fn fuzzing_accumulates_distinct_classes() {
        let def = scenarios::find("toy_racy_pair").expect("registered");
        let report = fuzz(&def, &quick(1));
        assert!(report.iterations > 0);
        assert!(
            report.classes.len() > 1,
            "random schedules of a racy pair hit several classes"
        );
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.corpus >= report.classes.len().min(4));
    }

    #[test]
    fn fuzzing_finds_the_stalled_token_counterexample() {
        let def = scenarios::find("cnet_stall_one_token").expect("registered");
        let report = fuzz(
            &def,
            &FuzzConfig {
                stop_on_violation: true,
                ..quick(2)
            },
        );
        assert!(
            !report.violations.is_empty(),
            "the stall violation is dense enough for a short fuzz: {report:?}"
        );
    }

    #[test]
    fn lease_churn_survives_a_short_fuzz() {
        let def = scenarios::find("recycler_churn_2p").expect("registered");
        let report = fuzz(&def, &quick(3));
        assert!(report.complete > 0);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }
}
