//! Mazurkiewicz trace equivalence: canonical linearizations and class hashes.
//!
//! Two interleavings of the same program are *equivalent* when one can be
//! obtained from the other by repeatedly swapping adjacent **independent**
//! operations (different processes, non-conflicting per
//! [`PendingOp::conflicts_with`]). A partial-order reduction explores one
//! representative per equivalence class; to *verify* that (and to key the
//! coverage-guided explorer's novelty search) we need a fingerprint that is
//! identical for equivalent traces and distinct for inequivalent ones.
//!
//! The fingerprint is the FNV-1a hash of the **canonical linearization** of
//! the trace's dependence partial order: repeatedly emit, among the events
//! whose dependence predecessors have all been emitted, the one belonging to
//! the smallest `(process, program-order index)`. Equivalent traces have the
//! same labelled partial order, hence the same canonical linearization.
//! Register [`Loc`]s are renumbered by first appearance in the canonical
//! order, so the hash is stable across executions that rebuild the shared
//! objects (and therefore draw fresh raw location ids).

use shmem::{Loc, OpEvent, PendingOp, ProcessId};
use std::collections::BTreeMap;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// The class hash of a recorded execution trace (see the module docs).
pub fn class_hash(events: &[OpEvent]) -> u64 {
    let ops: Vec<(ProcessId, PendingOp)> = events.iter().map(|e| (e.pid, e.op)).collect();
    class_hash_ops(&ops)
}

/// The class hash of a `(process, operation)` sequence.
pub fn class_hash_ops(ops: &[(ProcessId, PendingOp)]) -> u64 {
    let order = canonical_order(ops);
    let mut locs: BTreeMap<Loc, u64> = BTreeMap::new();
    let mut hash = FNV_OFFSET;
    for &index in &order {
        let (pid, op) = ops[index];
        let loc = if op.loc.is_anon() {
            0
        } else {
            let next = locs.len() as u64 + 1;
            *locs.entry(op.loc).or_insert(next)
        };
        fnv1a(&mut hash, &(pid.as_u64()).to_le_bytes());
        fnv1a(&mut hash, &[kind_tag(&op), op.access as u8]);
        fnv1a(&mut hash, &loc.to_le_bytes());
    }
    hash
}

fn kind_tag(op: &PendingOp) -> u8 {
    match op.kind {
        None => u8::MAX,
        Some(kind) => kind as u8,
    }
}

/// The canonical linearization of the dependence partial order of `ops`,
/// as indices into `ops`: the greedy lexicographically-least topological
/// order, preferring the event with the smallest `(process, program-order
/// index)` among those whose predecessors have all been emitted.
pub fn canonical_order(ops: &[(ProcessId, PendingOp)]) -> Vec<usize> {
    let n = ops.len();
    // Dependence predecessors: program order plus conflicts.
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for j in 0..n {
        for i in 0..j {
            if ops[i].0 == ops[j].0 || ops[i].1.conflicts_with(&ops[j].1) {
                preds[j].push(i);
            }
        }
    }
    // Program-order index of each event within its process, for the
    // priority key.
    let mut po: Vec<usize> = vec![0; n];
    let mut counts: BTreeMap<ProcessId, usize> = BTreeMap::new();
    for (j, (pid, _)) in ops.iter().enumerate() {
        let c = counts.entry(*pid).or_insert(0);
        po[j] = *c;
        *c += 1;
    }

    let mut emitted = vec![false; n];
    let mut remaining: Vec<usize> = vec![0; n];
    for j in 0..n {
        remaining[j] = preds[j].len();
    }
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (j, ps) in preds.iter().enumerate() {
        for &i in ps {
            succs[i].push(j);
        }
    }

    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        let next = (0..n)
            .filter(|&j| !emitted[j] && remaining[j] == 0)
            .min_by_key(|&j| (ops[j].0.as_u64(), po[j]))
            .expect("the dependence graph of a trace is acyclic");
        emitted[next] = true;
        order.push(next);
        for &s in &succs[next] {
            remaining[s] -= 1;
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmem::StepKind;

    fn pid(p: usize) -> ProcessId {
        ProcessId::new(p)
    }

    fn write(p: usize, loc: Loc) -> (ProcessId, PendingOp) {
        (pid(p), PendingOp::step(StepKind::RegisterWrite, loc))
    }

    fn read(p: usize, loc: Loc) -> (ProcessId, PendingOp) {
        (pid(p), PendingOp::step(StepKind::RegisterRead, loc))
    }

    fn begin(p: usize) -> (ProcessId, PendingOp) {
        (pid(p), PendingOp::begin())
    }

    #[test]
    fn equivalent_interleavings_share_a_hash() {
        let a = Loc::fresh();
        let b = Loc::fresh();
        // p0 writes a; p1 writes b — independent, any order is equivalent.
        let t1 = vec![begin(0), begin(1), write(0, a), write(1, b)];
        let t2 = vec![begin(1), write(1, b), begin(0), write(0, a)];
        assert_eq!(class_hash_ops(&t1), class_hash_ops(&t2));
    }

    #[test]
    fn conflicting_interleavings_differ() {
        let a = Loc::fresh();
        let t1 = vec![write(0, a), write(1, a)];
        let t2 = vec![write(1, a), write(0, a)];
        assert_ne!(class_hash_ops(&t1), class_hash_ops(&t2));
    }

    #[test]
    fn hashes_are_stable_across_fresh_locations() {
        // The same program rebuilt with fresh registers must hash alike:
        // locations are renumbered by first canonical appearance.
        let mk = |a: Loc, b: Loc| vec![write(0, a), read(1, a), write(1, b)];
        let h1 = class_hash_ops(&mk(Loc::fresh(), Loc::fresh()));
        let h2 = class_hash_ops(&mk(Loc::fresh(), Loc::fresh()));
        assert_eq!(h1, h2);
    }

    #[test]
    fn read_read_commutes_but_read_write_does_not() {
        let a = Loc::fresh();
        let rr1 = vec![read(0, a), read(1, a)];
        let rr2 = vec![read(1, a), read(0, a)];
        assert_eq!(class_hash_ops(&rr1), class_hash_ops(&rr2));
        let rw1 = vec![read(0, a), write(1, a)];
        let rw2 = vec![write(1, a), read(0, a)];
        assert_ne!(class_hash_ops(&rw1), class_hash_ops(&rw2));
    }

    #[test]
    fn canonical_order_respects_dependence() {
        let a = Loc::fresh();
        let ops = vec![write(1, a), read(0, a)];
        // p1's write precedes p0's read in the trace and conflicts with it,
        // so the canonical order may not reorder them (despite p0's priority).
        assert_eq!(canonical_order(&ops), vec![0, 1]);
    }
}
