//! `mcheck`: deterministic schedule exploration over the `shmem` virtual
//! executor — DPOR model checking with replayable counterexamples.
//!
//! The workspace's threaded [`Executor`](shmem::Executor) samples schedules
//! from the OS; the [`VirtualExecutor`](shmem::VirtualExecutor) instead
//! serializes every shared-memory operation through per-process gates and
//! asks a [`Scheduler`](shmem::Scheduler) which process steps next. This
//! crate supplies the schedulers worth asking:
//!
//! * [`dpor`] — exhaustive DFS with dynamic partial-order reduction
//!   (persistent sets + sleep sets) and a brute-force mode as ground truth;
//! * [`bounded`] — CHESS-style preemption-bounded DFS;
//! * [`coverage`] — coverage-guided schedule fuzzing keyed on Mazurkiewicz
//!   class novelty and step-count / namespace-bound objectives;
//! * [`minimize`] — `ddmin` shrinking of failing schedules;
//! * [`trace`] — the `tests/schedules/*.trace` file format and replayer;
//! * [`scenarios`] — the workload registry (toy races, TAS objects, counting
//!   networks, renaming, recycler churn) with per-scenario oracles;
//! * [`classes`] — Mazurkiewicz trace-equivalence hashing.
//!
//! Every counterexample is a [`dpor::Counterexample`]: a schedule (plus
//! crash plan) replayable with one command —
//! `cargo run -p mcheck -- replay tests/schedules/<file>.trace`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounded;
pub mod classes;
pub mod coverage;
pub mod dpor;
mod driver;
pub mod minimize;
pub mod scenarios;
pub mod trace;

pub use bounded::{BoundedConfig, BoundedReport};
pub use classes::{class_hash, class_hash_ops};
pub use coverage::{fuzz, FuzzConfig, FuzzReport};
pub use dpor::{explore, Counterexample, ExploreConfig, ExploreMode, ExploreReport};
pub use minimize::{ddmin, minimize_counterexample, schedule_fails};
pub use scenarios::{BuiltScenario, ScenarioDef};
pub use trace::{Expectation, TraceFile};
