//! Delta-debugging minimization of failing schedules.
//!
//! A counterexample schedule straight out of the explorer drags the whole
//! execution along — begins, unrelated suffixes, redundant switches. Zeller's
//! `ddmin` shrinks it to a 1-minimal subsequence: removing any single retained
//! choice makes the failure disappear. Replay tolerance makes this sound: the
//! [`ReplayScheduler`](shmem::vexec::ReplayScheduler) skips choices naming a
//! process that is not enabled and falls back to the lowest-index enabled
//! process once the schedule is exhausted, so *every* subsequence of a valid
//! schedule replays to a complete, deterministic execution.

use crate::dpor::Counterexample;
use crate::scenarios::ScenarioDef;
use shmem::{CrashPlan, ExecConfig, Schedule, ScheduleSource, VirtualExecutor};
use std::sync::Arc;

/// Zeller–Hildebrandt delta debugging over an arbitrary sequence: returns a
/// 1-minimal subsequence on which `fails` still returns `true`.
///
/// If `fails` rejects the full input the input is returned unchanged (there
/// is nothing to minimize towards).
pub fn ddmin<T: Clone>(input: &[T], mut fails: impl FnMut(&[T]) -> bool) -> Vec<T> {
    let mut current: Vec<T> = input.to_vec();
    if current.is_empty() || !fails(&current) {
        return current;
    }
    let mut granularity = 2usize;
    while current.len() >= 2 {
        let chunk = current.len().div_ceil(granularity);
        let mut reduced = false;

        // Try each chunk alone, then each complement (classic ddmin order).
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let subset: Vec<T> = current[start..end].to_vec();
            if subset.len() < current.len() && fails(&subset) {
                current = subset;
                granularity = 2;
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced && granularity > 2 {
            let mut start = 0;
            while start < current.len() {
                let end = (start + chunk).min(current.len());
                let complement: Vec<T> = current[..start]
                    .iter()
                    .chain(&current[end..])
                    .cloned()
                    .collect();
                if complement.len() < current.len() && fails(&complement) {
                    current = complement;
                    granularity = (granularity - 1).max(2);
                    reduced = true;
                    break;
                }
                start = end;
            }
        }
        if !reduced {
            if granularity >= current.len() {
                break; // 1-minimal
            }
            granularity = (granularity * 2).min(current.len());
        }
    }
    current
}

/// Replays `schedule` against a fresh build of the scenario and reports
/// whether the oracle still fails. This is the `ddmin` predicate — and the
/// one-command repro underneath `mcheck replay`.
pub fn schedule_fails(
    def: &ScenarioDef,
    crash_plan: Option<&Vec<Option<u64>>>,
    schedule: &Schedule,
    max_steps: u64,
) -> bool {
    let built = (def.build)();
    let mut cfg = ExecConfig::new(0).with_schedule(ScheduleSource::Replay(schedule.clone()));
    if let Some(plan) = crash_plan {
        cfg = cfg.with_crash_plan(CrashPlan::Fixed(plan.clone()));
    }
    let body = Arc::clone(&built.body);
    let run = VirtualExecutor::new(cfg)
        .with_max_steps(max_steps)
        .run(def.procs, move |ctx| body(ctx));
    if run.trace.truncated || run.trace.aborted {
        // A cut-off replay never counts as a reproduction.
        return false;
    }
    (built.check)(&run).is_err()
}

/// Minimizes a counterexample's schedule with `ddmin`, preserving the crash
/// plan. The result still reproduces the violation (guaranteed by the
/// predicate) with a 1-minimal choice sequence.
pub fn minimize_counterexample(
    def: &ScenarioDef,
    cx: &Counterexample,
    max_steps: u64,
) -> Counterexample {
    let choices = ddmin(&cx.schedule.choices, |candidate| {
        schedule_fails(
            def,
            cx.crash_plan.as_ref(),
            &Schedule::new(candidate.to_vec()),
            max_steps,
        )
    });
    Counterexample {
        schedule: Schedule::new(choices),
        ..cx.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddmin_reduces_to_the_failure_kernel() {
        // Failure: the sequence contains both 3 and 7.
        let input: Vec<u32> = (0..20).collect();
        let minimal = ddmin(&input, |s| s.contains(&3) && s.contains(&7));
        assert_eq!(minimal, vec![3, 7]);
    }

    #[test]
    fn ddmin_preserves_order_and_multiplicity() {
        let input = vec![5, 1, 5, 2, 5];
        // Failure: at least two fives.
        let minimal = ddmin(&input, |s| s.iter().filter(|&&x| x == 5).count() >= 2);
        assert_eq!(minimal, vec![5, 5]);
    }

    #[test]
    fn ddmin_returns_passing_input_unchanged() {
        let input = vec![1, 2, 3];
        assert_eq!(ddmin(&input, |_| false), input);
    }

    #[test]
    fn ddmin_handles_singleton_failures() {
        let input: Vec<u32> = (0..100).collect();
        let minimal = ddmin(&input, |s| s.contains(&42));
        assert_eq!(minimal, vec![42]);
    }
}
