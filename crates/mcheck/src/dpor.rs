//! The exhaustive explorer: DFS over schedules with classic DPOR.
//!
//! Stateless-search layout (Flanagan–Godefroid persistent sets + sleep
//! sets): a DFS stack of scheduling decisions mirrors the current execution
//! one entry per granted step. After each run, a clock-vector race analysis
//! walks the trace, finds pairs of conflicting concurrent operations, and
//! plants **backtrack points** — alternative processes to try — at the
//! earlier operation's decision node. Backtracking pops exhausted nodes,
//! switches an unexplored backtrack candidate in, and re-executes the
//! program under the forced prefix. Sleep sets carry explored siblings into
//! each subtree so no Mazurkiewicz class is executed twice: a run whose
//! every enabled process sleeps is abandoned ([`ExploreReport::sleep_blocked`]).
//!
//! [`ExploreMode::BruteForce`] disables both reductions (every enabled
//! process becomes a backtrack candidate, sleep sets stay empty), turning
//! the same DFS into naive enumeration of *all* maximal interleavings — the
//! ground truth the DPOR soundness tests compare against.

use crate::classes::class_hash;
use crate::driver::{ForcedChoice, Guide, TailPolicy};
use crate::scenarios::ScenarioDef;
use shmem::{
    CrashPlan, ExecConfig, ExploreHandle, OpEvent, PendingOp, ProcessId, Schedule, ScheduleSource,
    VirtualExecutor,
};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Search strategy of the exhaustive explorer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExploreMode {
    /// Dynamic partial-order reduction: persistent sets + sleep sets.
    Dpor,
    /// Naive enumeration of every maximal interleaving (ground truth).
    BruteForce,
}

/// Knobs of one exhaustive search.
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// Search strategy.
    pub mode: ExploreMode,
    /// Hard cap on executed schedules; hitting it sets [`ExploreReport::capped`].
    pub max_executions: usize,
    /// Per-execution step budget handed to the virtual executor.
    pub max_steps: u64,
    /// Stop the search at the first oracle violation.
    pub stop_on_violation: bool,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            mode: ExploreMode::Dpor,
            max_executions: 200_000,
            max_steps: 100_000,
            stop_on_violation: false,
        }
    }
}

/// A schedule (plus crash plan) under which a scenario's oracle failed —
/// replayable via [`ScheduleSource::Replay`], serializable as a trace file.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// The scenario the oracle belongs to.
    pub scenario: String,
    /// The crash plan in force, if any (`CrashPlan::Fixed` vector).
    pub crash_plan: Option<Vec<Option<u64>>>,
    /// The schedule that produced the violation.
    pub schedule: Schedule,
    /// The oracle's description of the violation.
    pub message: String,
}

/// What an exhaustive search did and found.
#[derive(Clone, Debug, Default)]
pub struct ExploreReport {
    /// Executions launched (complete + sleep-blocked + truncated).
    pub executions: usize,
    /// Executions that ran to completion and were oracle-checked.
    pub complete: usize,
    /// Executions abandoned because every enabled process slept.
    pub sleep_blocked: usize,
    /// Executions cut off by the step budget.
    pub truncated: usize,
    /// Mazurkiewicz class hashes of the complete executions.
    pub classes: BTreeSet<u64>,
    /// Every oracle violation found.
    pub violations: Vec<Counterexample>,
    /// Whether `max_executions` cut the search short.
    pub capped: bool,
    /// `ln` of the multinomial interleaving count of the first complete
    /// trace — the naive enumeration baseline the reduction is measured
    /// against (`None` until a run completes).
    pub naive_ln_interleavings: Option<f64>,
}

impl ExploreReport {
    /// The naive-enumeration baseline as a plain count (`exp` of the stored
    /// logarithm; `f64::INFINITY`-safe for large traces).
    pub fn naive_interleavings(&self) -> f64 {
        self.naive_ln_interleavings.map_or(0.0, f64::exp)
    }

    /// Folds another report (e.g. one crash-sweep arm) into this one.
    pub fn merge(&mut self, other: ExploreReport) {
        self.executions += other.executions;
        self.complete += other.complete;
        self.sleep_blocked += other.sleep_blocked;
        self.truncated += other.truncated;
        self.classes.extend(other.classes);
        self.violations.extend(other.violations);
        self.capped |= other.capped;
        self.naive_ln_interleavings =
            match (self.naive_ln_interleavings, other.naive_ln_interleavings) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            };
    }
}

/// One DFS stack node: a scheduling decision and its exploration state.
#[derive(Clone, Debug)]
struct Entry {
    /// The enabled set at the decision, in process order.
    enabled: Vec<(ProcessId, PendingOp)>,
    /// The branch currently (or most recently) taken.
    chosen: ProcessId,
    /// Sleep set inherited at this node.
    sleep_at_entry: Vec<(ProcessId, PendingOp)>,
    /// Processes worth exploring from this node (persistent set).
    backtrack: BTreeSet<ProcessId>,
    /// Branches fully explored.
    done: BTreeSet<ProcessId>,
}

/// Explores every crash-plan arm of a scenario and merges the reports.
pub fn explore(def: &ScenarioDef, config: &ExploreConfig) -> ExploreReport {
    let mut report = ExploreReport::default();
    for plan in def.crash_plans() {
        report.merge(explore_one(def, plan.as_ref(), config));
        if config.stop_on_violation && !report.violations.is_empty() {
            break;
        }
    }
    report
}

/// Exhaustively explores one scenario under one (optional) crash plan.
pub fn explore_one(
    def: &ScenarioDef,
    crash_plan: Option<&Vec<Option<u64>>>,
    config: &ExploreConfig,
) -> ExploreReport {
    let mut report = ExploreReport::default();
    let mut stack: Vec<Entry> = Vec::new();

    loop {
        if report.executions >= config.max_executions {
            report.capped = true;
            break;
        }

        // Re-execute under the stack's forced prefix. Sleep sets ride along:
        // at each prefix node the already-explored siblings go to sleep.
        let forced: Vec<ForcedChoice> = stack
            .iter()
            .map(|e| ForcedChoice {
                pid: e.chosen,
                sleep_add: match config.mode {
                    ExploreMode::Dpor => e
                        .enabled
                        .iter()
                        .filter(|(p, _)| e.done.contains(p))
                        .copied()
                        .collect(),
                    ExploreMode::BruteForce => Vec::new(),
                },
            })
            .collect();
        let built = (def.build)();
        let guide = Guide::new(forced, TailPolicy::LowestAwake);
        let mut cfg = ExecConfig::new(0).with_schedule(ScheduleSource::Explore(
            ExploreHandle::new(guide.scheduler()),
        ));
        if let Some(plan) = crash_plan {
            cfg = cfg.with_crash_plan(CrashPlan::Fixed(plan.clone()));
        }
        let body = Arc::clone(&built.body);
        let run = VirtualExecutor::new(cfg)
            .with_max_steps(config.max_steps)
            .run(def.procs, move |ctx| body(ctx));
        let (nodes, sleep_blocked) = guide.into_nodes();
        report.executions += 1;

        // Extend the stack with the free-run suffix of this execution.
        debug_assert!(
            nodes.len() >= stack.len()
                && nodes.iter().zip(&stack).all(|(n, e)| n.chosen == e.chosen),
            "deterministic replay must reproduce the forced prefix"
        );
        for node in nodes.iter().skip(stack.len()) {
            let backtrack: BTreeSet<ProcessId> = match config.mode {
                ExploreMode::Dpor => std::iter::once(node.chosen).collect(),
                ExploreMode::BruteForce => node.enabled.iter().map(|(p, _)| *p).collect(),
            };
            stack.push(Entry {
                enabled: node.enabled.clone(),
                chosen: node.chosen,
                sleep_at_entry: node.sleep_at_entry.clone(),
                backtrack,
                done: BTreeSet::new(),
            });
        }

        if sleep_blocked {
            report.sleep_blocked += 1;
        } else if run.trace.truncated {
            report.truncated += 1;
        } else {
            report.complete += 1;
            report.classes.insert(class_hash(&run.trace.events));
            if report.naive_ln_interleavings.is_none() {
                report.naive_ln_interleavings = Some(ln_multinomial(&run.trace.events));
            }
            if let Err(message) = (built.check)(&run) {
                report.violations.push(Counterexample {
                    scenario: def.name.to_string(),
                    crash_plan: crash_plan.cloned(),
                    schedule: run.trace.schedule.clone(),
                    message,
                });
                if config.stop_on_violation {
                    break;
                }
            }
        }

        // Race analysis: plant backtrack points at the earlier operation of
        // every conflicting concurrent pair. Partial (sleep-blocked or
        // truncated) traces are analyzed too — their prefix races are real.
        if config.mode == ExploreMode::Dpor {
            for (i, pid) in race_backtracks(&run.trace.events) {
                if let Some(entry) = stack.get_mut(i) {
                    entry.backtrack.insert(pid);
                }
            }
        }

        // Backtrack: find the deepest node with an unexplored, non-sleeping
        // backtrack candidate; pop everything below it.
        let mut advanced = false;
        while let Some(mut entry) = stack.pop() {
            entry.done.insert(entry.chosen);
            let next = entry.backtrack.iter().copied().find(|p| {
                !entry.done.contains(p) && !entry.sleep_at_entry.iter().any(|(q, _)| q == p)
            });
            if let Some(pid) = next {
                debug_assert!(
                    entry.enabled.iter().any(|(p, _)| *p == pid),
                    "backtrack candidates were enabled at their node"
                );
                entry.chosen = pid;
                stack.push(entry);
                advanced = true;
                break;
            }
        }
        if !advanced {
            break;
        }
    }
    report
}

/// Clock-vector race analysis over one trace: returns `(node index, process)`
/// pairs meaning "also try scheduling `process` at `node index`".
///
/// For each event `j` (by process `q`) the causal past is tracked as a vector
/// clock counting, per process, how many of its events happen-before `j`
/// (program order plus conflict order). Scanning backwards from `j`, the
/// *latest* conflicting event `i` by another process that is **not** in `j`'s
/// causal past is a race: `q` could have been scheduled at `i`'s decision
/// node instead (it was parked there — under the virtual executor every live
/// process is announced at every decision), reversing the pair.
pub(crate) fn race_backtracks(events: &[OpEvent]) -> Vec<(usize, ProcessId)> {
    type Clock = BTreeMap<ProcessId, usize>;
    let join = |into: &mut Clock, from: &Clock| {
        for (p, &c) in from {
            let slot = into.entry(*p).or_insert(0);
            *slot = (*slot).max(c);
        }
    };

    let mut event_clock: Vec<Clock> = Vec::with_capacity(events.len());
    // Per-process: clock of its latest event, count of its events so far.
    let mut proc_clock: BTreeMap<ProcessId, Clock> = BTreeMap::new();
    let mut proc_seq: BTreeMap<ProcessId, usize> = BTreeMap::new();
    // 1-based index of each event within its process.
    let mut po: Vec<usize> = Vec::with_capacity(events.len());
    let mut out = Vec::new();

    for (j, ej) in events.iter().enumerate() {
        let q = ej.pid;
        let pre = proc_clock.get(&q).cloned().unwrap_or_default();

        for i in (0..j).rev() {
            let p = events[i].pid;
            if p == q || !events[i].op.conflicts_with(&ej.op) {
                continue;
            }
            if pre.get(&p).copied().unwrap_or(0) >= po[i] {
                // `i` happens-before `j`: ordered, not a race. Keep scanning —
                // an earlier concurrent conflict may still exist.
                continue;
            }
            out.push((i, q));
            break; // only the latest race per event (Flanagan–Godefroid)
        }

        // This event's clock: program-order past joined with every
        // conflicting predecessor's clock (ordered and racy alike — once the
        // trace has executed them in this order, the order is causal here).
        let mut clock = pre;
        for (i, ei) in events.iter().enumerate().take(j) {
            if ei.pid != q && ei.op.conflicts_with(&ej.op) {
                join(&mut clock, &event_clock[i]);
            }
        }
        let seq = proc_seq.entry(q).or_insert(0);
        *seq += 1;
        clock.insert(q, *seq);
        po.push(*seq);
        proc_clock.insert(q, clock.clone());
        event_clock.push(clock);
    }
    out
}

/// `ln` of the number of interleavings of the trace's per-process event
/// counts (the multinomial coefficient): the naive enumeration baseline.
fn ln_multinomial(events: &[OpEvent]) -> f64 {
    let mut counts: BTreeMap<ProcessId, u64> = BTreeMap::new();
    for e in events {
        *counts.entry(e.pid).or_insert(0) += 1;
    }
    let total: u64 = counts.values().sum();
    ln_factorial(total) - counts.values().map(|&c| ln_factorial(c)).sum::<f64>()
}

fn ln_factorial(n: u64) -> f64 {
    (2..=n).map(|i| (i as f64).ln()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios;

    fn exhaustive(mode: ExploreMode) -> ExploreConfig {
        ExploreConfig {
            mode,
            max_executions: 500_000,
            max_steps: 100_000,
            stop_on_violation: false,
        }
    }

    /// Runs both strategies on a scenario and checks the DPOR soundness
    /// contract: identical class sets (no class pruned, none invented) and
    /// no duplicate complete execution (sleep-set theorem).
    fn soundness(name: &str) -> (ExploreReport, ExploreReport) {
        let def = scenarios::find(name).expect("scenario registered");
        let dpor = explore(&def, &exhaustive(ExploreMode::Dpor));
        let brute = explore(&def, &exhaustive(ExploreMode::BruteForce));
        assert!(!dpor.capped && !brute.capped, "{name}: search must finish");
        assert_eq!(
            dpor.classes, brute.classes,
            "{name}: DPOR must cover exactly the brute-force class set"
        );
        assert_eq!(
            dpor.complete,
            dpor.classes.len(),
            "{name}: sleep sets must prevent duplicate complete executions"
        );
        assert!(
            brute.violations.is_empty() == dpor.violations.is_empty(),
            "{name}: both strategies agree on violation existence"
        );
        (dpor, brute)
    }

    #[test]
    fn dpor_matches_brute_force_on_independent_registers() {
        let (dpor, brute) = soundness("toy_rw_indep");
        // Fully independent programs collapse to a single class...
        assert_eq!(dpor.classes.len(), 1);
        assert_eq!(dpor.executions, 1, "one class, one execution");
        // ...which naive enumeration pays dearly for.
        assert!(
            brute.executions >= 10 * dpor.executions,
            "reduction must beat naive enumeration 10x: {} vs {}",
            brute.executions,
            dpor.executions
        );
    }

    #[test]
    fn dpor_matches_brute_force_on_a_racy_register() {
        let (dpor, brute) = soundness("toy_racy_pair");
        assert!(dpor.classes.len() > 1, "the race is real");
        assert!(dpor.executions < brute.executions);
    }

    #[test]
    fn dpor_matches_brute_force_on_message_passing() {
        let (dpor, brute) = soundness("toy_mp");
        assert!(
            brute.executions >= 2 * dpor.executions,
            "flag/data dependence still admits reduction: {} vs {}",
            brute.executions,
            dpor.executions
        );
    }

    #[test]
    fn exhaustive_dpor_verifies_the_two_process_tas() {
        let def = scenarios::find("tas_pair_2p").expect("registered");
        let report = explore(&def, &exhaustive(ExploreMode::Dpor));
        assert!(!report.capped, "2-process TAS must be exhaustible");
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.complete >= 2, "both winners are reachable");
    }

    #[test]
    fn exhaustive_dpor_verifies_the_tas_chain() {
        let def = scenarios::find("tas_chain_3p").expect("registered");
        let report = explore(&def, &exhaustive(ExploreMode::Dpor));
        assert!(!report.capped, "3-process TAS chain must be exhaustible");
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.complete >= 2, "multiple outcomes are reachable");
        // The acceptance bar: DPOR explores >= 10x fewer schedules than
        // naive enumeration (210 maximal interleavings for this scenario).
        assert!(
            report.naive_interleavings() >= 10.0 * report.executions as f64,
            "expected >= 10x reduction: {} executions vs {:.0} naive",
            report.executions,
            report.naive_interleavings()
        );
    }

    #[test]
    fn capped_dpor_keeps_the_randomized_tas_green() {
        // The randomized TAS's schedule space explodes (round counts depend
        // on adversarially scheduled coin flips), so the exhaustive tier
        // excludes it; a capped DPOR pass still checks the one-winner oracle
        // across a broad sample of its schedules.
        let def = scenarios::find("rand_tas_pair_2p").expect("registered");
        assert!(!def.exhaustive, "randomized TAS belongs to the heavy tier");
        let config = ExploreConfig {
            mode: ExploreMode::Dpor,
            max_executions: 500,
            ..ExploreConfig::default()
        };
        let report = explore(&def, &config);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.complete >= 2, "distinct executions must complete");
    }

    #[test]
    fn race_analysis_orders_conflicts_and_skips_locals() {
        use shmem::{Loc, PendingOp as Op, StepKind};
        let a = Loc::fresh();
        let pid = ProcessId::new;
        let ev = |p: usize, op: Op| OpEvent {
            pid: pid(p),
            op,
            enabled: Vec::new(),
        };
        // p0 writes a, then p1 writes a: one race at index 0, try p1 there.
        let events = vec![
            ev(0, Op::begin()),
            ev(1, Op::begin()),
            ev(0, Op::step(StepKind::RegisterWrite, a)),
            ev(1, Op::step(StepKind::RegisterWrite, a)),
        ];
        assert_eq!(race_backtracks(&events), vec![(2, pid(1))]);
        // Local ops (begins) never race.
        let quiet = vec![ev(0, Op::begin()), ev(1, Op::begin())];
        assert!(race_backtracks(&quiet).is_empty());
    }

    #[test]
    fn happens_before_suppresses_ordered_conflicts() {
        use shmem::{Loc, PendingOp as Op, StepKind};
        let a = Loc::fresh();
        let pid = ProcessId::new;
        let ev = |p: usize, op: Op| OpEvent {
            pid: pid(p),
            op,
            enabled: Vec::new(),
        };
        // p0 writes a; p1 reads a; p1 writes a again. The second p1 access
        // is ordered after p0's write *through* p1's own earlier racy read —
        // only the first pair is a race.
        let events = vec![
            ev(0, Op::step(StepKind::RegisterWrite, a)),
            ev(1, Op::step(StepKind::RegisterRead, a)),
            ev(1, Op::step(StepKind::RegisterWrite, a)),
        ];
        assert_eq!(race_backtracks(&events), vec![(0, pid(1))]);
    }
}
