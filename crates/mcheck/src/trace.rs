//! Replayable trace files: serialized counterexamples and pinned schedules.
//!
//! A trace file captures everything needed to reproduce one execution
//! deterministically: the scenario name, process count, executor seed, crash
//! plan and the schedule itself. The format is line-oriented plain text so
//! minimized counterexamples can live under `tests/schedules/` as reviewable
//! regression artifacts:
//!
//! ```text
//! # free-form comment
//! scenario: mono_counter_3p
//! procs: 3
//! seed: 0
//! crash: 0@5
//! expect: violation
//! schedule: 0 0 0 1 1 2
//! ```
//!
//! One-command repro: `cargo run -p mcheck -- replay tests/schedules/<f>.trace`.

use crate::scenarios;
use shmem::{CrashPlan, ExecConfig, ProcessId, Schedule, ScheduleSource, VirtualExecutor};
use std::sync::Arc;

/// Whether the pinned schedule is expected to pass its oracle or violate it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Expectation {
    /// The oracle must hold under this schedule.
    Pass,
    /// The oracle must fail under this schedule (a pinned counterexample).
    Violation,
}

/// A parsed (or to-be-rendered) trace file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceFile {
    /// Scenario registry name.
    pub scenario: String,
    /// Number of processes.
    pub procs: usize,
    /// Executor seed (drives per-process coin flips).
    pub seed: u64,
    /// Crash plan entries as `(process index, crash-after steps)`.
    pub crashes: Vec<(usize, u64)>,
    /// Expected oracle outcome.
    pub expect: Expectation,
    /// The schedule to replay.
    pub schedule: Schedule,
}

impl TraceFile {
    /// Renders the file format (see the module docs), with a leading comment.
    pub fn render(&self, comment: &str) -> String {
        let mut out = String::new();
        for line in comment.lines() {
            out.push_str("# ");
            out.push_str(line);
            out.push('\n');
        }
        out.push_str(&format!("scenario: {}\n", self.scenario));
        out.push_str(&format!("procs: {}\n", self.procs));
        out.push_str(&format!("seed: {}\n", self.seed));
        for (pid, steps) in &self.crashes {
            out.push_str(&format!("crash: {pid}@{steps}\n"));
        }
        out.push_str(match self.expect {
            Expectation::Pass => "expect: pass\n",
            Expectation::Violation => "expect: violation\n",
        });
        let choices: Vec<String> = self
            .schedule
            .choices
            .iter()
            .map(|p| p.as_usize().to_string())
            .collect();
        out.push_str(&format!("schedule: {}\n", choices.join(" ")));
        out
    }

    /// Parses the file format. Unknown keys, blank lines and `#` comments
    /// are rejected only when a required field ends up missing or malformed.
    pub fn parse(text: &str) -> Result<TraceFile, String> {
        let mut scenario = None;
        let mut procs = None;
        let mut seed = 0u64;
        let mut crashes = Vec::new();
        let mut expect = None;
        let mut schedule = None;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once(':')
                .ok_or_else(|| format!("line {}: expected `key: value`", lineno + 1))?;
            let value = value.trim();
            match key.trim() {
                "scenario" => scenario = Some(value.to_string()),
                "procs" => {
                    procs = Some(
                        value
                            .parse::<usize>()
                            .map_err(|e| format!("line {}: bad process count: {e}", lineno + 1))?,
                    );
                }
                "seed" => {
                    seed = value
                        .parse::<u64>()
                        .map_err(|e| format!("line {}: bad seed: {e}", lineno + 1))?;
                }
                "crash" => {
                    let (pid, steps) = value.split_once('@').ok_or_else(|| {
                        format!("line {}: expected `crash: PID@STEPS`", lineno + 1)
                    })?;
                    crashes.push((
                        pid.trim()
                            .parse::<usize>()
                            .map_err(|e| format!("line {}: bad crash pid: {e}", lineno + 1))?,
                        steps
                            .trim()
                            .parse::<u64>()
                            .map_err(|e| format!("line {}: bad crash step: {e}", lineno + 1))?,
                    ));
                }
                "expect" => {
                    expect = Some(match value {
                        "pass" => Expectation::Pass,
                        "violation" => Expectation::Violation,
                        other => {
                            return Err(format!(
                                "line {}: expect must be pass|violation, got {other:?}",
                                lineno + 1
                            ))
                        }
                    });
                }
                "schedule" => {
                    let choices: Result<Vec<ProcessId>, String> = value
                        .split_whitespace()
                        .map(|tok| {
                            tok.parse::<usize>().map(ProcessId::new).map_err(|e| {
                                format!("line {}: bad schedule entry {tok:?}: {e}", lineno + 1)
                            })
                        })
                        .collect();
                    schedule = Some(Schedule::new(choices?));
                }
                other => return Err(format!("line {}: unknown key {other:?}", lineno + 1)),
            }
        }
        Ok(TraceFile {
            scenario: scenario.ok_or("missing `scenario:` line")?,
            procs: procs.ok_or("missing `procs:` line")?,
            seed,
            crashes,
            expect: expect.ok_or("missing `expect:` line")?,
            schedule: schedule.ok_or("missing `schedule:` line")?,
        })
    }

    /// The crash plan as a `CrashPlan::Fixed` vector, or `None` if the file
    /// pins no crashes.
    pub fn crash_plan(&self) -> Option<Vec<Option<u64>>> {
        if self.crashes.is_empty() {
            return None;
        }
        let mut plan: Vec<Option<u64>> = vec![None; self.procs];
        for &(pid, steps) in &self.crashes {
            if pid < plan.len() {
                plan[pid] = Some(steps);
            }
        }
        Some(plan)
    }
}

/// Replays a trace file against a fresh build of its scenario and checks the
/// oracle outcome against the file's expectation.
///
/// Returns a human-readable summary on success; an error describes either a
/// replay problem (unknown scenario, truncation) or an expectation mismatch —
/// for `expect: violation` files, a mismatch means the pinned bug no longer
/// reproduces.
pub fn verify(file: &TraceFile) -> Result<String, String> {
    let def = scenarios::find(&file.scenario)
        .ok_or_else(|| format!("unknown scenario {:?}", file.scenario))?;
    if def.procs != file.procs {
        return Err(format!(
            "scenario {} runs {} processes, trace file says {}",
            def.name, def.procs, file.procs
        ));
    }
    let built = (def.build)();
    let mut cfg =
        ExecConfig::new(file.seed).with_schedule(ScheduleSource::Replay(file.schedule.clone()));
    if let Some(plan) = file.crash_plan() {
        cfg = cfg.with_crash_plan(CrashPlan::Fixed(plan));
    }
    let body = Arc::clone(&built.body);
    let run = VirtualExecutor::new(cfg).run(def.procs, move |ctx| body(ctx));
    if run.trace.truncated || run.trace.aborted {
        return Err("replay was truncated or aborted — the trace is stale".into());
    }
    let verdict = (built.check)(&run);
    match (file.expect, verdict) {
        (Expectation::Pass, Ok(())) => Ok(format!(
            "{}: replayed {} steps, oracle passed as expected",
            def.name,
            run.trace.events.len()
        )),
        (Expectation::Violation, Err(message)) => Ok(format!(
            "{}: replayed {} steps, oracle violated as expected: {message}",
            def.name,
            run.trace.events.len()
        )),
        (Expectation::Pass, Err(message)) => Err(format!(
            "{}: expected a pass, oracle failed: {message}",
            def.name
        )),
        (Expectation::Violation, Ok(())) => Err(format!(
            "{}: expected a violation, oracle passed — the pinned bug no longer reproduces",
            def.name
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceFile {
        TraceFile {
            scenario: "mono_counter_3p".into(),
            procs: 3,
            seed: 0,
            crashes: vec![(0, 5)],
            expect: Expectation::Violation,
            schedule: Schedule::new(vec![0, 0, 1, 2].into_iter().map(ProcessId::new).collect()),
        }
    }

    #[test]
    fn render_parse_roundtrips() {
        let file = sample();
        let text = file.render("regression: §8.1 counterexample");
        assert_eq!(TraceFile::parse(&text), Ok(file));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(TraceFile::parse("scenario: x").is_err(), "missing fields");
        assert!(
            TraceFile::parse("scenario: x\nprocs: 2\nexpect: maybe\nschedule: 0").is_err(),
            "bad expectation"
        );
        assert!(
            TraceFile::parse("nonsense without a colon").is_err(),
            "bad line shape"
        );
        assert!(
            TraceFile::parse("scenario: x\nprocs: 2\nexpect: pass\ncrash: 1\nschedule: 0").is_err(),
            "bad crash shape"
        );
    }

    #[test]
    fn crash_plan_is_sized_to_the_process_count() {
        let file = sample();
        assert_eq!(file.crash_plan(), Some(vec![Some(5), None, None]));
        let no_crash = TraceFile {
            crashes: Vec::new(),
            ..sample()
        };
        assert_eq!(no_crash.crash_plan(), None);
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let text = "# header\n\n# more\nscenario: toy_mp\nprocs: 2\nexpect: pass\nschedule: 0 1\n";
        let file = TraceFile::parse(text).expect("parses");
        assert_eq!(file.scenario, "toy_mp");
        assert_eq!(file.seed, 0, "seed defaults to zero");
    }
}
