//! The workload registry: small shared-memory programs with oracles.
//!
//! Every scenario is a *factory*: stateless re-execution rebuilds the shared
//! objects before each run, so [`ScenarioDef::build`] returns a fresh
//! [`BuiltScenario`] — a process body plus a one-shot oracle over the
//! finished run. Oracles come in two polarities:
//!
//! * **Green oracles** (`expect_violations == false`) must hold on *every*
//!   schedule: a counterexample is a bug in the workspace.
//! * **Counterexample hunts** (`expect_violations == true`) encode a
//!   violation the paper itself predicts — the §8.1 monotone-counter
//!   non-linearizability and the counting-network stall-one-token
//!   counterexample. The explorer is expected to *find* schedules failing
//!   the oracle; the minimized witnesses are pinned under `tests/schedules/`.

use adaptive_renaming::counter::MonotoneCounter;
use adaptive_renaming::lease::{assert_tight_lease_namespace, LeaseRecord, LongLivedRenaming};
use adaptive_renaming::linear_probe::LinearProbeRenaming;
use adaptive_renaming::recovery::recover_with;
use adaptive_renaming::recycler::Recycler;
use adaptive_renaming::robust::RobustLeaseTable;
use adaptive_renaming::traits::{assert_tight_namespace, Renaming};
use cnet::counter::NetworkCounter;
use cnet::family::CountingFamily;
use cnet::network::BalancingTopology;
use maxreg::unbounded::UnboundedMaxRegister;
use maxreg::MaxRegister;
use parking_lot::Mutex;
use shmem::consistency::{
    check_linearizable, check_monotone_consistent, check_quiescent_consistent, CounterOp,
    CounterSpec, SequentialSpec,
};
use shmem::history::Recorder;
use shmem::process::{ProcessCtx, ProcessId};
use shmem::register::AtomicU64Register;
use shmem::vexec::VirtualRun;
use std::ops::RangeInclusive;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tas::hardware::HardwareTas;
use tas::two_process::TwoProcessTas;
use tas::{Side, TwoPartyTas};

/// The process body of a scenario. Every process returns a `u64` the oracle
/// may inspect (a name, a ticket, a read value — scenario-specific).
pub type ScenarioBody = Arc<dyn Fn(&mut ProcessCtx) -> u64 + Send + Sync>;

/// The oracle of a scenario, consumed by one execution.
pub type ScenarioCheck = Box<dyn FnOnce(&VirtualRun<u64>) -> Result<(), String> + Send>;

/// One freshly built instance of a scenario: shared objects, body, oracle.
pub struct BuiltScenario {
    /// The closure every process runs.
    pub body: ScenarioBody,
    /// The oracle over the finished run.
    pub check: ScenarioCheck,
}

impl std::fmt::Debug for BuiltScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BuiltScenario").finish_non_exhaustive()
    }
}

/// A registered scenario.
#[derive(Clone, Debug)]
pub struct ScenarioDef {
    /// Registry name, as referenced from trace files and the CLI.
    pub name: &'static str,
    /// Number of processes.
    pub procs: usize,
    /// Builds a fresh instance (fresh shared objects) for one execution.
    pub build: fn() -> BuiltScenario,
    /// Crash sweep: `(pid, crash_at range)` — the explorer runs one search
    /// per crash step of the range, crashing `pid` after that many steps.
    pub crash_sweep: Option<(usize, RangeInclusive<u64>)>,
    /// Whether the oracle is a counterexample hunt (see module docs).
    pub expect_violations: bool,
    /// Whether exhaustive DPOR is tractable on this scenario. Heavy
    /// scenarios (randomized TAS with its coin-flip-dependent round counts)
    /// belong to the bounded / coverage-guided tiers instead.
    pub exhaustive: bool,
    /// One-line description.
    pub about: &'static str,
}

impl ScenarioDef {
    /// The crash plans this scenario sweeps over: `None` entries mean "no
    /// crash plan"; `Some(plan)` entries are `CrashPlan::Fixed` vectors.
    pub fn crash_plans(&self) -> Vec<Option<Vec<Option<u64>>>> {
        match &self.crash_sweep {
            None => vec![None],
            Some((pid, range)) => range
                .clone()
                .map(|at| {
                    let mut plan: Vec<Option<u64>> = vec![None; self.procs];
                    plan[*pid] = Some(at);
                    Some(plan)
                })
                .collect(),
        }
    }
}

/// Every registered scenario.
pub fn all() -> Vec<ScenarioDef> {
    vec![
        ScenarioDef {
            name: "toy_rw_indep",
            procs: 2,
            build: build_toy_rw_indep,
            crash_sweep: None,
            expect_violations: false,
            exhaustive: true,
            about: "two processes on disjoint registers: every interleaving equivalent",
        },
        ScenarioDef {
            name: "toy_racy_pair",
            procs: 2,
            build: build_toy_racy_pair,
            crash_sweep: None,
            expect_violations: false,
            exhaustive: true,
            about: "two writers and readers of one shared register",
        },
        ScenarioDef {
            name: "toy_mp",
            procs: 2,
            build: build_toy_mp,
            crash_sweep: None,
            expect_violations: false,
            exhaustive: true,
            about: "message passing: data register guarded by a flag register",
        },
        ScenarioDef {
            name: "tas_pair_2p",
            procs: 2,
            build: build_tas_pair,
            crash_sweep: None,
            expect_violations: false,
            exhaustive: true,
            about: "two processes race one hardware TAS: exactly one winner",
        },
        ScenarioDef {
            name: "tas_chain_3p",
            procs: 3,
            build: build_tas_chain,
            crash_sweep: None,
            expect_violations: false,
            exhaustive: true,
            about: "chain of two two-party TAS objects shared pairwise by three processes",
        },
        ScenarioDef {
            name: "rand_tas_pair_2p",
            procs: 2,
            build: build_rand_tas_pair,
            crash_sweep: None,
            expect_violations: false,
            exhaustive: false,
            about: "the paper's randomized two-process TAS (coin-flip round counts \
                    blow up the exhaustive tier; bounded/coverage only)",
        },
        ScenarioDef {
            name: "cnet_width2_2p",
            procs: 2,
            build: || build_cnet_counter(2, 2),
            crash_sweep: None,
            expect_violations: false,
            exhaustive: true,
            about: "width-2 bitonic counting network: distinct tickets + step property",
        },
        ScenarioDef {
            name: "cnet_width4_3p",
            procs: 3,
            build: || build_cnet_counter(4, 3),
            crash_sweep: None,
            expect_violations: false,
            exhaustive: true,
            about: "width-4 bitonic counting network: distinct tickets + step property",
        },
        ScenarioDef {
            name: "cnet_stall_one_token",
            procs: 3,
            build: build_cnet_stall,
            crash_sweep: None,
            expect_violations: true,
            exhaustive: true,
            about: "a token stalled mid-network makes ticket histories non-linearizable \
                    while staying quiescently consistent",
        },
        ScenarioDef {
            name: "mono_counter_3p",
            procs: 3,
            build: build_mono_counter,
            crash_sweep: Some((0, 1..=24)),
            expect_violations: true,
            exhaustive: true,
            about: "§8.1: a crashed incrementer makes the renaming+max-register counter \
                    non-linearizable while staying monotone-consistent",
        },
        ScenarioDef {
            name: "renaming_width4_3p",
            procs: 3,
            build: build_renaming_width4,
            crash_sweep: None,
            expect_violations: false,
            exhaustive: true,
            about: "three acquirers on a strong adaptive renaming object: tight namespace",
        },
        ScenarioDef {
            name: "recycler_churn_2p",
            procs: 2,
            build: || build_recycler_churn(2, 2),
            crash_sweep: None,
            expect_violations: false,
            exhaustive: true,
            about: "lease/release churn through the recycler: tight lease namespace",
        },
        ScenarioDef {
            name: "robust_sweep_2p",
            procs: 2,
            build: build_robust_sweep,
            crash_sweep: None,
            expect_violations: false,
            exhaustive: true,
            about: "crash-robust lease table: a releaser races a sweeper that presumes \
                    it dead — every grant's HELD→FREE transition happens exactly once",
        },
        ScenarioDef {
            name: "recover_race_2p",
            procs: 2,
            build: build_recover_race,
            crash_sweep: None,
            expect_violations: false,
            exhaustive: true,
            about: "two fresh attachers race restart recovery at the same epoch — \
                    exactly one wins the CAS, every dead lease is reclaimed once, \
                    the torn slot is quarantined once, and the loser touches nothing",
        },
        ScenarioDef {
            name: "obs_ring_2p",
            procs: 2,
            build: build_obs_ring,
            crash_sweep: None,
            expect_violations: false,
            exhaustive: true,
            about: "flight-recorder seqlock ring: a reader races the single writer — \
                    non-torn snapshots are never half-written",
        },
        ScenarioDef {
            name: "recycler_churn_3p",
            procs: 3,
            build: || build_recycler_churn(3, 1),
            crash_sweep: None,
            expect_violations: false,
            exhaustive: true,
            about: "three-process lease/release churn: tightness + ticket accounting",
        },
    ]
}

/// Looks a scenario up by name.
pub fn find(name: &str) -> Option<ScenarioDef> {
    all().into_iter().find(|s| s.name == name)
}

// ---------------------------------------------------------------------------
// Toy scenarios (DPOR soundness baselines).
// ---------------------------------------------------------------------------

fn build_toy_rw_indep() -> BuiltScenario {
    let regs: Arc<Vec<AtomicU64Register>> =
        Arc::new((0..2).map(|_| AtomicU64Register::new(0)).collect());
    let body: ScenarioBody = Arc::new({
        let regs = Arc::clone(&regs);
        move |ctx| {
            let me = ctx.id().as_usize();
            regs[me].write(ctx, ctx.id().as_u64() + 1);
            regs[me].read(ctx)
        }
    });
    let check: ScenarioCheck = Box::new(|run: &VirtualRun<u64>| {
        for (pid, &value) in run.outcome.completed() {
            if value != pid.as_u64() + 1 {
                return Err(format!(
                    "process {pid} read {value} from its private register, expected {}",
                    pid.as_u64() + 1
                ));
            }
        }
        Ok(())
    });
    BuiltScenario { body, check }
}

fn build_toy_racy_pair() -> BuiltScenario {
    let reg = Arc::new(AtomicU64Register::new(0));
    let body: ScenarioBody = Arc::new({
        let reg = Arc::clone(&reg);
        move |ctx| {
            reg.write(ctx, ctx.id().as_u64() + 1);
            reg.read(ctx)
        }
    });
    let check: ScenarioCheck = Box::new(|run: &VirtualRun<u64>| {
        let mut own = false;
        for (pid, &value) in run.outcome.completed() {
            if !(1..=2).contains(&value) {
                return Err(format!("process {pid} read impossible value {value}"));
            }
            own |= value == pid.as_u64() + 1;
        }
        if !own {
            return Err("no process read its own write — impossible sequentially".into());
        }
        Ok(())
    });
    BuiltScenario { body, check }
}

fn build_toy_mp() -> BuiltScenario {
    let data = Arc::new(AtomicU64Register::new(0));
    let flag = Arc::new(AtomicU64Register::new(0));
    let body: ScenarioBody = Arc::new({
        let data = Arc::clone(&data);
        let flag = Arc::clone(&flag);
        move |ctx| {
            if ctx.id().as_usize() == 0 {
                data.write(ctx, 7);
                flag.write(ctx, 1);
                0
            } else {
                let f = flag.read(ctx);
                let d = data.read(ctx);
                f * 100 + d
            }
        }
    });
    let check: ScenarioCheck = Box::new(|run: &VirtualRun<u64>| {
        for (pid, &value) in run.outcome.completed() {
            if pid.as_usize() == 1 && value / 100 == 1 && value % 100 != 7 {
                return Err(format!(
                    "reader saw the flag set but stale data ({})",
                    value % 100
                ));
            }
        }
        Ok(())
    });
    BuiltScenario { body, check }
}

// ---------------------------------------------------------------------------
// Test-and-set scenarios.
// ---------------------------------------------------------------------------

fn build_tas_pair() -> BuiltScenario {
    let tas = Arc::new(HardwareTas::new());
    let body: ScenarioBody = Arc::new({
        let tas = Arc::clone(&tas);
        move |ctx| {
            let side = if ctx.id().as_usize() == 0 {
                Side::Top
            } else {
                Side::Bottom
            };
            u64::from(tas.play(ctx, side))
        }
    });
    let check: ScenarioCheck = Box::new(|run: &VirtualRun<u64>| {
        let wins: u64 = run.outcome.completed().map(|(_, &w)| w).sum();
        if wins == 1 {
            Ok(())
        } else {
            Err(format!("expected exactly one TAS winner, saw {wins}"))
        }
    });
    BuiltScenario { body, check }
}

/// The paper's randomized two-process TAS. Its coin-flip-dependent round
/// counts make the schedule space explode, so it is registered as a
/// non-exhaustive (bounded / coverage) scenario.
fn build_rand_tas_pair() -> BuiltScenario {
    let tas = Arc::new(TwoProcessTas::new());
    let body: ScenarioBody = Arc::new({
        let tas = Arc::clone(&tas);
        move |ctx| {
            let side = if ctx.id().as_usize() == 0 {
                Side::Top
            } else {
                Side::Bottom
            };
            u64::from(tas.play(ctx, side))
        }
    });
    let check: ScenarioCheck = Box::new(|run: &VirtualRun<u64>| {
        let wins: u64 = run.outcome.completed().map(|(_, &w)| w).sum();
        if wins == 1 {
            Ok(())
        } else {
            Err(format!("expected exactly one TAS winner, saw {wins}"))
        }
    });
    BuiltScenario { body, check }
}

fn build_tas_chain() -> BuiltScenario {
    let a = Arc::new(HardwareTas::new());
    let b = Arc::new(HardwareTas::new());
    let body: ScenarioBody = Arc::new({
        let a = Arc::clone(&a);
        let b = Arc::clone(&b);
        move |ctx| match ctx.id().as_usize() {
            0 => u64::from(a.play(ctx, Side::Top)),
            1 => {
                let wa = u64::from(a.play(ctx, Side::Bottom));
                let wb = u64::from(b.play(ctx, Side::Top));
                wa << 1 | wb
            }
            _ => u64::from(b.play(ctx, Side::Bottom)),
        }
    });
    let check: ScenarioCheck = Box::new(|run: &VirtualRun<u64>| {
        let mut result = [0u64; 3];
        for (pid, &value) in run.outcome.completed() {
            result[pid.as_usize()] = value;
        }
        let a_wins = result[0] + (result[1] >> 1);
        let b_wins = (result[1] & 1) + result[2];
        if a_wins != 1 || b_wins != 1 {
            return Err(format!(
                "each TAS object needs exactly one winner (A: {a_wins}, B: {b_wins})"
            ));
        }
        Ok(())
    });
    BuiltScenario { body, check }
}

// ---------------------------------------------------------------------------
// Counting-network scenarios.
// ---------------------------------------------------------------------------

/// Sequential specification of an exact fetch-and-increment: increments
/// return their 0-indexed ticket, reads return the count.
#[derive(Clone, Copy, Debug)]
struct FetchIncrementSpec;

impl SequentialSpec for FetchIncrementSpec {
    type Op = CounterOp;
    type Ret = u64;
    type State = u64;

    fn initial(&self) -> u64 {
        0
    }

    fn apply(&self, state: &u64, op: &CounterOp) -> (u64, u64) {
        match op {
            CounterOp::Increment => (*state + 1, *state),
            CounterOp::Read => (*state, *state),
        }
    }
}

fn step_property(counts: &[u64]) -> bool {
    counts
        .iter()
        .zip(counts.iter().skip(1))
        .all(|(&hi, &lo)| hi == lo || hi == lo + 1)
}

fn build_cnet_counter(width: usize, procs: usize) -> BuiltScenario {
    let counter = Arc::new(NetworkCounter::new(CountingFamily::Bitonic, width));
    let body: ScenarioBody = Arc::new({
        let counter = Arc::clone(&counter);
        move |ctx| counter.fetch_increment(ctx)
    });
    let check: ScenarioCheck = Box::new({
        let counter = Arc::clone(&counter);
        move |run: &VirtualRun<u64>| {
            let mut tickets: Vec<u64> = run.outcome.completed().map(|(_, &t)| t).collect();
            tickets.sort_unstable();
            tickets.dedup();
            let completed = run.outcome.completed().count();
            if tickets.len() != completed {
                return Err("duplicate tickets issued".into());
            }
            if counter.peek() != procs as u64 {
                return Err(format!(
                    "counter holds {} tokens after {procs} increments",
                    counter.peek()
                ));
            }
            if !step_property(&counter.exit_counts()) {
                return Err(format!(
                    "exit counts {:?} violate the step property at quiescence",
                    counter.exit_counts()
                ));
            }
            Ok(())
        }
    });
    BuiltScenario { body, check }
}

fn build_cnet_stall() -> BuiltScenario {
    let counter = Arc::new(NetworkCounter::new(CountingFamily::Bitonic, 2));
    let recorder: Arc<Recorder<CounterOp, u64>> = Arc::new(Recorder::new());
    let pending: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let body: ScenarioBody = Arc::new({
        let counter = Arc::clone(&counter);
        let recorder = Arc::clone(&recorder);
        let pending = Arc::clone(&pending);
        move |ctx| match ctx.id().as_usize() {
            0 => {
                // The stalled token: traverse the network but never deposit.
                // Its increment is invoked and stays pending forever.
                let invoke = recorder.invoke();
                pending.lock().push(invoke);
                let entry = counter.entry_wire(ctx);
                counter.network().traverse(ctx, entry) as u64
            }
            1 => {
                let invoke = recorder.invoke();
                let ticket = counter.fetch_increment(ctx);
                recorder.record(ctx.id(), CounterOp::Increment, ticket, invoke);
                ticket
            }
            _ => {
                let invoke = recorder.invoke();
                let ticket = counter.fetch_increment(ctx);
                recorder.record(ctx.id(), CounterOp::Increment, ticket, invoke);
                let invoke = recorder.invoke();
                let value = counter.read(ctx);
                recorder.record(ctx.id(), CounterOp::Read, value, invoke);
                value
            }
        }
    });
    let check: ScenarioCheck = Box::new({
        let recorder = Arc::clone(&recorder);
        let pending = Arc::clone(&pending);
        move |_run: &VirtualRun<u64>| {
            let history = recorder.take_history();
            let pending = pending.lock().clone();
            let not_linearizable = check_linearizable(&FetchIncrementSpec, &history).is_err();
            if let Err(v) = check_quiescent_consistent(&history, &pending) {
                return Err(format!("quiescent consistency violated: {v}"));
            }
            if not_linearizable {
                return Err(
                    "stall-one-token: ticket history is non-linearizable yet quiescently \
                     consistent"
                        .into(),
                );
            }
            Ok(())
        }
    });
    BuiltScenario { body, check }
}

// ---------------------------------------------------------------------------
// §8.1 monotone counter.
// ---------------------------------------------------------------------------

fn linear_probe(slots: usize) -> LinearProbeRenaming<HardwareTas> {
    LinearProbeRenaming::with_slots((0..slots).map(|_| HardwareTas::new()).collect())
}

fn build_mono_counter() -> BuiltScenario {
    // Strong adaptive renaming (the linear-probe baseline over hardware TAS
    // keeps the schedule space small) plus an unbounded max register: the
    // paper's counter, §8.1.
    let counter = Arc::new(MonotoneCounter::with_parts(
        linear_probe(4),
        UnboundedMaxRegister::new(),
    ));
    let recorder: Arc<Recorder<CounterOp, u64>> = Arc::new(Recorder::new());
    let pending: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let body: ScenarioBody = Arc::new({
        let counter = Arc::clone(&counter);
        let recorder = Arc::clone(&recorder);
        let pending = Arc::clone(&pending);
        move |ctx| match ctx.id().as_usize() {
            0 | 1 => {
                let invoke = recorder.invoke();
                pending.lock().push(invoke);
                let name = counter
                    .renaming()
                    .acquire(ctx)
                    .expect("capacity covers the participants");
                counter.max_register().write_max(ctx, name as u64);
                recorder.record(ctx.id(), CounterOp::Increment, 0, invoke);
                pending.lock().retain(|&t| t != invoke);
                name as u64
            }
            _ => {
                let invoke = recorder.invoke();
                let value = counter.max_register().read_max(ctx);
                recorder.record(ctx.id(), CounterOp::Read, value, invoke);
                value
            }
        }
    });
    let check: ScenarioCheck = Box::new({
        let recorder = Arc::clone(&recorder);
        let pending = Arc::clone(&pending);
        move |_run: &VirtualRun<u64>| {
            let history = recorder.take_history();
            let pending = pending.lock().clone();
            if let Err(v) = check_monotone_consistent(&history, &pending) {
                return Err(format!("monotone consistency violated: {v}"));
            }
            if check_linearizable(&CounterSpec, &history).is_err() {
                return Err(
                    "§8.1: counter history is non-linearizable yet monotone-consistent".into(),
                );
            }
            Ok(())
        }
    });
    BuiltScenario { body, check }
}

// ---------------------------------------------------------------------------
// Renaming and recycler scenarios.
// ---------------------------------------------------------------------------

fn build_renaming_width4() -> BuiltScenario {
    let renaming = Arc::new(linear_probe(4));
    let body: ScenarioBody = Arc::new({
        let renaming = Arc::clone(&renaming);
        move |ctx| {
            renaming
                .acquire(ctx)
                .expect("capacity covers the participants") as u64
        }
    });
    let check: ScenarioCheck = Box::new(|run: &VirtualRun<u64>| {
        let names: Vec<usize> = run.outcome.completed().map(|(_, &n)| n as usize).collect();
        assert_tight_namespace(&names)
    });
    BuiltScenario { body, check }
}

fn build_recycler_churn(procs: usize, cycles: usize) -> BuiltScenario {
    let recycler = Arc::new(Recycler::new(linear_probe(procs + 1), procs));
    let clock = Arc::new(AtomicU64::new(1));
    let records: Arc<Mutex<Vec<LeaseRecord>>> = Arc::new(Mutex::new(Vec::new()));
    let bump = move |clock: &AtomicU64| clock.fetch_add(1, Ordering::SeqCst);
    let body: ScenarioBody = Arc::new({
        let recycler = Arc::clone(&recycler);
        let clock = Arc::clone(&clock);
        let records = Arc::clone(&records);
        move |ctx| {
            let mut granted = 0u64;
            for _ in 0..cycles {
                let slot = {
                    let mut all = records.lock();
                    all.push(LeaseRecord {
                        requested_at: bump(&clock),
                        ..LeaseRecord::default()
                    });
                    all.len() - 1
                };
                if let Ok(name) = recycler.lease_raw(ctx) {
                    {
                        let mut all = records.lock();
                        all[slot].name = Some(name);
                        all[slot].granted_at = Some(bump(&clock));
                    }
                    granted += 1;
                    records.lock()[slot].release_started_at = Some(bump(&clock));
                    recycler.release_with(ctx, name);
                    records.lock()[slot].release_finished_at = Some(bump(&clock));
                }
            }
            granted
        }
    });
    let check: ScenarioCheck = Box::new({
        let recycler = Arc::clone(&recycler);
        let records = Arc::clone(&records);
        move |run: &VirtualRun<u64>| {
            let records = records.lock().clone();
            assert_tight_lease_namespace(&records)?;
            if recycler.leaked_names() != 0 {
                return Err(format!("{} names leaked", recycler.leaked_names()));
            }
            let granted: u64 = run.outcome.completed().map(|(_, &g)| g).sum();
            let accounted = (recycler.fresh_names() + recycler.recycled_names()) as u64;
            // The ticket-rollback regression (PR 3): a failed fresh
            // acquisition must not burn a virtual participant, so grants
            // and the fresh/recycled ledgers always reconcile.
            if accounted != granted {
                return Err(format!(
                    "lease ledger mismatch: {accounted} accounted vs {granted} granted"
                ));
            }
            if recycler.free_names() != recycler.fresh_names() {
                return Err(format!(
                    "{} fresh names but only {} returned to the free list",
                    recycler.fresh_names(),
                    recycler.free_names()
                ));
            }
            Ok(())
        }
    });
    BuiltScenario { body, check }
}

// ---------------------------------------------------------------------------
// Flight-recorder seqlock ring.
// ---------------------------------------------------------------------------

/// The writer's single event: name 1, payload `1 * 1000 + 7`. A reader
/// snapshot that is *not* marked torn must decode exactly this pairing — a
/// half-written slot leaking through the seqlock would break it.
const OBS_RING_NAME: u64 = 1;
const OBS_RING_PAYLOAD: u64 = OBS_RING_NAME * 1000 + 7;

fn build_obs_ring() -> BuiltScenario {
    // One single-writer ring of capacity 1 on the heap arena backend.
    // Process 0 writes one event through the schedule-visible seqlock
    // protocol (entry bump, four slot stores, exit bump — six shared steps);
    // process 1 snapshots the ring with a bounded retry. The green oracle is
    // the seqlock's honesty contract: every snapshot the reader accepts as
    // consistent (untorn) contains only fully written events, and the
    // bounded-retry fallback may return garbage only with the torn flag set.
    let recorder = obs::FlightRecorder::heap(1, 1);
    let body: ScenarioBody = Arc::new({
        let recorder = Arc::clone(&recorder);
        move |ctx| {
            if ctx.id().as_usize() == 0 {
                recorder.writer(0).log_vis(
                    ctx,
                    obs::EventKind::Mark,
                    OBS_RING_NAME,
                    OBS_RING_PAYLOAD,
                );
                0
            } else {
                let events = recorder.events_vis(ctx, 0, 2);
                for event in &events {
                    if !event.torn
                        && (event.name != OBS_RING_NAME || event.payload != OBS_RING_PAYLOAD)
                    {
                        // An untorn snapshot leaked a half-written slot.
                        return 999;
                    }
                }
                events.len() as u64
            }
        }
    });
    let check: ScenarioCheck = Box::new({
        let recorder = Arc::clone(&recorder);
        move |run: &VirtualRun<u64>| {
            for (pid, &value) in run.outcome.completed() {
                if pid.as_usize() == 1 && value == 999 {
                    return Err("an untorn reader snapshot contained a half-written event".into());
                }
            }
            // Quiescent re-read: the writer's event is fully visible, untorn.
            let events = recorder.events(0);
            if events.len() != 1 {
                return Err(format!("{} events at quiescence, expected 1", events.len()));
            }
            let event = &events[0];
            if event.torn
                || event.seq != 0
                || event.kind != obs::EventKind::Mark
                || event.name != OBS_RING_NAME
                || event.payload != OBS_RING_PAYLOAD
            {
                return Err(format!("quiescent snapshot corrupted: {event:?}"));
            }
            Ok(())
        }
    });
    BuiltScenario { body, check }
}

// ---------------------------------------------------------------------------
// Crash-robust lease reclamation.
// ---------------------------------------------------------------------------

fn build_robust_sweep() -> BuiltScenario {
    // Process 0 churns name 1 (acquire/release twice, owner tag 1); process
    // 1 sweeps the table twice with an adversarial liveness predicate that
    // declares owner 1 dead while it is alive and releasing. The green
    // oracle is the protocol's exactly-once guarantee: no interleaving of
    // the release CAS and the sweep CAS may free a grant zero or two times,
    // and a stale sweep CAS must never clobber a re-grant (the generation
    // stamp's job).
    let table = Arc::new(RobustLeaseTable::with_capacity(2));
    let body: ScenarioBody = Arc::new({
        let table = Arc::clone(&table);
        move |ctx| {
            if ctx.id().as_usize() == 0 {
                let mut names = 0u64;
                for _ in 0..2 {
                    let name = table.acquire(ctx, 1).expect("capacity 2 covers one holder");
                    names = names * 10 + name as u64;
                    table.release(ctx, name);
                }
                names
            } else {
                let mut reclaimed = 0u64;
                for _ in 0..2 {
                    reclaimed += table.sweep(ctx, |owner| owner == 1) as u64;
                }
                reclaimed
            }
        }
    });
    let check: ScenarioCheck = Box::new({
        let table = Arc::clone(&table);
        move |run: &VirtualRun<u64>| {
            let mut results = [0u64; 2];
            for (pid, &value) in run.outcome.completed() {
                results[pid.as_usize()] = value;
            }
            // Solo contention: the churner always gets the minimal name.
            if results[0] != 11 {
                return Err(format!(
                    "the solo churner must be granted name 1 twice, got digits {}",
                    results[0]
                ));
            }
            if table.live_leases() != 0 {
                return Err(format!(
                    "{} leases leaked at quiescence",
                    table.live_leases()
                ));
            }
            // Exactly-once: two grants, two HELD→FREE transitions, no
            // matter how release and sweep raced for them.
            if table.transitions() != 2 {
                return Err(format!(
                    "expected exactly 2 transitions for 2 grants, saw {} \
                     ({} of them by the sweeper)",
                    table.transitions(),
                    results[1]
                ));
            }
            if table.generation_of(1) != 2 || table.generation_of(2) != 0 {
                return Err(format!(
                    "generation stamps corrupted: slot 1 at {}, slot 2 at {}",
                    table.generation_of(1),
                    table.generation_of(2)
                ));
            }
            Ok(())
        }
    });
    BuiltScenario { body, check }
}

fn build_recover_race() -> BuiltScenario {
    // Pre-seeded crash image (real-mode ctx, before the virtual run): name 1
    // held by a dead raw owner, name 2 torn — claimed mid-kill with no owner
    // published. Both processes then race `recover_with` at the same attach
    // epoch, the restart race two fresh attachers of a named arena run. The
    // green oracle: exactly one claimant wins the epoch CAS and does all the
    // work exactly once — one HELD→FREE transition for the dead lease, one
    // quarantine parking for the torn slot — while the loser returns without
    // touching the table.
    let table = Arc::new(RobustLeaseTable::with_capacity(2));
    let mut setup = ProcessCtx::new(ProcessId::new(0), 11);
    table
        .acquire(&mut setup, 7)
        .expect("seeding the dead owner's lease");
    assert!(
        table.inject_torn_slot(&mut setup, 2),
        "seeding the torn slot"
    );
    let body: ScenarioBody = Arc::new({
        let table = Arc::clone(&table);
        move |ctx| {
            let report = recover_with(ctx, &table, &[], 1, |_| true, true);
            u64::from(report.won) * 100 + report.reclaimed as u64 * 10 + report.quarantined as u64
        }
    });
    let check: ScenarioCheck = Box::new({
        let table = Arc::clone(&table);
        move |run: &VirtualRun<u64>| {
            let mut results = Vec::new();
            for (_, &value) in run.outcome.completed() {
                results.push(value);
            }
            results.sort_unstable();
            if results != [0, 111] {
                return Err(format!(
                    "expected one winner doing all the work (111) and one \
                     no-op loser (0), got {results:?}"
                ));
            }
            if table.transitions() != 1 {
                return Err(format!(
                    "the dead lease must be freed exactly once, saw {} transitions",
                    table.transitions()
                ));
            }
            if table.quarantined() != 1 {
                return Err(format!(
                    "the torn slot must be parked exactly once, quarantine holds {}",
                    table.quarantined()
                ));
            }
            if table.last_recovered_epoch() != 1 {
                return Err(format!(
                    "epoch should settle at 1, at {}",
                    table.last_recovered_epoch()
                ));
            }
            if table.admissions_gated() {
                return Err("the winner left the admission gate raised".into());
            }
            Ok(())
        }
    });
    BuiltScenario { body, check }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmem::adversary::ExecConfig;
    use shmem::vexec::VirtualExecutor;

    /// Every scenario completes and passes (or, for counterexample hunts,
    /// legitimately fails) under a handful of random schedules.
    #[test]
    fn scenarios_run_under_random_schedules() {
        for def in all() {
            for seed in 0..3u64 {
                let built = (def.build)();
                let body = Arc::clone(&built.body);
                let run = VirtualExecutor::new(ExecConfig::new(seed))
                    .run(def.procs, move |ctx| body(ctx));
                assert_eq!(
                    run.outcome.completed().count(),
                    def.procs,
                    "{}: all processes complete under seed {seed}",
                    def.name
                );
                // Green oracles must hold on arbitrary schedules; hunts may
                // fail (that is their purpose), but must not panic.
                let verdict = (built.check)(&run);
                if !def.expect_violations {
                    assert_eq!(verdict, Ok(()), "{} under seed {seed}", def.name);
                }
            }
        }
    }

    #[test]
    fn registry_lookup_is_by_name() {
        assert!(find("mono_counter_3p").is_some());
        assert!(find("no_such_scenario").is_none());
        let names: Vec<&str> = all().iter().map(|s| s.name).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "scenario names are unique");
    }
}
