//! The guided scheduler shared by the systematic explorers.
//!
//! Stateless model checking re-executes the program from scratch for every
//! schedule: a branch is described by a **forced prefix** of scheduling
//! choices (replayed verbatim — execution under the virtual executor is
//! deterministic, so the prefix always stays valid) followed by a **tail
//! policy** that completes the execution deterministically. The DPOR explorer
//! additionally threads **sleep sets** through the run: processes whose next
//! operation was already explored in a sibling subtree are put to sleep at
//! the node where the sibling branched off, woken only by a conflicting
//! operation, and never scheduled while asleep. An execution whose every
//! enabled process is asleep is redundant and is abandoned.
//!
//! The [`Guide`] records every decision it makes (the enabled snapshot, the
//! chosen process, the sleep set at entry) so the explorer can extend its
//! DFS stack with the free-run portion after the execution returns.

use shmem::{Loc, PendingOp, ProcessId, Scheduler, SchedulerDecision};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// One forced scheduling choice of a re-executed prefix.
#[derive(Clone, Debug)]
pub(crate) struct ForcedChoice {
    /// The process granted this step.
    pub pid: ProcessId,
    /// Processes put to sleep at this node (explored siblings), with the
    /// operation each announced there.
    pub sleep_add: Vec<(ProcessId, PendingOp)>,
}

/// How the run continues past the forced prefix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum TailPolicy {
    /// Grant the lowest-index enabled process that is not asleep
    /// (DPOR / brute-force exploration).
    LowestAwake,
    /// Keep granting the process that took the previous step while it stays
    /// enabled, else fall to the lowest enabled process (preemption-bounded
    /// exploration: the tail costs no preemptions).
    Sticky,
}

/// One recorded scheduling decision.
#[derive(Clone, Debug)]
pub(crate) struct NodeRecord {
    /// The enabled set the decision chose from, in process order.
    pub enabled: Vec<(ProcessId, PendingOp)>,
    /// The process granted the step.
    pub chosen: ProcessId,
    /// The sleep set inherited at this node (before this node's own
    /// sibling additions).
    pub sleep_at_entry: Vec<(ProcessId, PendingOp)>,
}

#[derive(Debug)]
pub(crate) struct GuideState {
    forced: Vec<ForcedChoice>,
    policy: TailPolicy,
    sleep: Vec<(ProcessId, PendingOp)>,
    last: Option<ProcessId>,
    /// Run-local location renaming, keyed by raw [`Loc`] id. Raw ids are not
    /// stable across re-executions (every run rebuilds its shared objects,
    /// drawing fresh ids from a global counter), so every operation the guide
    /// records or compares has its location renamed by first appearance in
    /// the decision stream. Deterministic replay makes the renaming identical
    /// across runs sharing a forced prefix — which is exactly the scope in
    /// which sleep-set entries from an earlier run are compared against the
    /// current run's operations.
    names: BTreeMap<u64, u64>,
    /// Every decision taken, forced and free.
    pub nodes: Vec<NodeRecord>,
    /// Whether the run was abandoned because every enabled process slept.
    pub sleep_blocked: bool,
}

impl GuideState {
    fn rename(&mut self, op: PendingOp) -> PendingOp {
        if op.loc.is_anon() {
            return op;
        }
        let next = self.names.len() as u64 + 1;
        let id = *self.names.entry(op.loc.as_u64()).or_insert(next);
        PendingOp {
            loc: Loc::from_raw(id),
            ..op
        }
    }
}

/// Shared handle over the guide's state: the scheduler side mutates it during
/// the run, the explorer side reads it back afterwards.
#[derive(Clone, Debug)]
pub(crate) struct Guide {
    state: Arc<Mutex<GuideState>>,
}

impl Guide {
    pub(crate) fn new(forced: Vec<ForcedChoice>, policy: TailPolicy) -> Self {
        Guide {
            state: Arc::new(Mutex::new(GuideState {
                forced,
                policy,
                sleep: Vec::new(),
                last: None,
                names: BTreeMap::new(),
                nodes: Vec::new(),
                sleep_blocked: false,
            })),
        }
    }

    /// The scheduler to hand to the virtual executor.
    pub(crate) fn scheduler(&self) -> GuideScheduler {
        GuideScheduler {
            state: Arc::clone(&self.state),
        }
    }

    /// Consumes the run's recorded decisions.
    pub(crate) fn into_nodes(self) -> (Vec<NodeRecord>, bool) {
        let state = self.state.lock().expect("guide poisoned");
        (state.nodes.clone(), state.sleep_blocked)
    }
}

/// The [`Scheduler`] face of a [`Guide`].
#[derive(Debug)]
pub(crate) struct GuideScheduler {
    state: Arc<Mutex<GuideState>>,
}

impl Scheduler for GuideScheduler {
    fn choose(&mut self, _step: usize, enabled: &[(ProcessId, PendingOp)]) -> SchedulerDecision {
        let mut st = self.state.lock().expect("guide poisoned");
        let depth = st.nodes.len();
        // Rename every announced location into the run-local namespace; all
        // recorded and compared operations below use the renamed forms.
        let enabled: Vec<(ProcessId, PendingOp)> =
            enabled.iter().map(|&(p, op)| (p, st.rename(op))).collect();
        let sleep_at_entry = st.sleep.clone();
        let chosen = if depth < st.forced.len() {
            let fc = st.forced[depth].clone();
            for (p, op) in fc.sleep_add {
                if !st.sleep.iter().any(|(q, _)| *q == p) {
                    st.sleep.push((p, op));
                }
            }
            debug_assert!(
                enabled.iter().any(|(p, _)| *p == fc.pid),
                "a forced choice must name an enabled process"
            );
            fc.pid
        } else {
            let awake = |st: &GuideState, p: &ProcessId| !st.sleep.iter().any(|(q, _)| q == p);
            let pick = match st.policy {
                TailPolicy::LowestAwake => enabled.iter().map(|(p, _)| *p).find(|p| awake(&st, p)),
                TailPolicy::Sticky => st
                    .last
                    .filter(|p| enabled.iter().any(|(q, _)| q == p))
                    .or_else(|| enabled.first().map(|(p, _)| *p)),
            };
            match pick {
                Some(p) => p,
                None => {
                    st.sleep_blocked = true;
                    return SchedulerDecision::Abort;
                }
            }
        };
        let op = enabled
            .iter()
            .find(|(p, _)| *p == chosen)
            .expect("chosen process is enabled")
            .1;
        st.nodes.push(NodeRecord {
            enabled: enabled.to_vec(),
            chosen,
            sleep_at_entry,
        });
        // A process that takes a step wakes every sleeper whose recorded
        // operation conflicts with it (their commutation argument is void),
        // and is never itself asleep.
        st.sleep
            .retain(|(p, o)| *p != chosen && !o.conflicts_with(&op));
        st.last = Some(chosen);
        SchedulerDecision::Pick(chosen)
    }
}
