//! Preemption-bounded exploration (CHESS-style).
//!
//! Empirically, most concurrency bugs need only a handful of *preemptions* —
//! context switches taken while the running process could have continued.
//! Bounding the preemption count makes the schedule space polynomial in the
//! program length for a fixed bound, which covers a deep, bug-rich slice of
//! behaviours that exhaustive DPOR reaches only on small instances.
//!
//! The DFS mirrors [`dpor`](crate::dpor): a stack of decisions, stateless
//! re-execution under a forced prefix, and a sticky tail policy so
//! the free-run suffix spends no preemptions. A node's candidate branches
//! are: the previously running process (free, if still enabled), any other
//! enabled process (costs one preemption, admitted only under the bound),
//! and — when the previous process finished — every enabled process (a
//! forced, free switch).

use crate::classes::class_hash;
use crate::dpor::Counterexample;
use crate::driver::{ForcedChoice, Guide, TailPolicy};
use crate::scenarios::ScenarioDef;
use shmem::{
    CrashPlan, ExecConfig, ExploreHandle, PendingOp, ProcessId, ScheduleSource, VirtualExecutor,
};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Knobs of one preemption-bounded search.
#[derive(Clone, Debug)]
pub struct BoundedConfig {
    /// Maximum number of preemptions per execution.
    pub bound: u32,
    /// Hard cap on executed schedules.
    pub max_executions: usize,
    /// Per-execution step budget.
    pub max_steps: u64,
    /// Stop the search at the first oracle violation.
    pub stop_on_violation: bool,
}

impl Default for BoundedConfig {
    fn default() -> Self {
        BoundedConfig {
            bound: 2,
            max_executions: 200_000,
            max_steps: 100_000,
            stop_on_violation: false,
        }
    }
}

/// What a preemption-bounded search did and found.
#[derive(Clone, Debug, Default)]
pub struct BoundedReport {
    /// Executions launched.
    pub executions: usize,
    /// Executions that ran to completion and were oracle-checked.
    pub complete: usize,
    /// Executions cut off by the step budget.
    pub truncated: usize,
    /// Mazurkiewicz class hashes of the complete executions.
    pub classes: BTreeSet<u64>,
    /// Every oracle violation found.
    pub violations: Vec<Counterexample>,
    /// Whether `max_executions` cut the search short.
    pub capped: bool,
}

impl BoundedReport {
    /// Folds another report (e.g. one crash-sweep arm) into this one.
    pub fn merge(&mut self, other: BoundedReport) {
        self.executions += other.executions;
        self.complete += other.complete;
        self.truncated += other.truncated;
        self.classes.extend(other.classes);
        self.violations.extend(other.violations);
        self.capped |= other.capped;
    }
}

#[derive(Clone, Debug)]
struct Entry {
    enabled: Vec<(ProcessId, PendingOp)>,
    /// The process that took the previous step (`None` at the root).
    prev: Option<ProcessId>,
    /// Preemptions spent strictly before this node.
    preemptions: u32,
    chosen: ProcessId,
    done: BTreeSet<ProcessId>,
}

impl Entry {
    /// Whether switching to `pid` at this node costs a preemption.
    fn is_preemption(&self, pid: ProcessId) -> bool {
        match self.prev {
            Some(prev) => pid != prev && self.enabled.iter().any(|(p, _)| *p == prev),
            None => false,
        }
    }

    /// The unexplored branches admissible under `bound`, lowest pid first.
    fn candidates(&self, bound: u32) -> Vec<ProcessId> {
        self.enabled
            .iter()
            .map(|(p, _)| *p)
            .filter(|p| !self.done.contains(p))
            .filter(|p| !self.is_preemption(*p) || self.preemptions < bound)
            .collect()
    }
}

/// Explores every crash-plan arm of a scenario under the preemption bound.
pub fn explore(def: &ScenarioDef, config: &BoundedConfig) -> BoundedReport {
    let mut report = BoundedReport::default();
    for plan in def.crash_plans() {
        report.merge(explore_one(def, plan.as_ref(), config));
        if config.stop_on_violation && !report.violations.is_empty() {
            break;
        }
    }
    report
}

/// Preemption-bounded DFS over one scenario under one (optional) crash plan.
pub fn explore_one(
    def: &ScenarioDef,
    crash_plan: Option<&Vec<Option<u64>>>,
    config: &BoundedConfig,
) -> BoundedReport {
    let mut report = BoundedReport::default();
    let mut stack: Vec<Entry> = Vec::new();

    loop {
        if report.executions >= config.max_executions {
            report.capped = true;
            break;
        }

        let forced: Vec<ForcedChoice> = stack
            .iter()
            .map(|e| ForcedChoice {
                pid: e.chosen,
                sleep_add: Vec::new(),
            })
            .collect();
        let built = (def.build)();
        let guide = Guide::new(forced, TailPolicy::Sticky);
        let mut cfg = ExecConfig::new(0).with_schedule(ScheduleSource::Explore(
            ExploreHandle::new(guide.scheduler()),
        ));
        if let Some(plan) = crash_plan {
            cfg = cfg.with_crash_plan(CrashPlan::Fixed(plan.clone()));
        }
        let body = Arc::clone(&built.body);
        let run = VirtualExecutor::new(cfg)
            .with_max_steps(config.max_steps)
            .run(def.procs, move |ctx| body(ctx));
        let (nodes, _) = guide.into_nodes();
        report.executions += 1;

        // Extend the stack, threading the preemption count forwards.
        let mut prev = stack.last().map(|e| e.chosen);
        let mut preemptions = stack
            .last()
            .map(|e| e.preemptions + u32::from(e.is_preemption(e.chosen)))
            .unwrap_or(0);
        for node in nodes.iter().skip(stack.len()) {
            let entry = Entry {
                enabled: node.enabled.clone(),
                prev,
                preemptions,
                chosen: node.chosen,
                done: BTreeSet::new(),
            };
            preemptions += u32::from(entry.is_preemption(node.chosen));
            prev = Some(node.chosen);
            stack.push(entry);
        }

        if run.trace.truncated {
            report.truncated += 1;
        } else {
            report.complete += 1;
            report.classes.insert(class_hash(&run.trace.events));
            if let Err(message) = (built.check)(&run) {
                report.violations.push(Counterexample {
                    scenario: def.name.to_string(),
                    crash_plan: crash_plan.cloned(),
                    schedule: run.trace.schedule.clone(),
                    message,
                });
                if config.stop_on_violation {
                    break;
                }
            }
        }

        // Backtrack to the deepest node with an admissible unexplored branch.
        let mut advanced = false;
        while let Some(mut entry) = stack.pop() {
            entry.done.insert(entry.chosen);
            if let Some(pid) = entry.candidates(config.bound).first().copied() {
                entry.chosen = pid;
                stack.push(entry);
                advanced = true;
                break;
            }
        }
        if !advanced {
            break;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios;

    fn cfg(bound: u32) -> BoundedConfig {
        BoundedConfig {
            bound,
            max_executions: 100_000,
            max_steps: 100_000,
            stop_on_violation: false,
        }
    }

    #[test]
    fn bound_zero_is_non_preemptive_scheduling() {
        // With no preemptions allowed, the only free choices are at process
        // completion: a 2-process program admits exactly 2 executions.
        let def = scenarios::find("toy_racy_pair").expect("registered");
        let report = explore(&def, &cfg(0));
        assert!(!report.capped);
        assert_eq!(report.executions, 2);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn preemptions_buy_strictly_more_coverage() {
        let def = scenarios::find("toy_racy_pair").expect("registered");
        let b0 = explore(&def, &cfg(0));
        let b2 = explore(&def, &cfg(2));
        assert!(!b2.capped);
        assert!(
            b2.classes.len() > b0.classes.len(),
            "bound 2 must reach classes bound 0 cannot: {} vs {}",
            b2.classes.len(),
            b0.classes.len()
        );
        assert!(
            b2.classes.is_superset(&b0.classes),
            "raising the bound only adds schedules"
        );
        assert!(b2.violations.is_empty(), "{:?}", b2.violations);
    }

    #[test]
    fn bounded_search_keeps_tas_pair_green() {
        let def = scenarios::find("tas_pair_2p").expect("registered");
        let report = explore(&def, &cfg(2));
        assert!(!report.capped, "bound 2 on a 2-process TAS is exhaustible");
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.complete >= 2);
    }
}
