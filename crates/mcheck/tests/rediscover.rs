//! End-to-end rediscovery tests: the explorer must find the paper's
//! counterexamples from a blank slate (no seeded schedule, no hints), and the
//! minimized witness must replay deterministically.

use mcheck::dpor::{explore, ExploreConfig, ExploreMode};
use mcheck::minimize::{minimize_counterexample, schedule_fails};
use mcheck::scenarios;

/// §8.1 of the paper: the renaming + max-register counter is monotone-
/// consistent but not linearizable once an incrementer can crash between
/// acquiring a name and publishing its count. The DPOR sweep over crash
/// plans must rediscover this unaided.
#[test]
fn dpor_rediscovers_the_section_8_1_counterexample() {
    let def = scenarios::find("mono_counter_3p").expect("registered");
    let config = ExploreConfig {
        mode: ExploreMode::Dpor,
        max_executions: 500,
        stop_on_violation: true,
        ..ExploreConfig::default()
    };
    let report = explore(&def, &config);
    assert!(
        !report.violations.is_empty(),
        "the §8.1 counterexample must be rediscovered from a blank slate"
    );

    let cx = &report.violations[0];
    assert!(
        cx.message.contains("non-linearizable"),
        "witness message: {}",
        cx.message
    );
    assert!(
        cx.message.contains("monotone-consistent"),
        "the violation must preserve monotone consistency: {}",
        cx.message
    );

    // The minimized witness still fails, is no longer than the original, and
    // replays deterministically (two replays, same verdict).
    let minimized = minimize_counterexample(&def, cx, 100_000);
    assert!(minimized.schedule.len() <= cx.schedule.len());
    for _ in 0..2 {
        assert!(
            schedule_fails(
                &def,
                minimized.crash_plan.as_ref(),
                &minimized.schedule,
                100_000
            ),
            "minimized §8.1 witness must replay to the same violation"
        );
    }
}

/// A token stalled mid-network leaves the counting network quiescently
/// consistent but non-linearizable; exhaustive DPOR finds a witness.
#[test]
fn dpor_rediscovers_the_stalled_token_counterexample() {
    let def = scenarios::find("cnet_stall_one_token").expect("registered");
    let config = ExploreConfig {
        mode: ExploreMode::Dpor,
        max_executions: 500,
        stop_on_violation: true,
        ..ExploreConfig::default()
    };
    let report = explore(&def, &config);
    assert!(
        !report.violations.is_empty(),
        "the stalled-token counterexample must be rediscovered"
    );
    let minimized = minimize_counterexample(&def, &report.violations[0], 100_000);
    assert!(
        schedule_fails(
            &def,
            minimized.crash_plan.as_ref(),
            &minimized.schedule,
            100_000
        ),
        "minimized stalled-token witness must replay to the same violation"
    );
}
