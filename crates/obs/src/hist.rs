//! Log-bucketed (HDR-style) histograms.
//!
//! A [`Histogram`] is 64 power-of-two buckets plus three summary words
//! (count, sum, max). Bucket `0` holds the value `0`; bucket `i ≥ 1` holds
//! the values in `[2^(i-1), 2^i - 1]` (the last bucket extends to
//! `u64::MAX`). That is one `leading_zeros` per record, covers the full
//! `u64` range, and keeps relative error under 2× — plenty for latency
//! telemetry, where the interesting signal is the *octave* a quantile lands
//! in, not its third digit.
//!
//! The owned [`Histogram`] is the sequential oracle and the merge target;
//! the arena-resident per-process copies live as `BUCKETS + 3` atomic words
//! inside a [`MetricsSlab`](crate::metrics::MetricsSlab) stripe and are
//! folded into a `Histogram` only at snapshot time.

/// Number of buckets: one per value octave, plus the zero bucket.
pub const BUCKETS: usize = 64;

/// Arena words one histogram occupies: the buckets plus count, sum and max.
pub const HIST_WORDS: usize = BUCKETS + 3;

/// The bucket index covering `value`: 0 for 0, else `64 − clz(value)`
/// capped at [`BUCKETS`]` − 1`.
#[inline]
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros() as usize).min(BUCKETS - 1)
    }
}

/// The inclusive `[floor, ceil]` value range of bucket `index`.
///
/// # Panics
///
/// Panics if `index >= BUCKETS`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < BUCKETS, "bucket {index} out of range");
    match index {
        0 => (0, 0),
        63 => (1 << 62, u64::MAX),
        i => (1 << (i - 1), (1 << i) - 1),
    }
}

/// An owned log-bucketed histogram (see the module docs for the bucket
/// scheme).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Rebuilds a histogram from its `BUCKETS + 3` raw words, as laid out in
    /// a metrics-slab stripe (buckets, then count, sum, max).
    ///
    /// # Panics
    ///
    /// Panics if `words` is not exactly [`HIST_WORDS`] long.
    pub fn from_words(words: &[u64]) -> Self {
        assert_eq!(words.len(), HIST_WORDS, "histogram word count");
        let mut counts = [0u64; BUCKETS];
        counts.copy_from_slice(&words[..BUCKETS]);
        Histogram {
            counts,
            count: words[BUCKETS],
            sum: words[BUCKETS + 1],
            max: words[BUCKETS + 2],
        }
    }

    /// Records one value. The sum wraps on overflow — the same semantics as
    /// the arena-resident stripe's `fetch_add` sum word, so an owned oracle
    /// and a merged snapshot agree bit-for-bit on any input.
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(value);
        self.max = self.max.max(value);
    }

    /// Folds another histogram into this one (sum wraps, as in [`record`](Self::record)).
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The count in bucket `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= BUCKETS`.
    pub fn bucket(&self, index: usize) -> u64 {
        self.counts[index]
    }

    /// Mean of recorded values, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An upper bound on the `q`-quantile (`0.0 ..= 1.0`): the ceiling of
    /// the bucket the quantile's rank falls in (the histogram's resolution
    /// is one octave). Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return bucket_bounds(index).1;
            }
        }
        self.max
    }

    /// Renders the non-empty buckets as a compact single-line summary.
    pub fn render(&self) -> String {
        if self.count == 0 {
            return "(empty)".to_string();
        }
        let buckets: Vec<String> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| format!("≥{}:{c}", bucket_bounds(i).0))
            .collect();
        format!(
            "n={} mean={:.0} p50≤{} p99≤{} max={} [{}]",
            self.count,
            self.mean(),
            self.quantile(0.50),
            self.quantile(0.99),
            self.max,
            buckets.join(" ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_u64_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 63);
        for index in 0..BUCKETS {
            let (floor, ceil) = bucket_bounds(index);
            assert_eq!(bucket_of(floor), index, "floor of bucket {index}");
            assert_eq!(bucket_of(ceil), index, "ceil of bucket {index}");
        }
    }

    #[test]
    fn adjacent_bucket_bounds_are_contiguous() {
        for index in 0..BUCKETS - 1 {
            let (_, ceil) = bucket_bounds(index);
            let (next_floor, _) = bucket_bounds(index + 1);
            assert_eq!(ceil + 1, next_floor, "gap after bucket {index}");
        }
    }

    #[test]
    fn record_merge_and_quantiles_agree_with_the_obvious_oracle() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [0, 1, 2, 100, 1000] {
            a.record(v);
        }
        for v in [7, 7, 1 << 40] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 8);
        assert_eq!(a.sum(), 1117 + (1u64 << 40));
        assert_eq!(a.max(), 1 << 40);
        assert!(a.quantile(0.5) >= 7, "median rank lands at or above 7");
        assert_eq!(a.quantile(1.0), bucket_bounds(bucket_of(1 << 40)).1);
        assert_eq!(Histogram::new().quantile(0.9), 0);
    }

    #[test]
    fn word_round_trip_is_lossless() {
        let mut h = Histogram::new();
        for v in [3, 900, 900, 0] {
            h.record(v);
        }
        let mut words = vec![0u64; HIST_WORDS];
        words[..BUCKETS].copy_from_slice(&h.counts);
        words[BUCKETS] = h.count;
        words[BUCKETS + 1] = h.sum;
        words[BUCKETS + 2] = h.max;
        assert_eq!(Histogram::from_words(&words), h);
        assert!(h.render().contains("n=4"));
    }
}
