//! Snapshots: merging escrowed stripes and rendering them.
//!
//! A [`Snapshot`] folds every stripe of a [`MetricsSlab`] into owned
//! values — counters summed, gauges maxed, histograms merged — and renders
//! them as a single JSON object (the `OBS_*.json` sidecar files the bench
//! binaries emit) or as a text dashboard.

use crate::hist::{bucket_bounds, Histogram};
use crate::metrics::{MetricKind, MetricsSlab, ALL_METRICS};

/// A merged, owned view of a [`MetricsSlab`] at one instant.
///
/// Meaningful at quiescent points (no recorder mid-operation), like every
/// other diagnostic read in this workspace.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Counter metrics with non-zero totals, in registry order.
    pub counters: Vec<(&'static str, u64)>,
    /// Gauge metrics with non-zero values, in registry order.
    pub gauges: Vec<(&'static str, u64)>,
    /// Histogram metrics with at least one recorded value, in registry
    /// order.
    pub hists: Vec<(&'static str, Histogram)>,
}

impl Snapshot {
    /// Merges every stripe of `slab`.
    pub fn collect(slab: &MetricsSlab) -> Snapshot {
        let mut snapshot = Snapshot::default();
        for metric in ALL_METRICS {
            match metric.kind() {
                MetricKind::Counter => {
                    let value = slab.merged_word(metric);
                    if value > 0 {
                        snapshot.counters.push((metric.name(), value));
                    }
                }
                MetricKind::Gauge => {
                    let value = slab.merged_word(metric);
                    if value > 0 {
                        snapshot.gauges.push((metric.name(), value));
                    }
                }
                MetricKind::Histogram => {
                    let hist = slab.merged_hist(metric);
                    if !hist.is_empty() {
                        snapshot.hists.push((metric.name(), hist));
                    }
                }
            }
        }
        snapshot
    }

    /// Merges every stripe, then zeroes the slab for the next window.
    pub fn collect_and_reset(slab: &MetricsSlab) -> Snapshot {
        let snapshot = Self::collect(slab);
        slab.reset();
        snapshot
    }

    /// The value of a counter by registry name (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The value of a gauge by registry name (0 if absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The histogram by registry name, if it recorded anything.
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hists.iter().find(|(n, _)| *n == name).map(|(_, h)| h)
    }

    /// Whether nothing at all was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// Renders the snapshot as one JSON object:
    /// `{"counters":{...},"gauges":{...},"hists":{"name":{"count":..,
    /// "mean_ns":..,"p50_ns":..,"p90_ns":..,"p99_ns":..,"max_ns":..,
    /// "buckets":[[floor,count],...]},...}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str("\"counters\":{");
        push_pairs(&mut out, &self.counters);
        out.push_str("},\"gauges\":{");
        push_pairs(&mut out, &self.gauges);
        out.push_str("},\"hists\":{");
        for (index, (name, hist)) in self.hists.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{}", hist_json(hist)));
        }
        out.push_str("}}");
        out
    }

    /// Renders the snapshot as a text dashboard block.
    pub fn dashboard(&self) -> String {
        let mut out = String::new();
        if self.is_empty() {
            return "  (no telemetry recorded)\n".to_string();
        }
        if !self.counters.is_empty() || !self.gauges.is_empty() {
            out.push_str("  counters/gauges:\n");
            for (name, value) in self.counters.iter().chain(self.gauges.iter()) {
                out.push_str(&format!("    {name:<28} {value}\n"));
            }
        }
        for (name, hist) in &self.hists {
            out.push_str(&format!("  {name}: {}\n", hist.render()));
        }
        out
    }
}

fn push_pairs(out: &mut String, pairs: &[(&'static str, u64)]) {
    for (index, (name, value)) in pairs.iter().enumerate() {
        if index > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{name}\":{value}"));
    }
}

/// Renders one histogram as the JSON object documented on
/// [`Snapshot::to_json`].
pub fn hist_json(hist: &Histogram) -> String {
    let buckets: Vec<String> = (0..crate::hist::BUCKETS)
        .filter(|&i| hist.bucket(i) > 0)
        .map(|i| format!("[{},{}]", bucket_bounds(i).0, hist.bucket(i)))
        .collect();
    format!(
        "{{\"count\":{},\"mean_ns\":{:.1},\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{},\
         \"max_ns\":{},\"buckets\":[{}]}}",
        hist.count(),
        hist.mean(),
        hist.quantile(0.50),
        hist.quantile(0.90),
        hist.quantile(0.99),
        hist.max(),
        buckets.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metric;

    #[test]
    fn snapshots_merge_render_and_reset() {
        let slab = MetricsSlab::heap(2);
        slab.writer(0).count(Metric::NetIncrement);
        slab.writer(1).count(Metric::NetIncrement);
        slab.writer(1).gauge(Metric::RoutedWidth, 8);
        slab.writer(0).record(Metric::NetIncrementNs, 300);
        let snapshot = Snapshot::collect_and_reset(&slab);
        assert_eq!(snapshot.counter("cnet.increment"), 2);
        assert_eq!(snapshot.gauge("adaptive.routed_width"), 8);
        assert_eq!(snapshot.hist("cnet.increment_ns").unwrap().count(), 1);
        assert_eq!(snapshot.counter("no.such"), 0);
        assert!(snapshot.hist("no.such").is_none());
        let json = snapshot.to_json();
        assert!(json.contains("\"cnet.increment\":2"), "{json}");
        assert!(json.contains("\"adaptive.routed_width\":8"), "{json}");
        assert!(
            json.contains("\"cnet.increment_ns\":{\"count\":1"),
            "{json}"
        );
        assert!(json.contains("\"buckets\":[[256,1]]"), "{json}");
        let dash = snapshot.dashboard();
        assert!(dash.contains("cnet.increment"), "{dash}");
        assert!(
            Snapshot::collect(&slab).is_empty(),
            "collect_and_reset zeroed the slab"
        );
        assert!(Snapshot::collect(&slab)
            .dashboard()
            .contains("no telemetry"));
    }
}
