//! Arena-resident observability for the strong-renaming workspace.
//!
//! Everything here lives in the same [`shmem::arena::Arena`] the data
//! structures under test live in, so telemetry survives exactly the crashes
//! the rest of the workspace is built to tolerate:
//!
//! - [`ring::FlightRecorder`] — per-process lock-free event rings with a
//!   seqlock'd cursor; a SIGKILLed child's last events stay readable by the
//!   sweeping parent, which dumps them as a [`postmortem::Postmortem`].
//! - [`metrics::MetricsSlab`] — escrowed per-process stripes of counters,
//!   gauges, and log-bucketed [`hist::Histogram`]s, merged only at
//!   [`snapshot::Snapshot`] time.
//! - [`sink`] — thread-local recording handles the instrumented hot paths
//!   in `core` and `cnet` call through; compile with the `off` feature
//!   (exposed as `obs-off` on the downstream crates) and every site
//!   becomes an inlined no-op.
//!
//! The crate depends only on `shmem`, so both `core` and `cnet` can record
//! without creating a dependency cycle.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

pub mod hist;
pub mod metrics;
pub mod postmortem;
pub mod ring;
pub mod sink;
pub mod snapshot;
pub mod time;

pub use hist::Histogram;
pub use metrics::{Metric, MetricsSlab, StripeWriter};
pub use postmortem::Postmortem;
pub use ring::{Event, EventKind, FlightRecorder, RingWriter};
pub use sink::{
    add, bind_metrics, bind_ring, count, enabled, event, finish, gauge, record, start, unbind,
    Timer,
};
pub use snapshot::Snapshot;
