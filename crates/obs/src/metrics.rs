//! The metric registry and the escrowed arena slab holding per-process
//! metric stripes.
//!
//! Recording follows the escrow pattern: every process (or thread) owns one
//! *stripe* of the slab and bumps only its own words with relaxed atomics —
//! no cross-process cache-line traffic on the hot path. The stripes are
//! folded together only when a [`Snapshot`](crate::snapshot::Snapshot) is
//! taken, exactly like the free-list escrow the rest of the workspace uses
//! for coordination-free fast paths.
//!
//! The stripe layout is fixed at compile time: the word metrics (counters
//! and gauges, one word each) come first, then one
//! [`HIST_WORDS`]-word block per histogram metric,
//! padded to a whole number of cache lines so adjacent stripes never share a
//! line.

use crate::hist::{bucket_of, Histogram, HIST_WORDS};
use shmem::arena::{Arena, ArenaSliceRef};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How a metric's words are interpreted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// A monotone event count; stripes are summed at snapshot time.
    Counter,
    /// A last-written observation; stripes are maxed at snapshot time.
    Gauge,
    /// A log-bucketed latency histogram; stripes are merged at snapshot time.
    Histogram,
}

macro_rules! metrics {
    (
        words { $($wvariant:ident => ($wname:expr, $wkind:ident),)* }
        hists { $($hvariant:ident => $hname:expr,)* }
    ) => {
        /// Every metric the workspace records. Word metrics (counters and
        /// gauges) precede histogram metrics; the discriminant doubles as
        /// the stripe-layout index.
        #[derive(Clone, Copy, Debug, PartialEq, Eq)]
        #[repr(usize)]
        #[allow(missing_docs)]
        pub enum Metric {
            $($wvariant,)*
            $($hvariant,)*
        }

        /// Number of one-word (counter/gauge) metrics.
        pub const WORD_METRICS: usize = [$(Metric::$wvariant,)*].len();
        /// Number of histogram metrics.
        pub const HIST_METRICS: usize = [$(Metric::$hvariant,)*].len();
        /// Every metric, in stripe-layout order.
        pub const ALL_METRICS: [Metric; WORD_METRICS + HIST_METRICS] =
            [$(Metric::$wvariant,)* $(Metric::$hvariant,)*];

        impl Metric {
            /// The metric's stable export name.
            pub fn name(self) -> &'static str {
                match self {
                    $(Metric::$wvariant => $wname,)*
                    $(Metric::$hvariant => $hname,)*
                }
            }

            /// How the metric's words are interpreted and merged.
            pub fn kind(self) -> MetricKind {
                match self {
                    $(Metric::$wvariant => MetricKind::$wkind,)*
                    $(Metric::$hvariant => MetricKind::Histogram,)*
                }
            }
        }
    };
}

metrics! {
    words {
        RecyclerGrant => ("recycler.grant", Counter),
        RecyclerFresh => ("recycler.grant_fresh", Counter),
        RecyclerRecycled => ("recycler.grant_recycled", Counter),
        RecyclerRelease => ("recycler.release", Counter),
        BatchedStashHit => ("batched.stash_hit", Counter),
        BatchedFlush => ("batched.flush", Counter),
        RobustAcquire => ("robust.acquire", Counter),
        RobustCasRetry => ("robust.cas_retry", Counter),
        RobustRelease => ("robust.release", Counter),
        RobustSwept => ("robust.swept", Counter),
        FreeListPush => ("free_list.push", Counter),
        FreeListPop => ("free_list.pop", Counter),
        NetIncrement => ("cnet.increment", Counter),
        AdaptiveIncrement => ("adaptive.increment", Counter),
        AdaptiveRouteUp => ("adaptive.route_up", Counter),
        PrismEliminated => ("prism.eliminated", Counter),
        PrismCombined => ("prism.combined", Counter),
        PrismFellThrough => ("prism.fell_through", Counter),
        BalancerToggle => ("balancer.toggle", Counter),
        RobustQuarantined => ("robust.quarantined", Counter),
        RobustGateWait => ("robust.gate_wait", Counter),
        RecyclerAdmissionRetry => ("recycler.admission_retry", Counter),
        RecoverRuns => ("recover.runs", Counter),
        RecoverReclaimed => ("recover.reclaimed", Counter),
        RecoverSummaryRepairs => ("recover.summary_repairs", Counter),
        SensorEstimateFp => ("adaptive.sensor_estimate_fp", Gauge),
        RoutedWidth => ("adaptive.routed_width", Gauge),
    }
    hists {
        GrantNs => "recycler.grant_ns",
        RobustAcquireNs => "robust.acquire_ns",
        NetIncrementNs => "cnet.increment_ns",
        AdaptiveIncrementNs => "adaptive.increment_ns",
        RecoverNs => "recover.ns",
    }
}

impl Metric {
    /// The metric's first word within a stripe.
    #[inline]
    pub fn offset(self) -> usize {
        let index = self as usize;
        if index < WORD_METRICS {
            index
        } else {
            WORD_METRICS + (index - WORD_METRICS) * HIST_WORDS
        }
    }
}

/// Raw words per stripe before cache-line padding.
const STRIPE_RAW_WORDS: usize = WORD_METRICS + HIST_METRICS * HIST_WORDS;
/// Words per stripe, padded to whole 64-byte lines so adjacent stripes
/// never false-share.
pub const STRIPE_WORDS: usize = STRIPE_RAW_WORDS.next_multiple_of(8);

/// The escrowed metric slab: `stripes` per-process regions of
/// [`STRIPE_WORDS`] atomic words each, allocated from one arena slice.
pub struct MetricsSlab {
    words: ArenaSliceRef<AtomicU64>,
    stripes: usize,
}

impl std::fmt::Debug for MetricsSlab {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsSlab")
            .field("stripes", &self.stripes)
            .field("stripe_words", &STRIPE_WORDS)
            .finish()
    }
}

impl MetricsSlab {
    /// Allocates a slab of `stripes` stripes from `arena` (exactly
    /// [`MetricsSlab::footprint`] bytes).
    ///
    /// # Panics
    ///
    /// Panics if `stripes` is zero or the arena runs out of space.
    pub fn new_in(arena: &Arc<Arena>, stripes: usize) -> Arc<Self> {
        assert!(stripes > 0, "a metrics slab needs at least one stripe");
        let words = arena.alloc_slice::<AtomicU64>(stripes * STRIPE_WORDS);
        Arc::new(MetricsSlab {
            words: words.pin(arena),
            stripes,
        })
    }

    /// Allocates a slab of `stripes` stripes over a fresh process-private
    /// heap arena.
    pub fn heap(stripes: usize) -> Arc<Self> {
        Self::new_in(&Arena::heap(Self::footprint(stripes)), stripes)
    }

    /// The number of arena bytes a slab of `stripes` stripes allocates.
    pub fn footprint(stripes: usize) -> usize {
        // Stripes are whole cache lines, so the slice needs no extra
        // alignment padding beyond its own 64-byte start.
        stripes * STRIPE_WORDS * std::mem::size_of::<AtomicU64>()
    }

    /// The number of stripes.
    pub fn stripes(&self) -> usize {
        self.stripes
    }

    /// A writer bound to `stripe` (values in `0..stripes`). Writers are
    /// cheap to clone and safe to carry across `fork`: they resolve through
    /// the pinned arena slice.
    ///
    /// # Panics
    ///
    /// Panics if `stripe` is out of range.
    pub fn writer(self: &Arc<Self>, stripe: usize) -> StripeWriter {
        assert!(stripe < self.stripes, "stripe {stripe} out of range");
        StripeWriter {
            slab: Arc::clone(self),
            base: stripe * STRIPE_WORDS,
        }
    }

    #[inline]
    fn word(&self, index: usize) -> &AtomicU64 {
        &self.words[index]
    }

    /// The merged value of a counter or gauge metric across all stripes
    /// (sum for counters, max for gauges).
    pub fn merged_word(&self, metric: Metric) -> u64 {
        let offset = metric.offset();
        let fold = |acc: u64, v: u64| match metric.kind() {
            MetricKind::Gauge => acc.max(v),
            _ => acc + v,
        };
        (0..self.stripes).fold(0, |acc, stripe| {
            fold(
                acc,
                self.word(stripe * STRIPE_WORDS + offset)
                    .load(Ordering::Acquire),
            )
        })
    }

    /// The merged histogram of a histogram metric across all stripes.
    ///
    /// # Panics
    ///
    /// Panics if `metric` is not a histogram metric.
    pub fn merged_hist(&self, metric: Metric) -> Histogram {
        assert_eq!(metric.kind(), MetricKind::Histogram, "{metric:?}");
        let offset = metric.offset();
        let mut merged = Histogram::new();
        let mut words = vec![0u64; HIST_WORDS];
        for stripe in 0..self.stripes {
            let base = stripe * STRIPE_WORDS + offset;
            for (i, word) in words.iter_mut().enumerate() {
                *word = self.word(base + i).load(Ordering::Acquire);
            }
            merged.merge(&Histogram::from_words(&words));
        }
        merged
    }

    /// Zeroes every stripe (start of a fresh measurement window).
    pub fn reset(&self) {
        for word in self.words.iter() {
            word.store(0, Ordering::Release);
        }
    }
}

/// A handle recording into one stripe of a [`MetricsSlab`]. All operations
/// are single relaxed read-modify-writes on the stripe's own cache lines —
/// the escrow discipline makes stronger orderings pointless, since the
/// words are only read at snapshot time, after the window quiesces.
#[derive(Clone)]
pub struct StripeWriter {
    slab: Arc<MetricsSlab>,
    base: usize,
}

impl std::fmt::Debug for StripeWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StripeWriter")
            .field("stripe", &(self.base / STRIPE_WORDS))
            .finish()
    }
}

impl StripeWriter {
    /// The slab this writer records into.
    pub fn slab(&self) -> &Arc<MetricsSlab> {
        &self.slab
    }

    /// Bumps a counter metric by one.
    #[inline]
    pub fn count(&self, metric: Metric) {
        self.add(metric, 1);
    }

    /// Bumps a counter metric by `n`.
    #[inline]
    pub fn add(&self, metric: Metric, n: u64) {
        self.slab
            .word(self.base + metric.offset())
            .fetch_add(n, Ordering::Relaxed); // lint: relaxed-ok(escrowed per-process metric word; read only at quiesced snapshots)
    }

    /// Stores a gauge observation.
    #[inline]
    pub fn gauge(&self, metric: Metric, value: u64) {
        self.slab
            .word(self.base + metric.offset())
            .store(value, Ordering::Relaxed); // lint: relaxed-ok(escrowed per-process gauge word; read only at quiesced snapshots)
    }

    /// Records one value into a histogram metric.
    #[inline]
    pub fn record(&self, metric: Metric, value: u64) {
        let base = self.base + metric.offset();
        let bucket = bucket_of(value);
        self.slab
            .word(base + bucket)
            .fetch_add(1, Ordering::Relaxed); // lint: relaxed-ok(escrowed per-process histogram words; read only at quiesced snapshots)
        self.slab
            .word(base + crate::hist::BUCKETS)
            .fetch_add(1, Ordering::Relaxed); // lint: relaxed-ok(escrowed per-process histogram words; read only at quiesced snapshots)
        self.slab
            .word(base + crate::hist::BUCKETS + 1)
            .fetch_add(value, Ordering::Relaxed); // lint: relaxed-ok(escrowed per-process histogram words; read only at quiesced snapshots)
        self.slab
            .word(base + crate::hist::BUCKETS + 2)
            .fetch_max(value, Ordering::Relaxed); // lint: relaxed-ok(escrowed per-process histogram words; read only at quiesced snapshots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_stripe_layout_is_dense_and_in_declaration_order() {
        for window in ALL_METRICS.windows(2) {
            assert!(
                window[0].offset() < window[1].offset(),
                "{:?} before {:?}",
                window[0],
                window[1]
            );
        }
        // Word metrics are one word apart; histograms HIST_WORDS apart.
        assert_eq!(Metric::RecyclerGrant.offset(), 0);
        assert_eq!(
            Metric::GrantNs.offset(),
            WORD_METRICS,
            "first histogram starts right after the word metrics"
        );
        assert_eq!(Metric::RobustAcquireNs.offset(), WORD_METRICS + HIST_WORDS);
        const { assert!(STRIPE_WORDS >= STRIPE_RAW_WORDS) };
        assert_eq!(STRIPE_WORDS % 8, 0, "stripes are whole cache lines");
    }

    #[test]
    fn metric_names_are_unique() {
        let mut names: Vec<&str> = ALL_METRICS.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn slab_footprint_is_exact_and_stripes_merge() {
        let arena = Arena::heap(MetricsSlab::footprint(3));
        let slab = MetricsSlab::new_in(&arena, 3);
        assert_eq!(arena.remaining(), 0, "footprint is exact");
        for stripe in 0..3 {
            let w = slab.writer(stripe);
            w.count(Metric::RecyclerGrant);
            w.add(Metric::RobustCasRetry, stripe as u64);
            w.gauge(Metric::RoutedWidth, 2 << stripe);
            w.record(Metric::GrantNs, 100 << stripe);
        }
        assert_eq!(slab.merged_word(Metric::RecyclerGrant), 3);
        assert_eq!(slab.merged_word(Metric::RobustCasRetry), 3);
        assert_eq!(slab.merged_word(Metric::RoutedWidth), 8, "gauges max");
        let hist = slab.merged_hist(Metric::GrantNs);
        assert_eq!(hist.count(), 3);
        assert_eq!(hist.sum(), 100 + 200 + 400);
        assert_eq!(hist.max(), 400);
        slab.reset();
        assert_eq!(slab.merged_word(Metric::RecyclerGrant), 0);
        assert!(slab.merged_hist(Metric::GrantNs).is_empty());
    }

    #[test]
    #[should_panic(expected = "stripe 2 out of range")]
    fn out_of_range_stripes_are_rejected() {
        let _ = MetricsSlab::heap(2).writer(2);
    }
}
