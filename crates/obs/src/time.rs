//! Timestamps for flight-recorder stamps and latency histograms.
//!
//! Real builds read the monotonic clock against a process-global epoch
//! pinned at recorder construction (pre-fork, so children inherit the same
//! epoch through the forked address space and stamps stay comparable
//! across processes). Under miri — which isolates the host clock — the
//! "clock" is a deterministic process-local counter, which is exactly what
//! the heap-backend recorder tests want anyway.

#[cfg(not(miri))]
mod imp {
    use std::sync::OnceLock;
    use std::time::Instant;

    static EPOCH: OnceLock<Instant> = OnceLock::new();

    /// Pins the epoch (idempotent). Called by recorder constructors so the
    /// pin happens before any fork.
    pub fn init_epoch() {
        let _ = EPOCH.get_or_init(Instant::now);
    }

    /// Nanoseconds since the epoch (pinning it on first use).
    pub fn now_ns() -> u64 {
        EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }
}

#[cfg(miri)]
mod imp {
    use std::sync::atomic::{AtomicU64, Ordering};

    static TICKS: AtomicU64 = AtomicU64::new(0);

    /// No clock to pin under miri.
    pub fn init_epoch() {}

    /// A deterministic monotone tick standing in for the isolated clock.
    pub fn now_ns() -> u64 {
        TICKS.fetch_add(1, Ordering::SeqCst)
    }
}

pub use imp::{init_epoch, now_ns};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_clock_is_monotone() {
        init_epoch();
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
