//! The sweep-time postmortem hook.
//!
//! A process that hosts (or inherits) a [`FlightRecorder`] installs it
//! here; when `RobustLeaseTable::sweep_dead_processes` reclaims a name
//! from a dead owner it calls [`notify_dead`] with the owner's pid, and
//! the hook dumps the dead process's ring tail — its last recorded
//! moments — as a [`Postmortem`]. Reports accumulate until drained with
//! [`take_reports`] (tests assert on them; the flight-recorder example
//! prints them).
//!
//! With the `off` feature the hook is a no-op and sweeps stay exactly as
//! cheap as before.

use crate::ring::{Event, FlightRecorder};
use std::sync::Arc;

/// One dead process's dumped ring tail.
#[derive(Clone, Debug)]
pub struct Postmortem {
    /// The dead owner's OS pid.
    pub pid: u32,
    /// The ring the pid was attached to.
    pub ring: usize,
    /// The decoded ring tail, oldest first.
    pub events: Vec<Event>,
    /// The human-readable rendering ([`FlightRecorder::postmortem`]).
    pub rendered: String,
}

#[cfg(not(feature = "off"))]
mod imp {
    use super::*;
    use std::sync::Mutex;

    static HOOK: Mutex<Option<Arc<FlightRecorder>>> = Mutex::new(None);
    static REPORTS: Mutex<Vec<Postmortem>> = Mutex::new(Vec::new());

    /// Installs `recorder` as the process's postmortem source (replacing
    /// any previous one).
    pub fn install(recorder: Arc<FlightRecorder>) {
        *HOOK.lock().expect("postmortem hook lock") = Some(recorder);
    }

    /// Removes the installed recorder, if any.
    pub fn uninstall() {
        *HOOK.lock().expect("postmortem hook lock") = None;
    }

    /// Dumps the ring attached by `pid`, if a recorder is installed and
    /// has one. Returns whether a report was produced. Idempotent per
    /// sweep call site, not deduplicated across calls — a pid swept twice
    /// produces two reports.
    pub fn notify_dead(pid: u32) -> bool {
        let recorder = HOOK.lock().expect("postmortem hook lock").clone();
        let Some(recorder) = recorder else {
            return false;
        };
        let Some(ring) = recorder.find_ring(pid) else {
            return false;
        };
        let report = Postmortem {
            pid,
            ring,
            events: recorder.events(ring),
            rendered: recorder.postmortem(ring),
        };
        REPORTS.lock().expect("postmortem report lock").push(report);
        true
    }

    /// Drains every accumulated report.
    pub fn take_reports() -> Vec<Postmortem> {
        std::mem::take(&mut *REPORTS.lock().expect("postmortem report lock"))
    }
}

#[cfg(feature = "off")]
mod imp {
    use super::*;

    /// No-op with telemetry compiled off.
    #[inline(always)]
    pub fn install(_recorder: Arc<FlightRecorder>) {}

    /// No-op with telemetry compiled off.
    #[inline(always)]
    pub fn uninstall() {}

    /// Always false with telemetry compiled off.
    #[inline(always)]
    pub fn notify_dead(_pid: u32) -> bool {
        false
    }

    /// Always empty with telemetry compiled off.
    #[inline(always)]
    pub fn take_reports() -> Vec<Postmortem> {
        Vec::new()
    }
}

pub use imp::{install, notify_dead, take_reports, uninstall};

#[cfg(all(test, not(feature = "off")))]
mod tests {
    use super::*;
    use crate::ring::EventKind;

    #[test]
    fn a_dead_pid_with_an_attached_ring_is_dumped() {
        let recorder = FlightRecorder::heap(2, 4);
        recorder.attach(1, 4242);
        let writer = recorder.writer(1);
        writer.log(EventKind::LeaseGranted, 3, 0);
        writer.log(EventKind::Mark, 9, 9);
        install(Arc::clone(&recorder));
        assert!(!notify_dead(999), "unknown pid: no ring, no report");
        assert!(notify_dead(4242));
        uninstall();
        assert!(!notify_dead(4242), "uninstalled: no report");
        let reports = take_reports();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].pid, 4242);
        assert_eq!(reports[0].ring, 1);
        assert_eq!(reports[0].events.len(), 2);
        assert_eq!(reports[0].events[0].kind, EventKind::LeaseGranted);
        assert!(reports[0].rendered.contains("pid 4242"));
        assert!(take_reports().is_empty(), "reports drain");
    }
}
