//! The flight recorder: per-process event rings that survive crashes.
//!
//! A [`FlightRecorder`] is an arena-resident array of single-writer event
//! rings, one per process. Each ring is a header line (a seqlock word and
//! the writer's OS pid) followed by `capacity` fixed-size event slots of
//! [`EVENT_WORDS`] atomic words each. Writing an event is one seqlock
//! entry bump, four word stores into the slot the cursor selects, and one
//! exit bump — the cursor *is* the seqlock (`sequence / 2` counts completed
//! events), so a reader can always tell how much of the ring is real and
//! whether the write it overlapped was in flight.
//!
//! Because the words live in a shared [`Arena`], a child SIGKILLed
//! mid-operation leaves its ring intact in the mapping: the surviving
//! parent reads the tail — the dead process's last moments — and renders it
//! as a postmortem ([`FlightRecorder::postmortem`], hooked into
//! `RobustLeaseTable::sweep_dead_processes` via
//! [`crate::postmortem`]). A ring whose writer died *inside* the seqlock
//! window is still readable: the reader's bounded retry gives up and
//! returns the snapshot with every event marked [`Event::torn`], which the
//! postmortem renders honestly.
//!
//! The `*_vis` variants thread a [`ProcessCtx`] through every shared word
//! access (one [`StepKind`] record with the word's arena-derived
//! [`Loc`](shmem::vexec::Loc) each), which is what lets the `mcheck`
//! explorer drive the writer/reader race schedule by schedule
//! (`obs_ring_2p`).

use shmem::arena::{Arena, ArenaSliceRef};
use shmem::process::ProcessCtx;
use shmem::steps::StepKind;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Words per event slot: stamp, kind, name, payload.
pub const EVENT_WORDS: usize = 4;
/// Words per ring header (one cache line): the seqlock cursor, the writer's
/// OS pid, and reserved space.
pub const HDR_WORDS: usize = 8;

/// What a recorded event describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u64)]
pub enum EventKind {
    /// A lease/name was granted to the writer.
    LeaseGranted = 1,
    /// A lease/name was released by the writer.
    LeaseReleased = 2,
    /// A lease acquisition failed (capacity, inner error).
    LeaseFailed = 3,
    /// The writer's sweep reclaimed a dead peer's name.
    SweepReclaimed = 4,
    /// A counter increment completed.
    Increment = 5,
    /// A batched-release stash flushed.
    Flush = 6,
    /// A free-form application marker.
    Mark = 7,
    /// Restart recovery reclaimed a dead owner's name.
    Recovered = 8,
    /// Recovery parked a torn/indeterminate slot on the quarantine list.
    Quarantined = 9,
}

impl EventKind {
    /// Decodes a stored kind word (unknown codes decode to [`Self::Mark`]).
    pub fn from_code(code: u64) -> EventKind {
        match code {
            1 => EventKind::LeaseGranted,
            2 => EventKind::LeaseReleased,
            3 => EventKind::LeaseFailed,
            4 => EventKind::SweepReclaimed,
            5 => EventKind::Increment,
            6 => EventKind::Flush,
            8 => EventKind::Recovered,
            9 => EventKind::Quarantined,
            _ => EventKind::Mark,
        }
    }
}

/// One decoded flight-recorder event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// The event's sequence number within its ring (0-based, monotone).
    pub seq: u64,
    /// The writer's timestamp (nanoseconds since the recorder's epoch for
    /// raw logging; the pre-bump seqlock word for `log_vis`, keeping
    /// model-checked runs deterministic).
    pub stamp: u64,
    /// What happened.
    pub kind: EventKind,
    /// The name/wire/slot the event concerns.
    pub name: u64,
    /// Free-form payload.
    pub payload: u64,
    /// Whether the snapshot this event came from was torn: the writer was
    /// (or died) mid-write and the bounded seqlock retry gave up.
    pub torn: bool,
}

/// An arena-resident array of per-process single-writer event rings.
pub struct FlightRecorder {
    words: ArenaSliceRef<AtomicU64>,
    rings: usize,
    capacity: usize,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("rings", &self.rings)
            .field("capacity", &self.capacity)
            .finish()
    }
}

/// Bounded seqlock retries before a reader accepts a torn snapshot.
const READ_RETRIES: usize = 3;

impl FlightRecorder {
    /// Allocates `rings` rings of `capacity` events each from `arena`
    /// (exactly [`FlightRecorder::footprint`] bytes). Also initializes the
    /// recorder's timestamp epoch, so forked children inherit it.
    ///
    /// # Panics
    ///
    /// Panics if `rings` or `capacity` is zero, or the arena runs out.
    pub fn new_in(arena: &Arc<Arena>, rings: usize, capacity: usize) -> Arc<Self> {
        assert!(rings > 0, "a flight recorder needs at least one ring");
        assert!(capacity > 0, "a ring needs at least one event slot");
        crate::time::init_epoch();
        let words = arena.alloc_slice::<AtomicU64>(rings * Self::ring_words(capacity));
        Arc::new(FlightRecorder {
            words: words.pin(arena),
            rings,
            capacity,
        })
    }

    /// Allocates a recorder over a fresh process-private heap arena.
    pub fn heap(rings: usize, capacity: usize) -> Arc<Self> {
        Self::new_in(
            &Arena::heap(Self::footprint(rings, capacity)),
            rings,
            capacity,
        )
    }

    fn ring_words(capacity: usize) -> usize {
        HDR_WORDS + capacity * EVENT_WORDS
    }

    /// The number of arena bytes a recorder of this shape allocates
    /// (rounded to the arena's 64-byte allocation grain).
    pub fn footprint(rings: usize, capacity: usize) -> usize {
        (rings * Self::ring_words(capacity) * std::mem::size_of::<AtomicU64>()).next_multiple_of(64)
    }

    /// The number of rings.
    pub fn rings(&self) -> usize {
        self.rings
    }

    /// Events each ring retains.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    #[inline]
    fn base(&self, ring: usize) -> usize {
        assert!(ring < self.rings, "ring {ring} out of range");
        ring * Self::ring_words(self.capacity)
    }

    /// A writer handle for `ring`. Clone-cheap and fork-safe (it resolves
    /// through the pinned arena slice). One writer per ring: the seqlock
    /// protocol is single-writer.
    pub fn writer(self: &Arc<Self>, ring: usize) -> RingWriter {
        let _ = self.base(ring); // range check
        RingWriter {
            recorder: Arc::clone(self),
            ring,
        }
    }

    /// Stamps `ring`'s header with its writer's OS pid so postmortem
    /// sweeps can find the dead owner's ring.
    pub fn attach(&self, ring: usize, pid: u32) {
        self.words[self.base(ring) + 1].store(pid as u64, Ordering::Release);
    }

    /// The pid stamped on `ring`'s header (0 if never attached).
    pub fn ring_pid(&self, ring: usize) -> u32 {
        self.words[self.base(ring) + 1].load(Ordering::Acquire) as u32
    }

    /// The ring attached by `pid`, if any.
    pub fn find_ring(&self, pid: u32) -> Option<usize> {
        (0..self.rings).find(|&ring| self.ring_pid(ring) == pid)
    }

    /// Completed events written to `ring` so far (possibly more than
    /// `capacity`; only the last `capacity` remain readable).
    pub fn written(&self, ring: usize) -> u64 {
        self.words[self.base(ring)].load(Ordering::Acquire) / 2
    }

    /// A seqlock-consistent snapshot of `ring`'s retained events, oldest
    /// first. After `READ_RETRIES` failed attempts (the writer is mid
    /// write, or died there) the snapshot is returned anyway with every
    /// event marked [`Event::torn`].
    pub fn events(&self, ring: usize) -> Vec<Event> {
        let base = self.base(ring);
        let seq = &self.words[base];
        for _ in 0..READ_RETRIES {
            let s1 = seq.load(Ordering::Acquire);
            if s1 % 2 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let snapshot = self.read_slots(base, s1 / 2, false);
            if seq.load(Ordering::Acquire) == s1 {
                return snapshot;
            }
        }
        let s = seq.load(Ordering::Acquire);
        self.read_slots(base, s / 2 + s % 2, true)
    }

    /// The last `n` retained events of `ring`, oldest first.
    pub fn tail(&self, ring: usize, n: usize) -> Vec<Event> {
        let mut events = self.events(ring);
        let keep = events.len().saturating_sub(n);
        events.drain(..keep);
        events
    }

    /// Schedule-visible snapshot of `ring` for the model checker: every
    /// shared word access records one step against the word's arena
    /// location, and the seqlock retry is bounded by `retries`.
    pub fn events_vis(&self, ctx: &mut ProcessCtx, ring: usize, retries: usize) -> Vec<Event> {
        let base = self.base(ring);
        let seq = &self.words[base];
        for _ in 0..retries {
            ctx.record_at(StepKind::RegisterRead, self.words.loc_at(base));
            let s1 = seq.load(Ordering::Acquire);
            if s1 % 2 == 1 {
                continue;
            }
            let snapshot = self.read_slots_vis(ctx, base, s1 / 2, false);
            ctx.record_at(StepKind::RegisterRead, self.words.loc_at(base));
            if seq.load(Ordering::Acquire) == s1 {
                return snapshot;
            }
        }
        ctx.record_at(StepKind::RegisterRead, self.words.loc_at(base));
        let s = seq.load(Ordering::Acquire);
        self.read_slots_vis(ctx, base, s / 2 + s % 2, true)
    }

    fn read_slots(&self, base: usize, written: u64, torn: bool) -> Vec<Event> {
        self.collect_slots(written, torn, |index| {
            self.words[base + index].load(Ordering::Acquire)
        })
    }

    fn read_slots_vis(
        &self,
        ctx: &mut ProcessCtx,
        base: usize,
        written: u64,
        torn: bool,
    ) -> Vec<Event> {
        self.collect_slots(written, torn, |index| {
            ctx.record_at(StepKind::RegisterRead, self.words.loc_at(base + index));
            self.words[base + index].load(Ordering::Acquire)
        })
    }

    fn collect_slots(
        &self,
        written: u64,
        torn: bool,
        mut load: impl FnMut(usize) -> u64,
    ) -> Vec<Event> {
        let first = written.saturating_sub(self.capacity as u64);
        (first..written)
            .map(|seq| {
                let slot = HDR_WORDS + (seq as usize % self.capacity) * EVENT_WORDS;
                Event {
                    seq,
                    stamp: load(slot),
                    kind: EventKind::from_code(load(slot + 1)),
                    name: load(slot + 2),
                    payload: load(slot + 3),
                    torn,
                }
            })
            .collect()
    }

    /// Renders `ring`'s tail as a human-readable postmortem block.
    pub fn postmortem(&self, ring: usize) -> String {
        let pid = self.ring_pid(ring);
        let events = self.events(ring);
        let mut out = format!(
            "postmortem: ring {ring} (pid {pid}), {} event(s) retained of {} written\n",
            events.len(),
            self.written(ring)
        );
        if events.is_empty() {
            out.push_str("  (no events recorded)\n");
        }
        for event in &events {
            out.push_str(&format!(
                "  #{:<4} +{:<12} {:<14} name={:<6} payload={}{}\n",
                event.seq,
                format!("{}ns", event.stamp),
                format!("{:?}", event.kind),
                event.name,
                event.payload,
                if event.torn { "  [torn]" } else { "" }
            ));
        }
        out
    }
}

/// The single-writer handle of one ring.
#[derive(Clone)]
pub struct RingWriter {
    recorder: Arc<FlightRecorder>,
    ring: usize,
}

impl std::fmt::Debug for RingWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingWriter")
            .field("ring", &self.ring)
            .finish()
    }
}

impl RingWriter {
    /// The recorder this writer logs into.
    pub fn recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    /// This writer's ring index.
    pub fn ring(&self) -> usize {
        self.ring
    }

    /// Stamps the ring header with the calling OS process's pid (no-op off
    /// unix or under miri, where there is no meaningful pid to probe).
    pub fn attach_current_process(&self) {
        #[cfg(all(unix, not(miri)))]
        self.recorder.attach(self.ring, shmem::arena::os_pid());
    }

    /// Logs one event: seqlock entry bump, four slot-word stores, exit
    /// bump. The stamp is nanoseconds since the recorder's epoch.
    pub fn log(&self, kind: EventKind, name: u64, payload: u64) {
        self.log_stamped(crate::time::now_ns(), kind, name, payload, None);
    }

    /// Schedule-visible [`RingWriter::log`] for the model checker: each
    /// shared word access records one step at the word's location, and the
    /// stamp is the deterministic pre-bump sequence word instead of a
    /// clock.
    pub fn log_vis(&self, ctx: &mut ProcessCtx, kind: EventKind, name: u64, payload: u64) {
        self.log_stamped(0, kind, name, payload, Some(ctx));
    }

    fn log_stamped(
        &self,
        stamp: u64,
        kind: EventKind,
        name: u64,
        payload: u64,
        mut ctx: Option<&mut ProcessCtx>,
    ) {
        let rec = &self.recorder;
        let base = self.ring * FlightRecorder::ring_words(rec.capacity);
        let seq = &rec.words[base];
        if let Some(ctx) = ctx.as_deref_mut() {
            ctx.record_at(StepKind::ReadModifyWrite, rec.words.loc_at(base));
        }
        // Entry bump: odd sequence marks the write in flight. The acquire
        // half keeps the slot stores below from hoisting above the bump;
        // the release half publishes the odd marker.
        // lint: relaxed-ok(seqlock entry RMW needs both halves: acquire pins the slot stores after it, release publishes the odd marker)
        let s = seq.fetch_add(1, Ordering::AcqRel);
        let slot = base + HDR_WORDS + ((s / 2) as usize % rec.capacity) * EVENT_WORDS;
        let stamp = if ctx.is_some() { s } else { stamp };
        for (index, word) in [(0, stamp), (1, kind as u64), (2, name), (3, payload)] {
            if let Some(ctx) = ctx.as_deref_mut() {
                ctx.record_at(StepKind::RegisterWrite, rec.words.loc_at(slot + index));
            }
            rec.words[slot + index].store(word, Ordering::Release);
        }
        if let Some(ctx) = ctx {
            ctx.record_at(StepKind::ReadModifyWrite, rec.words.loc_at(base));
        }
        // Exit bump: even again, event s/2 complete.
        // lint: relaxed-ok(seqlock exit RMW: release publishes the slot stores before the even marker)
        seq.fetch_add(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip_in_order() {
        let rec = FlightRecorder::heap(2, 4);
        let w = rec.writer(1);
        for i in 0..3u64 {
            w.log(EventKind::Mark, i, i * 10);
        }
        let events = rec.events(1);
        assert_eq!(events.len(), 3);
        for (i, event) in events.iter().enumerate() {
            assert_eq!(event.seq, i as u64);
            assert_eq!(event.kind, EventKind::Mark);
            assert_eq!(event.name, i as u64);
            assert_eq!(event.payload, i as u64 * 10);
            assert!(!event.torn);
        }
        assert!(rec.events(0).is_empty(), "the other ring is untouched");
        assert_eq!(rec.written(1), 3);
    }

    #[test]
    fn the_ring_wraps_keeping_the_tail() {
        let rec = FlightRecorder::heap(1, 3);
        let w = rec.writer(0);
        for i in 0..10u64 {
            w.log(EventKind::Increment, i, 0);
        }
        let events = rec.events(0);
        assert_eq!(events.len(), 3, "only the last `capacity` events remain");
        assert_eq!(
            events.iter().map(|e| e.name).collect::<Vec<_>>(),
            vec![7, 8, 9]
        );
        assert_eq!(
            rec.tail(0, 2).iter().map(|e| e.name).collect::<Vec<_>>(),
            vec![8, 9]
        );
        assert_eq!(rec.written(0), 10);
    }

    #[test]
    fn a_writer_dead_inside_the_seqlock_window_reads_as_torn() {
        let rec = FlightRecorder::heap(1, 2);
        let w = rec.writer(0);
        w.log(EventKind::Mark, 1, 1);
        // Simulate a crash mid-write: bump the seqlock entry without an exit.
        rec.words[0].fetch_add(1, Ordering::SeqCst);
        let events = rec.events(0);
        assert!(!events.is_empty());
        assert!(events.iter().all(|e| e.torn), "the torn flag is honest");
        let report = rec.postmortem(0);
        assert!(report.contains("[torn]"), "{report}");
    }

    #[test]
    fn stamps_are_monotone_and_kinds_decode() {
        let rec = FlightRecorder::heap(1, 8);
        let w = rec.writer(0);
        w.log(EventKind::LeaseGranted, 1, 0);
        w.log(EventKind::LeaseReleased, 1, 0);
        let events = rec.events(0);
        assert!(events[0].stamp <= events[1].stamp);
        assert_eq!(events[0].kind, EventKind::LeaseGranted);
        assert_eq!(events[1].kind, EventKind::LeaseReleased);
        assert_eq!(EventKind::from_code(999), EventKind::Mark);
        let report = rec.postmortem(0);
        assert!(report.contains("LeaseGranted"), "{report}");
    }

    #[test]
    fn footprint_is_exact() {
        let arena = Arena::heap(FlightRecorder::footprint(3, 5));
        let rec = FlightRecorder::new_in(&arena, 3, 5);
        assert_eq!(arena.remaining(), 0);
        assert_eq!(rec.rings(), 3);
        assert_eq!(rec.capacity(), 5);
        assert_eq!(rec.find_ring(12345), None);
        rec.attach(2, 12345);
        assert_eq!(rec.find_ring(12345), Some(2));
        assert_eq!(rec.ring_pid(2), 12345);
    }
}
