//! The per-thread recording sink the instrumented hot paths call into.
//!
//! Instrumentation sites in `core` and `cnet` cannot thread a metrics
//! handle through every signature, so they call the free functions here
//! ([`count`], [`record`], [`event`], [`start`]/[`finish`]). Each thread
//! (or forked process — the binding is plain thread-local state and
//! survives `fork`) opts in by [`bind_metrics`]-ing a
//! [`StripeWriter`](crate::metrics::StripeWriter) and/or [`bind_ring`]-ing
//! a [`RingWriter`](crate::ring::RingWriter); unbound
//! threads pay one global flag load and a predictable branch per site.
//!
//! With the `off` feature every function here is an empty `#[inline]`
//! no-op, so telemetry compiles out of the hot paths entirely — the
//! zero-cost path the perf overhead gate compares against.

#[cfg(not(feature = "off"))]
mod imp {
    use crate::metrics::{Metric, StripeWriter};
    use crate::ring::{EventKind, RingWriter};
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Flips true on the first bind anywhere in the process and stays true:
    /// the hot-path guard is one relaxed load of this mostly-read line.
    static ANY_BOUND: AtomicBool = AtomicBool::new(false);

    #[derive(Default)]
    struct Bound {
        metrics: Option<StripeWriter>,
        ring: Option<RingWriter>,
    }

    thread_local! {
        static BOUND: RefCell<Bound> = RefCell::new(Bound::default());
    }

    #[inline(always)]
    fn active() -> bool {
        ANY_BOUND.load(Ordering::Relaxed) // lint: relaxed-ok(monotone enable flag; guards only whether to consult thread-local state)
    }

    /// Binds the calling thread's metric stripe.
    pub fn bind_metrics(writer: StripeWriter) {
        BOUND.with(|bound| bound.borrow_mut().metrics = Some(writer));
        ANY_BOUND.store(true, Ordering::Release);
    }

    /// Binds the calling thread's flight-recorder ring.
    pub fn bind_ring(writer: RingWriter) {
        BOUND.with(|bound| bound.borrow_mut().ring = Some(writer));
        ANY_BOUND.store(true, Ordering::Release);
    }

    /// Unbinds both sinks of the calling thread.
    pub fn unbind() {
        let _ = BOUND.try_with(|bound| *bound.borrow_mut() = Bound::default());
    }

    /// Whether any sink has ever been bound in this process.
    pub fn enabled() -> bool {
        active()
    }

    #[inline]
    fn with_metrics(f: impl FnOnce(&StripeWriter)) {
        if !active() {
            return;
        }
        let _ = BOUND.try_with(|bound| {
            if let Some(writer) = bound.borrow().metrics.as_ref() {
                f(writer);
            }
        });
    }

    /// Bumps a counter metric on the calling thread's stripe, if bound.
    #[inline]
    pub fn count(metric: Metric) {
        with_metrics(|writer| writer.count(metric));
    }

    /// Bumps a counter metric by `n` on the calling thread's stripe.
    #[inline]
    pub fn add(metric: Metric, n: u64) {
        with_metrics(|writer| writer.add(metric, n));
    }

    /// Stores a gauge observation on the calling thread's stripe.
    #[inline]
    pub fn gauge(metric: Metric, value: u64) {
        with_metrics(|writer| writer.gauge(metric, value));
    }

    /// Records a histogram value on the calling thread's stripe.
    #[inline]
    pub fn record(metric: Metric, value: u64) {
        with_metrics(|writer| writer.record(metric, value));
    }

    /// Logs a flight-recorder event on the calling thread's ring, if bound.
    #[inline]
    pub fn event(kind: EventKind, name: u64, payload: u64) {
        if !active() {
            return;
        }
        let _ = BOUND.try_with(|bound| {
            if let Some(ring) = bound.borrow().ring.as_ref() {
                ring.log(kind, name, payload);
            }
        });
    }

    /// An in-flight latency measurement (see [`start`]).
    #[derive(Clone, Copy, Debug)]
    pub struct Timer(Option<u64>);

    /// Starts a latency measurement. Reads the clock only when a metric
    /// stripe is bound, so unbound threads never pay for a timestamp.
    #[inline]
    pub fn start() -> Timer {
        if !active() {
            return Timer(None);
        }
        let mut stamp = None;
        let _ = BOUND.try_with(|bound| {
            if bound.borrow().metrics.is_some() {
                stamp = Some(crate::time::now_ns());
            }
        });
        Timer(stamp)
    }

    /// Finishes a latency measurement into a histogram metric.
    #[inline]
    pub fn finish(timer: Timer, metric: Metric) {
        if let Timer(Some(started)) = timer {
            record(metric, crate::time::now_ns().saturating_sub(started));
        }
    }
}

#[cfg(feature = "off")]
mod imp {
    use crate::metrics::{Metric, StripeWriter};
    use crate::ring::{EventKind, RingWriter};

    /// Binding is a no-op with telemetry compiled off.
    #[inline(always)]
    pub fn bind_metrics(_writer: StripeWriter) {}

    /// Binding is a no-op with telemetry compiled off.
    #[inline(always)]
    pub fn bind_ring(_writer: RingWriter) {}

    /// Unbinding is a no-op with telemetry compiled off.
    #[inline(always)]
    pub fn unbind() {}

    /// Always false with telemetry compiled off.
    #[inline(always)]
    pub fn enabled() -> bool {
        false
    }

    /// No-op with telemetry compiled off.
    #[inline(always)]
    pub fn count(_metric: Metric) {}

    /// No-op with telemetry compiled off.
    #[inline(always)]
    pub fn add(_metric: Metric, _n: u64) {}

    /// No-op with telemetry compiled off.
    #[inline(always)]
    pub fn gauge(_metric: Metric, _value: u64) {}

    /// No-op with telemetry compiled off.
    #[inline(always)]
    pub fn record(_metric: Metric, _value: u64) {}

    /// No-op with telemetry compiled off.
    #[inline(always)]
    pub fn event(_kind: EventKind, _name: u64, _payload: u64) {}

    /// A zero-sized stand-in with telemetry compiled off.
    #[derive(Clone, Copy, Debug)]
    pub struct Timer;

    /// No-op with telemetry compiled off.
    #[inline(always)]
    pub fn start() -> Timer {
        Timer
    }

    /// No-op with telemetry compiled off.
    #[inline(always)]
    pub fn finish(_timer: Timer, _metric: Metric) {}
}

pub use imp::{
    add, bind_metrics, bind_ring, count, enabled, event, finish, gauge, record, start, unbind,
    Timer,
};

#[cfg(all(test, not(feature = "off")))]
mod tests {
    use super::*;
    use crate::metrics::{Metric, MetricsSlab};
    use crate::ring::{EventKind, FlightRecorder};

    #[test]
    fn unbound_threads_record_nothing_and_pay_no_clock() {
        // Run in a throwaway thread so bindings from other tests in this
        // process never leak in.
        std::thread::spawn(|| {
            unbind();
            count(Metric::RecyclerGrant);
            let timer = start();
            finish(timer, Metric::GrantNs);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn bound_threads_record_into_their_stripe_and_ring() {
        std::thread::spawn(|| {
            let slab = MetricsSlab::heap(1);
            let rec = FlightRecorder::heap(1, 4);
            bind_metrics(slab.writer(0));
            bind_ring(rec.writer(0));
            assert!(enabled());
            count(Metric::RobustAcquire);
            add(Metric::RobustCasRetry, 2);
            gauge(Metric::RoutedWidth, 4);
            record(Metric::RobustAcquireNs, 123);
            let timer = start();
            finish(timer, Metric::GrantNs);
            event(EventKind::LeaseGranted, 7, 0);
            unbind();
            count(Metric::RobustAcquire); // after unbind: dropped
            assert_eq!(slab.merged_word(Metric::RobustAcquire), 1);
            assert_eq!(slab.merged_word(Metric::RobustCasRetry), 2);
            assert_eq!(slab.merged_word(Metric::RoutedWidth), 4);
            assert_eq!(slab.merged_hist(Metric::RobustAcquireNs).count(), 1);
            assert_eq!(slab.merged_hist(Metric::GrantNs).count(), 1);
            let events = rec.events(0);
            assert_eq!(events.len(), 1);
            assert_eq!(events[0].kind, EventKind::LeaseGranted);
            assert_eq!(events[0].name, 7);
        })
        .join()
        .unwrap();
    }
}
