//! Property tests of the log-bucketed histogram: the bucket scheme
//! partitions the `u64` range, and concurrent per-stripe recording merged
//! at snapshot time agrees exactly with the sequential oracle.
//!
//! Runs under miri (heap-backed slab, plain `std::thread::scope`); case
//! counts shrink there so the interpreted run stays in budget.

use obs::hist::{bucket_bounds, bucket_of, Histogram, BUCKETS};
use obs::{Metric, MetricsSlab};
use proptest::prelude::*;

#[cfg(miri)]
const CASES: u32 = 4;
#[cfg(not(miri))]
const CASES: u32 = 64;

/// Spreads a raw `u64` across all value octaves: uniform raw values would
/// land in the top few buckets almost surely, so each value is shifted
/// right by an amount drawn from its own low bits.
fn spread(raw: u64) -> u64 {
    raw >> (raw % 64)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: CASES,
        .. ProptestConfig::default()
    })]

    /// Every value lands in a bucket whose inclusive bounds contain it, and
    /// the bucket is the unique one: the previous bucket ends below the
    /// value, the next starts above it.
    #[test]
    fn bucket_of_agrees_with_bucket_bounds(raw in 0u64..u64::MAX) {
        let value = spread(raw);
        let index = bucket_of(value);
        prop_assert!(index < BUCKETS);
        let (floor, ceil) = bucket_bounds(index);
        prop_assert!(floor <= value && value <= ceil,
            "value {value} outside bucket {index} = [{floor}, {ceil}]");
        if index > 0 {
            prop_assert!(bucket_bounds(index - 1).1 < value);
        }
        if index < BUCKETS - 1 {
            prop_assert!(value < bucket_bounds(index + 1).0);
        }
    }

    /// Merging histograms built from any split of the values equals the
    /// histogram of all values recorded sequentially — bucket by bucket,
    /// plus count, sum and max.
    #[test]
    fn merge_of_any_split_equals_the_sequential_oracle(
        raws in proptest::collection::vec(0u64..u64::MAX, 0..40),
        split in 0usize..40,
    ) {
        let values: Vec<u64> = raws.iter().map(|&raw| spread(raw)).collect();
        let mut oracle = Histogram::new();
        for &value in &values {
            oracle.record(value);
        }
        let split = split.min(values.len());
        let (left, right) = values.split_at(split);
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for &value in left {
            a.record(value);
        }
        for &value in right {
            b.record(value);
        }
        a.merge(&b);
        prop_assert_eq!(&a, &oracle);
        prop_assert_eq!(a.count(), values.len() as u64);
        prop_assert_eq!(a.max(), values.iter().copied().max().unwrap_or(0));
    }

    /// Concurrent recording through per-thread slab stripes, merged at
    /// snapshot time, agrees exactly with the sequential oracle: escrowed
    /// stripes make the merge a quiescent sum, so no update is lost no
    /// matter how the recording threads interleave.
    #[test]
    fn concurrent_stripe_recording_merges_to_the_sequential_oracle(
        raws in proptest::collection::vec(0u64..u64::MAX, 0..24),
        stripes in 1usize..4,
    ) {
        let values: Vec<u64> = raws.iter().map(|&raw| spread(raw)).collect();
        let mut oracle = Histogram::new();
        for &value in &values {
            oracle.record(value);
        }
        let slab = MetricsSlab::heap(stripes);
        std::thread::scope(|scope| {
            for stripe in 0..stripes {
                let writer = slab.writer(stripe);
                let values = &values;
                scope.spawn(move || {
                    // Stripe `s` records values s, s+stripes, s+2*stripes…
                    for value in values.iter().skip(stripe).step_by(stripes) {
                        writer.record(Metric::GrantNs, *value);
                    }
                });
            }
        });
        let merged = slab.merged_hist(Metric::GrantNs);
        prop_assert_eq!(&merged, &oracle);
    }
}
