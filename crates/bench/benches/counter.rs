//! Criterion bench for Experiment E8: the monotone-consistent counter against
//! the fetch-and-add baseline.

use adaptive_renaming::counter::{CasCounter, Counter, MonotoneCounter};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use shmem::adversary::ExecConfig;
use shmem::executor::Executor;
use std::sync::Arc;
use std::time::Duration;

fn bench_counters(c: &mut Criterion) {
    let mut group = c.benchmark_group("counter_increment_then_read");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for k in [4usize, 16] {
        group.bench_with_input(BenchmarkId::new("monotone", k), &k, |b, &k| {
            b.iter(|| {
                let counter = Arc::new(MonotoneCounter::new());
                let outcome = Executor::new(ExecConfig::new(1)).run(k, {
                    let counter = Arc::clone(&counter);
                    move |ctx| {
                        counter.increment(ctx);
                        counter.read(ctx)
                    }
                });
                assert_eq!(outcome.completed().count(), k);
            });
        });
        group.bench_with_input(BenchmarkId::new("fetch_and_add", k), &k, |b, &k| {
            b.iter(|| {
                let counter = Arc::new(CasCounter::new());
                let outcome = Executor::new(ExecConfig::new(1)).run(k, {
                    let counter = Arc::clone(&counter);
                    move |ctx| {
                        counter.increment(ctx);
                        counter.read(ctx)
                    }
                });
                assert_eq!(outcome.completed().count(), k);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_counters);
criterion_main!(benches);
