//! Criterion bench for Experiment E1/E2: BitBatching renaming under full load.

use adaptive_renaming::bit_batching::BitBatchingRenaming;
use adaptive_renaming::traits::Renaming;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use shmem::adversary::ExecConfig;
use shmem::executor::Executor;
use std::sync::Arc;
use std::time::Duration;
use tas::ratrace::RatRaceTas;

fn bench_bit_batching(c: &mut Criterion) {
    let mut group = c.benchmark_group("bit_batching_full_load");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for n in [32usize, 64, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let renaming = Arc::new(BitBatchingRenaming::with_factory(n, RatRaceTas::new));
                let outcome = Executor::new(ExecConfig::new(7)).run(n, {
                    let renaming = Arc::clone(&renaming);
                    move |ctx| renaming.acquire(ctx).expect("full load fits")
                });
                assert_eq!(outcome.completed().count(), n);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bit_batching);
criterion_main!(benches);
