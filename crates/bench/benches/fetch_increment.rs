//! Criterion bench for Experiment E10: the m-valued fetch-and-increment.

use adaptive_renaming::fetch_increment::BoundedFetchIncrement;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use shmem::adversary::ExecConfig;
use shmem::executor::Executor;
use std::sync::Arc;
use std::time::Duration;

fn bench_fetch_increment(c: &mut Criterion) {
    let mut group = c.benchmark_group("fetch_and_increment");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for (k, m) in [(4usize, 64u64), (8, 64), (8, 1024)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("k{k}_m{m}")),
            &(k, m),
            |b, &(k, m)| {
                b.iter(|| {
                    let object = Arc::new(BoundedFetchIncrement::new(m));
                    let outcome = Executor::new(ExecConfig::new(2)).run(k, {
                        let object = Arc::clone(&object);
                        move |ctx| object.fetch_and_increment(ctx)
                    });
                    assert_eq!(outcome.completed().count(), k);
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fetch_increment);
criterion_main!(benches);
