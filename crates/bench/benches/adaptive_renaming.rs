//! Criterion bench for Experiments E5/E7: adaptive strong renaming vs the
//! linear-probing baseline across contention levels.

use adaptive_renaming::adaptive::AdaptiveRenaming;
use adaptive_renaming::linear_probe::LinearProbeRenaming;
use adaptive_renaming::traits::Renaming;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use shmem::adversary::ExecConfig;
use shmem::executor::Executor;
use std::sync::Arc;
use std::time::Duration;
use tas::ratrace::RatRaceTas;

fn bench_adaptive_renaming(c: &mut Criterion) {
    let mut group = c.benchmark_group("adaptive_renaming_contention");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for k in [4usize, 16, 48] {
        group.bench_with_input(BenchmarkId::new("adaptive", k), &k, |b, &k| {
            b.iter(|| {
                let renaming = Arc::new(AdaptiveRenaming::default());
                let outcome = Executor::new(ExecConfig::new(5)).run(k, {
                    let renaming = Arc::clone(&renaming);
                    move |ctx| renaming.acquire(ctx).expect("never fails")
                });
                assert_eq!(outcome.completed().count(), k);
            });
        });
        group.bench_with_input(BenchmarkId::new("linear_probe", k), &k, |b, &k| {
            b.iter(|| {
                let renaming = Arc::new(LinearProbeRenaming::with_slots(
                    (0..k).map(|_| RatRaceTas::new()).collect::<Vec<_>>(),
                ));
                let outcome = Executor::new(ExecConfig::new(5)).run(k, {
                    let renaming = Arc::clone(&renaming);
                    move |ctx| renaming.acquire(ctx).expect("k slots for k processes")
                });
                assert_eq!(outcome.completed().count(), k);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_adaptive_renaming);
criterion_main!(benches);
