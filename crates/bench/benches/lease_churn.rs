//! Criterion bench for the long-lived lease hot path: recyclers (flat,
//! hierarchical, batched, sharded) against the CAS-ticket dispenser.
//!
//! Each measured iteration runs a fresh object through `THREADS` concurrent
//! workers × `OPS` acquire/release cycles on the raw (guard-free) lease
//! surface, so the numbers isolate the renaming protocol itself.
//! `exp_lease_churn` records the same comparison into
//! `BENCH_lease_churn.json` with per-thread-count sweeps.

use adaptive_renaming::builder::RenamingBuilder;
use adaptive_renaming::free_list::FreeListKind;
use adaptive_renaming::lease::LongLivedRenaming;
use adaptive_renaming::recycler::Recycler;
use adaptive_renaming::sharded::ShardedRecycler;
use adaptive_renaming::traits::Renaming;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use shmem::adversary::ExecConfig;
use shmem::executor::Executor;
use shmem::register::AtomicU64Register;
use std::sync::Arc;
use std::time::Duration;

const THREADS: usize = 4;
const OPS: usize = 500;
const BATCH: usize = 8;

fn network(capacity: usize) -> Arc<dyn Renaming> {
    RenamingBuilder::new()
        .network()
        .capacity(capacity)
        .hardware_comparators()
        .build()
        .expect("valid configuration")
}

/// Runs every worker through `OPS` single-lease cycles; returns completions.
fn churn(object: Arc<dyn LongLivedRenaming>) -> usize {
    let outcome = Executor::new(ExecConfig::new(5)).run(THREADS, {
        let object = Arc::clone(&object);
        move |ctx| {
            for _ in 0..OPS {
                let name = object.lease_raw(ctx).expect("admission fits the workers");
                object.release_raw(name);
            }
        }
    });
    outcome.completed().count()
}

fn bench_lease_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("lease_churn");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));

    for (label, kind) in [
        ("flat", FreeListKind::Flat),
        ("hierarchical", FreeListKind::Hierarchical),
    ] {
        group.bench_with_input(BenchmarkId::new("recycler", label), &kind, |b, &kind| {
            b.iter(|| {
                let recycler = Arc::new(Recycler::with_free_list(network(64), THREADS, kind));
                assert_eq!(churn(recycler), THREADS);
            })
        });
    }

    group.bench_function("recycler/hierarchical_batch8", |b| {
        b.iter(|| {
            let recycler = Arc::new(Recycler::with_free_list(
                network(THREADS * BATCH),
                THREADS * BATCH,
                FreeListKind::Hierarchical,
            ));
            let outcome = Executor::new(ExecConfig::new(5)).run(THREADS, {
                let recycler = Arc::clone(&recycler);
                move |ctx| {
                    let mut names = Vec::with_capacity(BATCH);
                    for _ in 0..OPS / BATCH {
                        recycler
                            .lease_many_raw(ctx, BATCH, &mut names)
                            .expect("admission fits workers × batch");
                        recycler.release_many_raw(&names);
                        names.clear();
                    }
                }
            });
            assert_eq!(outcome.completed().count(), THREADS);
        })
    });

    group.bench_function("sharded_recycler", |b| {
        b.iter(|| {
            let sharded = Arc::new(ShardedRecycler::new(
                (0..THREADS).map(|_| network(8)).collect(),
                2,
            ));
            assert_eq!(churn(sharded), THREADS);
        })
    });

    group.bench_function("cas_ticket_baseline", |b| {
        b.iter(|| {
            let tickets = Arc::new(AtomicU64Register::new(0));
            let stubs = Arc::new(AtomicU64Register::new(0));
            let outcome = Executor::new(ExecConfig::new(5)).run(THREADS, {
                let tickets = Arc::clone(&tickets);
                let stubs = Arc::clone(&stubs);
                move |ctx| {
                    for _ in 0..OPS {
                        tickets.fetch_add(ctx, 1);
                        stubs.fetch_add(ctx, 1);
                    }
                }
            });
            assert_eq!(outcome.completed().count(), THREADS);
        })
    });

    group.finish();
}

criterion_group!(benches, bench_lease_churn);
criterion_main!(benches);
