//! Criterion bench for the counter-backend shootout: the paper's monotone
//! counter vs the `cnet` counting-network counter vs the adaptive
//! prism-fronted cascade vs the hardware fetch-and-add baseline, all behind
//! the `<dyn Counter>::builder()` facade.

use adaptive_renaming::counter::{Counter, CounterBackend};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use shmem::adversary::ExecConfig;
use shmem::executor::Executor;
use std::sync::Arc;
use std::time::Duration;

const OPS_PER_WORKER: usize = 64;

fn bench_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("counter_shootout_increments");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for threads in [4usize, 8] {
        for backend in [
            CounterBackend::Monotone,
            CounterBackend::Network,
            CounterBackend::Adaptive,
            CounterBackend::FetchAdd,
        ] {
            let label = match backend {
                CounterBackend::Monotone => "monotone",
                CounterBackend::Network => "network",
                CounterBackend::Adaptive => "adaptive",
                CounterBackend::FetchAdd => "fetch_add",
            };
            group.bench_with_input(BenchmarkId::new(label, threads), &threads, |b, &threads| {
                b.iter(|| {
                    let counter = <dyn Counter>::builder()
                        .backend(backend)
                        .width(threads.next_power_of_two())
                        .build()
                        .expect("valid configuration");
                    let outcome = Executor::new(ExecConfig::new(1)).run(threads, {
                        let counter = Arc::clone(&counter);
                        move |ctx| {
                            for _ in 0..OPS_PER_WORKER {
                                counter.increment(ctx);
                            }
                            counter.read(ctx)
                        }
                    });
                    assert_eq!(outcome.completed().count(), threads);
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
