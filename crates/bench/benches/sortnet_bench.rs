//! Criterion bench for Experiments E4/E13: sorting-network construction and
//! application costs by family, plus the adaptive construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sortnet::adaptive::AdaptiveNetwork;
use sortnet::batcher::odd_even_network;
use sortnet::bitonic::bitonic_network;
use sortnet::family::NetworkFamily;
use sortnet::network::ComparatorNetwork;
use std::time::Duration;

fn bench_families(c: &mut Criterion) {
    let mut group = c.benchmark_group("sorting_network_apply");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    let mut rng = StdRng::seed_from_u64(11);
    for width in [256usize, 1024] {
        let input: Vec<u32> = (0..width).map(|_| rng.gen()).collect();
        let families: [(&str, ComparatorNetwork); 2] = [
            ("odd-even-merge", odd_even_network(width)),
            ("bitonic", bitonic_network(width)),
        ];
        for (name, network) in families {
            group.bench_with_input(BenchmarkId::new(name, width), &input, |b, input| {
                b.iter(|| {
                    let output = network.apply(input);
                    assert_eq!(output.len(), input.len());
                });
            });
        }
    }
    group.finish();

    let mut group = c.benchmark_group("adaptive_network_construction");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for level in [3usize, 5] {
        group.bench_with_input(BenchmarkId::from_parameter(level), &level, |b, &level| {
            b.iter(|| {
                let network = AdaptiveNetwork::new(NetworkFamily::OddEven, level);
                assert!(network.total_depth() > 0);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_families);
criterion_main!(benches);
