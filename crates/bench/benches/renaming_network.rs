//! Criterion bench for Experiment E3: renaming networks over fixed sorting
//! networks, for both comparator implementations.

use adaptive_renaming::renaming_network::RenamingNetwork;
use adaptive_renaming::traits::Renaming;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use shmem::adversary::ExecConfig;
use shmem::executor::Executor;
use shmem::process::ProcessId;
use sortnet::batcher::odd_even_network;
use std::sync::Arc;
use std::time::Duration;
use tas::hardware::HardwareTas;
use tas::two_process::TwoProcessTas;

fn ids(count: usize, namespace: usize) -> Vec<ProcessId> {
    (0..count)
        .map(|i| ProcessId::new(i * namespace / count))
        .collect()
}

fn bench_renaming_network(c: &mut Criterion) {
    let mut group = c.benchmark_group("renaming_network");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for m in [64usize, 256] {
        let k = m / 4;
        group.bench_with_input(
            BenchmarkId::new("two_process_tas", m),
            &m,
            |b, &m| {
                b.iter(|| {
                    let network: Arc<RenamingNetwork<_, TwoProcessTas>> =
                        Arc::new(RenamingNetwork::new(odd_even_network(m)));
                    let outcome = Executor::new(ExecConfig::new(3)).run_with_ids(&ids(k, m), {
                        let network = Arc::clone(&network);
                        move |ctx| network.acquire(ctx).expect("ids fit")
                    });
                    assert_eq!(outcome.completed().count(), k);
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("hardware_tas", m), &m, |b, &m| {
            b.iter(|| {
                let network: Arc<RenamingNetwork<_, HardwareTas>> =
                    Arc::new(RenamingNetwork::new(odd_even_network(m)));
                let outcome = Executor::new(ExecConfig::new(3)).run_with_ids(&ids(k, m), {
                    let network = Arc::clone(&network);
                    move |ctx| network.acquire(ctx).expect("ids fit")
                });
                assert_eq!(outcome.completed().count(), k);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_renaming_network);
criterion_main!(benches);
