//! Criterion bench for Experiment E3: renaming networks over fixed sorting
//! networks, for both comparator implementations — plus the engine shootout:
//! the compiled wire-map + comparator-slab engine ([`RenamingNetwork`])
//! against the legacy `RwLock<HashMap>` engine ([`LockedRenamingNetwork`])
//! on the same `odd_even_network(64)` workload with 16 concurrent processes.
//!
//! The engine benches pre-build a batch of fresh one-shot networks and time
//! only the concurrent traversals, so the numbers isolate the per-comparator
//! lookup cost the compiled engine removes. `exp_renaming_network` records
//! the same comparison into `BENCH_renaming_network.json`.

use adaptive_renaming::renaming_network::{LockedRenamingNetwork, RenamingNetwork};
use adaptive_renaming::traits::Renaming;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use shmem::adversary::ExecConfig;
use shmem::executor::Executor;
use shmem::process::ProcessId;
use sortnet::batcher::odd_even_network;
use std::sync::Arc;
use std::time::Duration;
use tas::hardware::HardwareTas;
use tas::two_process::TwoProcessTas;

fn ids(count: usize, namespace: usize) -> Vec<ProcessId> {
    (0..count)
        .map(|i| ProcessId::new(i * namespace / count))
        .collect()
}

/// Runs `k` concurrent processes through the batch of fresh networks,
/// returning the number of completions (sanity-checked by the caller). The
/// batch amortizes the executor's thread spawn/join — identical for both
/// engines — over many traversals.
fn run_batch<N: Renaming + Send + Sync>(networks: &Arc<Vec<N>>, k: usize, m: usize) -> usize {
    let outcome = Executor::new(ExecConfig::new(3)).run_with_ids(&ids(k, m), {
        let networks = Arc::clone(networks);
        move |ctx| {
            networks
                .iter()
                .map(|network| network.acquire(ctx).expect("ids fit"))
                .sum::<usize>()
        }
    });
    outcome.completed().count()
}

fn bench_renaming_network(c: &mut Criterion) {
    let mut group = c.benchmark_group("renaming_network");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for m in [64usize, 256] {
        let k = m / 4;
        group.bench_with_input(BenchmarkId::new("two_process_tas", m), &m, |b, &m| {
            b.iter(|| {
                let network: Arc<RenamingNetwork<_, TwoProcessTas>> =
                    Arc::new(RenamingNetwork::new(odd_even_network(m)));
                let outcome = Executor::new(ExecConfig::new(3)).run_with_ids(&ids(k, m), {
                    let network = Arc::clone(&network);
                    move |ctx| network.acquire(ctx).expect("ids fit")
                });
                assert_eq!(outcome.completed().count(), k);
            });
        });
        group.bench_with_input(BenchmarkId::new("hardware_tas", m), &m, |b, &m| {
            b.iter(|| {
                let network: Arc<RenamingNetwork<_, HardwareTas>> =
                    Arc::new(RenamingNetwork::new(odd_even_network(m)));
                let outcome = Executor::new(ExecConfig::new(3)).run_with_ids(&ids(k, m), {
                    let network = Arc::clone(&network);
                    move |ctx| network.acquire(ctx).expect("ids fit")
                });
                assert_eq!(outcome.completed().count(), k);
            });
        });
    }
    group.finish();
}

/// Compiled slab engine vs legacy RwLock+HashMap engine: `odd_even_network(64)`,
/// 16 concurrent processes, a batch of fresh one-shot networks per iteration.
fn bench_engine_comparison(c: &mut Criterion) {
    const M: usize = 64;
    const K: usize = 16;
    const ROUNDS: usize = 16;

    let mut group = c.benchmark_group("renaming_engine");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));

    group.bench_with_input(
        BenchmarkId::new("compiled_slab/hardware_tas", M),
        &M,
        |b, &m| {
            b.iter(|| {
                let networks: Arc<Vec<RenamingNetwork<_, HardwareTas>>> = Arc::new(
                    (0..ROUNDS)
                        .map(|_| RenamingNetwork::new(odd_even_network(m)))
                        .collect(),
                );
                assert_eq!(run_batch(&networks, K, m), K);
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::new("locked_hashmap/hardware_tas", M),
        &M,
        |b, &m| {
            b.iter(|| {
                let networks: Arc<Vec<LockedRenamingNetwork<_, HardwareTas>>> = Arc::new(
                    (0..ROUNDS)
                        .map(|_| LockedRenamingNetwork::new(odd_even_network(m)))
                        .collect(),
                );
                assert_eq!(run_batch(&networks, K, m), K);
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::new("compiled_slab/two_process_tas", M),
        &M,
        |b, &m| {
            b.iter(|| {
                let networks: Arc<Vec<RenamingNetwork<_, TwoProcessTas>>> = Arc::new(
                    (0..ROUNDS)
                        .map(|_| RenamingNetwork::new(odd_even_network(m)))
                        .collect(),
                );
                assert_eq!(run_batch(&networks, K, m), K);
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::new("locked_hashmap/two_process_tas", M),
        &M,
        |b, &m| {
            b.iter(|| {
                let networks: Arc<Vec<LockedRenamingNetwork<_, TwoProcessTas>>> = Arc::new(
                    (0..ROUNDS)
                        .map(|_| LockedRenamingNetwork::new(odd_even_network(m)))
                        .collect(),
                );
                assert_eq!(run_batch(&networks, K, m), K);
            });
        },
    );
    group.finish();
}

criterion_group!(benches, bench_renaming_network, bench_engine_comparison);
criterion_main!(benches);
