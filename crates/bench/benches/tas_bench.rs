//! Criterion bench for Experiment E12: test-and-set objects under contention.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use shmem::adversary::ExecConfig;
use shmem::executor::Executor;
use std::sync::Arc;
use std::time::Duration;
use tas::hardware::HardwareTas;
use tas::ratrace::RatRaceTas;
use tas::tournament::TournamentTas;
use tas::TestAndSet;

fn run_tas<T: TestAndSet + 'static>(object: Arc<T>, k: usize) {
    let outcome = Executor::new(ExecConfig::new(9)).run(k, {
        let object = Arc::clone(&object);
        move |ctx| object.test_and_set(ctx)
    });
    assert_eq!(
        outcome.results().into_iter().filter(|w| *w).count(),
        1,
        "exactly one winner"
    );
}

fn bench_tas(c: &mut Criterion) {
    let mut group = c.benchmark_group("test_and_set_contention");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for k in [2usize, 16, 64] {
        group.bench_with_input(BenchmarkId::new("ratrace", k), &k, |b, &k| {
            b.iter(|| run_tas(Arc::new(RatRaceTas::new()), k));
        });
        group.bench_with_input(BenchmarkId::new("tournament", k), &k, |b, &k| {
            b.iter(|| run_tas(Arc::new(TournamentTas::new(k)), k));
        });
        group.bench_with_input(BenchmarkId::new("hardware", k), &k, |b, &k| {
            b.iter(|| run_tas(Arc::new(HardwareTas::new()), k));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tas);
criterion_main!(benches);
