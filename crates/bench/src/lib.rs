//! Shared utilities for the experiment binaries and criterion benches.
//!
//! Every quantitative claim of the paper has a corresponding experiment (see
//! `DESIGN.md` §3 and `EXPERIMENTS.md`); this crate holds the measurement
//! helpers they share: aggregation of step statistics across repeated
//! executions and plain-text table rendering.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use shmem::steps::StepStats;

/// Aggregate statistics of a set of per-process measurements.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Aggregate {
    /// Number of samples aggregated.
    pub samples: usize,
    /// Mean of the samples.
    pub mean: f64,
    /// Maximum sample.
    pub max: u64,
}

impl Aggregate {
    /// Aggregates an iterator of samples.
    pub fn of<I: IntoIterator<Item = u64>>(samples: I) -> Self {
        let mut count = 0usize;
        let mut sum = 0u64;
        let mut max = 0u64;
        for sample in samples {
            count += 1;
            sum += sample;
            max = max.max(sample);
        }
        Aggregate {
            samples: count,
            mean: if count == 0 {
                0.0
            } else {
                sum as f64 / count as f64
            },
            max,
        }
    }

    /// Aggregates the register-step totals of a set of per-process stats.
    pub fn of_register_steps(stats: &[StepStats]) -> Self {
        Self::of(stats.iter().map(StepStats::total))
    }

    /// Aggregates the test-and-set invocation counts of per-process stats.
    pub fn of_tas_invocations(stats: &[StepStats]) -> Self {
        Self::of(stats.iter().map(|s| s.tas_invocations))
    }
}

/// A plain-text table printed by the experiment binaries.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must have as many cells as there are headers).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match the header width"
        );
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (index, cell) in row.iter().enumerate() {
                widths[index] = widths[index].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n\n", self.title));
        let header_line: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{h:>width$}", width = widths[i]))
            .collect();
        out.push_str(&header_line.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(header_line.join("  ").len()));
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>width$}", width = widths[i]))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        out
    }

    /// Prints the table to standard output.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Formats a float with one decimal place (shared by every experiment table).
pub fn fmt1(value: f64) -> String {
    format!("{value:.1}")
}

/// log₂ helper used for the reference columns of the step-complexity tables.
pub fn log2(value: usize) -> f64 {
    (value.max(1) as f64).log2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_computes_mean_and_max() {
        let agg = Aggregate::of([1u64, 2, 3, 10]);
        assert_eq!(agg.samples, 4);
        assert!((agg.mean - 4.0).abs() < 1e-9);
        assert_eq!(agg.max, 10);
        assert_eq!(Aggregate::of([]).samples, 0);
    }

    #[test]
    fn aggregate_reads_step_stats() {
        let stats = vec![
            StepStats {
                reads: 4,
                tas_invocations: 2,
                ..Default::default()
            },
            StepStats {
                writes: 8,
                tas_invocations: 6,
                ..Default::default()
            },
        ];
        assert_eq!(Aggregate::of_register_steps(&stats).max, 8);
        assert_eq!(Aggregate::of_tas_invocations(&stats).max, 6);
    }

    #[test]
    fn table_renders_aligned_columns() {
        let mut table = Table::new("demo", &["k", "steps"]);
        table.row(vec!["2".into(), "10".into()]);
        table.row(vec!["1024".into(), "17.5".into()]);
        let rendered = table.render();
        assert!(rendered.contains("## demo"));
        assert!(rendered.contains("1024"));
        assert!(rendered.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_rows_are_rejected() {
        let mut table = Table::new("demo", &["a", "b"]);
        table.row(vec!["only one".into()]);
    }

    #[test]
    fn helpers_format_numbers() {
        assert_eq!(fmt1(1.25), "1.2");
        assert!((log2(8) - 3.0).abs() < 1e-9);
        assert_eq!(log2(0), 0.0);
    }
}
