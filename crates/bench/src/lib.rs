//! Shared utilities for the experiment binaries and criterion benches.
//!
//! Every quantitative claim of the paper has a corresponding experiment (see
//! `DESIGN.md` §3 and `EXPERIMENTS.md`); this crate holds the measurement
//! helpers they share: aggregation of step statistics across repeated
//! executions and plain-text table rendering.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use shmem::steps::StepStats;

/// Aggregate statistics of a set of per-process measurements.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Aggregate {
    /// Number of samples aggregated.
    pub samples: usize,
    /// Mean of the samples.
    pub mean: f64,
    /// Maximum sample.
    pub max: u64,
}

impl Aggregate {
    /// Aggregates an iterator of samples.
    pub fn of<I: IntoIterator<Item = u64>>(samples: I) -> Self {
        let mut count = 0usize;
        let mut sum = 0u64;
        let mut max = 0u64;
        for sample in samples {
            count += 1;
            sum += sample;
            max = max.max(sample);
        }
        Aggregate {
            samples: count,
            mean: if count == 0 {
                0.0
            } else {
                sum as f64 / count as f64
            },
            max,
        }
    }

    /// Aggregates the register-step totals of a set of per-process stats.
    pub fn of_register_steps(stats: &[StepStats]) -> Self {
        Self::of(stats.iter().map(StepStats::total))
    }

    /// Aggregates the test-and-set invocation counts of per-process stats.
    pub fn of_tas_invocations(stats: &[StepStats]) -> Self {
        Self::of(stats.iter().map(|s| s.tas_invocations))
    }
}

/// A plain-text table printed by the experiment binaries.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must have as many cells as there are headers).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match the header width"
        );
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (index, cell) in row.iter().enumerate() {
                widths[index] = widths[index].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n\n", self.title));
        let header_line: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{h:>width$}", width = widths[i]))
            .collect();
        out.push_str(&header_line.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(header_line.join("  ").len()));
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>width$}", width = widths[i]))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        out
    }

    /// Prints the table to standard output.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// One row of a committed `BENCH_*.json` baseline, scanned without a JSON
/// parser: a flat list of key → raw-value pairs. The experiment writers emit
/// each row as a single `{...}` line of scalar fields, which is all this
/// reader supports — nested objects or arrays inside a row are out of scope.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BaselineRow {
    entries: Vec<(String, String)>,
}

impl BaselineRow {
    /// The raw value of a key (quotes stripped for strings).
    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The value of a key parsed as a number.
    pub fn number(&self, key: &str) -> Option<f64> {
        self.get(key)?.parse().ok()
    }

    /// Whether this row matches every given `(key, value)` pair.
    pub fn matches(&self, criteria: &[(&str, &str)]) -> bool {
        criteria
            .iter()
            .all(|(key, value)| self.get(key) == Some(*value))
    }
}

/// Parses one single-line `{...}` object into a [`BaselineRow`].
fn parse_row_line(line: &str) -> Option<BaselineRow> {
    let line = line.trim().trim_end_matches(',');
    let body = line.strip_prefix('{')?.strip_suffix('}')?;
    let mut entries = Vec::new();
    let mut rest = body;
    while let Some(start) = rest.find('"') {
        let after_quote = &rest[start + 1..];
        let key_end = after_quote.find('"')?;
        let key = &after_quote[..key_end];
        let after_key = after_quote[key_end + 1..].trim_start();
        let value_part = after_key.strip_prefix(':')?.trim_start();
        let (value, remainder) = if let Some(quoted) = value_part.strip_prefix('"') {
            let value_end = quoted.find('"')?;
            (quoted[..value_end].to_string(), &quoted[value_end + 1..])
        } else {
            let value_end = value_part.find(',').unwrap_or(value_part.len());
            (
                value_part[..value_end].trim().to_string(),
                &value_part[value_end..],
            )
        };
        entries.push((key.to_string(), value));
        rest = remainder;
    }
    (!entries.is_empty()).then_some(BaselineRow { entries })
}

/// Extracts the per-configuration rows of a committed `BENCH_*.json`
/// baseline: every line of the file that is a single-line `{...}` object.
/// Top-level metadata lines (`"experiment": ...`) are skipped because they
/// are not objects.
pub fn parse_baseline_rows(json: &str) -> Vec<BaselineRow> {
    json.lines().filter_map(parse_row_line).collect()
}

/// The perf-gate tolerance: a configuration regresses when its *best*
/// fresh replay exceeds the committed baseline by more than this factor.
pub const GATE_TOLERANCE: f64 = 1.2;

/// The perf-gate verdict for one configuration: a regression is a fresh
/// *minimum* (best replayed execution) above
/// `max(committed_mean, committed_max) × GATE_TOLERANCE`.
///
/// The fresh minimum — not the mean — is what gets compared: on a loaded
/// or single-CPU host, scheduler interference inflates the mean and max of
/// a replay by well over 20% from run to run, but a *genuine* regression
/// (an extra atomic on the hot path, a reintroduced spin stall) shifts the
/// whole distribution, best case included. The committed max absorbs
/// configurations whose committed run was already noisy, and the tolerance
/// absorbs ordinary jitter on top.
pub fn gate_regresses(fresh_min: f64, committed_mean: f64, committed_max: f64) -> bool {
    fresh_min > committed_mean.max(committed_max) * GATE_TOLERANCE
}

/// Accumulates perf-gate comparisons and renders a pass/fail report.
#[derive(Clone, Debug, Default)]
pub struct GateReport {
    checked: usize,
    failures: Vec<String>,
}

impl GateReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one comparison of a fresh *minimum* (best replayed
    /// execution) against a committed baseline row's `mean` and `max`
    /// values under the given label.
    pub fn check(&mut self, label: &str, fresh_min: f64, committed_mean: f64, committed_max: f64) {
        self.checked += 1;
        if gate_regresses(fresh_min, committed_mean, committed_max) {
            self.failures.push(format!(
                "{label}: best replay {fresh_min:.1} exceeds the gate \
                 max({committed_mean:.1}, {committed_max:.1}) × {GATE_TOLERANCE}"
            ));
        }
    }

    /// Records a configuration that could not be compared (missing from the
    /// committed baseline) — a gate failure, since silently skipping it
    /// would let regressions hide behind renamed rows.
    pub fn missing(&mut self, label: &str) {
        self.failures
            .push(format!("{label}: no committed baseline row"));
    }

    /// Number of comparisons performed.
    pub fn checked(&self) -> usize {
        self.checked
    }

    /// Whether every comparison passed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// The failure lines (empty when [`GateReport::passed`]).
    pub fn failures(&self) -> &[String] {
        &self.failures
    }
}

/// Formats a float with one decimal place (shared by every experiment table).
pub fn fmt1(value: f64) -> String {
    format!("{value:.1}")
}

/// log₂ helper used for the reference columns of the step-complexity tables.
pub fn log2(value: usize) -> f64 {
    (value.max(1) as f64).log2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_computes_mean_and_max() {
        let agg = Aggregate::of([1u64, 2, 3, 10]);
        assert_eq!(agg.samples, 4);
        assert!((agg.mean - 4.0).abs() < 1e-9);
        assert_eq!(agg.max, 10);
        assert_eq!(Aggregate::of([]).samples, 0);
    }

    #[test]
    fn aggregate_reads_step_stats() {
        let stats = vec![
            StepStats {
                reads: 4,
                tas_invocations: 2,
                ..Default::default()
            },
            StepStats {
                writes: 8,
                tas_invocations: 6,
                ..Default::default()
            },
        ];
        assert_eq!(Aggregate::of_register_steps(&stats).max, 8);
        assert_eq!(Aggregate::of_tas_invocations(&stats).max, 6);
    }

    #[test]
    fn table_renders_aligned_columns() {
        let mut table = Table::new("demo", &["k", "steps"]);
        table.row(vec!["2".into(), "10".into()]);
        table.row(vec!["1024".into(), "17.5".into()]);
        let rendered = table.render();
        assert!(rendered.contains("## demo"));
        assert!(rendered.contains("1024"));
        assert!(rendered.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_rows_are_rejected() {
        let mut table = Table::new("demo", &["a", "b"]);
        table.row(vec!["only one".into()]);
    }

    #[test]
    fn helpers_format_numbers() {
        assert_eq!(fmt1(1.25), "1.2");
        assert!((log2(8) - 3.0).abs() < 1e-9);
        assert_eq!(log2(0), 0.0);
    }

    #[test]
    fn baseline_rows_parse_from_the_writer_format() {
        let json = "{\n  \"experiment\": \"counters\",\n  \"ops_per_worker\": 500,\n  \
                    \"rows\": [\n    {\"backend\": \"network\", \"threads\": 4, \
                    \"arrivals\": \"bursty\", \"mean_ns_per_op\": 161.2, \
                    \"max_ns_per_op\": 199.0},\n    {\"backend\": \"fetch_add\", \
                    \"threads\": 4, \"arrivals\": \"steady\", \"mean_ns_per_op\": 42.3, \
                    \"max_ns_per_op\": 50.1}\n  ]\n}\n";
        let rows = parse_baseline_rows(json);
        assert_eq!(rows.len(), 2);
        assert!(rows[0].matches(&[("backend", "network"), ("threads", "4")]));
        assert_eq!(rows[0].get("arrivals"), Some("bursty"));
        assert_eq!(rows[0].number("mean_ns_per_op"), Some(161.2));
        assert!(!rows[1].matches(&[("backend", "network")]));
        assert_eq!(rows[1].number("max_ns_per_op"), Some(50.1));
        assert_eq!(rows[1].number("backend"), None, "strings are not numbers");
        assert!(parse_baseline_rows("not json at all").is_empty());
    }

    #[test]
    fn the_gate_threshold_scales_the_worse_of_mean_and_max() {
        // A stable committed run: the threshold is max × tolerance.
        assert!(!gate_regresses(125.0, 100.0, 105.0));
        assert!(gate_regresses(127.0, 100.0, 105.0));
        // A noisy committed run: the committed max dominates the mean.
        assert!(!gate_regresses(179.0, 100.0, 150.0));
        assert!(gate_regresses(181.0, 100.0, 150.0));
    }

    #[test]
    fn gate_reports_collect_failures_and_missing_rows() {
        let mut report = GateReport::new();
        report.check("ok-row", 100.0, 100.0, 110.0);
        assert!(report.passed());
        report.check("slow-row", 200.0, 100.0, 110.0);
        report.missing("gone-row");
        assert!(!report.passed());
        assert_eq!(report.checked(), 2);
        assert_eq!(report.failures().len(), 2);
        assert!(report.failures()[0].contains("slow-row"));
        assert!(report.failures()[1].contains("no committed baseline"));
    }
}
