//! Experiment E13: sorting-network depth trade-offs (§1 Discussion).
//!
//! The paper's optimal `O(log k)` bound assumes an AKS network (depth
//! `Θ(log n)`, impractical constants); the constructible alternative costs a
//! logarithmic factor more. This experiment tabulates the depth of each
//! family in this workspace against the idealized AKS curve, plus the
//! adaptive construction's total depth and its per-wire traversal bound.
//!
//! Run with `cargo run --release -p renaming-bench --bin exp_depth`.

use renaming_bench::{fmt1, Table};
use sortnet::adaptive::AdaptiveNetwork;
use sortnet::family::{aks_depth_estimate, NetworkFamily, SortingFamily};

fn main() {
    let mut table = Table::new(
        "E13 — sorting-network depth by family and width",
        &[
            "width",
            "odd-even merge",
            "bitonic",
            "transposition",
            "AKS (idealized, c=1)",
        ],
    );
    for exponent in [3u32, 5, 7, 9, 11] {
        let width = 1usize << exponent;
        table.row(vec![
            width.to_string(),
            NetworkFamily::OddEven.depth(width).to_string(),
            NetworkFamily::Bitonic.depth(width).to_string(),
            NetworkFamily::Transposition.depth(width).to_string(),
            fmt1(aks_depth_estimate(width)),
        ]);
    }
    table.print();

    let mut adaptive = Table::new(
        "E13 — adaptive construction (odd-even base): total depth vs per-wire traversal bound",
        &[
            "level",
            "width",
            "total depth",
            "bound for wire 1",
            "bound for wire 100",
            "bound for wire 10000",
        ],
    );
    for level in 2usize..=4 {
        let network = AdaptiveNetwork::new(NetworkFamily::OddEven, level);
        adaptive.row(vec![
            level.to_string(),
            network.width().to_string(),
            network.total_depth().to_string(),
            network.traversal_depth_bound(1).to_string(),
            network
                .traversal_depth_bound(100.min(network.width() - 1))
                .to_string(),
            network
                .traversal_depth_bound(10_000.min(network.width() - 1))
                .to_string(),
        ]);
    }
    adaptive.print();

    println!(
        "Values entering low-numbered wires pay only the small inner-level depths regardless of\n\
         how wide the overall network is — the property that makes the renaming algorithm adaptive."
    );
}
