//! Experiments E5 + E6: adaptive strong renaming (Theorem 3) and the TempName
//! first stage.
//!
//! For each contention level `k`, `k` processes with scattered identities
//! acquire names from one `AdaptiveRenaming` object under simultaneous
//! arrival. Reported: per-process register steps and comparators played
//! (against `log k` and `log² k` references), the largest temporary name and
//! splitter depth produced by stage one, and the per-process probes of the
//! linear-probing baseline on the same workload (which grow linearly in `k`).
//!
//! Run with `cargo run --release -p renaming-bench --bin exp_adaptive_renaming`.

use adaptive_renaming::adaptive::AdaptiveRenaming;
use adaptive_renaming::linear_probe::LinearProbeRenaming;
use adaptive_renaming::traits::assert_tight_namespace;
use renaming_bench::{fmt1, log2, Aggregate, Table};
use shmem::adversary::ExecConfig;
use shmem::executor::Executor;
use shmem::process::ProcessId;
use std::sync::Arc;
use tas::ratrace::RatRaceTas;

fn main() {
    let seeds: Vec<u64> = (0..3).collect();
    let mut adaptive_table = Table::new(
        "E5 — adaptive strong renaming: per-process cost vs contention k (mean over seeds)",
        &[
            "k",
            "steps/proc (mean)",
            "steps/proc (max)",
            "comparators/proc (mean)",
            "log²k ref",
            "tight namespace",
            "linear-probe TAS/proc (max)",
        ],
    );
    let mut temp_table = Table::new(
        "E6 — TempName stage: temporary namespace vs contention k (mean over seeds)",
        &[
            "k",
            "max temp name",
            "k² reference",
            "max splitter depth",
            "3·log k reference",
        ],
    );

    for k in [2usize, 4, 8, 16, 32, 64] {
        let mut steps_mean = 0.0;
        let mut steps_max = 0u64;
        let mut comp_mean = 0.0;
        let mut tight = true;
        let mut max_temp = 0usize;
        let mut max_depth = 0usize;
        let mut linear_max = 0usize;

        for &seed in &seeds {
            let renaming = Arc::new(AdaptiveRenaming::default());
            let ids: Vec<ProcessId> = (0..k).map(|i| ProcessId::new(i * 1000 + 17)).collect();
            let outcome = Executor::new(ExecConfig::new(seed)).run_with_ids(&ids, {
                let renaming = Arc::clone(&renaming);
                move |ctx| renaming.acquire_with_report(ctx).expect("never fails")
            });
            let reports = outcome.results();
            tight &=
                assert_tight_namespace(&reports.iter().map(|r| r.name).collect::<Vec<_>>()).is_ok();
            let steps = Aggregate::of_register_steps(&outcome.per_process_steps());
            let comps = Aggregate::of(reports.iter().map(|r| r.comparators_played as u64));
            steps_mean += steps.mean;
            steps_max = steps_max.max(steps.max);
            comp_mean += comps.mean;
            max_temp = max_temp.max(reports.iter().map(|r| r.temp_name).max().unwrap_or(0));
            max_depth = max_depth.max(reports.iter().map(|r| r.splitter_depth).max().unwrap_or(0));

            // Baseline: linear probing over exactly k slots.
            let linear = Arc::new(LinearProbeRenaming::with_slots(
                (0..k).map(|_| RatRaceTas::new()).collect::<Vec<_>>(),
            ));
            let linear_outcome = Executor::new(ExecConfig::new(seed)).run(k, {
                let linear = Arc::clone(&linear);
                move |ctx| {
                    linear
                        .acquire_with_probes(ctx)
                        .expect("k slots for k processes")
                }
            });
            linear_max = linear_max.max(
                linear_outcome
                    .results()
                    .iter()
                    .map(|(_, probes)| *probes)
                    .max()
                    .unwrap_or(0),
            );
        }

        let runs = seeds.len() as f64;
        adaptive_table.row(vec![
            k.to_string(),
            fmt1(steps_mean / runs),
            steps_max.to_string(),
            fmt1(comp_mean / runs),
            fmt1(log2(k) * log2(k)),
            if tight {
                "yes".into()
            } else {
                "VIOLATED".into()
            },
            linear_max.to_string(),
        ]);
        temp_table.row(vec![
            k.to_string(),
            max_temp.to_string(),
            (k * k).to_string(),
            max_depth.to_string(),
            fmt1(3.0 * log2(k)),
        ]);
    }

    adaptive_table.print();
    temp_table.print();
}
