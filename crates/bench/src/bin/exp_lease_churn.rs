//! Lease-churn throughput: long-lived renaming vs the ticket baseline.
//!
//! Worker threads repeatedly lease and release a name. The contenders:
//!
//! * **`Recycler` (flat free list)** — the compiled §5 renaming network
//!   behind the lock-free recycling free list, with the flat one-level
//!   bitmap (the pre-hierarchical baseline). Names stay inside
//!   `1..=threads` forever (the *tight* long-lived guarantee).
//! * **`Recycler` (hierarchical free list)** — the same object with the
//!   two-level bitmap: pop-minimum consults a summary word and visits only
//!   data words that have ever held a free name, so hits *and* misses are
//!   `O(1)` expected under churn instead of `O(bound / 64)` flat scans.
//! * **`ShardedRecycler`** — one recycler per worker-count shard over
//!   disjoint name ranges, home shards by process id, overflow stealing.
//!   Shard-local atomics take the coherence traffic out of the hot path at
//!   the price of the documented *loose* bound
//!   (`namespace ≤ shards × per-shard contention`, names ≤ shards × span).
//! * **`BatchedRecycler` (the builder default)** — the hierarchical
//!   recycler behind the builder's default release-batching stash:
//!   single-lease churn whose releases park in striped stashes and flush to
//!   the free list in batches of 8. One free-list operation per batch
//!   instead of per release, at the price of the per-grant tight bound
//!   (names stay unique and ≤ the concurrency bound).
//! * **`RobustLeaseTable` over forked processes** (unix only) — real
//!   `fork(2)` children churning the crash-robust lease table through a
//!   `MAP_SHARED` arena, each stamping its OS pid as the lease owner. The
//!   cross-process deployment the arena subsystem exists for, priced
//!   against the in-process rows.
//! * **`CasCounter`-style ticket dispenser** — one `fetch_add` per acquire,
//!   one per release. As fast as the hardware allows, but the namespace
//!   grows without bound: after `10^9` operations names are 10 decimal
//!   digits wide, which is exactly what renaming exists to prevent.
//!
//! Reported: acquire/release cycles per second at 2/4/8/16 threads, plus
//! the recyclers' fresh/recycled split and each variant's namespace bound.
//! Every row's `max name seen` is checked against its documented bound.
//! The numbers are written to `BENCH_lease_churn.json` so the trajectory of
//! the long-lived hot path is tracked across revisions.
//!
//! A separate **untimed** telemetry pass then re-runs each variant with
//! every worker bound to its own `obs` metric stripe and writes the merged
//! snapshots — grant/acquire latency histograms, fresh/recycled splits,
//! CAS retry and stash/flush counters — to `OBS_lease_churn.json`. The
//! robust row's stripes live in the same `MAP_SHARED` arena as the lease
//! table, escrowed per forked child and merged by the parent at snapshot
//! time. Telemetry stays out of the timed sweep: workers there never bind
//! a sink, so the committed baselines and `--gate` verdicts price the
//! unbound hot path.
//!
//! Run with `cargo run --release -p renaming-bench --bin exp_lease_churn`;
//! pass `--smoke` for a seconds-long CI-sized run that skips the JSON, or
//! `--gate` to replay the **full** sizing and fail (exit 1) when any
//! variant's *best* replayed execution regresses more than 20% past the
//! committed
//! `BENCH_lease_churn.json` baseline.

use adaptive_renaming::batched::BatchedRecycler;
use adaptive_renaming::builder::RenamingBuilder;
use adaptive_renaming::free_list::FreeListKind;
use adaptive_renaming::lease::LongLivedRenaming;
use adaptive_renaming::recycler::Recycler;
use adaptive_renaming::sharded::ShardedRecycler;
use adaptive_renaming::traits::Renaming;
use renaming_bench::{fmt1, parse_baseline_rows, GateReport, Table};
use shmem::adversary::ExecConfig;
use shmem::executor::Executor;
use shmem::register::AtomicU64Register;
use std::sync::Arc;
use std::time::Instant;

/// Input wires of the one-shot network under the single recyclers.
const WIDTH: usize = 64;
/// Input wires of each shard's one-shot network under the sharded recycler.
const SHARD_SPAN: usize = 8;
/// Live leases allowed per shard (the loose per-shard admission bound).
const PER_SHARD_MAX: usize = 2;
/// Leases per call of the batched variant (amortized admission + release).
const BATCH: usize = 8;

/// Run sizing; the full sweep feeds `BENCH_lease_churn.json`, the smoke
/// sweep bounds CI time.
struct Sizing {
    ops_per_worker: usize,
    executions: usize,
    threads: &'static [usize],
    write_json: bool,
}

const FULL: Sizing = Sizing {
    ops_per_worker: 2_000,
    executions: 5,
    threads: &[2, 4, 8, 16],
    write_json: true,
};

const SMOKE: Sizing = Sizing {
    ops_per_worker: 200,
    executions: 2,
    threads: &[2, 4],
    write_json: false,
};

/// The gate replays the FULL per-execution workload (so cells are
/// comparable to the committed baseline) with three times the executions:
/// the gate compares the *best* replay per cell, and a larger best-of-N
/// keeps the scheduler's worst moods out of the verdict.
const GATE: Sizing = Sizing {
    ops_per_worker: 2_000,
    executions: 15,
    threads: &[2, 4, 8, 16],
    write_json: false,
};

/// How a variant's namespace is bounded, for the per-row `max_name` check.
#[derive(Clone, Copy)]
enum Bound {
    /// Names stay in `1..=limit` (limit = the concurrency bound).
    Tight(usize),
    /// Names stay in `1..=limit` (limit = shards × span); the *set* in use
    /// is further bounded by shards × per-shard contention.
    Loose(usize),
    /// No bound — the baseline's failure mode, not a guarantee.
    Unbounded,
}

impl Bound {
    fn kind(&self) -> &'static str {
        match self {
            Bound::Tight(_) => "tight",
            Bound::Loose(_) => "loose",
            Bound::Unbounded => "unbounded",
        }
    }

    fn limit(&self) -> usize {
        match self {
            Bound::Tight(limit) | Bound::Loose(limit) => *limit,
            Bound::Unbounded => 0,
        }
    }

    fn admits(&self, name: usize) -> bool {
        match self {
            Bound::Tight(limit) | Bound::Loose(limit) => name <= *limit,
            Bound::Unbounded => true,
        }
    }
}

/// One measured configuration.
struct Sample {
    variant: &'static str,
    threads: usize,
    mean_ns_per_op: f64,
    min_ns_per_op: f64,
    max_ns_per_op: f64,
    max_name: usize,
    fresh_names: usize,
    recycled_names: usize,
    bound: Bound,
    /// Capacity of the variant's inner one-shot object(s): the network
    /// width of a single recycler, the per-shard width of the sharded one.
    inner_capacity: usize,
}

/// The static shape of one measured variant.
struct VariantSpec {
    variant: &'static str,
    threads: usize,
    bound: Bound,
    /// Lease/release ops per `cycle` invocation: 1 for the single-lease
    /// variants, the batch size for the batched ones.
    ops_per_call: usize,
    inner_capacity: usize,
}

/// Times `executions` runs of `spec.threads` workers × `ops_per_worker`
/// lease/release ops issued through `cycle`, which performs
/// `spec.ops_per_call` ops per invocation and returns the largest name it
/// observed.
fn measure<F>(
    sizing: &Sizing,
    spec: VariantSpec,
    mut stats_after: impl FnMut() -> (usize, usize),
    cycle: F,
) -> Sample
where
    F: Fn(&mut shmem::process::ProcessCtx, usize) -> usize + Send + Sync,
{
    let VariantSpec {
        variant,
        threads,
        bound,
        ops_per_call,
        inner_capacity,
    } = spec;
    let calls_per_worker = sizing.ops_per_worker / ops_per_call;
    let total_ops = (threads * calls_per_worker * ops_per_call) as f64;
    let mut total_ns = 0.0;
    let mut min_ns = f64::INFINITY;
    let mut max_ns: f64 = 0.0;
    let mut max_name = 0usize;
    let cycle = &cycle;
    for execution in 0..sizing.executions {
        let start = Instant::now();
        let outcome = Executor::new(ExecConfig::new(execution as u64)).run(threads, move |ctx| {
            let mut worst = 0usize;
            for _ in 0..calls_per_worker {
                worst = worst.max(cycle(ctx, threads));
            }
            worst
        });
        let elapsed = start.elapsed().as_nanos() as f64 / total_ops;
        total_ns += elapsed;
        min_ns = min_ns.min(elapsed);
        max_ns = max_ns.max(elapsed);
        max_name = max_name.max(outcome.results().into_iter().max().unwrap_or(0));
    }
    assert!(
        bound.admits(max_name),
        "{variant} at {threads} threads leaked name {max_name} past its \
         {} bound of {}",
        bound.kind(),
        bound.limit(),
    );
    let (fresh_names, recycled_names) = stats_after();
    Sample {
        variant,
        threads,
        mean_ns_per_op: total_ns / sizing.executions as f64,
        min_ns_per_op: min_ns,
        max_ns_per_op: max_ns,
        max_name,
        fresh_names,
        recycled_names,
        bound,
        inner_capacity,
    }
}

fn network(capacity: usize) -> Arc<dyn Renaming> {
    RenamingBuilder::new()
        .network()
        .capacity(capacity)
        .hardware_comparators()
        .build()
        .expect("valid configuration")
}

/// Measures the crash-robust lease table shared across **forked OS
/// processes** over a `MAP_SHARED` arena: the cross-process analogue of the
/// thread rows. Each child acquires and releases through the
/// generation-stamped slot protocol with its pid as the owner stamp, so the
/// row prices the full robust protocol (scan + CAS acquire, CAS release,
/// releases-seqlock bump) on real shared memory. Timing runs gate-to-done —
/// children spin on a start word, bump a done word after their last release
/// — so fork and waitpid overhead stay out of the measurement.
#[cfg(all(unix, not(miri)))]
fn measure_robust_procs(sizing: &Sizing, processes: usize) -> Sample {
    use adaptive_renaming::robust::RobustLeaseTable;
    use shmem::arena::Arena;
    use shmem::process::{ProcessCtx, ProcessId};
    use shmem::procs::{fork_child, wait_for_clean_exit};
    use std::sync::atomic::{AtomicU64, Ordering};

    let calls_per_worker = sizing.ops_per_worker;
    let total_ops = (processes * calls_per_worker) as f64;
    // Table slots + releases register + barrier words + per-child report
    // words (each allocation is rounded to its own 64-byte line).
    let arena = Arena::shared(RobustLeaseTable::footprint(processes) + (processes + 3) * 64)
        .expect("anonymous MAP_SHARED arena");
    let table = Arc::new(RobustLeaseTable::with_capacity_in(&arena, processes));
    let ready = arena.alloc::<AtomicU64>().pin(&arena);
    let start_gate = arena.alloc::<AtomicU64>().pin(&arena);
    let done = arena.alloc::<AtomicU64>().pin(&arena);
    let reports = arena.alloc_slice::<AtomicU64>(processes).pin(&arena);

    let mut total_ns = 0.0;
    let mut min_ns = f64::INFINITY;
    let mut max_ns: f64 = 0.0;
    for execution in 0..sizing.executions {
        ready.store(0, Ordering::SeqCst);
        start_gate.store(0, Ordering::SeqCst);
        done.store(0, Ordering::SeqCst);
        let pids: Vec<i32> = (0..processes)
            .map(|worker| {
                // Pre-fork context (fork discipline: children only touch
                // atomics on the shared mapping).
                let ctx = ProcessCtx::new(
                    ProcessId::new(worker),
                    (execution * processes + worker) as u64,
                );
                let table = Arc::clone(&table);
                let (ready, start_gate, done, reports) = (
                    ready.clone(),
                    start_gate.clone(),
                    done.clone(),
                    reports.clone(),
                );
                fork_child(move || {
                    let mut ctx = ctx;
                    // Register before signalling ready: the registry claim
                    // is atomics-only (fork-safe) and must stay outside the
                    // timed window. Dead children of earlier executions are
                    // recycled here, so the registry never fills up.
                    let registration = table
                        .register_current_process()
                        .expect("the registry admits every live child");
                    ready.fetch_add(1, Ordering::SeqCst);
                    while start_gate.load(Ordering::SeqCst) == 0 {
                        std::hint::spin_loop();
                    }
                    let mut worst = 0usize;
                    for _ in 0..calls_per_worker {
                        let name = table
                            .acquire(&mut ctx, registration.tag())
                            .expect("table capacity equals the process count");
                        worst = worst.max(name);
                        table.release(&mut ctx, name);
                    }
                    reports[worker].fetch_max(worst as u64, Ordering::SeqCst);
                    done.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        // Wait until every child is spinning on the gate, so fork and child
        // startup latency never lands inside the timed window.
        while ready.load(Ordering::SeqCst) < processes as u64 {
            std::thread::yield_now();
        }
        let timer = Instant::now();
        start_gate.store(1, Ordering::SeqCst);
        // Yield, don't spin: the parent must not steal a core from the
        // children it is timing.
        while done.load(Ordering::SeqCst) < processes as u64 {
            std::thread::yield_now();
        }
        let elapsed = timer.elapsed().as_nanos() as f64 / total_ops;
        total_ns += elapsed;
        min_ns = min_ns.min(elapsed);
        max_ns = max_ns.max(elapsed);
        for pid in pids {
            wait_for_clean_exit(pid);
        }
        assert_eq!(
            table.live_leases(),
            0,
            "every lease must be released once the children are done"
        );
    }
    let max_name = reports
        .iter()
        .map(|report| report.load(Ordering::SeqCst) as usize)
        .max()
        .unwrap_or(0);
    let bound = Bound::Tight(processes);
    assert!(
        bound.admits(max_name),
        "robust_mmap_procs at {processes} processes leaked name {max_name} \
         past its tight bound of {processes}"
    );
    Sample {
        variant: "robust_mmap_procs",
        threads: processes,
        mean_ns_per_op: total_ns / sizing.executions as f64,
        min_ns_per_op: min_ns,
        max_ns_per_op: max_ns,
        max_name,
        fresh_names: 0,
        // Every completed HELD→FREE transition is a recycle of its slot.
        recycled_names: table.transitions(),
        bound,
        inner_capacity: processes,
    }
}

/// Measures a single recycler with the given free-list layout.
fn measure_recycler(
    sizing: &Sizing,
    variant: &'static str,
    threads: usize,
    kind: FreeListKind,
) -> Sample {
    let recycler = Arc::new(Recycler::with_free_list(network(WIDTH), threads, kind));
    measure(
        sizing,
        VariantSpec {
            variant,
            threads,
            bound: Bound::Tight(threads),
            ops_per_call: 1,
            inner_capacity: WIDTH,
        },
        {
            let recycler = Arc::clone(&recycler);
            move || (recycler.fresh_names(), recycler.recycled_names())
        },
        {
            // The raw lease surface: like the ticket baseline, the timed
            // cycle carries no RAII guard (which would add two reference
            // count updates per cycle on top of the renaming protocol).
            let recycler = Arc::clone(&recycler);
            move |ctx, _| {
                let name = recycler
                    .lease_raw(ctx)
                    .expect("admission bound equals the worker count");
                recycler.release_with(ctx, name);
                name
            }
        },
    )
}

fn run_sweep(sizing: &Sizing) -> Vec<Sample> {
    let mut samples = Vec::new();
    for &threads in sizing.threads {
        // --- Recycler over the compiled renaming network, both layouts ----
        samples.push(measure_recycler(
            sizing,
            "recycler_flat",
            threads,
            FreeListKind::Flat,
        ));
        samples.push(measure_recycler(
            sizing,
            "recycler_hierarchical",
            threads,
            FreeListKind::Hierarchical,
        ));

        // --- Batched leases: admission and release amortized over BATCH ---
        // Each worker cycles a whole batch at a time through the raw batch
        // surface: one admission reservation and one release-side counter
        // bump per BATCH leases instead of per lease.
        let batched = Arc::new(Recycler::with_free_list(
            network(threads * BATCH),
            threads * BATCH,
            FreeListKind::Hierarchical,
        ));
        samples.push(measure(
            sizing,
            VariantSpec {
                variant: "recycler_hierarchical_batch8",
                threads,
                bound: Bound::Tight(threads * BATCH),
                ops_per_call: BATCH,
                inner_capacity: threads * BATCH,
            },
            {
                let batched = Arc::clone(&batched);
                move || (batched.fresh_names(), batched.recycled_names())
            },
            {
                let batched = Arc::clone(&batched);
                move |ctx, _| {
                    let mut names = Vec::with_capacity(BATCH);
                    batched
                        .lease_many_raw(ctx, BATCH, &mut names)
                        .expect("admission bound equals workers × batch");
                    let worst = names.iter().copied().max().unwrap_or(0);
                    batched.release_many_raw(&names);
                    worst
                }
            },
        ));

        // --- Builder-default stash: single leases, batched releases -------
        // The same hierarchical recycler behind the BatchedRecycler wrapper
        // the builder installs by default: plain lease/release per cycle
        // (no caller-side batching), with the release cost amortized by the
        // stripe stashes. Names stay within the concurrency bound but lose
        // the per-grant tightness, so the row is labelled loose.
        let stash_inner = Arc::new(Recycler::with_free_list(
            network(WIDTH),
            threads,
            FreeListKind::Hierarchical,
        ));
        let stash = Arc::new(BatchedRecycler::new(
            Arc::clone(&stash_inner) as Arc<dyn LongLivedRenaming>,
            BATCH,
        ));
        samples.push(measure(
            sizing,
            VariantSpec {
                variant: "builder_default_stash8",
                threads,
                bound: Bound::Loose(threads),
                ops_per_call: 1,
                inner_capacity: WIDTH,
            },
            {
                let stash_inner = Arc::clone(&stash_inner);
                move || (stash_inner.fresh_names(), stash_inner.recycled_names())
            },
            {
                let stash = Arc::clone(&stash);
                move |ctx, _| {
                    // Stashed names hold admission slots until their batch
                    // flushes, so a lease can spuriously collide with an
                    // in-flight release; retry until the name lands (the
                    // stash sweep finds it on the next pass).
                    let name = loop {
                        if let Ok(name) = stash.lease_raw(ctx) {
                            break name;
                        }
                    };
                    stash.release_with(ctx, name);
                    name
                }
            },
        ));

        // --- Sharded recycler: one home shard per worker ------------------
        let sharded = Arc::new(ShardedRecycler::new(
            (0..threads).map(|_| network(SHARD_SPAN)).collect(),
            PER_SHARD_MAX,
        ));
        samples.push(measure(
            sizing,
            VariantSpec {
                variant: "sharded_recycler",
                threads,
                bound: Bound::Loose(threads * sharded.span()),
                ops_per_call: 1,
                inner_capacity: SHARD_SPAN,
            },
            {
                let sharded = Arc::clone(&sharded);
                move || (sharded.fresh_names(), sharded.recycled_names())
            },
            {
                let sharded = Arc::clone(&sharded);
                move |ctx, _| {
                    let name = sharded
                        .lease_raw(ctx)
                        .expect("every worker fits in its home shard");
                    sharded.release_with(ctx, name);
                    name
                }
            },
        ));

        // --- Crash-robust lease table across forked OS processes ----------
        // Real fork(2) children over a MAP_SHARED arena: the only row whose
        // contenders are processes, not threads. Unix only.
        #[cfg(all(unix, not(miri)))]
        samples.push(measure_robust_procs(sizing, threads));

        // --- Ticket baseline: fetch-and-add acquire + release -------------
        let tickets = Arc::new(AtomicU64Register::new(0));
        let stubs = Arc::new(AtomicU64Register::new(0));
        samples.push(measure(
            sizing,
            VariantSpec {
                variant: "cas_ticket_baseline",
                threads,
                bound: Bound::Unbounded,
                ops_per_call: 1,
                inner_capacity: 0,
            },
            || (0, 0),
            {
                let tickets = Arc::clone(&tickets);
                let stubs = Arc::clone(&stubs);
                move |ctx, _| {
                    let name = tickets.fetch_add(ctx, 1) as usize + 1;
                    stubs.fetch_add(ctx, 1); // "return the ticket stub"
                    name
                }
            },
        ));
    }
    samples
}

fn print_table(samples: &[Sample]) {
    let mut table = Table::new(
        "Lease churn — acquire/release cycles: recyclers (flat/hierarchical/sharded) vs ticket dispenser",
        &[
            "variant",
            "threads",
            "ns/op (mean)",
            "ns/op (min)",
            "ns/op (max)",
            "max name seen",
            "bound",
            "fresh",
            "recycled",
        ],
    );
    for s in samples {
        let bound = match s.bound {
            Bound::Unbounded => "none".to_string(),
            _ => format!("{} ≤{}", s.bound.kind(), s.bound.limit()),
        };
        table.row(vec![
            s.variant.to_string(),
            s.threads.to_string(),
            fmt1(s.mean_ns_per_op),
            fmt1(s.min_ns_per_op),
            fmt1(s.max_ns_per_op),
            s.max_name.to_string(),
            bound,
            s.fresh_names.to_string(),
            s.recycled_names.to_string(),
        ]);
    }
    table.print();
}

fn write_json(sizing: &Sizing, samples: &[Sample]) -> std::io::Result<()> {
    let mut variants = String::new();
    for (index, s) in samples.iter().enumerate() {
        if index > 0 {
            variants.push_str(",\n");
        }
        variants.push_str(&format!(
            "    {{\"variant\": \"{}\", \"threads\": {}, \"mean_ns_per_op\": {:.1}, \
             \"min_ns_per_op\": {:.1}, \"max_ns_per_op\": {:.1}, \"max_name\": {}, \
             \"bound_kind\": \"{}\", \"namespace_bound\": {}, \"inner_capacity\": {}, \
             \"fresh_names\": {}, \"recycled_names\": {}}}",
            s.variant,
            s.threads,
            s.mean_ns_per_op,
            s.min_ns_per_op,
            s.max_ns_per_op,
            s.max_name,
            s.bound.kind(),
            s.bound.limit(),
            s.inner_capacity,
            s.fresh_names,
            s.recycled_names
        ));
    }
    let json = format!(
        "{{\n  \"experiment\": \"lease_churn\",\n  \"network_width\": {WIDTH},\n  \
         \"shard_span\": {SHARD_SPAN},\n  \"ops_per_worker\": {},\n  \
         \"executions\": {},\n  \"variants\": [\n{variants}\n  ]\n}}\n",
        sizing.ops_per_worker, sizing.executions,
    );
    std::fs::write("BENCH_lease_churn.json", json)
}

/// One untimed telemetry execution of an in-process variant: each worker
/// binds its own stripe of a fresh heap
/// [`MetricsSlab`](obs::MetricsSlab), churns the sizing's per-worker
/// cycles, and the stripes merge into one snapshot.
fn observe_cycles<F>(
    sizing: &Sizing,
    threads: usize,
    ops_per_call: usize,
    cycle: F,
) -> obs::Snapshot
where
    F: Fn(&mut shmem::process::ProcessCtx, usize) -> usize + Send + Sync,
{
    let calls_per_worker = sizing.ops_per_worker / ops_per_call;
    let slab = obs::MetricsSlab::heap(threads);
    let cycle = &cycle;
    Executor::new(ExecConfig::new(0))
        .run(threads, {
            let slab = Arc::clone(&slab);
            move |ctx| {
                obs::bind_metrics(slab.writer(ctx.id().as_usize()));
                for _ in 0..calls_per_worker {
                    cycle(ctx, threads);
                }
                obs::unbind();
            }
        })
        .results();
    obs::Snapshot::collect(&slab)
}

/// The cross-process telemetry row: forked children churn the crash-robust
/// lease table while recording into per-child metric stripes **escrowed in
/// the same `MAP_SHARED` arena as the table itself** — each child owns its
/// stripe's cache lines, and the parent merges the slab into one snapshot
/// after the children exit. The acquire-latency histogram and CAS-retry
/// counters of the full robust protocol on real shared memory.
#[cfg(all(unix, not(miri)))]
fn observe_robust_procs(sizing: &Sizing, processes: usize) -> obs::Snapshot {
    use adaptive_renaming::robust::RobustLeaseTable;
    use shmem::arena::Arena;
    use shmem::process::{ProcessCtx, ProcessId};
    use shmem::procs::{fork_child, wait_for_clean_exit};

    let calls_per_worker = sizing.ops_per_worker;
    let arena = Arena::shared(
        RobustLeaseTable::footprint(processes) + obs::MetricsSlab::footprint(processes) + 64,
    )
    .expect("anonymous MAP_SHARED arena");
    let table = Arc::new(RobustLeaseTable::with_capacity_in(&arena, processes));
    let slab = obs::MetricsSlab::new_in(&arena, processes);
    let pids: Vec<i32> = (0..processes)
        .map(|worker| {
            // Pre-fork context; the child binds its stripe post-fork (the
            // sink binding is plain thread-local state) and touches only
            // atomics on the shared mapping.
            let ctx = ProcessCtx::new(ProcessId::new(worker), worker as u64);
            let table = Arc::clone(&table);
            let slab = Arc::clone(&slab);
            fork_child(move || {
                let mut ctx = ctx;
                obs::bind_metrics(slab.writer(worker));
                let registration = table
                    .register_current_process()
                    .expect("the registry admits every live child");
                for _ in 0..calls_per_worker {
                    let name = table
                        .acquire(&mut ctx, registration.tag())
                        .expect("table capacity equals the process count");
                    table.release(&mut ctx, name);
                }
            })
        })
        .collect();
    for pid in pids {
        wait_for_clean_exit(pid);
    }
    obs::Snapshot::collect(&slab)
}

/// Writes `OBS_lease_churn.json`: one telemetry row per (variant, threads)
/// cell, each carrying the merged snapshot of that cell's bound run.
fn write_obs_json(sizing: &Sizing) -> std::io::Result<()> {
    let mut rows = String::new();
    let mut push_row = |variant: &str, threads: usize, snapshot: obs::Snapshot| {
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"variant\": \"{variant}\", \"threads\": {threads}, \
             \"telemetry\": {}}}",
            snapshot.to_json().trim_end(),
        ));
    };
    for &threads in sizing.threads {
        let hierarchical = Arc::new(Recycler::with_free_list(
            network(WIDTH),
            threads,
            FreeListKind::Hierarchical,
        ));
        push_row(
            "recycler_hierarchical",
            threads,
            observe_cycles(sizing, threads, 1, {
                let recycler = Arc::clone(&hierarchical);
                move |ctx, _| {
                    let name = recycler
                        .lease_raw(ctx)
                        .expect("admission bound equals the worker count");
                    recycler.release_with(ctx, name);
                    name
                }
            }),
        );

        let stash = Arc::new(BatchedRecycler::new(
            Arc::new(Recycler::with_free_list(
                network(WIDTH),
                threads,
                FreeListKind::Hierarchical,
            )) as Arc<dyn LongLivedRenaming>,
            BATCH,
        ));
        push_row(
            "builder_default_stash8",
            threads,
            observe_cycles(sizing, threads, 1, {
                let stash = Arc::clone(&stash);
                move |ctx, _| {
                    // Same spurious-collision retry as the timed row.
                    let name = loop {
                        if let Ok(name) = stash.lease_raw(ctx) {
                            break name;
                        }
                    };
                    stash.release_with(ctx, name);
                    name
                }
            }),
        );

        #[cfg(all(unix, not(miri)))]
        push_row(
            "robust_mmap_procs",
            threads,
            observe_robust_procs(sizing, threads),
        );
    }
    let json = format!(
        "{{\n  \"experiment\": \"lease_churn\",\n  \"ops_per_worker\": {},\n  \
         \"rows\": [\n{rows}\n  ]\n}}\n",
        sizing.ops_per_worker,
    );
    std::fs::write("OBS_lease_churn.json", json)
}

/// `--gate`: replay the full sizing and compare every (variant, threads)
/// cell's best (minimum ns/op) execution against the committed
/// `BENCH_lease_churn.json`, failing when even the best replay sits >20%
/// past the committed mean (or committed max for rows whose baseline was
/// already noisy). Exits the process with status 1 on failure.
fn run_gate(samples: &[Sample]) {
    let committed = match std::fs::read_to_string("BENCH_lease_churn.json") {
        Ok(json) => parse_baseline_rows(&json),
        Err(error) => {
            eprintln!("perf gate: cannot read BENCH_lease_churn.json: {error}");
            std::process::exit(1);
        }
    };
    let mut report = GateReport::new();
    for sample in samples {
        let label = format!("{} at {} threads", sample.variant, sample.threads);
        let threads = sample.threads.to_string();
        let row = committed
            .iter()
            .find(|row| row.matches(&[("variant", sample.variant), ("threads", &threads)]));
        match row
            .and_then(|row| Some((row.number("mean_ns_per_op")?, row.number("max_ns_per_op")?)))
        {
            Some((mean, max)) => report.check(&label, sample.min_ns_per_op, mean, max),
            None => report.missing(&label),
        }
    }
    if report.passed() {
        println!(
            "perf gate: {} configurations within tolerance of BENCH_lease_churn.json",
            report.checked()
        );
    } else {
        eprintln!("perf gate FAILED against BENCH_lease_churn.json:");
        for failure in report.failures() {
            eprintln!("  {failure}");
        }
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|arg| arg == "--smoke");
    let gate = args.iter().any(|arg| arg == "--gate");
    // `--no-obs` skips the telemetry pass: the overhead gate
    // (tools/obs_overhead.sh) compares telemetry-on vs obs-off builds over
    // *identical* work, so the bound recording of the telemetry pass must
    // not leak into the comparison.
    let no_obs = args.iter().any(|arg| arg == "--no-obs");
    // The gate replays the full per-execution workload (a smoke-sized run
    // against the committed full-sized baseline would compare different
    // workloads) with extra executions per cell — see GATE.
    let sizing = if gate {
        &GATE
    } else if smoke {
        &SMOKE
    } else {
        &FULL
    };
    let samples = run_sweep(sizing);
    print_table(&samples);
    for &threads in sizing.threads {
        let ns = |variant: &str| {
            samples
                .iter()
                .find(|s| s.variant == variant && s.threads == threads)
                .map(|s| s.mean_ns_per_op)
                .unwrap_or(f64::NAN)
        };
        let ticket = ns("cas_ticket_baseline");
        println!(
            "{threads:>2} threads: flat {:.0} ns/op ({:.1}x), hierarchical {:.0} ns/op \
             ({:.1}x), batch8 {:.0} ns/op ({:.1}x), stash8 {:.0} ns/op ({:.1}x), \
             sharded {:.0} ns/op ({:.1}x) vs \
             ticket {ticket:.0} ns/op; tight namespace 1..={threads}, loose ≤ {}",
            ns("recycler_flat"),
            ns("recycler_flat") / ticket,
            ns("recycler_hierarchical"),
            ns("recycler_hierarchical") / ticket,
            ns("recycler_hierarchical_batch8"),
            ns("recycler_hierarchical_batch8") / ticket,
            ns("builder_default_stash8"),
            ns("builder_default_stash8") / ticket,
            ns("sharded_recycler"),
            ns("sharded_recycler") / ticket,
            threads * SHARD_SPAN,
        );
    }
    if gate {
        run_gate(&samples);
    } else {
        if sizing.write_json {
            match write_json(sizing, &samples) {
                Ok(()) => println!("wrote BENCH_lease_churn.json"),
                Err(error) => eprintln!("failed to write BENCH_lease_churn.json: {error}"),
            }
        } else {
            println!("smoke mode: BENCH_lease_churn.json left untouched");
        }
        // The telemetry pass runs after every timed execution has finished:
        // binding a sink flips the process-wide enable flag, so the order
        // keeps the timed sweep above on the never-enabled fast path.
        if no_obs {
            println!("--no-obs: OBS_lease_churn.json left untouched");
        } else {
            match write_obs_json(sizing) {
                Ok(()) => println!("wrote OBS_lease_churn.json"),
                Err(error) => eprintln!("failed to write OBS_lease_churn.json: {error}"),
            }
        }
    }
}
