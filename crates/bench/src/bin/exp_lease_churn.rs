//! Lease-churn throughput: long-lived renaming vs the ticket baseline.
//!
//! Worker threads repeatedly lease and release a name. The contenders:
//!
//! * **`Recycler<RenamingNetwork>`** — the compiled §5 renaming network
//!   behind the lock-free recycling free list. Names stay inside
//!   `1..=threads` forever (the long-lived strong renaming guarantee).
//! * **`CasCounter`-style ticket dispenser** — one `fetch_add` per acquire,
//!   one per release. As fast as the hardware allows, but the namespace
//!   grows without bound: after `10^9` operations names are 10 decimal
//!   digits wide, which is exactly what renaming exists to prevent.
//!
//! Reported: acquire/release cycles per second at 2/4/8/16 threads, plus
//! the recycler's fresh/recycled split. The numbers are written to
//! `BENCH_lease_churn.json` so the trajectory of the long-lived hot path is
//! tracked across revisions.
//!
//! Run with `cargo run --release -p renaming-bench --bin exp_lease_churn`.

use adaptive_renaming::builder::RenamingBuilder;
use adaptive_renaming::lease::LongLivedRenaming;
use adaptive_renaming::recycler::Recycler;
use renaming_bench::{fmt1, Table};
use shmem::adversary::ExecConfig;
use shmem::executor::Executor;
use shmem::register::AtomicU64Register;
use std::sync::Arc;
use std::time::Instant;

/// Input wires of the one-shot network under the recycler.
const WIDTH: usize = 64;
/// Lease/release cycles per worker per timed execution.
const OPS_PER_WORKER: usize = 2_000;
/// Timed executions per configuration (the mean is reported).
const EXECUTIONS: usize = 5;
/// Thread counts of the sweep.
const THREADS: [usize; 4] = [2, 4, 8, 16];

/// One measured configuration.
struct Sample {
    variant: &'static str,
    threads: usize,
    mean_ns_per_op: f64,
    min_ns_per_op: f64,
    max_ns_per_op: f64,
    max_name: usize,
    fresh_names: usize,
    recycled_names: usize,
}

/// Times `EXECUTIONS` runs of `threads` workers × `OPS_PER_WORKER` cycles of
/// `cycle`, which returns the largest name it observed.
fn measure<F>(
    variant: &'static str,
    threads: usize,
    mut stats_after: impl FnMut() -> (usize, usize),
    cycle: F,
) -> Sample
where
    F: Fn(&mut shmem::process::ProcessCtx, usize) -> usize + Send + Sync,
{
    let total_ops = (threads * OPS_PER_WORKER) as f64;
    let mut total_ns = 0.0;
    let mut min_ns = f64::INFINITY;
    let mut max_ns: f64 = 0.0;
    let mut max_name = 0usize;
    let cycle = &cycle;
    for execution in 0..EXECUTIONS {
        let start = Instant::now();
        let outcome = Executor::new(ExecConfig::new(execution as u64)).run(threads, move |ctx| {
            let mut worst = 0usize;
            for _ in 0..OPS_PER_WORKER {
                worst = worst.max(cycle(ctx, threads));
            }
            worst
        });
        let elapsed = start.elapsed().as_nanos() as f64 / total_ops;
        total_ns += elapsed;
        min_ns = min_ns.min(elapsed);
        max_ns = max_ns.max(elapsed);
        max_name = max_name.max(outcome.results().into_iter().max().unwrap_or(0));
    }
    let (fresh_names, recycled_names) = stats_after();
    Sample {
        variant,
        threads,
        mean_ns_per_op: total_ns / EXECUTIONS as f64,
        min_ns_per_op: min_ns,
        max_ns_per_op: max_ns,
        max_name,
        fresh_names,
        recycled_names,
    }
}

fn run_sweep() -> Vec<Sample> {
    let mut samples = Vec::new();
    for &threads in &THREADS {
        // --- Recycler over the compiled renaming network ------------------
        let inner = RenamingBuilder::new()
            .network()
            .capacity(WIDTH)
            .hardware_comparators()
            .build()
            .expect("valid configuration");
        let recycler = Arc::new(Recycler::new(inner, threads));
        samples.push(measure(
            "recycler_renaming_network",
            threads,
            {
                let recycler = Arc::clone(&recycler);
                move || (recycler.fresh_names(), recycler.recycled_names())
            },
            {
                let recycler = Arc::clone(&recycler);
                move |ctx, _| {
                    let lease = Arc::clone(&recycler)
                        .lease(ctx)
                        .expect("admission bound equals the worker count");
                    let name = lease.name();
                    lease.release(ctx);
                    name
                }
            },
        ));

        // --- Ticket baseline: fetch-and-add acquire + release -------------
        let tickets = Arc::new(AtomicU64Register::new(0));
        let stubs = Arc::new(AtomicU64Register::new(0));
        samples.push(measure("cas_ticket_baseline", threads, || (0, 0), {
            let tickets = Arc::clone(&tickets);
            let stubs = Arc::clone(&stubs);
            move |ctx, _| {
                let name = tickets.fetch_add(ctx, 1) as usize + 1;
                stubs.fetch_add(ctx, 1); // "return the ticket stub"
                name
            }
        }));
    }
    samples
}

fn print_table(samples: &[Sample]) {
    let mut table = Table::new(
        "Lease churn — acquire/release cycles, recycler vs ticket dispenser",
        &[
            "variant",
            "threads",
            "ns/op (mean)",
            "ns/op (min)",
            "ns/op (max)",
            "max name seen",
            "fresh",
            "recycled",
        ],
    );
    for s in samples {
        table.row(vec![
            s.variant.to_string(),
            s.threads.to_string(),
            fmt1(s.mean_ns_per_op),
            fmt1(s.min_ns_per_op),
            fmt1(s.max_ns_per_op),
            s.max_name.to_string(),
            s.fresh_names.to_string(),
            s.recycled_names.to_string(),
        ]);
    }
    table.print();
}

fn write_json(samples: &[Sample]) -> std::io::Result<()> {
    let mut variants = String::new();
    for (index, s) in samples.iter().enumerate() {
        if index > 0 {
            variants.push_str(",\n");
        }
        variants.push_str(&format!(
            "    {{\"variant\": \"{}\", \"threads\": {}, \"mean_ns_per_op\": {:.1}, \
             \"min_ns_per_op\": {:.1}, \"max_ns_per_op\": {:.1}, \"max_name\": {}, \
             \"fresh_names\": {}, \"recycled_names\": {}}}",
            s.variant,
            s.threads,
            s.mean_ns_per_op,
            s.min_ns_per_op,
            s.max_ns_per_op,
            s.max_name,
            s.fresh_names,
            s.recycled_names
        ));
    }
    let json = format!(
        "{{\n  \"experiment\": \"lease_churn\",\n  \"network_width\": {WIDTH},\n  \
         \"ops_per_worker\": {OPS_PER_WORKER},\n  \"executions\": {EXECUTIONS},\n  \
         \"variants\": [\n{variants}\n  ]\n}}\n"
    );
    std::fs::write("BENCH_lease_churn.json", json)
}

fn main() {
    let samples = run_sweep();
    print_table(&samples);
    for &threads in &THREADS {
        let ns = |variant: &str| {
            samples
                .iter()
                .find(|s| s.variant == variant && s.threads == threads)
                .map(|s| s.mean_ns_per_op)
                .unwrap_or(f64::NAN)
        };
        println!(
            "{threads:>2} threads: recycler {:.0} ns/op vs ticket {:.0} ns/op \
             ({:.1}x); recycler namespace stays 1..={threads}",
            ns("recycler_renaming_network"),
            ns("cas_ticket_baseline"),
            ns("recycler_renaming_network") / ns("cas_ticket_baseline"),
        );
    }
    match write_json(&samples) {
        Ok(()) => println!("wrote BENCH_lease_churn.json"),
        Err(error) => eprintln!("failed to write BENCH_lease_churn.json: {error}"),
    }
}
