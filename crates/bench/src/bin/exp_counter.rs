//! Experiments E8 + E9: the monotone-consistent counter (Lemma 4, §8.1).
//!
//! E8 measures the per-increment and per-read cost of the renaming-based
//! counter as the number of increments `v` grows, against the `log v`
//! reference and the fetch-and-add baseline, and checks monotone consistency
//! on a recorded mixed workload. E9 reproduces the §8.1 non-linearizability
//! counterexample: the crafted history passes the monotone-consistency checker
//! and is rejected by the linearizability checker.
//!
//! Run with `cargo run --release -p renaming-bench --bin exp_counter`.

use adaptive_renaming::counter::{CasCounter, Counter, MonotoneCounter};
use renaming_bench::{fmt1, log2, Table};
use shmem::adversary::{ExecConfig, YieldPolicy};
use shmem::consistency::{check_linearizable, check_monotone_consistent, CounterOp, CounterSpec};
use shmem::executor::Executor;
use shmem::history::{History, OpRecord, Recorder};
use shmem::process::{ProcessCtx, ProcessId};
use std::sync::Arc;

fn main() {
    e8_cost_table();
    e8_consistency_check();
    e9_counterexample();
}

fn e8_cost_table() {
    let mut table = Table::new(
        "E8 — counter cost per operation vs number of increments v",
        &[
            "v (increments)",
            "renaming counter: steps/increment",
            "log v reference",
            "renaming counter: steps/read",
            "fetch-and-add: steps/increment",
        ],
    );

    for v in [8usize, 32, 128, 512] {
        // A single process performs v increments; the per-increment cost
        // grows with log v because both the splitter-tree depth and the max
        // register value grow with the number of names handed out.
        let counter = MonotoneCounter::new();
        let mut ctx = ProcessCtx::new(ProcessId::new(0), v as u64);
        let before = ctx.stats().total();
        for _ in 0..v {
            counter.increment(&mut ctx);
        }
        let increment_cost = (ctx.stats().total() - before) as f64 / v as f64;
        let before_read = ctx.stats().total();
        let _ = counter.read(&mut ctx);
        let read_cost = (ctx.stats().total() - before_read) as f64;

        let baseline = CasCounter::new();
        let mut base_ctx = ProcessCtx::new(ProcessId::new(0), v as u64);
        for _ in 0..v {
            baseline.increment(&mut base_ctx);
        }
        let baseline_cost = base_ctx.stats().total() as f64 / v as f64;

        table.row(vec![
            v.to_string(),
            fmt1(increment_cost),
            fmt1(log2(v)),
            fmt1(read_cost),
            fmt1(baseline_cost),
        ]);
    }
    table.print();
}

fn e8_consistency_check() {
    let counter = Arc::new(MonotoneCounter::new());
    let recorder: Arc<Recorder<CounterOp, u64>> = Arc::new(Recorder::new());
    let _ = Executor::new(ExecConfig::new(3).with_yield_policy(YieldPolicy::Probabilistic(0.2)))
        .run(12, {
            let counter = Arc::clone(&counter);
            let recorder = Arc::clone(&recorder);
            move |ctx| {
                for round in 0..4 {
                    if (ctx.id().as_usize() + round) % 2 == 0 {
                        let invoke = recorder.invoke();
                        counter.increment(ctx);
                        recorder.record(ctx.id(), CounterOp::Increment, 0, invoke);
                    } else {
                        let invoke = recorder.invoke();
                        let value = counter.read(ctx);
                        recorder.record(ctx.id(), CounterOp::Read, value, invoke);
                    }
                }
            }
        });
    let history = recorder.take_history();
    match check_monotone_consistent(&history, &[]) {
        Ok(()) => println!(
            "E8 consistency check: a concurrent workload of {} operations is monotone-consistent.\n",
            history.len()
        ),
        Err(violation) => println!("E8 consistency check FAILED: {violation}\n"),
    }
}

fn e9_counterexample() {
    fn op(
        process: usize,
        op: CounterOp,
        result: u64,
        invoke: u64,
        response: u64,
    ) -> OpRecord<CounterOp, u64> {
        OpRecord {
            process: ProcessId::new(process),
            op,
            result,
            invoke,
            response,
        }
    }
    // §8.1: p3's increment is pending; p2 completes with name 2; a read
    // returns 2; p1 then completes with name 1 (possible in a renaming
    // network); a second read still returns 2.
    let history = History::new(vec![
        op(2, CounterOp::Increment, 0, 2, 3),
        op(9, CounterOp::Read, 2, 4, 5),
        op(1, CounterOp::Increment, 0, 6, 7),
        op(9, CounterOp::Read, 2, 8, 9),
    ]);
    let pending = [1u64];
    let monotone = check_monotone_consistent(&history, &pending);
    let linearizable = check_linearizable(&CounterSpec, &history);
    println!("E9 — the §8.1 counterexample execution:");
    println!(
        "  monotone-consistency check: {:?}",
        monotone.map(|_| "accepted")
    );
    println!(
        "  linearizability check:      {:?}",
        linearizable.map(|_| "accepted")
    );
    println!(
        "  => the counter is monotone-consistent but, exactly as the paper shows, not linearizable."
    );
}
