//! Experiments E1 + E2: BitBatching step complexity (Lemma 1, Corollaries 1–2).
//!
//! For each `n`, `n` processes rename through a BitBatching object under a
//! simultaneous-arrival schedule. Reported per `n`: probes (test-and-set
//! objects competed in) per process, register steps per process, totals, and
//! the fraction of acquisitions that fell through to the sequential second
//! stage (Lemma 1 predicts essentially none).
//!
//! Run with `cargo run --release -p renaming-bench --bin exp_bitbatching`.

use adaptive_renaming::bit_batching::BitBatchingRenaming;
use adaptive_renaming::traits::assert_tight_namespace;
use renaming_bench::{fmt1, log2, Aggregate, Table};
use shmem::adversary::ExecConfig;
use shmem::executor::Executor;
use std::sync::Arc;
use tas::ratrace::RatRaceTas;

fn main() {
    let seeds: Vec<u64> = (0..3).collect();
    let mut per_process = Table::new(
        "E1 — BitBatching per-process cost (full load, mean over seeds)",
        &[
            "n",
            "probes/proc (mean)",
            "probes/proc (max)",
            "3·log²n (paper bound)",
            "steps/proc (mean)",
            "steps/proc (max)",
            "stage-2 fraction",
        ],
    );
    let mut totals = Table::new(
        "E2 — BitBatching total cost (full load, mean over seeds)",
        &[
            "n",
            "total TAS ops",
            "n·log n (paper bound)",
            "total register steps",
            "tight namespace",
        ],
    );

    for n in [64usize, 128, 256, 512] {
        let mut probes_mean = 0.0;
        let mut probes_max = 0u64;
        let mut steps_mean = 0.0;
        let mut steps_max = 0u64;
        let mut stage_two = 0usize;
        let mut total_ops = 0usize;
        let mut total_tas = 0.0;
        let mut total_steps = 0.0;
        let mut always_tight = true;

        for &seed in &seeds {
            let renaming = Arc::new(BitBatchingRenaming::with_factory(n, RatRaceTas::new));
            let outcome = Executor::new(ExecConfig::new(seed)).run(n, {
                let renaming = Arc::clone(&renaming);
                move |ctx| renaming.acquire_with_report(ctx).expect("full load fits")
            });
            let reports = outcome.results();
            always_tight &=
                assert_tight_namespace(&reports.iter().map(|r| r.name).collect::<Vec<_>>()).is_ok();

            let probe_agg = Aggregate::of(reports.iter().map(|r| r.probes as u64));
            let step_agg = Aggregate::of_register_steps(&outcome.per_process_steps());
            probes_mean += probe_agg.mean;
            probes_max = probes_max.max(probe_agg.max);
            steps_mean += step_agg.mean;
            steps_max = steps_max.max(step_agg.max);
            stage_two += reports.iter().filter(|r| r.entered_second_stage).count();
            total_ops += reports.len();
            total_tas += outcome.total_steps().tas_invocations as f64;
            total_steps += outcome.total_steps().total() as f64;
        }

        let runs = seeds.len() as f64;
        per_process.row(vec![
            n.to_string(),
            fmt1(probes_mean / runs),
            probes_max.to_string(),
            fmt1(3.0 * log2(n) * log2(n)),
            fmt1(steps_mean / runs),
            steps_max.to_string(),
            format!("{stage_two}/{total_ops}"),
        ]);
        totals.row(vec![
            n.to_string(),
            fmt1(total_tas / runs),
            fmt1(n as f64 * log2(n)),
            fmt1(total_steps / runs),
            if always_tight {
                "yes".into()
            } else {
                "VIOLATED".into()
            },
        ]);
    }

    per_process.print();
    totals.print();
}
