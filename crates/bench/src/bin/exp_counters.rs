//! The counter-backend shootout: monotone vs network vs fetch-and-add.
//!
//! Worker threads hammer one shared counter with increments. The contenders,
//! all behind the `<dyn Counter>::builder()` facade:
//!
//! * **`monotone`** — the paper's §8.1 counter (adaptive strong renaming +
//!   max register). Register-model-only and monotone-consistent, but every
//!   increment runs a full renaming acquisition whose cost grows with the
//!   number of increments.
//! * **`network`** — the `cnet` counting-network counter (bitonic wiring,
//!   width = thread count rounded up to a power of two). `Θ(log² w)`
//!   balancer toggles plus one exit-wire fetch-add per increment, with the
//!   toggles spread over the network's balancers instead of funnelling
//!   through one word. Quiescently consistent.
//! * **`fetch_add`** — one hardware fetch-and-add per increment: the speed
//!   of light for a single cache line, linearizable, and outside the
//!   paper's register-only model.
//!
//! Every thread count runs under two arrival schedules from
//! `shmem::adversary`: **bursty** (all workers released simultaneously —
//! maximum contention) and **steady** (staggered arrivals). After each
//! execution the harness verifies the final count is exact and, for the
//! network backend, that the exit-wire counts satisfy the step property at
//! quiescence.
//!
//! The numbers are written to `BENCH_counters.json`. Run with
//! `cargo run --release -p renaming-bench --bin exp_counters`; pass
//! `--smoke` for a seconds-long CI-sized run that skips the JSON.

use adaptive_renaming::counter::Counter;
use cnet::counter::NetworkCounter;
use cnet::family::CountingFamily;
use cnet::verify::step_property_violation;
use renaming_bench::{fmt1, Table};
use shmem::adversary::{ArrivalSchedule, ExecConfig};
use shmem::executor::Executor;
use shmem::process::{ProcessCtx, ProcessId};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Run sizing; the full sweep feeds `BENCH_counters.json`, the smoke sweep
/// bounds CI time.
struct Sizing {
    ops_per_worker: usize,
    executions: usize,
    threads: &'static [usize],
    write_json: bool,
}

const FULL: Sizing = Sizing {
    ops_per_worker: 500,
    executions: 3,
    threads: &[2, 4, 8, 16],
    write_json: true,
};

const SMOKE: Sizing = Sizing {
    ops_per_worker: 50,
    executions: 1,
    threads: &[2, 4],
    write_json: false,
};

/// The arrival schedules the shootout sweeps.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Arrivals {
    /// All workers released together behind the barrier.
    Bursty,
    /// Workers arrive staggered, 20 µs apart.
    Steady,
}

impl Arrivals {
    fn all() -> [Arrivals; 2] {
        [Arrivals::Bursty, Arrivals::Steady]
    }

    fn name(&self) -> &'static str {
        match self {
            Arrivals::Bursty => "bursty",
            Arrivals::Steady => "steady",
        }
    }

    fn schedule(&self) -> ArrivalSchedule {
        match self {
            Arrivals::Bursty => ArrivalSchedule::Simultaneous,
            Arrivals::Steady => ArrivalSchedule::Staggered {
                gap: Duration::from_micros(20),
            },
        }
    }
}

/// One measured configuration.
struct Sample {
    backend: &'static str,
    threads: usize,
    arrivals: Arrivals,
    network_width: usize,
    mean_ns_per_op: f64,
    min_ns_per_op: f64,
    max_ns_per_op: f64,
    /// Mean shared-memory operations (of any kind) per increment.
    steps_per_op: f64,
    /// Mean balancer toggles per increment (zero for non-network backends).
    toggles_per_op: f64,
}

/// The network width used at a given thread count: the thread count rounded
/// up to a power of two (and at least 2).
fn width_for(threads: usize) -> usize {
    threads.next_power_of_two().max(2)
}

/// Times `executions` fresh counters under `threads` workers × the sizing's
/// increments. `make` builds the counter and optionally returns the concrete
/// network counter for the quiescent step-property check.
fn measure(
    sizing: &Sizing,
    backend: &'static str,
    threads: usize,
    arrivals: Arrivals,
    network_width: usize,
    make: impl Fn() -> (Arc<dyn Counter>, Option<Arc<NetworkCounter>>),
) -> Sample {
    let ops_per_worker = sizing.ops_per_worker;
    let total_ops = (threads * ops_per_worker) as f64;
    let mut total_ns = 0.0;
    let mut min_ns = f64::INFINITY;
    let mut max_ns: f64 = 0.0;
    let mut total_steps = 0u64;
    let mut total_toggles = 0u64;
    for execution in 0..sizing.executions {
        let (counter, network) = make();
        let config = ExecConfig::new(execution as u64).with_arrival(arrivals.schedule());
        let start = Instant::now();
        let outcome = Executor::new(config).run(threads, {
            let counter = Arc::clone(&counter);
            move |ctx| {
                for _ in 0..ops_per_worker {
                    counter.increment(ctx);
                }
            }
        });
        let elapsed = start.elapsed().as_nanos() as f64 / total_ops;
        total_ns += elapsed;
        min_ns = min_ns.min(elapsed);
        max_ns = max_ns.max(elapsed);
        let steps = outcome.total_steps();
        total_steps += steps.total_all();
        total_toggles += steps.balancer_toggles;

        // Correctness gates: the quiescent count is exact, and the network
        // backend's exit wires form a staircase.
        let mut quiescent = ProcessCtx::new(ProcessId::new(10_000), 0);
        let read = counter.read(&mut quiescent);
        assert_eq!(
            read,
            total_ops as u64,
            "{backend} at {threads} threads ({}) lost increments",
            arrivals.name(),
        );
        if let Some(network) = network {
            if let Some(violation) = step_property_violation(&network.exit_counts()) {
                panic!(
                    "{backend} at {threads} threads ({}): {violation}",
                    arrivals.name()
                );
            }
        }
    }
    let ops_all_executions = total_ops * sizing.executions as f64;
    Sample {
        backend,
        threads,
        arrivals,
        network_width,
        mean_ns_per_op: total_ns / sizing.executions as f64,
        min_ns_per_op: min_ns,
        max_ns_per_op: max_ns,
        steps_per_op: total_steps as f64 / ops_all_executions,
        toggles_per_op: total_toggles as f64 / ops_all_executions,
    }
}

fn run_sweep(sizing: &Sizing) -> Vec<Sample> {
    let mut samples = Vec::new();
    for &threads in sizing.threads {
        let width = width_for(threads);
        for arrivals in Arrivals::all() {
            samples.push(measure(sizing, "monotone", threads, arrivals, 0, || {
                let counter = <dyn Counter>::builder().monotone().build().unwrap();
                (counter, None)
            }));
            samples.push(measure(sizing, "network", threads, arrivals, width, || {
                let network = Arc::new(NetworkCounter::new(CountingFamily::Bitonic, width));
                (Arc::clone(&network) as Arc<dyn Counter>, Some(network))
            }));
            samples.push(measure(sizing, "fetch_add", threads, arrivals, 0, || {
                let counter = <dyn Counter>::builder().fetch_add().build().unwrap();
                (counter, None)
            }));
        }
    }
    samples
}

fn print_table(samples: &[Sample]) {
    let mut table = Table::new(
        "Counter shootout — increments/op: monotone (renaming + max register) vs network (cnet) vs fetch-and-add",
        &[
            "backend",
            "threads",
            "arrivals",
            "width",
            "ns/op (mean)",
            "ns/op (min)",
            "ns/op (max)",
            "steps/op",
            "toggles/op",
        ],
    );
    for s in samples {
        table.row(vec![
            s.backend.to_string(),
            s.threads.to_string(),
            s.arrivals.name().to_string(),
            if s.network_width == 0 {
                "-".to_string()
            } else {
                s.network_width.to_string()
            },
            fmt1(s.mean_ns_per_op),
            fmt1(s.min_ns_per_op),
            fmt1(s.max_ns_per_op),
            fmt1(s.steps_per_op),
            fmt1(s.toggles_per_op),
        ]);
    }
    table.print();
}

fn write_json(sizing: &Sizing, samples: &[Sample]) -> std::io::Result<()> {
    let mut rows = String::new();
    for (index, s) in samples.iter().enumerate() {
        if index > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"backend\": \"{}\", \"threads\": {}, \"arrivals\": \"{}\", \
             \"network_width\": {}, \"mean_ns_per_op\": {:.1}, \"min_ns_per_op\": {:.1}, \
             \"max_ns_per_op\": {:.1}, \"steps_per_op\": {:.1}, \"toggles_per_op\": {:.1}}}",
            s.backend,
            s.threads,
            s.arrivals.name(),
            s.network_width,
            s.mean_ns_per_op,
            s.min_ns_per_op,
            s.max_ns_per_op,
            s.steps_per_op,
            s.toggles_per_op,
        ));
    }
    let json = format!(
        "{{\n  \"experiment\": \"counters\",\n  \"family\": \"bitonic\",\n  \
         \"ops_per_worker\": {},\n  \"executions\": {},\n  \"rows\": [\n{rows}\n  ]\n}}\n",
        sizing.ops_per_worker, sizing.executions,
    );
    std::fs::write("BENCH_counters.json", json)
}

fn main() {
    let smoke = std::env::args().any(|arg| arg == "--smoke");
    let sizing = if smoke { &SMOKE } else { &FULL };
    let samples = run_sweep(sizing);
    print_table(&samples);
    for &threads in sizing.threads {
        let ns = |backend: &str| {
            samples
                .iter()
                .find(|s| {
                    s.backend == backend && s.threads == threads && s.arrivals == Arrivals::Bursty
                })
                .map(|s| s.mean_ns_per_op)
                .unwrap_or(f64::NAN)
        };
        let monotone = ns("monotone");
        let network = ns("network");
        println!(
            "{threads:>2} threads (bursty): monotone {monotone:.0} ns/op, network {network:.0} \
             ns/op ({:.1}x faster), fetch_add {:.0} ns/op",
            monotone / network,
            ns("fetch_add"),
        );
    }
    if sizing.write_json {
        match write_json(sizing, &samples) {
            Ok(()) => println!("wrote BENCH_counters.json"),
            Err(error) => eprintln!("failed to write BENCH_counters.json: {error}"),
        }
    } else {
        println!("smoke mode: BENCH_counters.json left untouched");
    }
}
