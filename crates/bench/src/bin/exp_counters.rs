//! The counter-backend shootout: monotone vs network vs fetch-and-add.
//!
//! Worker threads hammer one shared counter with increments. The contenders,
//! all behind the `<dyn Counter>::builder()` facade:
//!
//! * **`monotone`** — the paper's §8.1 counter (adaptive strong renaming +
//!   max register). Register-model-only and monotone-consistent, but every
//!   increment runs a full renaming acquisition whose cost grows with the
//!   number of increments.
//! * **`network`** — the `cnet` counting-network counter at a **fixed
//!   width of 16**: the classical provision-for-the-maximum design, sized
//!   for the largest thread count of the sweep and paying its full
//!   `Θ(log² 16)` toggle depth even when two threads use it. Quiescently
//!   consistent.
//! * **`adaptive`** — the elimination/diffraction front-end over a
//!   width-2/4/8/16 cascade of counting networks: a contention sensor
//!   routes each increment through a prism (colliding pairs cancel) into
//!   the narrowest network covering *realized* contention, so the quiet
//!   end of the sweep pays width-2 costs instead of width-16 ones.
//!   Quiescently consistent; the cascade covers the same 16-thread maximum
//!   the fixed network provisions for.
//! * **`fetch_add`** — one hardware fetch-and-add per increment: the speed
//!   of light for a single cache line, linearizable, and outside the
//!   paper's register-only model.
//! * **`network_mmap_procs`** (unix only) — the fixed-width network again,
//!   but arena-resident in a `MAP_SHARED` mapping and incremented by real
//!   `fork(2)` child processes: the cross-process deployment of the
//!   counting network, priced against the threaded rows.
//!
//! Every thread count runs under two arrival schedules from
//! `shmem::adversary`: **bursty** (all workers released simultaneously —
//! maximum contention) and **steady** (staggered arrivals). After each
//! execution the harness verifies the final count is exact and, for the
//! network and adaptive backends, that the exit-wire counts satisfy the
//! step property at quiescence (per cascade layer for adaptive).
//!
//! The numbers are written to `BENCH_counters.json`. A separate **untimed**
//! telemetry pass then rebuilds each backend with every worker bound to its
//! own `obs` metric stripe and writes the merged snapshots — per-backend
//! latency histograms (`cnet.increment_ns`, `adaptive.increment_ns`),
//! prism outcomes, route-ups, balancer toggles and the contention sensor's
//! realized-contention gauges — to `OBS_counters.json`. Telemetry stays out
//! of the timed sweep: the workers there never bind a sink, so the
//! committed `BENCH_counters.json` baselines and the `--gate` verdicts
//! price the unbound (one flag load per site) hot path.
//!
//! Run with `cargo run --release -p renaming-bench --bin exp_counters`; pass
//! `--smoke` for a seconds-long CI-sized run that skips the JSON, or
//! `--gate` to replay the **full** sizing and fail (exit 1) when any
//! backend's *best* replayed execution regresses more than 20% past the
//! committed
//! `BENCH_counters.json` baseline.

use adaptive_renaming::counter::Counter;
use cnet::adaptive::AdaptiveNetworkCounter;
use cnet::counter::NetworkCounter;
use cnet::family::CountingFamily;
use cnet::verify::step_property_violation;
use renaming_bench::{fmt1, parse_baseline_rows, GateReport, Table};
use shmem::adversary::{ArrivalSchedule, ExecConfig};
use shmem::executor::Executor;
use shmem::process::{ProcessCtx, ProcessId};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Run sizing; the full sweep feeds `BENCH_counters.json`, the smoke sweep
/// bounds CI time.
struct Sizing {
    ops_per_worker: usize,
    executions: usize,
    threads: &'static [usize],
    write_json: bool,
}

const FULL: Sizing = Sizing {
    ops_per_worker: 500,
    executions: 3,
    threads: &[2, 4, 8, 16],
    write_json: true,
};

const SMOKE: Sizing = Sizing {
    ops_per_worker: 50,
    executions: 1,
    threads: &[2, 4],
    write_json: false,
};

/// The gate replays the FULL per-execution workload (so cells are
/// comparable to the committed baseline) with three times the executions:
/// the gate compares the *best* replay per cell, and a larger best-of-N
/// keeps the scheduler's worst moods out of the verdict.
const GATE: Sizing = Sizing {
    ops_per_worker: 500,
    executions: 9,
    threads: &[2, 4, 8, 16],
    write_json: false,
};

/// The arrival schedules the shootout sweeps.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Arrivals {
    /// All workers released together behind the barrier.
    Bursty,
    /// Workers arrive staggered, 20 µs apart.
    Steady,
}

impl Arrivals {
    fn all() -> [Arrivals; 2] {
        [Arrivals::Bursty, Arrivals::Steady]
    }

    fn name(&self) -> &'static str {
        match self {
            Arrivals::Bursty => "bursty",
            Arrivals::Steady => "steady",
        }
    }

    fn schedule(&self) -> ArrivalSchedule {
        match self {
            Arrivals::Bursty => ArrivalSchedule::Simultaneous,
            Arrivals::Steady => ArrivalSchedule::Staggered {
                gap: Duration::from_micros(20),
            },
        }
    }
}

/// One measured configuration.
struct Sample {
    backend: &'static str,
    threads: usize,
    arrivals: Arrivals,
    network_width: usize,
    mean_ns_per_op: f64,
    min_ns_per_op: f64,
    max_ns_per_op: f64,
    /// Mean shared-memory operations (of any kind) per increment.
    steps_per_op: f64,
    /// Mean balancer toggles per increment (zero for non-network backends).
    toggles_per_op: f64,
}

/// The width both network-based backends provision for: the largest thread
/// count of the sweep. The fixed `network` backend pays this width at every
/// thread count (the provision-for-the-maximum design the adaptive cascade
/// is built to beat at the quiet end); the `adaptive` backend's cascade tops
/// out at it.
const PROVISIONED_WIDTH: usize = 16;

/// A post-execution correctness check run at quiescence (step property,
/// layer accounting); returns a violation description on failure.
type PostCheck = Box<dyn Fn() -> Result<(), String>>;

/// Times `executions` fresh counters under `threads` workers × the sizing's
/// increments. `make` builds the counter and optionally a quiescent
/// correctness check to run after each execution.
fn measure(
    sizing: &Sizing,
    backend: &'static str,
    threads: usize,
    arrivals: Arrivals,
    network_width: usize,
    make: impl Fn() -> (Arc<dyn Counter>, Option<PostCheck>),
) -> Sample {
    let ops_per_worker = sizing.ops_per_worker;
    let total_ops = (threads * ops_per_worker) as f64;
    let mut total_ns = 0.0;
    let mut min_ns = f64::INFINITY;
    let mut max_ns: f64 = 0.0;
    let mut total_steps = 0u64;
    let mut total_toggles = 0u64;
    for execution in 0..sizing.executions {
        let (counter, post_check) = make();
        let config = ExecConfig::new(execution as u64).with_arrival(arrivals.schedule());
        let start = Instant::now();
        let outcome = Executor::new(config).run(threads, {
            let counter = Arc::clone(&counter);
            move |ctx| {
                for _ in 0..ops_per_worker {
                    counter.increment(ctx);
                }
            }
        });
        let elapsed = start.elapsed().as_nanos() as f64 / total_ops;
        total_ns += elapsed;
        min_ns = min_ns.min(elapsed);
        max_ns = max_ns.max(elapsed);
        let steps = outcome.total_steps();
        total_steps += steps.total_all();
        total_toggles += steps.balancer_toggles;

        // Correctness gates: the quiescent count is exact, and the network
        // backend's exit wires form a staircase.
        let mut quiescent = ProcessCtx::new(ProcessId::new(10_000), 0);
        let read = counter.read(&mut quiescent);
        assert_eq!(
            read,
            total_ops as u64,
            "{backend} at {threads} threads ({}) lost increments",
            arrivals.name(),
        );
        if let Some(check) = post_check {
            if let Err(violation) = check() {
                panic!(
                    "{backend} at {threads} threads ({}): {violation}",
                    arrivals.name()
                );
            }
        }
    }
    let ops_all_executions = total_ops * sizing.executions as f64;
    Sample {
        backend,
        threads,
        arrivals,
        network_width,
        mean_ns_per_op: total_ns / sizing.executions as f64,
        min_ns_per_op: min_ns,
        max_ns_per_op: max_ns,
        steps_per_op: total_steps as f64 / ops_all_executions,
        toggles_per_op: total_toggles as f64 / ops_all_executions,
    }
}

/// Measures the fixed-width network counter shared across **forked OS
/// processes** over a `MAP_SHARED` arena — the cross-process deployment of
/// the counting network (balancer slabs and exit wires all arena-resident,
/// children inheriting the compiled wiring by value). Bursty by
/// construction: children spin on a start word and are released together.
/// Step counts are reported back through arena words, since each child's
/// `ProcessCtx` lives in its own address space.
#[cfg(all(unix, not(miri)))]
fn measure_network_procs(sizing: &Sizing, processes: usize) -> Sample {
    use cnet::verify::has_step_property;
    use shmem::arena::Arena;
    use shmem::procs::{fork_child, wait_for_clean_exit};
    use std::sync::atomic::{AtomicU64, Ordering};

    let (family, width) = (CountingFamily::Bitonic, PROVISIONED_WIDTH);
    let ops_per_worker = sizing.ops_per_worker;
    let total_ops = (processes * ops_per_worker) as f64;
    let mut total_ns = 0.0;
    let mut min_ns = f64::INFINITY;
    let mut max_ns: f64 = 0.0;
    let mut total_steps = 0u64;
    let mut total_toggles = 0u64;
    for execution in 0..sizing.executions {
        // A fresh counter per execution, as in the threaded measure().
        let arena =
            Arena::shared(NetworkCounter::footprint(family, width) + (2 * processes + 3) * 64)
                .expect("anonymous MAP_SHARED arena");
        let counter = Arc::new(NetworkCounter::new_in(family, width, &arena));
        let ready = arena.alloc::<AtomicU64>().pin(&arena);
        let start_gate = arena.alloc::<AtomicU64>().pin(&arena);
        let done = arena.alloc::<AtomicU64>().pin(&arena);
        let steps = arena.alloc_slice::<AtomicU64>(processes).pin(&arena);
        let toggles = arena.alloc_slice::<AtomicU64>(processes).pin(&arena);
        let pids: Vec<i32> = (0..processes)
            .map(|worker| {
                // Pre-fork context; children only touch the shared mapping.
                let ctx = ProcessCtx::new(
                    ProcessId::new(worker),
                    (execution * processes + worker) as u64,
                );
                let counter = Arc::clone(&counter);
                let (ready, start_gate, done, steps, toggles) = (
                    ready.clone(),
                    start_gate.clone(),
                    done.clone(),
                    steps.clone(),
                    toggles.clone(),
                );
                fork_child(move || {
                    let mut ctx = ctx;
                    ready.fetch_add(1, Ordering::SeqCst);
                    while start_gate.load(Ordering::SeqCst) == 0 {
                        std::hint::spin_loop();
                    }
                    for _ in 0..ops_per_worker {
                        counter.increment(&mut ctx);
                    }
                    let stats = ctx.stats();
                    steps[worker].store(stats.total_all(), Ordering::SeqCst);
                    toggles[worker].store(stats.balancer_toggles, Ordering::SeqCst);
                    done.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        while ready.load(Ordering::SeqCst) < processes as u64 {
            std::thread::yield_now();
        }
        let timer = Instant::now();
        start_gate.store(1, Ordering::SeqCst);
        while done.load(Ordering::SeqCst) < processes as u64 {
            std::thread::yield_now();
        }
        let elapsed = timer.elapsed().as_nanos() as f64 / total_ops;
        total_ns += elapsed;
        min_ns = min_ns.min(elapsed);
        max_ns = max_ns.max(elapsed);
        for pid in pids {
            wait_for_clean_exit(pid);
        }
        total_steps += steps
            .iter()
            .map(|word| word.load(Ordering::SeqCst))
            .sum::<u64>();
        total_toggles += toggles
            .iter()
            .map(|word| word.load(Ordering::SeqCst))
            .sum::<u64>();

        // Correctness gates at quiescence, as in the threaded rows: the
        // count is exact across address spaces, the exit wires staircase.
        assert_eq!(
            counter.peek(),
            total_ops as u64,
            "network_mmap_procs at {processes} processes lost increments"
        );
        assert!(
            has_step_property(&counter.exit_counts()),
            "network_mmap_procs at {processes} processes: exit counts {:?} \
             violate the step property",
            counter.exit_counts()
        );
    }
    let ops_all_executions = total_ops * sizing.executions as f64;
    Sample {
        backend: "network_mmap_procs",
        threads: processes,
        arrivals: Arrivals::Bursty,
        network_width: width,
        mean_ns_per_op: total_ns / sizing.executions as f64,
        min_ns_per_op: min_ns,
        max_ns_per_op: max_ns,
        steps_per_op: total_steps as f64 / ops_all_executions,
        toggles_per_op: total_toggles as f64 / ops_all_executions,
    }
}

fn run_sweep(sizing: &Sizing) -> Vec<Sample> {
    let width = PROVISIONED_WIDTH;
    let mut samples = Vec::new();
    for &threads in sizing.threads {
        // Forked clients over a MAP_SHARED arena: the cross-process row.
        #[cfg(all(unix, not(miri)))]
        samples.push(measure_network_procs(sizing, threads));
        for arrivals in Arrivals::all() {
            samples.push(measure(sizing, "monotone", threads, arrivals, 0, || {
                let counter = <dyn Counter>::builder().monotone().build().unwrap();
                (counter, None)
            }));
            samples.push(measure(sizing, "network", threads, arrivals, width, || {
                let network = Arc::new(NetworkCounter::new(CountingFamily::Bitonic, width));
                let check = Arc::clone(&network);
                (
                    Arc::clone(&network) as Arc<dyn Counter>,
                    Some(Box::new(
                        move || match step_property_violation(&check.exit_counts()) {
                            Some(violation) => Err(violation.to_string()),
                            None => Ok(()),
                        },
                    ) as PostCheck),
                )
            }));
            samples.push(measure(
                sizing,
                "adaptive",
                threads,
                arrivals,
                width,
                || {
                    let adaptive =
                        Arc::new(AdaptiveNetworkCounter::new(CountingFamily::Bitonic, width));
                    let check = Arc::clone(&adaptive);
                    (
                        Arc::clone(&adaptive) as Arc<dyn Counter>,
                        Some(Box::new(move || {
                            // Every cascade layer must independently hold the
                            // step property at quiescence, and the per-layer
                            // token counts must conserve the deposited tokens.
                            check.check_step_property().map_err(|v| v.to_string())
                        }) as PostCheck),
                    )
                },
            ));
            samples.push(measure(sizing, "fetch_add", threads, arrivals, 0, || {
                let counter = <dyn Counter>::builder().fetch_add().build().unwrap();
                (counter, None)
            }));
        }
    }
    samples
}

fn print_table(samples: &[Sample]) {
    let mut table = Table::new(
        "Counter shootout — increments/op: monotone (renaming + max register) vs network \
         (fixed width 16) vs adaptive (prism + cascade) vs fetch-and-add",
        &[
            "backend",
            "threads",
            "arrivals",
            "width",
            "ns/op (mean)",
            "ns/op (min)",
            "ns/op (max)",
            "steps/op",
            "toggles/op",
        ],
    );
    for s in samples {
        table.row(vec![
            s.backend.to_string(),
            s.threads.to_string(),
            s.arrivals.name().to_string(),
            if s.network_width == 0 {
                "-".to_string()
            } else {
                s.network_width.to_string()
            },
            fmt1(s.mean_ns_per_op),
            fmt1(s.min_ns_per_op),
            fmt1(s.max_ns_per_op),
            fmt1(s.steps_per_op),
            fmt1(s.toggles_per_op),
        ]);
    }
    table.print();
}

fn write_json(sizing: &Sizing, samples: &[Sample]) -> std::io::Result<()> {
    let mut rows = String::new();
    for (index, s) in samples.iter().enumerate() {
        if index > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"backend\": \"{}\", \"threads\": {}, \"arrivals\": \"{}\", \
             \"network_width\": {}, \"mean_ns_per_op\": {:.1}, \"min_ns_per_op\": {:.1}, \
             \"max_ns_per_op\": {:.1}, \"steps_per_op\": {:.1}, \"toggles_per_op\": {:.1}}}",
            s.backend,
            s.threads,
            s.arrivals.name(),
            s.network_width,
            s.mean_ns_per_op,
            s.min_ns_per_op,
            s.max_ns_per_op,
            s.steps_per_op,
            s.toggles_per_op,
        ));
    }
    let json = format!(
        "{{\n  \"experiment\": \"counters\",\n  \"family\": \"bitonic\",\n  \
         \"ops_per_worker\": {},\n  \"executions\": {},\n  \
         \"padding_note\": \"{PADDING_NOTE}\",\n  \"rows\": [\n{rows}\n  ]\n}}\n",
        sizing.ops_per_worker, sizing.executions,
    );
    std::fs::write("BENCH_counters.json", json)
}

/// One untimed telemetry execution of `backend`: every worker binds its own
/// stripe of a fresh heap [`MetricsSlab`](obs::MetricsSlab), runs the
/// sizing's per-worker increments, and the stripes merge into one
/// [`Snapshot`](obs::Snapshot) — the per-backend histogram/counter rows of
/// `OBS_counters.json`.
fn observe(
    sizing: &Sizing,
    threads: usize,
    counter: Arc<dyn Counter>,
) -> (obs::Snapshot, shmem::steps::StepStats) {
    let ops_per_worker = sizing.ops_per_worker;
    let slab = obs::MetricsSlab::heap(threads);
    let config = ExecConfig::new(0).with_arrival(Arrivals::Bursty.schedule());
    let outcome = Executor::new(config).run(threads, {
        let counter = Arc::clone(&counter);
        let slab = Arc::clone(&slab);
        move |ctx| {
            obs::bind_metrics(slab.writer(ctx.id().as_usize()));
            for _ in 0..ops_per_worker {
                counter.increment(ctx);
            }
            obs::unbind();
        }
    });
    (obs::Snapshot::collect(&slab), outcome.total_steps())
}

/// Renders a [`StepStats`](shmem::steps::StepStats) as a JSON object via
/// its `as_pairs` exporter surface, dropping zero entries.
fn steps_json(steps: &shmem::steps::StepStats) -> String {
    let fields: Vec<String> = steps
        .as_pairs()
        .iter()
        .filter(|(_, value)| *value > 0)
        .map(|(name, value)| format!("\"{name}\": {value}"))
        .collect();
    format!("{{{}}}", fields.join(", "))
}

/// Writes `OBS_counters.json`: one telemetry row per (backend, threads)
/// cell, each carrying the merged snapshot of that cell's bound run. The
/// `realized_k` field is the row's realized contention — the number of
/// workers actually incrementing — which the adaptive backend's
/// `adaptive.sensor_estimate_fp` / `adaptive.routed_width` gauges can be
/// read against.
fn write_obs_json(sizing: &Sizing) -> std::io::Result<()> {
    let width = PROVISIONED_WIDTH;
    let mut rows = String::new();
    for &threads in sizing.threads {
        let backends: [(&str, Arc<dyn Counter>); 4] = [
            (
                "monotone",
                <dyn Counter>::builder().monotone().build().unwrap(),
            ),
            (
                "network",
                Arc::new(NetworkCounter::new(CountingFamily::Bitonic, width)),
            ),
            (
                "adaptive",
                Arc::new(AdaptiveNetworkCounter::new(CountingFamily::Bitonic, width)),
            ),
            (
                "fetch_add",
                <dyn Counter>::builder().fetch_add().build().unwrap(),
            ),
        ];
        for (backend, counter) in backends {
            let (snapshot, steps) = observe(sizing, threads, counter);
            if !rows.is_empty() {
                rows.push_str(",\n");
            }
            rows.push_str(&format!(
                "    {{\"backend\": \"{backend}\", \"threads\": {threads}, \
                 \"realized_k\": {threads}, \"steps\": {}, \"telemetry\": {}}}",
                steps_json(&steps),
                snapshot.to_json().trim_end(),
            ));
        }
    }
    let json = format!(
        "{{\n  \"experiment\": \"counters\",\n  \"ops_per_worker\": {},\n  \
         \"rows\": [\n{rows}\n  ]\n}}\n",
        sizing.ops_per_worker,
    );
    std::fs::write("OBS_counters.json", json)
}

/// Before/after record for the cache-line-padding satellite, kept alongside
/// the refreshed numbers: the pre-padding committed baseline for the fixed
/// network backend at the widest, most contended configuration.
const PADDING_NOTE: &str = "exit wires, balancer slabs and free-list summary words are \
     cache-line padded (repr align 64); pre-padding committed baseline for network w=16, \
     16 threads, bursty: mean 222.9 ns/op, max 282.5 ns/op";

/// `--gate`: replay the full sizing and compare every (backend, threads,
/// arrivals) best (minimum ns/op) execution against the committed `BENCH_counters.json`, failing when even
/// the best replay sits >20% past the committed mean (or committed max for
/// rows whose baseline was already noisy). Exits the process with status 1 on failure.
fn run_gate(samples: &[Sample]) {
    let committed = match std::fs::read_to_string("BENCH_counters.json") {
        Ok(json) => parse_baseline_rows(&json),
        Err(error) => {
            eprintln!("perf gate: cannot read BENCH_counters.json: {error}");
            std::process::exit(1);
        }
    };
    let mut report = GateReport::new();
    for sample in samples {
        let label = format!(
            "{} at {} threads ({})",
            sample.backend,
            sample.threads,
            sample.arrivals.name()
        );
        let threads = sample.threads.to_string();
        let row = committed.iter().find(|row| {
            row.matches(&[
                ("backend", sample.backend),
                ("threads", &threads),
                ("arrivals", sample.arrivals.name()),
            ])
        });
        match row
            .and_then(|row| Some((row.number("mean_ns_per_op")?, row.number("max_ns_per_op")?)))
        {
            Some((mean, max)) => report.check(&label, sample.min_ns_per_op, mean, max),
            None => report.missing(&label),
        }
    }
    if report.passed() {
        println!(
            "perf gate: {} configurations within tolerance of BENCH_counters.json",
            report.checked()
        );
    } else {
        eprintln!("perf gate FAILED against BENCH_counters.json:");
        for failure in report.failures() {
            eprintln!("  {failure}");
        }
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|arg| arg == "--smoke");
    let gate = args.iter().any(|arg| arg == "--gate");
    // `--no-obs` skips the telemetry pass: the overhead gate
    // (tools/obs_overhead.sh) compares telemetry-on vs obs-off builds over
    // *identical* work, so the bound recording of the telemetry pass must
    // not leak into the comparison.
    let no_obs = args.iter().any(|arg| arg == "--no-obs");
    // The gate replays the full per-execution workload (a smoke-sized run
    // against the committed full-sized baseline would compare different
    // workloads) with extra executions per cell — see GATE.
    let sizing = if gate {
        &GATE
    } else if smoke {
        &SMOKE
    } else {
        &FULL
    };
    let samples = run_sweep(sizing);
    print_table(&samples);
    for &threads in sizing.threads {
        let ns = |backend: &str| {
            samples
                .iter()
                .find(|s| {
                    s.backend == backend && s.threads == threads && s.arrivals == Arrivals::Bursty
                })
                .map(|s| s.mean_ns_per_op)
                .unwrap_or(f64::NAN)
        };
        let network = ns("network");
        let adaptive = ns("adaptive");
        println!(
            "{threads:>2} threads (bursty): monotone {:.0} ns/op, network(w16) {network:.0} \
             ns/op, adaptive {adaptive:.0} ns/op ({:.2}x vs fixed width), fetch_add {:.0} ns/op",
            ns("monotone"),
            network / adaptive,
            ns("fetch_add"),
        );
    }
    if gate {
        run_gate(&samples);
    } else {
        if sizing.write_json {
            match write_json(sizing, &samples) {
                Ok(()) => println!("wrote BENCH_counters.json"),
                Err(error) => eprintln!("failed to write BENCH_counters.json: {error}"),
            }
        } else {
            println!("smoke mode: BENCH_counters.json left untouched");
        }
        // The telemetry pass runs after every timed execution has finished:
        // binding a sink flips the process-wide enable flag, so the order
        // keeps the timed sweep above on the never-enabled fast path.
        if no_obs {
            println!("--no-obs: OBS_counters.json left untouched");
        } else {
            match write_obs_json(sizing) {
                Ok(()) => println!("wrote OBS_counters.json"),
                Err(error) => eprintln!("failed to write OBS_counters.json: {error}"),
            }
        }
    }
}
