//! Experiment E3: renaming networks over fixed sorting networks (Theorem 1,
//! Corollary 3).
//!
//! For each initial-namespace size `M`, `k = M/4` processes with scattered
//! identities rename through a renaming network built from Batcher's odd-even
//! mergesort. Reported: comparators (two-process test-and-sets) played per
//! process against the network depth, register steps per process, and the
//! namespace check. A second table repeats the measurement with hardware
//! (atomic-swap) comparators — the deterministic variant of §1/§9.
//!
//! Run with `cargo run --release -p renaming-bench --bin exp_renaming_network`.

use adaptive_renaming::renaming_network::RenamingNetwork;
use adaptive_renaming::traits::assert_tight_namespace;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use renaming_bench::{fmt1, Aggregate, Table};
use shmem::adversary::ExecConfig;
use shmem::executor::Executor;
use shmem::process::ProcessId;
use sortnet::batcher::odd_even_network;
use sortnet::schedule::ComparatorSchedule;
use std::sync::Arc;
use tas::hardware::HardwareTas;
use tas::two_process::TwoProcessTas;

fn scattered_ids(count: usize, namespace: usize, seed: u64) -> Vec<ProcessId> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut all: Vec<usize> = (0..namespace).collect();
    all.shuffle(&mut rng);
    all.into_iter().take(count).map(ProcessId::new).collect()
}

fn run_table<T: tas::TwoPartyTas + Default + 'static>(title: &str) -> Table {
    let mut table = Table::new(
        title,
        &[
            "M (namespace)",
            "k (participants)",
            "network depth",
            "comparators/proc (mean)",
            "comparators/proc (max)",
            "steps/proc (mean)",
            "steps/proc (max)",
            "tight namespace",
        ],
    );
    for m in [16usize, 64, 256, 1024] {
        let k = (m / 4).max(2);
        let schedule = odd_even_network(m);
        let depth = ComparatorSchedule::depth(&schedule);
        let network: Arc<RenamingNetwork<_, T>> = Arc::new(RenamingNetwork::new(schedule));
        let ids = scattered_ids(k, m, m as u64);
        let outcome = Executor::new(ExecConfig::new(m as u64)).run_with_ids(&ids, {
            let network = Arc::clone(&network);
            move |ctx| network.acquire_with_report(ctx).expect("ids fit the namespace")
        });
        let reports = outcome.results();
        let tight = assert_tight_namespace(&reports.iter().map(|r| r.name).collect::<Vec<_>>());
        let comp = Aggregate::of(reports.iter().map(|r| r.comparators_played as u64));
        let steps = Aggregate::of_register_steps(&outcome.per_process_steps());
        table.row(vec![
            m.to_string(),
            k.to_string(),
            depth.to_string(),
            fmt1(comp.mean),
            comp.max.to_string(),
            fmt1(steps.mean),
            steps.max.to_string(),
            if tight.is_ok() { "yes".into() } else { "VIOLATED".into() },
        ]);
    }
    table
}

fn main() {
    run_table::<TwoProcessTas>(
        "E3 — renaming network over odd-even mergesort (randomized two-process TAS comparators)",
    )
    .print();
    run_table::<HardwareTas>(
        "E3/E13 — same networks with hardware (atomic swap) comparators: the deterministic variant",
    )
    .print();
}
