//! Experiment E3: renaming networks over fixed sorting networks (Theorem 1,
//! Corollary 3).
//!
//! For each initial-namespace size `M`, `k = M/4` processes with scattered
//! identities rename through a renaming network built from Batcher's odd-even
//! mergesort. Reported: comparators (two-process test-and-sets) played per
//! process against the network depth, register steps per process, and the
//! namespace check. A second table repeats the measurement with hardware
//! (atomic-swap) comparators — the deterministic variant of §1/§9.
//!
//! A third section races the two renaming engines — the compiled wire-map +
//! comparator-slab engine against the legacy `RwLock<HashMap>` engine — on
//! `odd_even_network(64)` with 16 concurrent processes, and records the
//! numbers into `BENCH_renaming_network.json` so the performance trajectory
//! of the hot path is tracked across revisions.
//!
//! Run with `cargo run --release -p renaming-bench --bin exp_renaming_network`.

use adaptive_renaming::renaming_network::{LockedRenamingNetwork, RenamingNetwork};
use adaptive_renaming::traits::{assert_tight_namespace, Renaming};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use renaming_bench::{fmt1, Aggregate, Table};
use shmem::adversary::ExecConfig;
use shmem::executor::Executor;
use shmem::process::ProcessId;
use sortnet::batcher::odd_even_network;
use sortnet::schedule::ComparatorSchedule;
use std::sync::Arc;
use std::time::Instant;
use tas::hardware::HardwareTas;
use tas::two_process::TwoProcessTas;

fn scattered_ids(count: usize, namespace: usize, seed: u64) -> Vec<ProcessId> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut all: Vec<usize> = (0..namespace).collect();
    all.shuffle(&mut rng);
    all.into_iter().take(count).map(ProcessId::new).collect()
}

fn run_table<T: tas::TwoPartyTas + Default + 'static>(title: &str) -> Table {
    let mut table = Table::new(
        title,
        &[
            "M (namespace)",
            "k (participants)",
            "network depth",
            "comparators/proc (mean)",
            "comparators/proc (max)",
            "steps/proc (mean)",
            "steps/proc (max)",
            "tight namespace",
        ],
    );
    for m in [16usize, 64, 256, 1024] {
        let k = (m / 4).max(2);
        let schedule = odd_even_network(m);
        let depth = ComparatorSchedule::depth(&schedule);
        let network: Arc<RenamingNetwork<_, T>> = Arc::new(RenamingNetwork::new(schedule));
        let ids = scattered_ids(k, m, m as u64);
        let outcome = Executor::new(ExecConfig::new(m as u64)).run_with_ids(&ids, {
            let network = Arc::clone(&network);
            move |ctx| {
                network
                    .acquire_with_report(ctx)
                    .expect("ids fit the namespace")
            }
        });
        let reports = outcome.results();
        let tight = assert_tight_namespace(&reports.iter().map(|r| r.name).collect::<Vec<_>>());
        let comp = Aggregate::of(reports.iter().map(|r| r.comparators_played as u64));
        let steps = Aggregate::of_register_steps(&outcome.per_process_steps());
        table.row(vec![
            m.to_string(),
            k.to_string(),
            depth.to_string(),
            fmt1(comp.mean),
            comp.max.to_string(),
            fmt1(steps.mean),
            steps.max.to_string(),
            if tight.is_ok() {
                "yes".into()
            } else {
                "VIOLATED".into()
            },
        ]);
    }
    table
}

/// Workload of the engine comparison: `odd_even_network(WIDTH)`,
/// `PARTICIPANTS` concurrent processes, each traversing `ROUNDS` fresh
/// one-shot networks per timed execution.
const WIDTH: usize = 64;
const PARTICIPANTS: usize = 16;
const ROUNDS: usize = 32;
const EXECUTIONS: usize = 20;

/// Wall-clock statistics of one engine variant, in nanoseconds per execution.
struct EngineSample {
    engine: &'static str,
    tas: &'static str,
    mean_ns: f64,
    min_ns: u128,
    max_ns: u128,
}

/// Times `EXECUTIONS` adversarial executions against pre-built batches of
/// fresh networks. Construction happens outside the timed window; the timed
/// window still includes the executor's thread spawn/join, a constant paid
/// identically by both engines, so `ROUNDS` networks per execution amortize
/// it and keep the traversal difference visible.
fn measure_engine<N, F>(engine: &'static str, tas: &'static str, build: F) -> EngineSample
where
    N: Renaming + Send + Sync,
    F: Fn() -> N,
{
    let ids: Vec<ProcessId> = (0..PARTICIPANTS)
        .map(|i| ProcessId::new(i * WIDTH / PARTICIPANTS))
        .collect();
    let mut total_ns = 0u128;
    let mut min_ns = u128::MAX;
    let mut max_ns = 0u128;
    for execution in 0..EXECUTIONS {
        let networks: Arc<Vec<N>> = Arc::new((0..ROUNDS).map(|_| build()).collect());
        let start = Instant::now();
        let outcome = Executor::new(ExecConfig::new(execution as u64)).run_with_ids(&ids, {
            let networks = Arc::clone(&networks);
            move |ctx| {
                networks
                    .iter()
                    .map(|network| network.acquire(ctx).expect("ids fit"))
                    .sum::<usize>()
            }
        });
        let elapsed = start.elapsed().as_nanos();
        assert_eq!(outcome.completed().count(), PARTICIPANTS);
        total_ns += elapsed;
        min_ns = min_ns.min(elapsed);
        max_ns = max_ns.max(elapsed);
    }
    EngineSample {
        engine,
        tas,
        mean_ns: total_ns as f64 / EXECUTIONS as f64,
        min_ns,
        max_ns,
    }
}

fn engine_comparison() -> Vec<EngineSample> {
    vec![
        measure_engine("compiled_slab", "hardware", || {
            RenamingNetwork::<_, HardwareTas>::new(odd_even_network(WIDTH))
        }),
        measure_engine("locked_rwlock_hashmap", "hardware", || {
            LockedRenamingNetwork::<_, HardwareTas>::new(odd_even_network(WIDTH))
        }),
        measure_engine("compiled_slab", "two_process", || {
            RenamingNetwork::<_, TwoProcessTas>::new(odd_even_network(WIDTH))
        }),
        measure_engine("locked_rwlock_hashmap", "two_process", || {
            LockedRenamingNetwork::<_, TwoProcessTas>::new(odd_even_network(WIDTH))
        }),
    ]
}

fn engine_table(samples: &[EngineSample]) -> Table {
    let mut table = Table::new(
        "E3b — engine shootout: compiled wire-map + slab vs legacy RwLock+HashMap \
         (odd-even 64, 16 concurrent processes)",
        &[
            "engine",
            "comparator TAS",
            "mean µs/exec",
            "min µs",
            "max µs",
        ],
    );
    for sample in samples {
        table.row(vec![
            sample.engine.to_string(),
            sample.tas.to_string(),
            fmt1(sample.mean_ns / 1_000.0),
            fmt1(sample.min_ns as f64 / 1_000.0),
            fmt1(sample.max_ns as f64 / 1_000.0),
        ]);
    }
    table
}

fn speedup(samples: &[EngineSample], tas: &str) -> f64 {
    let mean = |engine: &str| {
        samples
            .iter()
            .find(|s| s.engine == engine && s.tas == tas)
            .map(|s| s.mean_ns)
            .unwrap_or(f64::NAN)
    };
    mean("locked_rwlock_hashmap") / mean("compiled_slab")
}

fn write_json(samples: &[EngineSample]) -> std::io::Result<()> {
    let mut variants = String::new();
    for (index, sample) in samples.iter().enumerate() {
        if index > 0 {
            variants.push_str(",\n");
        }
        variants.push_str(&format!(
            "    {{\"engine\": \"{}\", \"tas\": \"{}\", \"mean_ns\": {:.1}, \
             \"min_ns\": {}, \"max_ns\": {}}}",
            sample.engine, sample.tas, sample.mean_ns, sample.min_ns, sample.max_ns
        ));
    }
    let json = format!(
        "{{\n  \"experiment\": \"renaming_network_engine\",\n  \
         \"network\": \"odd_even_mergesort\",\n  \"width\": {WIDTH},\n  \
         \"participants\": {PARTICIPANTS},\n  \"networks_per_execution\": {ROUNDS},\n  \
         \"executions\": {EXECUTIONS},\n  \"variants\": [\n{variants}\n  ],\n  \
         \"speedup_hardware\": {:.3},\n  \"speedup_two_process\": {:.3}\n}}\n",
        speedup(samples, "hardware"),
        speedup(samples, "two_process"),
    );
    std::fs::write("BENCH_renaming_network.json", json)
}

fn main() {
    run_table::<TwoProcessTas>(
        "E3 — renaming network over odd-even mergesort (randomized two-process TAS comparators)",
    )
    .print();
    run_table::<HardwareTas>(
        "E3/E13 — same networks with hardware (atomic swap) comparators: the deterministic variant",
    )
    .print();

    let samples = engine_comparison();
    engine_table(&samples).print();
    println!(
        "speedup (locked / compiled): hardware {:.2}x, two-process {:.2}x",
        speedup(&samples, "hardware"),
        speedup(&samples, "two_process"),
    );
    match write_json(&samples) {
        Ok(()) => println!("wrote BENCH_renaming_network.json"),
        Err(error) => eprintln!("failed to write BENCH_renaming_network.json: {error}"),
    }
}
