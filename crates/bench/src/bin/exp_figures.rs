//! Experiment E11: regenerate the paper's structural figures.
//!
//! Figure 1 illustrates the BitBatching batch layout (halving batches with a
//! logarithmic tail); Figure 2 illustrates one "A–B–C sandwich" stage of the
//! adaptive sorting-network construction. Both are regenerated here from the
//! actual data structures.
//!
//! Run with `cargo run --release -p renaming-bench --bin exp_figures`.

use adaptive_renaming::bit_batching::BitBatchingRenaming;
use renaming_bench::Table;
use sortnet::adaptive::AdaptiveNetwork;
use sortnet::family::NetworkFamily;
use tas::ratrace::RatRaceTas;

fn main() {
    figure_1();
    figure_2();
}

fn figure_1() {
    println!("Figure 1 — BitBatching batch layout (regenerated)\n");
    for n in [64usize, 1024] {
        let batches = BitBatchingRenaming::<RatRaceTas>::batch_layout(n);
        let mut table = Table::new(
            &format!("batches for n = {n}"),
            &[
                "batch",
                "positions (1-based)",
                "size",
                "size as fraction of n",
            ],
        );
        for (index, batch) in batches.iter().enumerate() {
            table.row(vec![
                format!("B{}", index + 1),
                format!("{}..={}", batch.start + 1, batch.end),
                batch.len().to_string(),
                format!("{:.3}", batch.len() as f64 / n as f64),
            ]);
        }
        table.print();
    }
}

fn figure_2() {
    println!("Figure 2 — one stage of the adaptive sorting network (regenerated)\n");
    let network = AdaptiveNetwork::new(NetworkFamily::OddEven, 3);
    let mut table = Table::new(
        "sections of S3 in traversal order (A-sandwich around S2 around S1 around S0)",
        &["section", "channels", "width", "depth (stages)"],
    );
    for section in network.sections() {
        table.row(vec![
            section.kind.to_string(),
            format!("{}..{}", section.offset, section.offset + section.width()),
            section.width().to_string(),
            section.schedule.depth().to_string(),
        ]);
    }
    table.print();
    println!(
        "Each A_j/C_j pair sandwiches the inner network on the channels above l_j = w_(j-1)/2,\n\
         exactly as in the paper's Figure 2; the inner network B occupies the low channels."
    );
}
