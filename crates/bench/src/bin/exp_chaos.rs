//! Chaos harness: seeded kill-storm → restart → recover → verify cycles
//! over a file-backed (named) arena.
//!
//! Each cycle creates a named arena on disk, forks a fleet of children
//! that attach-by-inheritance and churn a `RobustLeaseTable` while
//! recording into arena-resident flight-recorder rings, then drives a
//! deterministic `FaultPlan` against them: SIGKILL at randomized
//! operation indices, SIGSTOP/SIGCONT stalls (with a mid-stall sweep
//! proving a *stalled* process's leases survive — slow is not dead), and
//! torn-write injection (lease slots claimed with no owner published,
//! free-list data bits with no summary flag). The storm then kills
//! whatever is left, the parent re-attaches **by path** as a fresh
//! restart, runs `recover`, and verifies:
//!
//! * the recovery wins its attach epoch and reports the arena dirty;
//! * every dead child's flight-recorder tail is recovered as a postmortem;
//! * after recovery + one sweep the namespace is exactly whole again — no
//!   lost names, no duplicates (`assert_tight_namespace` over a full
//!   re-grant);
//! * torn free-list pushes are findable again after summary repair;
//! * a second recovery at a later epoch changes nothing
//!   (`RobustLeaseTable::state_snapshot` byte-identical).
//!
//! Modes: `--smoke` runs 50 fixed seeds (CI), the default runs 200.
//! Any violation prints the seed and exits nonzero.

#[cfg(all(unix, not(miri)))]
mod harness {
    use adaptive_renaming::free_list::{FreeList, FreeListKind};
    use adaptive_renaming::recovery::{recover, recover_with};
    use adaptive_renaming::robust::RobustLeaseTable;
    use adaptive_renaming::traits::assert_tight_namespace;
    use obs::FlightRecorder;
    use shmem::adversary::{ChildFault, FaultAction, FaultPlan};
    use shmem::arena::{os_process_alive, Arena};
    use shmem::process::{ProcessCtx, ProcessId};
    use shmem::procs::{fork_child, kill_child, resume_child, stop_child, wait_child, ChildExit};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    const CHILDREN: usize = 4;
    const OPS_PER_CHILD: u64 = 30;
    const CAPACITY: usize = 8;
    const RING_CAPACITY: usize = 16;
    const FREE_BOUND: usize = 256;

    /// Everything the cycle shares through the named arena. Built with the
    /// same allocation sequence by the creator and by the re-attaching
    /// "restarted" process, so every offset matches.
    struct Shared {
        table: Arc<RobustLeaseTable>,
        recorder: Arc<FlightRecorder>,
        free: FreeList,
        progress: shmem::arena::ArenaSliceRef<AtomicU64>,
    }

    fn footprint() -> usize {
        RobustLeaseTable::footprint(CAPACITY)
            + FlightRecorder::footprint(CHILDREN, RING_CAPACITY)
            + FreeList::footprint(FREE_BOUND, FreeListKind::Hierarchical)
            + CHILDREN * 64
    }

    fn build(arena: &Arc<Arena>) -> Shared {
        Shared {
            table: Arc::new(RobustLeaseTable::with_capacity_in(arena, CAPACITY)),
            recorder: FlightRecorder::new_in(arena, CHILDREN, RING_CAPACITY),
            free: FreeList::with_kind_in(arena, FREE_BOUND, FreeListKind::Hierarchical),
            progress: arena.alloc_slice::<AtomicU64>(CHILDREN).pin(arena),
        }
    }

    fn arena_path(seed: u64) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "exp_chaos_{}_{seed:06}.arena",
            shmem::arena::os_pid()
        ))
    }

    /// Runs one seeded cycle; returns a violation description on failure.
    pub fn run_cycle(seed: u64) -> Result<(), String> {
        let path = arena_path(seed);
        let _ = std::fs::remove_file(&path);
        let outcome = run_cycle_at(seed, &path);
        let _ = std::fs::remove_file(&path);
        outcome
    }

    fn run_cycle_at(seed: u64, path: &std::path::Path) -> Result<(), String> {
        let fail = |message: String| Err(format!("seed {seed}: {message}"));
        let arena = Arena::file_create(path, footprint())
            .map_err(|error| format!("seed {seed}: create: {error}"))?;
        let shared = build(&arena);
        let plan = FaultPlan::from_seed(seed, CHILDREN, OPS_PER_CHILD);

        // ---- Serve: fork the fleet -----------------------------------
        let pids: Vec<i32> = (0..CHILDREN)
            .map(|worker| {
                let ctx = ProcessCtx::new(ProcessId::new(worker), seed ^ worker as u64);
                let table = Arc::clone(&shared.table);
                let recorder = Arc::clone(&shared.recorder);
                let progress = shared.progress.clone();
                fork_child(move || {
                    let mut ctx = ctx;
                    let writer = recorder.writer(worker);
                    writer.attach_current_process();
                    obs::bind_ring(writer);
                    let registration = match table.register_current_process() {
                        Ok(registration) => registration,
                        Err(_) => return,
                    };
                    for _ in 0..OPS_PER_CHILD {
                        let mut tries = 0u32;
                        let name = loop {
                            match table.acquire(&mut ctx, registration.tag()) {
                                Ok(name) => break Some(name),
                                Err(_) if tries < 1000 => {
                                    tries += 1;
                                    std::thread::yield_now();
                                }
                                Err(_) => break None,
                            }
                        };
                        let Some(name) = name else { return };
                        // Publish progress while *holding* the lease and
                        // dwell a little, so planned faults land mid-lease.
                        progress[worker].fetch_add(1, Ordering::SeqCst);
                        for _ in 0..500 {
                            std::hint::spin_loop();
                        }
                        table.release(&mut ctx, name);
                    }
                })
            })
            .collect();

        // ---- Storm: drive the fault plan -----------------------------
        let mut supervisor = ProcessCtx::new(ProcessId::new(CHILDREN), seed);
        let mut killed: Vec<usize> = Vec::new();
        let mut stalled: Vec<usize> = Vec::new();
        let mut pending: Vec<ChildFault> = plan.faults().to_vec();
        let mut torn_names: Vec<usize> = Vec::new();
        let mut torn_pushes: Vec<usize> = Vec::new();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        while !pending.is_empty() {
            if std::time::Instant::now() > deadline {
                return fail("storm timed out waiting for child progress".into());
            }
            let mut index = 0;
            while index < pending.len() {
                let fault = pending[index];
                // Fire only once the child has visibly completed an op: the
                // first progress bump proves ring-attach and registration
                // ran, so every killed child has a postmortem tail to find.
                let threshold = fault.at_op.max(1);
                let done = match fault.action {
                    _ if shared.progress[fault.child].load(Ordering::SeqCst) < threshold => {
                        // The child may already be dead short of the mark
                        // (it gave up on an exhausted table): fire anyway
                        // once it stops moving. Cheap check: a kill target
                        // that exited is already what the storm wanted.
                        false
                    }
                    FaultAction::Kill => {
                        kill_child(pids[fault.child]);
                        killed.push(fault.child);
                        true
                    }
                    FaultAction::Stall { .. } => {
                        stop_child(pids[fault.child]);
                        stalled.push(fault.child);
                        true
                    }
                    FaultAction::TornWrite => {
                        // Half-written states, injected from outside the
                        // children: a claimed-but-ownerless lease slot and
                        // an unflagged free-list data bit.
                        for name in 1..=CAPACITY {
                            if shared.table.inject_torn_slot(&mut supervisor, name) {
                                torn_names.push(name);
                                break;
                            }
                        }
                        let torn = FREE_BOUND - (seed as usize % 64) - 1;
                        if shared.free.inject_torn_push(torn) {
                            torn_pushes.push(torn);
                        }
                        true
                    }
                };
                if done {
                    pending.remove(index);
                } else {
                    index += 1;
                }
            }
            std::thread::yield_now();
        }

        // A stalled process is slow, not dead: while frozen it still owns
        // its leases, and a liveness sweep must leave them alone.
        if let Some(&frozen) = stalled.first() {
            let frozen_pid = pids[frozen] as u32;
            if !os_process_alive(frozen_pid) {
                return fail(format!("stalled child {frozen} probes dead"));
            }
            let held_before: Vec<usize> = (1..=CAPACITY)
                .filter(|&name| shared.table.owner_pid(name) == Some(frozen_pid))
                .collect();
            shared.table.sweep_dead_processes(&mut supervisor);
            for &name in &held_before {
                if shared.table.owner_pid(name) != Some(frozen_pid) {
                    return fail(format!(
                        "mid-stall sweep reclaimed name {name} from live (stalled) pid {frozen_pid}"
                    ));
                }
            }
        }

        // Every child must have visibly completed an op before the fleet
        // kill, for the same reason as the per-fault threshold above: a
        // postmortem tail only exists once the ring is attached. Faulted
        // children already cleared the bar; wait for the rest.
        for child in 0..CHILDREN {
            if killed.contains(&child) || stalled.contains(&child) {
                continue;
            }
            while shared.progress[child].load(Ordering::SeqCst) == 0 {
                if std::time::Instant::now() > deadline {
                    return fail(format!("child {child} never completed an op"));
                }
                std::thread::yield_now();
            }
        }

        // Fleet kill: resume the stalled (SIGKILL terminates stopped
        // processes, but the exit-status accounting is cleaner running),
        // then kill everything still up and reap the lot.
        for &child in &stalled {
            resume_child(pids[child]);
        }
        for (child, &pid) in pids.iter().enumerate() {
            if !killed.contains(&child) {
                kill_child(pid);
            }
        }
        let mut dead_pids: Vec<u32> = Vec::new();
        for (child, &pid) in pids.iter().enumerate() {
            let exit = wait_child(pid);
            if killed.contains(&child) && !exit.killed() && exit != ChildExit::Exited(0) {
                return fail(format!("child {child} odd exit: {exit:?}"));
            }
            dead_pids.push(pid as u32);
        }

        // The creator's mapping goes away entirely: the restart below
        // shares nothing with this incarnation but the file.
        let was_clean_shutdown = false; // the fleet died; no mark_clean ran
        drop(shared);
        drop(arena);

        // ---- Restart: attach by path, recover, verify ----------------
        let arena =
            Arena::file_attach(path).map_err(|error| format!("seed {seed}: attach: {error}"))?;
        if !arena.was_dirty() && !was_clean_shutdown {
            return fail("crashed fleet left a clean dirty-flag".into());
        }
        let shared = build(&arena);
        let mut ctx = ProcessCtx::new(ProcessId::new(0), seed ^ 0xDEAD);
        obs::postmortem::install(Arc::clone(&shared.recorder));
        let report = recover(&mut ctx, &shared.table, &[&shared.free]);
        obs::postmortem::uninstall();
        if !report.won {
            return fail(format!("fresh attach lost the epoch CAS: {report:?}"));
        }

        // Every dead child that got far enough to register must come back
        // as a postmortem with its ring tail.
        let reports = obs::postmortem::take_reports();
        for (child, &pid) in dead_pids.iter().enumerate() {
            if !reports.iter().any(|postmortem| postmortem.pid == pid) {
                return fail(format!("no postmortem for dead child {child} (pid {pid})"));
            }
        }

        // Drain the quarantine (the "next sweep" of the protocol); after
        // that nothing may be live and the namespace must be exactly whole.
        shared.table.sweep_dead_processes(&mut ctx);
        if adaptive_renaming::lease::LongLivedRenaming::live_leases(&*shared.table) != 0 {
            return fail(format!(
                "leases survived recovery: {:?}",
                shared.table.state_snapshot()
            ));
        }
        if shared.table.quarantined() != 0 {
            return fail("quarantine not drained by the sweep".into());
        }
        let registration = shared
            .table
            .register_current_process()
            .map_err(|error| format!("seed {seed}: re-register: {error}"))?;
        let mut names = Vec::new();
        for _ in 0..CAPACITY {
            match shared.table.acquire(&mut ctx, registration.tag()) {
                Ok(name) => names.push(name),
                Err(error) => return fail(format!("lost name: regrant failed: {error}")),
            }
        }
        assert_tight_namespace(&names).map_err(|violation| {
            format!("seed {seed}: names lost or duplicated after recovery: {violation}")
        })?;
        for &name in &names {
            shared.table.release(&mut ctx, name);
        }

        // Torn free-list pushes are findable again after summary repair.
        for &torn in &torn_pushes {
            let mut found = false;
            while let Some(popped) = shared.free.pop() {
                if popped == torn {
                    found = true;
                    break;
                }
            }
            if !found {
                return fail(format!("torn push of {torn} lost despite summary repair"));
            }
        }
        if !torn_pushes.is_empty() && report.summary_repairs == 0 {
            return fail("torn pushes injected but no summary repair reported".into());
        }

        // Idempotence: a second recovery (next epoch) changes nothing.
        let snapshot = shared.table.state_snapshot();
        let free_snapshot = shared.free.snapshot_words();
        let epoch = shared.table.last_recovered_epoch() + 1;
        let second = recover_with(
            &mut ctx,
            &shared.table,
            &[&shared.free],
            epoch,
            |_| true,
            false,
        );
        if !second.won || second.reclaimed != 0 || second.quarantined != 0 {
            return fail(format!("second recovery did work: {second:?}"));
        }
        if shared.table.state_snapshot() != snapshot
            || shared.free.snapshot_words() != free_snapshot
        {
            return fail("second recovery changed observable state".into());
        }

        arena.mark_clean();
        let _ = torn_names; // reclaimed via quarantine; counted in `names` above
        Ok(())
    }

    pub fn run(seeds: std::ops::Range<u64>) -> i32 {
        let total = seeds.end - seeds.start;
        let mut violations = 0;
        for seed in seeds {
            match run_cycle(seed) {
                Ok(()) => {
                    if seed % 25 == 0 {
                        println!("seed {seed}: ok");
                    }
                }
                Err(violation) => {
                    violations += 1;
                    eprintln!("VIOLATION: {violation}");
                }
            }
        }
        println!(
            "exp_chaos: {}/{total} kill-storm/restart cycles clean",
            total - violations
        );
        if violations > 0 {
            1
        } else {
            0
        }
    }
}

#[cfg(all(unix, not(miri)))]
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|arg| arg == "--smoke");
    // Fixed seed ranges: CI replays the same storms every run. A bare
    // integer argument overrides the cycle count (tools/chaos_soak.sh).
    let cycles = args
        .iter()
        .find_map(|arg| arg.parse::<u64>().ok())
        .unwrap_or(if smoke { 50 } else { 200 });
    std::process::exit(harness::run(0..cycles));
}

#[cfg(not(all(unix, not(miri))))]
fn main() {
    eprintln!("exp_chaos requires unix fork semantics (and not miri)");
}
