//! Experiment E12: the test-and-set substrate (§2).
//!
//! The paper assumes a two-process test-and-set with `O(1)` expected steps
//! (Tromp–Vitányi) and an adaptive `n`-process test-and-set with `O(log² k)`
//! steps w.h.p. (RatRace). This experiment measures both, plus the
//! tournament and hardware baselines, across contention levels.
//!
//! Run with `cargo run --release -p renaming-bench --bin exp_tas`.

use renaming_bench::{fmt1, log2, Aggregate, Table};
use shmem::adversary::ExecConfig;
use shmem::executor::Executor;
use std::sync::Arc;
use tas::ratrace::RatRaceTas;
use tas::tournament::TournamentTas;
use tas::two_process::TwoProcessTas;
use tas::{Side, TestAndSet, TwoPartyTas};

fn main() {
    two_process_table();
    n_process_table();
}

fn two_process_table() {
    let mut table = Table::new(
        "E12a — two-process test-and-set (expected O(1) steps)",
        &[
            "seeds",
            "steps/play (mean)",
            "steps/play (max)",
            "winners per object",
        ],
    );
    let trials = 50u64;
    let mut stats = Vec::new();
    let mut winners_ok = true;
    for seed in 0..trials {
        let object = Arc::new(TwoProcessTas::new());
        let outcome = Executor::new(ExecConfig::new(seed)).run(2, {
            let object = Arc::clone(&object);
            move |ctx| {
                let side = if ctx.id().as_usize() == 0 {
                    Side::Top
                } else {
                    Side::Bottom
                };
                object.play(ctx, side)
            }
        });
        winners_ok &= outcome.results().into_iter().filter(|w| *w).count() == 1;
        stats.extend(outcome.per_process_steps());
    }
    let agg = Aggregate::of_register_steps(&stats);
    table.row(vec![
        trials.to_string(),
        fmt1(agg.mean),
        agg.max.to_string(),
        if winners_ok {
            "always exactly 1".into()
        } else {
            "VIOLATED".into()
        },
    ]);
    table.print();
}

fn n_process_table() {
    let mut table = Table::new(
        "E12b — n-process test-and-set under contention k",
        &[
            "k",
            "RatRace steps (mean)",
            "RatRace steps (max)",
            "log²k ref",
            "Tournament steps (mean)",
            "Hardware-TAS capable",
        ],
    );
    for k in [2usize, 8, 32, 128] {
        let ratrace = Arc::new(RatRaceTas::new());
        let outcome = Executor::new(ExecConfig::new(k as u64)).run(k, {
            let ratrace = Arc::clone(&ratrace);
            move |ctx| ratrace.test_and_set(ctx)
        });
        let winners = outcome.results().into_iter().filter(|w| *w).count();
        let ratrace_agg = Aggregate::of_register_steps(&outcome.per_process_steps());

        let tournament = Arc::new(TournamentTas::new(k));
        let outcome = Executor::new(ExecConfig::new(k as u64)).run(k, {
            let tournament = Arc::clone(&tournament);
            move |ctx| tournament.test_and_set(ctx)
        });
        let tournament_agg = Aggregate::of_register_steps(&outcome.per_process_steps());

        table.row(vec![
            k.to_string(),
            fmt1(ratrace_agg.mean),
            ratrace_agg.max.to_string(),
            fmt1(log2(k) * log2(k)),
            fmt1(tournament_agg.mean),
            if winners == 1 {
                "1 winner".into()
            } else {
                "VIOLATED".into()
            },
        ]);
    }
    table.print();
}
