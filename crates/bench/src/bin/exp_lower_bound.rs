//! Experiment E7: the Ω(log k) lower bound (Theorem 5).
//!
//! Theorem 5 shows every adaptive strong renaming algorithm (even with
//! unit-cost test-and-set) has worst-case expected step complexity
//! `Ω(c · log k)`. We measure the mean per-process cost — in register steps
//! and in unit-cost test-and-set invocations — of every renaming
//! implementation in this workspace and report the ratio to `log₂ k`: the
//! bound predicts the ratio never collapses towards zero as `k` grows.
//!
//! Run with `cargo run --release -p renaming-bench --bin exp_lower_bound`.

use adaptive_renaming::adaptive::AdaptiveRenaming;
use adaptive_renaming::bit_batching::BitBatchingRenaming;
use adaptive_renaming::linear_probe::LinearProbeRenaming;
use adaptive_renaming::traits::Renaming;
use renaming_bench::{fmt1, log2, Aggregate, Table};
use shmem::adversary::ExecConfig;
use shmem::executor::Executor;
use std::sync::Arc;
use tas::ratrace::RatRaceTas;

fn measure<R, F>(make: F, k: usize, seeds: &[u64]) -> (f64, f64)
where
    R: Renaming + 'static,
    F: Fn() -> R,
{
    let mut steps = 0.0;
    let mut tas = 0.0;
    for &seed in seeds {
        let renaming = Arc::new(make());
        let outcome = Executor::new(ExecConfig::new(seed)).run(k, {
            let renaming = Arc::clone(&renaming);
            move |ctx| renaming.acquire(ctx).expect("capacity suffices")
        });
        steps += Aggregate::of_register_steps(&outcome.per_process_steps()).mean;
        tas += Aggregate::of_tas_invocations(&outcome.per_process_steps()).mean;
    }
    (steps / seeds.len() as f64, tas / seeds.len() as f64)
}

fn main() {
    let seeds: Vec<u64> = (0..3).collect();
    let mut table = Table::new(
        "E7 — measured mean per-process cost vs the Ω(log k) lower bound",
        &[
            "k",
            "log2 k",
            "adaptive steps",
            "adaptive steps / log k",
            "adaptive TAS ops",
            "bitbatching steps",
            "linear-probe steps",
        ],
    );

    for k in [2usize, 4, 8, 16, 32, 64] {
        let (adaptive_steps, adaptive_tas) = measure(AdaptiveRenaming::default, k, &seeds);
        let (bitbatching_steps, _) = measure(
            || BitBatchingRenaming::with_factory(k.max(2), RatRaceTas::new),
            k,
            &seeds,
        );
        let (linear_steps, _) = measure(
            || {
                LinearProbeRenaming::with_slots(
                    (0..k).map(|_| RatRaceTas::new()).collect::<Vec<_>>(),
                )
            },
            k,
            &seeds,
        );
        let reference = log2(k).max(1.0);
        table.row(vec![
            k.to_string(),
            fmt1(log2(k)),
            fmt1(adaptive_steps),
            fmt1(adaptive_steps / reference),
            fmt1(adaptive_tas),
            fmt1(bitbatching_steps),
            fmt1(linear_steps),
        ]);
    }
    table.print();

    println!(
        "Every implementation spends at least on the order of log k steps per process, as the\n\
         Theorem 5 lower bound requires; the adaptive algorithm tracks the bound most closely,\n\
         while linear probing grows linearly in k."
    );
}
