//! Experiment E10: ℓ-test-and-set and m-valued fetch-and-increment
//! (Lemma 5, Theorem 6).
//!
//! For a grid of contention levels `k` and value bounds `m`, `k` processes
//! each perform one `fetch_and_increment`. Reported: per-process cost against
//! the `log k · log m` reference, the returned value set, and the
//! linearizability verdict on the recorded history. A second table reports
//! ℓ-test-and-set winner counts.
//!
//! Run with `cargo run --release -p renaming-bench --bin exp_fetch_increment`.

use adaptive_renaming::fetch_increment::{BoundedFetchIncrement, FetchIncrementSpec};
use adaptive_renaming::ltas::BoundedTas;
use renaming_bench::{fmt1, log2, Aggregate, Table};
use shmem::adversary::ExecConfig;
use shmem::consistency::check_linearizable;
use shmem::executor::Executor;
use shmem::history::Recorder;
use std::sync::Arc;

fn main() {
    let mut fai = Table::new(
        "E10 — m-valued fetch-and-increment: cost and linearizability",
        &[
            "k",
            "m",
            "steps/op (mean)",
            "steps/op (max)",
            "log k · log m ref",
            "values returned",
            "linearizable",
        ],
    );

    for (k, m) in [(4usize, 16u64), (8, 16), (8, 64), (16, 64), (16, 256)] {
        let object = Arc::new(BoundedFetchIncrement::new(m));
        let recorder: Arc<Recorder<(), u64>> = Arc::new(Recorder::new());
        let outcome = Executor::new(ExecConfig::new(k as u64 + m)).run(k, {
            let object = Arc::clone(&object);
            let recorder = Arc::clone(&recorder);
            move |ctx| {
                let invoke = recorder.invoke();
                let value = object.fetch_and_increment(ctx);
                recorder.record(ctx.id(), (), value, invoke);
                value
            }
        });
        let steps = Aggregate::of_register_steps(&outcome.per_process_steps());
        let mut values = outcome.results();
        values.sort_unstable();
        let consecutive = values == (0..k as u64).collect::<Vec<_>>();
        let history = recorder.take_history();
        let linearizable = check_linearizable(&FetchIncrementSpec { limit: m }, &history).is_ok();
        fai.row(vec![
            k.to_string(),
            m.to_string(),
            fmt1(steps.mean),
            steps.max.to_string(),
            fmt1(log2(k) * log2(m as usize)),
            if consecutive {
                format!("0..{k}")
            } else {
                format!("{values:?}")
            },
            if linearizable {
                "yes".into()
            } else {
                "VIOLATED".into()
            },
        ]);
    }
    fai.print();

    let mut ltas = Table::new(
        "E10 — ℓ-test-and-set winner counts (Lemma 5)",
        &["k", "limit ℓ", "winners", "expected min(ℓ, k)"],
    );
    for (k, limit) in [(8usize, 1usize), (8, 3), (8, 8), (12, 5), (3, 6)] {
        let object = Arc::new(BoundedTas::new(limit));
        let outcome = Executor::new(ExecConfig::new((k + limit) as u64)).run(k, {
            let object = Arc::clone(&object);
            move |ctx| object.invoke(ctx)
        });
        let winners = outcome.results().into_iter().filter(|w| *w).count();
        ltas.row(vec![
            k.to_string(),
            limit.to_string(),
            winners.to_string(),
            limit.min(k).to_string(),
        ]);
    }
    ltas.print();
}
