//! Experiment E4: the adaptive sorting network's traversal bound (Theorem 2).
//!
//! The §6.1 construction guarantees that a value entering wire `n` and leaving
//! wire `m` traverses `O(log^c max(n, m))` comparators. We materialize the
//! level-3 truncation (256 wires, odd-even base family, c = 2), drop a single
//! smallest value on wire `n`, and count the comparators it passes through on
//! its way to output 0, alongside the analytic per-wire bound and the total
//! network depth.
//!
//! Run with `cargo run --release -p renaming-bench --bin exp_adaptive_network`.

use renaming_bench::{fmt1, log2, Table};
use sortnet::adaptive::AdaptiveNetwork;
use sortnet::family::NetworkFamily;

fn main() {
    let adaptive = AdaptiveNetwork::new(NetworkFamily::OddEven, 3);
    let network = adaptive.materialize();
    println!(
        "Adaptive network: level 3, width {}, total depth {} stages, {} comparators\n",
        network.width(),
        network.depth(),
        network.size()
    );

    let mut table = Table::new(
        "E4 — comparators traversed by a value entering wire n (single zero among ones)",
        &[
            "input wire n",
            "output wire",
            "comparators traversed",
            "per-wire bound (Thm 2)",
            "log²(n+2) reference",
            "full network depth",
        ],
    );

    for port in [1usize, 2, 4, 8, 16, 32, 64, 128, 200] {
        let mut input = vec![1u8; network.width()];
        input[port] = 0;
        let trace = network.trace(&input);
        let entry = trace[port];
        table.row(vec![
            port.to_string(),
            entry.output_wire.to_string(),
            entry.comparators_traversed.to_string(),
            adaptive.traversal_depth_bound(port).to_string(),
            fmt1(log2(port + 2) * log2(port + 2)),
            network.depth().to_string(),
        ]);
    }
    table.print();

    println!(
        "The traversal counts grow with log²(n) (c = 2 for the constructible base family), \
         far below the full network depth — the adaptivity Theorem 2 promises."
    );
}
