//! Adaptive *loose* renaming via the splitter tree alone.
//!
//! Taking the temporary names of the [`TempName`]
//! stage as final names already solves the *loose* adaptive renaming problem
//! (namespace polynomial in `k`, here `O(k²)` with high probability) in
//! `O(log k)` steps — this is essentially the adaptive loose algorithm of
//! Alistarh et al. \[12\] that the paper builds on. It is included as a named
//! object because it is the natural comparison point for the *tight*
//! adaptive algorithm: the second (renaming-network) stage is exactly the
//! price paid for shrinking the namespace from `O(k²)` to exactly `k`.

use crate::error::RenamingError;
use crate::temp_name::TempName;
use crate::traits::Renaming;
use shmem::process::ProcessCtx;
use std::fmt;

/// Adaptive loose renaming: unique names polynomial in the contention, in
/// `O(log k)` steps, with no tightness guarantee.
///
/// # Example
///
/// ```
/// use adaptive_renaming::loose::LooseRenaming;
/// use adaptive_renaming::traits::{assert_unique_names, Renaming};
/// use shmem::adversary::ExecConfig;
/// use shmem::executor::Executor;
/// use std::sync::Arc;
///
/// let renaming = Arc::new(LooseRenaming::new());
/// let outcome = Executor::new(ExecConfig::new(3)).run(6, {
///     let renaming = Arc::clone(&renaming);
///     move |ctx| renaming.acquire(ctx).expect("loose renaming never fails")
/// });
/// assert!(assert_unique_names(&outcome.results()).is_ok());
/// ```
pub struct LooseRenaming {
    temp: TempName,
}

impl LooseRenaming {
    /// Creates the loose renaming object.
    pub fn new() -> Self {
        LooseRenaming {
            temp: TempName::new(),
        }
    }

    /// The underlying splitter tree.
    pub fn splitter_tree(&self) -> &TempName {
        &self.temp
    }
}

impl Default for LooseRenaming {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for LooseRenaming {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LooseRenaming")
            .field("allocated_splitters", &self.temp.allocated_splitters())
            .finish()
    }
}

impl Renaming for LooseRenaming {
    fn acquire(&self, ctx: &mut ProcessCtx) -> Result<usize, RenamingError> {
        Ok(self.temp.acquire(ctx))
    }

    fn capacity(&self) -> Option<usize> {
        None
    }

    fn is_adaptive(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::assert_unique_names;
    use shmem::adversary::{ArrivalSchedule, ExecConfig, YieldPolicy};
    use shmem::executor::Executor;
    use shmem::process::ProcessId;
    use std::sync::Arc;

    #[test]
    fn names_are_unique_but_not_necessarily_tight() {
        let renaming = LooseRenaming::new();
        let mut names = Vec::new();
        for id in 0..20usize {
            let mut ctx = ProcessCtx::new(ProcessId::new(id), 3);
            names.push(renaming.acquire(&mut ctx).unwrap());
        }
        assert_unique_names(&names).unwrap();
        // The namespace is loose: names can exceed k, but stay polynomial.
        assert!(names.iter().all(|&name| name <= 20 * 20 * 20));
    }

    #[test]
    fn concurrent_acquisitions_are_unique_and_cheap() {
        for seed in 0..4 {
            let renaming = Arc::new(LooseRenaming::new());
            let k = 16usize;
            let config = ExecConfig::new(seed)
                .with_yield_policy(YieldPolicy::Probabilistic(0.2))
                .with_arrival(ArrivalSchedule::Simultaneous);
            let outcome = Executor::new(config).run(k, {
                let renaming = Arc::clone(&renaming);
                move |ctx| renaming.acquire(ctx).unwrap()
            });
            assert_unique_names(&outcome.results()).unwrap();
            // The per-process cost is tiny compared to the tight algorithm:
            // just the splitter descent.
            assert!(outcome.step_summary().max_register_steps < 400);
        }
    }

    #[test]
    fn metadata_is_reported() {
        let renaming = LooseRenaming::new();
        assert_eq!(renaming.capacity(), None);
        assert!(renaming.is_adaptive());
        assert_eq!(renaming.splitter_tree().allocated_splitters(), 0);
        assert!(format!("{renaming:?}").contains("LooseRenaming"));
    }

    #[test]
    fn solo_process_gets_the_root_name() {
        let renaming = LooseRenaming::new();
        let mut ctx = ProcessCtx::new(ProcessId::new(0), 0);
        assert_eq!(renaming.acquire(&mut ctx).unwrap(), 1);
    }
}
