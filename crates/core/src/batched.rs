//! Release-side batching for long-lived renaming under churn.
//!
//! A [`BatchedRecycler`] wraps any [`LongLivedRenaming`] object with a small
//! set of striped *stashes* of released names. A release parks the name in
//! the stash of its stripe instead of paying the inner object's release
//! protocol; only when a stash reaches the batch size is the whole stash
//! flushed with one [`LongLivedRenaming::release_many_raw`] call — one
//! free-list seqlock bump (hence one admission-release operation) per
//! *batch* rather than per release. A lease consults the stashes first
//! (starting at the leasing process's home stripe) and falls back to the
//! inner object only when every stripe is empty, so stashed names are
//! recycled with a single mutex hand-off instead of a free-list round trip.
//! A cache-padded *occupancy word* — one advisory bit per stripe, kept in
//! sync under each stripe's lock — lets that consult skip empty stripes
//! with a single relaxed load instead of locking each mutex in turn.
//!
//! # What the batching trades away
//!
//! The concurrency bound is preserved exactly: a stashed name still counts
//! as *live* inside the inner object (its admission slot is returned only
//! when the flush lands), so the inner object never sees more than
//! `max_concurrent` simultaneous holders and every name ever granted stays
//! within the inner bound. What is lost is the *per-grant* tightness of the
//! bare [`Recycler`](crate::recycler::Recycler): a stash pops names in LIFO
//! order with no minimality guarantee, so a lease granted at point
//! contention `c` may carry a name above `c` (though never above
//! `max_concurrent`). This is the same loose-bound trade the
//! [`ShardedRecycler`](crate::sharded::ShardedRecycler) makes; histories
//! should be checked with
//! [`assert_loose_lease_namespace`](crate::lease::assert_loose_lease_namespace)
//! or plain uniqueness-and-bound assertions, not the tight checker.
//!
//! Because stashed names hold admission slots, a lease can observe
//! [`CapacityExceeded`](crate::error::RenamingError::CapacityExceeded) from
//! the inner object while a racing release is parking a name; the wrapper
//! re-sweeps the stashes once before surfacing the error. (The bare
//! recycler's admission has the same benign spurious-reject window.)
//!
//! The builder wraps every long-lived object in a batch-8 stash by default
//! — [`RenamingBuilder::lease_batch`](crate::builder::RenamingBuilder::lease_batch)
//! restores the bare tight recycler with `.lease_batch(1)`.

use crate::error::RenamingError;
use crate::lease::{LongLivedRenaming, NameLease};
use parking_lot::Mutex;
use shmem::pad::CachePadded;
use shmem::process::ProcessCtx;
use shmem::steps::StepKind;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default number of stash stripes: enough to keep release traffic from
/// serializing on one mutex at typical thread counts, few enough that the
/// all-stripes sweep on a lease miss stays cheap.
const DEFAULT_STRIPES: usize = 8;

/// Upper limit on stripes: occupancy is tracked in one 64-bit word.
const MAX_STRIPES: usize = 64;

/// Wraps a [`LongLivedRenaming`] object with striped release stashes that
/// flush in batches — see the [module documentation](self) for the
/// protocol and the loose-bound trade-off.
///
/// # Example
///
/// ```
/// use adaptive_renaming::batched::BatchedRecycler;
/// use adaptive_renaming::lease::LongLivedRenaming;
/// use adaptive_renaming::recycler::Recycler;
/// use adaptive_renaming::renaming_network::RenamingNetwork;
/// use shmem::process::{ProcessCtx, ProcessId};
/// use sortnet::batcher::odd_even_network;
/// use std::sync::Arc;
///
/// let inner: Arc<dyn LongLivedRenaming> = Arc::new(Recycler::new(
///     RenamingNetwork::<_>::new(odd_even_network(16)),
///     4,
/// ));
/// let batched = Arc::new(BatchedRecycler::new(inner, 4));
/// let mut ctx = ProcessCtx::new(ProcessId::new(0), 1);
///
/// let lease = Arc::clone(&batched).lease(&mut ctx).unwrap();
/// let name = lease.name();
/// lease.release(&mut ctx); // parked in a stash, not yet flushed
/// assert_eq!(batched.stashed_names(), 1);
/// let again = Arc::clone(&batched).lease(&mut ctx).unwrap();
/// assert_eq!(again.name(), name, "the stashed name is recycled directly");
/// ```
pub struct BatchedRecycler {
    inner: Arc<dyn LongLivedRenaming>,
    /// Released-name stashes, one mutex per stripe, each stripe on its own
    /// cache line: a release locks exactly one stripe (chosen by name), so
    /// padding keeps unrelated stripes from false-sharing.
    stashes: Box<[CachePadded<Mutex<Vec<usize>>>]>,
    /// Advisory occupancy mask: bit `s` is maintained under stripe `s`'s
    /// lock to mirror "stripe `s` is non-empty", so the lease fast path
    /// skips empty stripes with one load instead of locking each in turn.
    /// Lock-free readers may observe it stale in either direction; both
    /// staleness modes are benign (a missed name is recovered by the full
    /// sweep on the capacity-exceeded path, a spurious bit costs one lock).
    occupancy: CachePadded<AtomicU64>,
    batch: usize,
}

impl BatchedRecycler {
    /// Wraps `inner`, flushing each stash to the inner object once it holds
    /// `batch` names, with the default stripe count.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero (use `batch == 1` — or no wrapper at all —
    /// for unbatched releases).
    pub fn new(inner: Arc<dyn LongLivedRenaming>, batch: usize) -> Self {
        Self::with_stripes(inner, batch, DEFAULT_STRIPES)
    }

    /// Like [`BatchedRecycler::new`] with an explicit stripe count.
    ///
    /// # Panics
    ///
    /// Panics if `batch` or `stripes` is zero, or if `stripes` exceeds 64
    /// (occupancy is tracked in a single 64-bit word).
    pub fn with_stripes(inner: Arc<dyn LongLivedRenaming>, batch: usize, stripes: usize) -> Self {
        assert!(batch >= 1, "a release batch needs at least one slot");
        assert!(stripes >= 1, "a batched recycler needs at least one stripe");
        assert!(
            stripes <= MAX_STRIPES,
            "a batched recycler tracks at most {MAX_STRIPES} stripes in its occupancy word"
        );
        BatchedRecycler {
            inner,
            stashes: (0..stripes)
                .map(|_| CachePadded::new(Mutex::new(Vec::with_capacity(batch))))
                .collect(),
            occupancy: CachePadded::new(AtomicU64::new(0)),
            batch,
        }
    }

    /// The wrapped long-lived object.
    pub fn inner(&self) -> &Arc<dyn LongLivedRenaming> {
        &self.inner
    }

    /// The flush threshold: a stash is handed to the inner object's batch
    /// release once it holds this many names.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// The number of stash stripes.
    pub fn stripes(&self) -> usize {
        self.stashes.len()
    }

    /// Names currently parked in stashes (not yet flushed to the inner
    /// object). Diagnostics: momentarily stale while operations are in
    /// flight.
    pub fn stashed_names(&self) -> usize {
        self.stashes.iter().map(|stripe| stripe.lock().len()).sum()
    }

    /// Pops one stashed name, probing only stripes whose occupancy bit is
    /// set, starting at the given stripe so that concurrent leasers begin
    /// at different mutexes. One relaxed load when every stripe is empty —
    /// the common case under light churn.
    fn pop_stashed(&self, start: usize) -> Option<usize> {
        let mask = self.occupancy.load(Ordering::Relaxed); // lint: relaxed-ok(occupancy is a hint bitmap; the TAS acquisition validates it)
        if mask == 0 {
            return None;
        }
        let stripes = self.stashes.len();
        for offset in 0..stripes {
            let index = (start + offset) % stripes;
            if mask & (1 << index) != 0 {
                if let Some(name) = self.pop_stripe(index) {
                    return Some(name);
                }
            }
        }
        None
    }

    /// Pops one stashed name probing *every* stripe, ignoring the advisory
    /// occupancy mask. Used on the capacity-exceeded path, where a name the
    /// mask has not caught up with is the difference between recycling and a
    /// spurious rejection.
    fn pop_stashed_full(&self, start: usize) -> Option<usize> {
        let stripes = self.stashes.len();
        for offset in 0..stripes {
            if let Some(name) = self.pop_stripe((start + offset) % stripes) {
                return Some(name);
            }
        }
        None
    }

    /// Pops from one stripe, keeping its occupancy bit in sync under the
    /// stripe lock.
    fn pop_stripe(&self, index: usize) -> Option<usize> {
        let mut stash = self.stashes[index].lock();
        let name = stash.pop();
        if stash.is_empty() {
            self.occupancy.fetch_and(!(1 << index), Ordering::Relaxed); // lint: relaxed-ok(occupancy is a hint bitmap; the TAS acquisition validates it)
        }
        name
    }

    /// Flushes every stash to the inner object regardless of fill level.
    /// Useful at the end of a measured phase, before asserting on the inner
    /// object's counters, or to return admission slots that batching is
    /// holding open.
    pub fn flush(&self) {
        for (index, stripe) in self.stashes.iter().enumerate() {
            let drained = {
                let mut stash = stripe.lock();
                self.occupancy.fetch_and(!(1 << index), Ordering::Relaxed); // lint: relaxed-ok(occupancy is a hint bitmap; the TAS acquisition validates it)
                std::mem::take(&mut *stash)
            };
            if !drained.is_empty() {
                obs::count(obs::Metric::BatchedFlush);
                obs::event(obs::EventKind::Flush, index as u64, drained.len() as u64);
                self.inner.release_many_raw(&drained);
            }
        }
    }
}

impl LongLivedRenaming for BatchedRecycler {
    fn lease(self: Arc<Self>, ctx: &mut ProcessCtx) -> Result<NameLease, RenamingError> {
        let name = self.lease_raw(ctx)?;
        Ok(NameLease::new(name, self))
    }

    fn lease_raw(&self, ctx: &mut ProcessCtx) -> Result<usize, RenamingError> {
        // The stash consult is modeled as one shared read-modify-write: in
        // the common case it is one uncontended mutex hand-off on one cache
        // line, comparable to the free-list pop it replaces.
        ctx.record(StepKind::ReadModifyWrite);
        let home = ctx.id().as_usize() % self.stashes.len();
        if let Some(name) = self.pop_stashed(home) {
            obs::count(obs::Metric::BatchedStashHit);
            return Ok(name);
        }
        match self.inner.lease_raw(ctx) {
            Ok(name) => Ok(name),
            Err(RenamingError::CapacityExceeded { capacity }) => {
                // Stashed names hold admission slots open; a racing release
                // may have parked one between our sweep and the inner
                // rejection (or its occupancy bit may not be visible yet).
                // One full, mask-ignoring re-sweep keeps the reject honest.
                self.pop_stashed_full(home)
                    .ok_or(RenamingError::CapacityExceeded { capacity })
            }
            Err(error) => Err(error),
        }
    }

    fn release_raw(&self, name: usize) {
        let index = name % self.stashes.len();
        let drained = {
            let mut stash = self.stashes[index].lock();
            let was_empty = stash.is_empty();
            stash.push(name);
            if stash.len() >= self.batch {
                self.occupancy.fetch_and(!(1 << index), Ordering::Relaxed); // lint: relaxed-ok(occupancy is a hint bitmap; the TAS acquisition validates it)
                std::mem::take(&mut *stash)
            } else {
                if was_empty {
                    self.occupancy.fetch_or(1 << index, Ordering::Relaxed); // lint: relaxed-ok(occupancy is a hint bitmap; the TAS acquisition validates it)
                }
                Vec::new()
            }
        };
        // The flush happens outside the stripe lock: release_many_raw pays
        // one seqlock bump for the whole batch, and holding the mutex across
        // it would serialize releases against the inner free list.
        if !drained.is_empty() {
            obs::count(obs::Metric::BatchedFlush);
            obs::event(obs::EventKind::Flush, index as u64, drained.len() as u64);
            self.inner.release_many_raw(&drained);
        }
    }

    /// Batch releases are already amortized: they bypass the stashes and go
    /// straight to the inner object's batch release.
    fn release_many_raw(&self, names: &[usize]) {
        self.inner.release_many_raw(names);
    }

    fn max_concurrent(&self) -> Option<usize> {
        self.inner.max_concurrent()
    }

    /// Leases actually held by callers: the inner object's live count minus
    /// the names parked in stashes (live to the inner object, released from
    /// the caller's point of view).
    fn live_leases(&self) -> usize {
        self.inner
            .live_leases()
            .saturating_sub(self.stashed_names())
    }
}

impl fmt::Debug for BatchedRecycler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BatchedRecycler")
            .field("batch", &self.batch)
            .field("stripes", &self.stashes.len())
            .field("stashed", &self.stashed_names())
            .field("live", &self.live_leases())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recycler::Recycler;
    use crate::renaming_network::RenamingNetwork;
    use shmem::adversary::ExecConfig;
    use shmem::executor::Executor;
    use shmem::process::{ProcessCtx, ProcessId};
    use sortnet::batcher::odd_even_network;

    type NetworkRecycler = Recycler<RenamingNetwork<sortnet::network::ComparatorNetwork>>;

    fn batched(
        max_concurrent: usize,
        batch: usize,
    ) -> (Arc<BatchedRecycler>, Arc<NetworkRecycler>) {
        let recycler = Arc::new(Recycler::new(
            RenamingNetwork::<_>::new(odd_even_network(64)),
            max_concurrent,
        ));
        let inner: Arc<dyn LongLivedRenaming> = Arc::clone(&recycler) as _;
        (Arc::new(BatchedRecycler::new(inner, batch)), recycler)
    }

    fn ctx(id: usize, seed: u64) -> ProcessCtx {
        ProcessCtx::new(ProcessId::new(id), seed)
    }

    #[test]
    fn releases_park_in_the_stash_until_the_batch_fills() {
        let (object, recycler) = batched(8, 4);
        let mut ctx = ctx(0, 1);
        let mut names = Vec::new();
        for _ in 0..4 {
            names.push(object.lease_raw(&mut ctx).unwrap());
        }
        // Three releases stay parked: the inner free list never sees them.
        for &name in &names[..3] {
            object.release_raw(name);
        }
        assert_eq!(object.stashed_names(), 3);
        assert_eq!(recycler.free_names(), 0, "no flush below the batch size");
        assert_eq!(object.live_leases(), 1);
        assert_eq!(recycler.live_leases(), 4, "stashed names stay live inside");
        // Churn recycles straight from the stash, still without a flush.
        let reused = object.lease_raw(&mut ctx).unwrap();
        assert!(names.contains(&reused));
        assert_eq!(recycler.recycled_names(), 0);
        object.release_raw(reused);
        assert_eq!(object.stashed_names(), 3);
        object.release_raw(names[3]);
        // Names 1..=4 shared a stripe only if they collide mod the stripe
        // count; with the default 8 stripes each landed alone, so no stash
        // reached the batch size of 4. A manual flush drains them all.
        object.flush();
        assert_eq!(object.stashed_names(), 0);
        assert_eq!(recycler.live_leases(), 0);
        assert_eq!(recycler.free_names(), 4);
    }

    #[test]
    fn a_full_stripe_flushes_as_one_batch() {
        let recycler = Arc::new(Recycler::new(
            RenamingNetwork::<_>::new(odd_even_network(64)),
            8,
        ));
        let inner: Arc<dyn LongLivedRenaming> = Arc::clone(&recycler) as _;
        // One stripe: every release lands in the same stash.
        let object = Arc::new(BatchedRecycler::with_stripes(inner, 3, 1));
        let mut ctx = ctx(0, 2);
        let names: Vec<usize> = (0..3)
            .map(|_| object.lease_raw(&mut ctx).unwrap())
            .collect();
        object.release_raw(names[0]);
        object.release_raw(names[1]);
        assert_eq!(recycler.free_names(), 0);
        object.release_raw(names[2]); // third release fills the batch
        assert_eq!(object.stashed_names(), 0, "the whole stash flushed");
        assert_eq!(recycler.free_names(), 3);
        assert_eq!(object.live_leases(), 0);
    }

    #[test]
    fn stashed_names_do_not_defeat_the_admission_bound() {
        let (object, _recycler) = batched(2, 8);
        let mut ctx = ctx(0, 3);
        let a = object.lease_raw(&mut ctx).unwrap();
        let b = object.lease_raw(&mut ctx).unwrap();
        object.release_raw(a);
        object.release_raw(b);
        assert_eq!(object.live_leases(), 0);
        // Both admission slots are parked in stashes, but leases recycle
        // from the stash — the bound never spuriously blocks stash churn.
        let c = object.lease_raw(&mut ctx).unwrap();
        let d = object.lease_raw(&mut ctx).unwrap();
        assert_eq!(
            object.lease_raw(&mut ctx).unwrap_err(),
            RenamingError::CapacityExceeded { capacity: 2 }
        );
        assert!([a, b].contains(&c) && [a, b].contains(&d));
    }

    #[test]
    fn the_lease_surface_returns_raii_guards_through_the_stash() {
        let (object, _recycler) = batched(4, 2);
        let mut ctx = ctx(3, 4);
        let lease = Arc::clone(&object).lease(&mut ctx).unwrap();
        let name = lease.name();
        assert_eq!(object.live_leases(), 1);
        drop(lease); // Drop releases through the wrapper, hence the stash.
        assert_eq!(object.live_leases(), 0);
        assert_eq!(object.stashed_names(), 1);
        let again = Arc::clone(&object).lease(&mut ctx).unwrap();
        assert_eq!(again.name(), name);
    }

    #[test]
    fn concurrent_churn_keeps_names_unique_and_bounded() {
        // Shrunk under miri, whose interpreter runs the multi-threaded
        // churn at a fraction of native speed (the CI miri job runs this
        // module).
        let (seeds, workers, rounds) = if cfg!(miri) { (1, 4, 2) } else { (4, 8, 6) };
        for seed in 0..seeds {
            let (object, recycler) = batched(workers, 4);
            let outcome = Executor::new(ExecConfig::new(seed)).run(workers, {
                let object = Arc::clone(&object);
                move |ctx| {
                    let mut names = Vec::new();
                    for _ in 0..rounds {
                        let lease = Arc::clone(&object).lease(ctx).unwrap();
                        names.push(lease.name());
                        lease.release(ctx);
                    }
                    names
                }
            });
            let names = outcome.flattened();
            assert_eq!(names.len(), workers * rounds, "seed {seed}");
            assert!(
                names.iter().all(|&name| (1..=workers).contains(&name)),
                "seed {seed}: names must stay within max_concurrent, got {names:?}"
            );
            assert_eq!(object.live_leases(), 0, "seed {seed}");
            object.flush();
            assert_eq!(recycler.live_leases(), 0, "seed {seed}");
            assert_eq!(recycler.leaked_names(), 0, "seed {seed}");
        }
    }

    #[test]
    fn accessors_and_debug_report_the_configuration() {
        let (object, _recycler) = batched(4, 8);
        assert_eq!(object.batch(), 8);
        assert_eq!(object.stripes(), DEFAULT_STRIPES);
        assert_eq!(object.max_concurrent(), Some(4));
        assert_eq!(object.inner().max_concurrent(), Some(4));
        let rendered = format!("{object:?}");
        assert!(rendered.contains("BatchedRecycler"));
        assert!(rendered.contains("batch"));
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_batches_are_rejected() {
        let (_, recycler) = batched(2, 1);
        let inner: Arc<dyn LongLivedRenaming> = recycler as _;
        let _ = BatchedRecycler::new(inner, 0);
    }

    #[test]
    #[should_panic(expected = "at most 64 stripes")]
    fn more_stripes_than_occupancy_bits_are_rejected() {
        let (_, recycler) = batched(2, 1);
        let inner: Arc<dyn LongLivedRenaming> = recycler as _;
        let _ = BatchedRecycler::with_stripes(inner, 2, 65);
    }

    #[test]
    #[should_panic(expected = "at least one stripe")]
    fn zero_stripes_are_rejected() {
        let (_, recycler) = batched(2, 1);
        let inner: Arc<dyn LongLivedRenaming> = recycler as _;
        let _ = BatchedRecycler::with_stripes(inner, 2, 0);
    }
}
