//! Adaptive strong renaming, with applications to counting.
//!
//! This crate is a from-scratch Rust reproduction of the algorithms of
//! Alistarh, Aspnes, Censor-Hillel, Gilbert and Zadimoghaddam,
//! *Optimal-Time Adaptive Strong Renaming, with Applications to Counting*
//! (PODC 2011). It provides:
//!
//! * [`BitBatchingRenaming`] — the §4
//!   non-adaptive strong renaming algorithm: `n` processes obtain names
//!   `1..=n` by repeatedly sampling test-and-set objects over geometrically
//!   shrinking batches, using `O(log² n)` test-and-set probes per process with
//!   high probability.
//! * [`RenamingNetwork`] — the §5
//!   construction: any sorting network becomes a strong adaptive renaming
//!   object by replacing comparators with two-process test-and-sets. Runs on
//!   the compiled engine: the schedule is lowered to flat wire-map arrays and
//!   the test-and-sets live in a lock-free
//!   [`ComparatorSlab`], so a comparator
//!   play costs one array load on top of the test-and-set itself. The
//!   pre-compilation engine is kept as
//!   [`LockedRenamingNetwork`] for
//!   benchmark comparison.
//! * [`TempName`] — the §6.2 first stage: a randomized
//!   splitter tree assigning temporary names polynomial in the contention `k`.
//! * [`AdaptiveRenaming`] — the paper's headline
//!   result (§6): strong adaptive renaming into exactly `1..=k` with `O(log k)`
//!   expected step complexity, built from `TempName` plus a renaming network
//!   over the §6.1 unbounded adaptive sorting network.
//! * [`LinearProbeRenaming`] — the folklore
//!   `Θ(k)`-step baseline the paper's introduction compares against.
//! * [`MonotoneCounter`] — the §8.1
//!   monotone-consistent counter (renaming + max register), plus a
//!   compare-and-swap baseline counter and the `cnet` counting-network
//!   counter behind one facade: `<dyn Counter>::builder()` selects among
//!   [`CounterBackend::Monotone`], [`CounterBackend::FetchAdd`] and
//!   [`CounterBackend::Network`].
//! * [`BoundedTas`] and
//!   [`BoundedFetchIncrement`] — the
//!   §8.2 linearizable ℓ-test-and-set and m-valued fetch-and-increment.
//!
//! Beyond the paper, the crate extends the one-shot objects to *long-lived*
//! renaming: [`Renaming::builder()`](traits::Renaming) (spelled
//! `<dyn Renaming>::builder()`) is the unified construction facade for every
//! algorithm, and [`Recycler`] turns any of them into a
//! [`LongLivedRenaming`] object whose
//! [`NameLease`] guards recycle released names through a
//! lock-free [`FreeList`] (flat or two-level hierarchical bitmap, see
//! [`FreeListKind`]). For shard-local throughput under heavy churn,
//! [`ShardedRecycler`] trades the tight namespace bound for a documented
//! *loose* one (`.sharded(n)` on the builder), and [`BatchedRecycler`] —
//! the builder's default under churn, `.lease_batch(n)` — parks releases in
//! striped stashes that flush in batches, paying one free-list operation
//! per batch instead of per release.
//!
//! # Quick start
//!
//! ```
//! use adaptive_renaming::traits::Renaming;
//! use shmem::adversary::ExecConfig;
//! use shmem::executor::Executor;
//!
//! // Eight threads with arbitrary identities acquire names 1..=8 from the
//! // paper's adaptive strong renaming algorithm.
//! let renaming = <dyn Renaming>::builder().build().unwrap();
//! let outcome = Executor::new(ExecConfig::new(7)).run(8, {
//!     let renaming = renaming.clone();
//!     move |ctx| renaming.acquire(ctx).expect("adaptive renaming never fails")
//! });
//! assert_eq!(outcome.results_sorted(), (1..=8).collect::<Vec<_>>());
//! ```
//!
//! For the long-lived surface — leases, recycling, churn — see the
//! [`lease`] and [`recycler`] module documentation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adaptive;
pub mod backoff;
pub mod batched;
pub mod bit_batching;
pub mod builder;
pub mod comparator_slab;
pub mod counter;
pub mod error;
pub mod fetch_increment;
pub mod free_list;
pub mod lease;
pub mod linear_probe;
pub mod loose;
pub mod ltas;
pub mod recovery;
pub mod recycler;
pub mod renaming_network;
pub mod robust;
pub mod sharded;
pub mod temp_name;
pub mod traits;

pub use adaptive::AdaptiveRenaming;
pub use batched::BatchedRecycler;
pub use bit_batching::BitBatchingRenaming;
pub use builder::{Algorithm, ComparatorKind, EngineKind, RenamingBuilder};
pub use comparator_slab::ComparatorSlab;
pub use counter::{CasCounter, Counter, CounterBackend, CounterBuilder, MonotoneCounter};
pub use error::RenamingError;
pub use fetch_increment::BoundedFetchIncrement;
pub use free_list::{FreeList, FreeListKind};
pub use lease::{
    assert_loose_lease_namespace, assert_tight_lease_namespace, LeaseRecord, LongLivedRenaming,
    NameLease,
};
pub use linear_probe::LinearProbeRenaming;
pub use loose::LooseRenaming;
pub use ltas::BoundedTas;
pub use recycler::Recycler;
pub use renaming_network::{LockedRenamingNetwork, RenamingNetwork};
pub use robust::RobustLeaseTable;
pub use sharded::ShardedRecycler;
pub use temp_name::TempName;
pub use traits::Renaming;
