//! The monotone-consistent counter (§8.1) and baselines.
//!
//! The paper's counter pairs an adaptive strong renaming object with a max
//! register: an increment acquires a fresh name and writes it to the max
//! register; a read returns the max register's value. Because the renaming
//! object hands out exactly the names `1..=v` after `v` increments, reads are
//! always sandwiched between the number of *completed* and the number of
//! *started* increments — the monotone-consistency guarantee of Lemma 4 —
//! at an expected cost of `O(log v)` per operation. The counter is
//! deliberately *not* linearizable (§8.1 exhibits a counterexample, reproduced
//! in this crate's tests and in experiment E9).

use crate::traits::Renaming;
use maxreg::{MaxRegister, UnboundedMaxRegister};
use shmem::process::ProcessCtx;
use shmem::register::AtomicU64Register;
use std::fmt;
use std::sync::Arc;

/// A shared counter supporting concurrent increments and reads.
pub trait Counter: Send + Sync {
    /// Increments the counter by one.
    fn increment(&self, ctx: &mut ProcessCtx);

    /// Returns the counter's current value.
    fn read(&self, ctx: &mut ProcessCtx) -> u64;
}

/// The §8.1 monotone-consistent counter: adaptive renaming + max register.
///
/// # Example
///
/// ```
/// use adaptive_renaming::counter::{Counter, MonotoneCounter};
/// use shmem::adversary::ExecConfig;
/// use shmem::executor::Executor;
/// use std::sync::Arc;
///
/// let counter = Arc::new(MonotoneCounter::new());
/// let outcome = Executor::new(ExecConfig::new(4)).run(6, {
///     let counter = Arc::clone(&counter);
///     move |ctx| {
///         counter.increment(ctx);
///         counter.read(ctx)
///     }
/// });
/// // After all six increments the counter reads exactly six.
/// assert!(outcome.results().into_iter().max().unwrap() == 6);
/// ```
pub struct MonotoneCounter<R: Renaming = Arc<dyn Renaming>, M: MaxRegister = UnboundedMaxRegister> {
    renaming: R,
    max: M,
}

impl MonotoneCounter<Arc<dyn Renaming>, UnboundedMaxRegister> {
    /// Creates the counter with the paper's default components: adaptive
    /// strong renaming (constructed through the
    /// [builder](crate::builder::RenamingBuilder) facade) and an unbounded
    /// max register.
    pub fn new() -> Self {
        MonotoneCounter {
            renaming: <dyn Renaming>::builder()
                .build()
                .expect("the default adaptive configuration is always valid"),
            max: UnboundedMaxRegister::new(),
        }
    }
}

impl Default for MonotoneCounter<Arc<dyn Renaming>, UnboundedMaxRegister> {
    fn default() -> Self {
        Self::new()
    }
}

impl<R: Renaming, M: MaxRegister> MonotoneCounter<R, M> {
    /// Builds the counter from an explicit renaming object and max register.
    ///
    /// The counter's guarantees require the renaming object to be *strong
    /// adaptive* (names exactly `1..=v` for `v` acquisitions); plugging in a
    /// loose renaming object produces a counter that may over-count.
    pub fn with_parts(renaming: R, max: M) -> Self {
        MonotoneCounter { renaming, max }
    }

    /// The underlying renaming object.
    pub fn renaming(&self) -> &R {
        &self.renaming
    }

    /// The underlying max register.
    pub fn max_register(&self) -> &M {
        &self.max
    }
}

impl<R: Renaming, M: MaxRegister> fmt::Debug for MonotoneCounter<R, M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MonotoneCounter").finish_non_exhaustive()
    }
}

impl<R: Renaming, M: MaxRegister> Counter for MonotoneCounter<R, M> {
    /// # Panics
    ///
    /// Panics if the underlying renaming object reports an error (only
    /// possible for bounded backends whose capacity is exceeded; the default
    /// adaptive backend never fails).
    fn increment(&self, ctx: &mut ProcessCtx) {
        let name = self
            .renaming
            .acquire(ctx)
            .expect("the counter's renaming backend ran out of names");
        self.max.write_max(ctx, name as u64);
    }

    fn read(&self, ctx: &mut ProcessCtx) -> u64 {
        self.max.read_max(ctx)
    }
}

/// A fetch-and-add baseline counter (linearizable, but built on a
/// read-modify-write primitive the paper's model does not assume).
#[derive(Debug, Default)]
pub struct CasCounter {
    value: AtomicU64Register,
}

impl CasCounter {
    /// Creates a counter holding zero.
    pub fn new() -> Self {
        CasCounter {
            value: AtomicU64Register::new(0),
        }
    }
}

impl Counter for CasCounter {
    fn increment(&self, ctx: &mut ProcessCtx) {
        self.value.fetch_add(ctx, 1);
    }

    fn read(&self, ctx: &mut ProcessCtx) -> u64 {
        self.value.read(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxreg::BoundedMaxRegister;
    use shmem::adversary::{ArrivalSchedule, ExecConfig, YieldPolicy};
    use shmem::consistency::{check_monotone_consistent, CounterOp};
    use shmem::executor::Executor;
    use shmem::history::Recorder;
    use shmem::process::ProcessId;
    use std::sync::Arc;

    #[test]
    fn sequential_increments_and_reads_count_exactly() {
        let counter = MonotoneCounter::new();
        let mut ctx = ProcessCtx::new(ProcessId::new(0), 1);
        assert_eq!(counter.read(&mut ctx), 0);
        for expected in 1..=10u64 {
            counter.increment(&mut ctx);
            assert_eq!(counter.read(&mut ctx), expected);
        }
    }

    #[test]
    fn concurrent_increments_are_all_counted() {
        for seed in 0..4 {
            let counter = Arc::new(MonotoneCounter::new());
            let k = 10usize;
            let config = ExecConfig::new(seed)
                .with_yield_policy(YieldPolicy::Probabilistic(0.1))
                .with_arrival(ArrivalSchedule::Simultaneous);
            let outcome = Executor::new(config).run(k, {
                let counter = Arc::clone(&counter);
                move |ctx| {
                    counter.increment(ctx);
                    counter.read(ctx)
                }
            });
            let reads = outcome.results();
            // Every read is at least 1 (its own increment) and at most k.
            assert!(
                reads.iter().all(|&v| v >= 1 && v <= k as u64),
                "seed {seed}"
            );
            // A final quiescent read sees exactly k.
            let mut ctx = ProcessCtx::new(ProcessId::new(10_000), seed);
            assert_eq!(counter.read(&mut ctx), k as u64, "seed {seed}");
        }
    }

    #[test]
    fn recorded_histories_are_monotone_consistent() {
        for seed in 0..3 {
            let counter = Arc::new(MonotoneCounter::new());
            let recorder: Arc<Recorder<CounterOp, u64>> = Arc::new(Recorder::new());
            let outcome = Executor::new(
                ExecConfig::new(seed).with_yield_policy(YieldPolicy::Probabilistic(0.2)),
            )
            .run(8, {
                let counter = Arc::clone(&counter);
                let recorder = Arc::clone(&recorder);
                move |ctx| {
                    for round in 0..3 {
                        if (ctx.id().as_usize() + round) % 2 == 0 {
                            let invoke = recorder.invoke();
                            counter.increment(ctx);
                            recorder.record(ctx.id(), CounterOp::Increment, 0, invoke);
                        } else {
                            let invoke = recorder.invoke();
                            let value = counter.read(ctx);
                            recorder.record(ctx.id(), CounterOp::Read, value, invoke);
                        }
                    }
                }
            });
            assert_eq!(outcome.crashed_count(), 0);
            let history = recorder.take_history();
            check_monotone_consistent(&history, &[])
                .unwrap_or_else(|violation| panic!("seed {seed}: {violation}"));
        }
    }

    #[test]
    fn custom_parts_are_supported() {
        let counter = MonotoneCounter::with_parts(
            <dyn Renaming>::builder()
                .linear_probe()
                .capacity(32)
                .build()
                .unwrap(),
            BoundedMaxRegister::new(64),
        );
        let mut ctx = ProcessCtx::new(ProcessId::new(0), 2);
        counter.increment(&mut ctx);
        counter.increment(&mut ctx);
        assert_eq!(counter.read(&mut ctx), 2);
        assert_eq!(counter.renaming().capacity(), Some(32));
        assert_eq!(counter.max_register().capacity(), 64);
        assert!(format!("{counter:?}").contains("MonotoneCounter"));
    }

    #[test]
    #[should_panic(expected = "ran out of names")]
    fn exhausted_bounded_backends_panic_loudly() {
        let counter = MonotoneCounter::with_parts(
            <dyn Renaming>::builder()
                .linear_probe()
                .capacity(2)
                .build()
                .unwrap(),
            BoundedMaxRegister::new(8),
        );
        let mut ctx = ProcessCtx::new(ProcessId::new(0), 0);
        counter.increment(&mut ctx);
        counter.increment(&mut ctx);
        counter.increment(&mut ctx);
    }

    #[test]
    fn cas_counter_counts_under_contention() {
        let counter = Arc::new(CasCounter::new());
        let outcome = Executor::new(ExecConfig::new(5)).run(16, {
            let counter = Arc::clone(&counter);
            move |ctx| {
                counter.increment(ctx);
                counter.read(ctx)
            }
        });
        let mut ctx = ProcessCtx::new(ProcessId::new(99), 0);
        assert_eq!(counter.read(&mut ctx), 16);
        assert!(outcome.results().iter().all(|&v| v >= 1));
    }

    #[test]
    fn increment_cost_grows_slowly_with_the_number_of_increments() {
        // Lemma 4: expected O(log v) per increment. Compare the cost of the
        // first increment with the cost of the 64th: the ratio must stay far
        // below the linear-growth ratio of 64.
        let counter = MonotoneCounter::new();
        let mut ctx = ProcessCtx::new(ProcessId::new(0), 9);
        counter.increment(&mut ctx);
        let first_cost = ctx.stats().total();
        let mut before = ctx.stats().total();
        for _ in 0..63 {
            before = ctx.stats().total();
            counter.increment(&mut ctx);
        }
        let last_cost = ctx.stats().total() - before;
        assert!(
            last_cost < first_cost * 32,
            "cost grew from {first_cost} to {last_cost}; not logarithmic"
        );
    }
}
