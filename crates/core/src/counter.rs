//! The monotone-consistent counter (§8.1), the counting-network counter and
//! baselines — plus the [`CounterBuilder`] facade selecting among them.
//!
//! The paper's counter pairs an adaptive strong renaming object with a max
//! register: an increment acquires a fresh name and writes it to the max
//! register; a read returns the max register's value. Because the renaming
//! object hands out exactly the names `1..=v` after `v` increments, reads are
//! always sandwiched between the number of *completed* and the number of
//! *started* increments — the monotone-consistency guarantee of Lemma 4 —
//! at an expected cost of `O(log v)` per operation. The counter is
//! deliberately *not* linearizable (§8.1 exhibits a counterexample, reproduced
//! in this crate's tests and in experiment E9).
//!
//! Four backends hide behind the shared [`Counter`] trait and the
//! [`CounterBuilder`] facade (`<dyn Counter>::builder()`):
//!
//! * [`CounterBackend::Monotone`] — the paper's renaming + max-register
//!   counter: monotone-consistent, register-model-only.
//! * [`CounterBackend::Network`] — the [`cnet`] counting-network counter:
//!   quiescently consistent, spreads increment contention over a balancing
//!   network's `Θ(w log² w)` words.
//! * [`CounterBackend::Adaptive`] — the elimination/diffraction cascade
//!   ([`AdaptiveNetworkCounter`]): quiescently consistent like the network
//!   counter, but each increment is routed through the narrowest of a
//!   width-2/4/…/w cascade that covers *realized* contention, so quiet
//!   counters pay a fraction of the fixed network's depth.
//! * [`CounterBackend::FetchAdd`] — the hardware fetch-and-add baseline:
//!   linearizable, but every increment hits the same cache line (and the
//!   paper's model does not assume read-modify-write).

use crate::error::RenamingError;
use crate::traits::Renaming;
use cnet::adaptive::AdaptiveNetworkCounter;
use cnet::counter::NetworkCounter;
use cnet::family::CountingFamily;
use cnet::network::BalancingTopology;
use maxreg::{MaxRegister, UnboundedMaxRegister};
use shmem::adversary::ExecConfig;
use shmem::process::ProcessCtx;
use shmem::register::AtomicU64Register;
use sortnet::family::NetworkFamily;
use std::fmt;
use std::sync::Arc;

/// A shared counter supporting concurrent increments and reads.
pub trait Counter: Send + Sync {
    /// Increments the counter by one.
    fn increment(&self, ctx: &mut ProcessCtx);

    /// Returns the counter's current value.
    fn read(&self, ctx: &mut ProcessCtx) -> u64;
}

/// The §8.1 monotone-consistent counter: adaptive renaming + max register.
///
/// # Example
///
/// ```
/// use adaptive_renaming::counter::{Counter, MonotoneCounter};
/// use shmem::adversary::ExecConfig;
/// use shmem::executor::Executor;
/// use std::sync::Arc;
///
/// let counter = Arc::new(MonotoneCounter::new());
/// let outcome = Executor::new(ExecConfig::new(4)).run(6, {
///     let counter = Arc::clone(&counter);
///     move |ctx| {
///         counter.increment(ctx);
///         counter.read(ctx)
///     }
/// });
/// // After all six increments the counter reads exactly six.
/// assert!(outcome.results().into_iter().max().unwrap() == 6);
/// ```
pub struct MonotoneCounter<R: Renaming = Arc<dyn Renaming>, M: MaxRegister = UnboundedMaxRegister> {
    renaming: R,
    max: M,
}

impl MonotoneCounter<Arc<dyn Renaming>, UnboundedMaxRegister> {
    /// Creates the counter with the paper's default components: adaptive
    /// strong renaming (constructed through the
    /// [builder](crate::builder::RenamingBuilder) facade) and an unbounded
    /// max register.
    pub fn new() -> Self {
        MonotoneCounter {
            renaming: <dyn Renaming>::builder()
                .build()
                .expect("the default adaptive configuration is always valid"),
            max: UnboundedMaxRegister::new(),
        }
    }
}

impl Default for MonotoneCounter<Arc<dyn Renaming>, UnboundedMaxRegister> {
    fn default() -> Self {
        Self::new()
    }
}

impl<R: Renaming, M: MaxRegister> MonotoneCounter<R, M> {
    /// Builds the counter from an explicit renaming object and max register.
    ///
    /// The counter's guarantees require the renaming object to be *strong
    /// adaptive* (names exactly `1..=v` for `v` acquisitions); plugging in a
    /// loose renaming object produces a counter that may over-count.
    pub fn with_parts(renaming: R, max: M) -> Self {
        MonotoneCounter { renaming, max }
    }

    /// The underlying renaming object.
    pub fn renaming(&self) -> &R {
        &self.renaming
    }

    /// The underlying max register.
    pub fn max_register(&self) -> &M {
        &self.max
    }
}

impl<R: Renaming, M: MaxRegister> fmt::Debug for MonotoneCounter<R, M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MonotoneCounter").finish_non_exhaustive()
    }
}

impl<R: Renaming, M: MaxRegister> Counter for MonotoneCounter<R, M> {
    /// # Panics
    ///
    /// Panics if the underlying renaming object reports an error (only
    /// possible for bounded backends whose capacity is exceeded; the default
    /// adaptive backend never fails).
    fn increment(&self, ctx: &mut ProcessCtx) {
        let name = self
            .renaming
            .acquire(ctx)
            .expect("the counter's renaming backend ran out of names");
        self.max.write_max(ctx, name as u64);
    }

    fn read(&self, ctx: &mut ProcessCtx) -> u64 {
        self.max.read_max(ctx)
    }
}

/// A fetch-and-add baseline counter (linearizable, but built on a
/// read-modify-write primitive the paper's model does not assume).
#[derive(Debug, Default)]
pub struct CasCounter {
    value: AtomicU64Register,
}

impl CasCounter {
    /// Creates a counter holding zero.
    pub fn new() -> Self {
        CasCounter {
            value: AtomicU64Register::new(0),
        }
    }
}

impl Counter for CasCounter {
    fn increment(&self, ctx: &mut ProcessCtx) {
        self.value.fetch_add(ctx, 1);
    }

    fn read(&self, ctx: &mut ProcessCtx) -> u64 {
        self.value.read(ctx)
    }
}

/// The counting-network counter is the third [`Counter`] backend: an
/// increment routes one token through the balancing network and
/// fetch-adds the exit wire's local counter; a read sums the exit counters
/// (quiescently consistent, not linearizable).
impl<T: BalancingTopology> Counter for NetworkCounter<T> {
    fn increment(&self, ctx: &mut ProcessCtx) {
        NetworkCounter::increment(self, ctx);
    }

    fn read(&self, ctx: &mut ProcessCtx) -> u64 {
        NetworkCounter::read(self, ctx)
    }
}

/// The adaptive cascade is the fourth [`Counter`] backend: an increment is
/// routed by a contention sensor through an elimination prism into the
/// narrowest counting network covering realized contention; a read sums all
/// layers' exit wires (quiescently consistent, not linearizable).
impl Counter for AdaptiveNetworkCounter {
    fn increment(&self, ctx: &mut ProcessCtx) {
        AdaptiveNetworkCounter::increment(self, ctx);
    }

    fn read(&self, ctx: &mut ProcessCtx) -> u64 {
        AdaptiveNetworkCounter::read(self, ctx)
    }
}

/// The counter implementation a [`CounterBuilder`] constructs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum CounterBackend {
    /// The §8.1 monotone-consistent counter: adaptive strong renaming plus a
    /// max register ([`MonotoneCounter`]).
    #[default]
    Monotone,
    /// The hardware fetch-and-add baseline ([`CasCounter`]): linearizable,
    /// single hot cache line, outside the paper's register-only model.
    FetchAdd,
    /// The counting-network counter ([`NetworkCounter`] over the compiled
    /// balancing-network engine): quiescently consistent, contention spread
    /// over the network's balancers and exit counters.
    Network,
    /// The adaptive elimination/diffraction counter
    /// ([`AdaptiveNetworkCounter`]): a contention sensor routes each
    /// increment through an elimination prism into the narrowest of a
    /// cascade of counting networks (widths 2, 4, …, the configured width)
    /// that covers realized contention. Quiescently consistent.
    Adaptive,
}

/// Fluent configuration for the workspace's counters, mirroring the
/// [`RenamingBuilder`](crate::builder::RenamingBuilder) facade.
///
/// # Example
///
/// ```
/// use adaptive_renaming::counter::{Counter, CounterBackend};
/// use shmem::process::{ProcessCtx, ProcessId};
///
/// let counter = <dyn Counter>::builder()
///     .backend(CounterBackend::Network)
///     .width(8)
///     .build()
///     .unwrap();
/// let mut ctx = ProcessCtx::new(ProcessId::new(0), 1);
/// counter.increment(&mut ctx);
/// assert_eq!(counter.read(&mut ctx), 1);
/// ```
#[derive(Clone, Debug)]
pub struct CounterBuilder {
    backend: CounterBackend,
    family: NetworkFamily,
    width: usize,
    seed: u64,
}

impl dyn Counter {
    /// Starts building a counter; the canonical entry point. Equivalent to
    /// [`CounterBuilder::new`].
    pub fn builder() -> CounterBuilder {
        CounterBuilder::new()
    }
}

impl Default for CounterBuilder {
    fn default() -> Self {
        CounterBuilder {
            backend: CounterBackend::default(),
            family: NetworkFamily::Bitonic,
            width: 8,
            seed: 0,
        }
    }
}

impl CounterBuilder {
    /// Creates a builder with the default configuration: the paper's
    /// monotone counter (and, should the backend be switched to
    /// [`CounterBackend::Network`], a width-8 bitonic wiring).
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the backend.
    pub fn backend(mut self, backend: CounterBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Shorthand for [`CounterBackend::Monotone`].
    pub fn monotone(self) -> Self {
        self.backend(CounterBackend::Monotone)
    }

    /// Shorthand for [`CounterBackend::FetchAdd`].
    pub fn fetch_add(self) -> Self {
        self.backend(CounterBackend::FetchAdd)
    }

    /// Shorthand for [`CounterBackend::Network`].
    pub fn network(self) -> Self {
        self.backend(CounterBackend::Network)
    }

    /// Shorthand for [`CounterBackend::Adaptive`].
    pub fn adaptive_network(self) -> Self {
        self.backend(CounterBackend::Adaptive)
    }

    /// Selects the balancing-network wiring of [`CounterBackend::Network`]
    /// and [`CounterBackend::Adaptive`] (ignored by the other backends).
    /// Only the counting-certified families are accepted at build time:
    /// [`NetworkFamily::Bitonic`] (the default) and
    /// [`NetworkFamily::Periodic`].
    pub fn family(mut self, family: NetworkFamily) -> Self {
        self.family = family;
        self
    }

    /// Sets the balancing network's width — the contention-spreading factor
    /// of [`CounterBackend::Network`] and the *maximum* (widest-layer) width
    /// of [`CounterBackend::Adaptive`]; ignored by the other backends. Must
    /// be a power of two of at least 2; a good default is the expected
    /// thread count rounded up.
    pub fn width(mut self, width: usize) -> Self {
        self.width = width;
        self
    }

    /// Sets the seed recorded for adversarial executions driven against the
    /// built counter (see [`CounterBuilder::exec_config`]).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// An adversarial executor configuration seeded with this builder's
    /// seed, mirroring
    /// [`RenamingBuilder::exec_config`](crate::builder::RenamingBuilder::exec_config).
    pub fn exec_config(&self) -> ExecConfig {
        ExecConfig::new(self.seed)
    }

    /// The configured backend.
    pub fn configured_backend(&self) -> CounterBackend {
        self.backend
    }

    /// Builds the configured counter.
    ///
    /// # Errors
    ///
    /// Returns [`RenamingError::InvalidConfiguration`] when
    /// [`CounterBackend::Network`] or [`CounterBackend::Adaptive`] is
    /// combined with a width that is not a power of two (or is below 2), or
    /// with a sorting-network family whose balancer wiring is not a
    /// certified counting network (odd-even merge, one-pass transposition).
    pub fn build(&self) -> Result<Arc<dyn Counter>, RenamingError> {
        match self.backend {
            CounterBackend::Monotone => Ok(Arc::new(MonotoneCounter::new())),
            CounterBackend::FetchAdd => Ok(Arc::new(CasCounter::new())),
            CounterBackend::Network => {
                let (family, width) = self.counting_network_config()?;
                Ok(Arc::new(NetworkCounter::new(family, width)))
            }
            CounterBackend::Adaptive => {
                let (family, width) = self.counting_network_config()?;
                Ok(Arc::new(AdaptiveNetworkCounter::new(family, width)))
            }
        }
    }

    /// Validates the wiring family and width shared by the network-backed
    /// backends.
    fn counting_network_config(&self) -> Result<(CountingFamily, usize), RenamingError> {
        let family = CountingFamily::try_from(self.family).map_err(|_| {
            RenamingError::InvalidConfiguration {
                reason: "the selected wiring is not a certified counting network: \
                         use the bitonic or periodic family",
            }
        })?;
        if self.width < 2 || !self.width.is_power_of_two() {
            return Err(RenamingError::InvalidConfiguration {
                reason: "counting networks need a power-of-two width of at least 2",
            });
        }
        Ok((family, self.width))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxreg::BoundedMaxRegister;
    use shmem::adversary::{ArrivalSchedule, ExecConfig, YieldPolicy};
    use shmem::consistency::{check_monotone_consistent, CounterOp};
    use shmem::executor::Executor;
    use shmem::history::Recorder;
    use shmem::process::ProcessId;
    use std::sync::Arc;

    #[test]
    fn sequential_increments_and_reads_count_exactly() {
        let counter = MonotoneCounter::new();
        let mut ctx = ProcessCtx::new(ProcessId::new(0), 1);
        assert_eq!(counter.read(&mut ctx), 0);
        for expected in 1..=10u64 {
            counter.increment(&mut ctx);
            assert_eq!(counter.read(&mut ctx), expected);
        }
    }

    #[test]
    fn concurrent_increments_are_all_counted() {
        for seed in 0..4 {
            let counter = Arc::new(MonotoneCounter::new());
            let k = 10usize;
            let config = ExecConfig::new(seed)
                .with_yield_policy(YieldPolicy::Probabilistic(0.1))
                .with_arrival(ArrivalSchedule::Simultaneous);
            let outcome = Executor::new(config).run(k, {
                let counter = Arc::clone(&counter);
                move |ctx| {
                    counter.increment(ctx);
                    counter.read(ctx)
                }
            });
            let reads = outcome.results();
            // Every read is at least 1 (its own increment) and at most k.
            assert!(
                reads.iter().all(|&v| v >= 1 && v <= k as u64),
                "seed {seed}"
            );
            // A final quiescent read sees exactly k.
            let mut ctx = ProcessCtx::new(ProcessId::new(10_000), seed);
            assert_eq!(counter.read(&mut ctx), k as u64, "seed {seed}");
        }
    }

    #[test]
    fn recorded_histories_are_monotone_consistent() {
        for seed in 0..3 {
            let counter = Arc::new(MonotoneCounter::new());
            let recorder: Arc<Recorder<CounterOp, u64>> = Arc::new(Recorder::new());
            let outcome = Executor::new(
                ExecConfig::new(seed).with_yield_policy(YieldPolicy::Probabilistic(0.2)),
            )
            .run(8, {
                let counter = Arc::clone(&counter);
                let recorder = Arc::clone(&recorder);
                move |ctx| {
                    for round in 0..3 {
                        if (ctx.id().as_usize() + round) % 2 == 0 {
                            let invoke = recorder.invoke();
                            counter.increment(ctx);
                            recorder.record(ctx.id(), CounterOp::Increment, 0, invoke);
                        } else {
                            let invoke = recorder.invoke();
                            let value = counter.read(ctx);
                            recorder.record(ctx.id(), CounterOp::Read, value, invoke);
                        }
                    }
                }
            });
            assert_eq!(outcome.crashed_count(), 0);
            let history = recorder.take_history();
            check_monotone_consistent(&history, &[])
                .unwrap_or_else(|violation| panic!("seed {seed}: {violation}"));
        }
    }

    #[test]
    fn custom_parts_are_supported() {
        let counter = MonotoneCounter::with_parts(
            <dyn Renaming>::builder()
                .linear_probe()
                .capacity(32)
                .build()
                .unwrap(),
            BoundedMaxRegister::new(64),
        );
        let mut ctx = ProcessCtx::new(ProcessId::new(0), 2);
        counter.increment(&mut ctx);
        counter.increment(&mut ctx);
        assert_eq!(counter.read(&mut ctx), 2);
        assert_eq!(counter.renaming().capacity(), Some(32));
        assert_eq!(counter.max_register().capacity(), 64);
        assert!(format!("{counter:?}").contains("MonotoneCounter"));
    }

    #[test]
    #[should_panic(expected = "ran out of names")]
    fn exhausted_bounded_backends_panic_loudly() {
        let counter = MonotoneCounter::with_parts(
            <dyn Renaming>::builder()
                .linear_probe()
                .capacity(2)
                .build()
                .unwrap(),
            BoundedMaxRegister::new(8),
        );
        let mut ctx = ProcessCtx::new(ProcessId::new(0), 0);
        counter.increment(&mut ctx);
        counter.increment(&mut ctx);
        counter.increment(&mut ctx);
    }

    #[test]
    fn cas_counter_counts_under_contention() {
        let counter = Arc::new(CasCounter::new());
        let outcome = Executor::new(ExecConfig::new(5)).run(16, {
            let counter = Arc::clone(&counter);
            move |ctx| {
                counter.increment(ctx);
                counter.read(ctx)
            }
        });
        let mut ctx = ProcessCtx::new(ProcessId::new(99), 0);
        assert_eq!(counter.read(&mut ctx), 16);
        assert!(outcome.results().iter().all(|&v| v >= 1));
    }

    #[test]
    fn every_backend_builds_and_counts() {
        for backend in [
            CounterBackend::Monotone,
            CounterBackend::FetchAdd,
            CounterBackend::Network,
            CounterBackend::Adaptive,
        ] {
            let builder = <dyn Counter>::builder().backend(backend).seed(3);
            assert_eq!(builder.configured_backend(), backend);
            assert_eq!(builder.exec_config().seed, 3);
            let counter = builder
                .build()
                .unwrap_or_else(|e| panic!("{backend:?}: {e}"));
            let outcome = Executor::new(builder.exec_config()).run(8, {
                let counter = Arc::clone(&counter);
                move |ctx| counter.increment(ctx)
            });
            assert_eq!(outcome.crashed_count(), 0);
            let mut ctx = ProcessCtx::new(ProcessId::new(50), 0);
            assert_eq!(counter.read(&mut ctx), 8, "{backend:?}");
        }
    }

    #[test]
    fn network_backend_respects_family_and_width() {
        let counter = <dyn Counter>::builder()
            .network()
            .family(sortnet::family::NetworkFamily::Periodic)
            .width(4)
            .build()
            .unwrap();
        let mut ctx = ProcessCtx::new(ProcessId::new(0), 1);
        for expected in 1..=6u64 {
            counter.increment(&mut ctx);
            assert_eq!(counter.read(&mut ctx), expected);
        }
        // The balancing-network cost profile shines through the trait
        // object: increments toggle balancers instead of acquiring names.
        assert!(ctx.stats().balancer_toggles > 0);
    }

    #[test]
    fn adaptive_backend_routes_narrow_when_quiet() {
        let counter = <dyn Counter>::builder()
            .adaptive_network()
            .width(16)
            .build()
            .unwrap();
        let mut ctx = ProcessCtx::new(ProcessId::new(0), 6);
        for expected in 1..=12u64 {
            counter.increment(&mut ctx);
            assert_eq!(counter.read(&mut ctx), expected);
        }
        // A lone process pays the narrow layer's single toggle per
        // increment, not the width-16 network's ten.
        let stats = ctx.stats();
        assert_eq!(stats.balancer_toggles, 12, "one width-2 toggle each");
        assert!(stats.eliminations > 0, "the prism was consulted");
    }

    #[test]
    fn counter_misconfigurations_are_reported() {
        let odd_width = <dyn Counter>::builder().network().width(12).build();
        assert!(matches!(
            odd_width,
            Err(crate::error::RenamingError::InvalidConfiguration { .. })
        ));
        let tiny = <dyn Counter>::builder().network().width(1).build();
        assert!(tiny.is_err());
        let uncertified = <dyn Counter>::builder()
            .network()
            .family(sortnet::family::NetworkFamily::OddEven)
            .build();
        assert!(uncertified.is_err());
        // The adaptive backend shares the network validations.
        assert!(<dyn Counter>::builder()
            .adaptive_network()
            .width(12)
            .build()
            .is_err());
        assert!(<dyn Counter>::builder()
            .adaptive_network()
            .family(sortnet::family::NetworkFamily::OddEven)
            .build()
            .is_err());
        // The knobs are inert on the other backends: nothing to misconfigure.
        assert!(<dyn Counter>::builder()
            .monotone()
            .width(12)
            .build()
            .is_ok());
        assert!(<dyn Counter>::builder()
            .fetch_add()
            .family(sortnet::family::NetworkFamily::OddEven)
            .build()
            .is_ok());
    }

    #[test]
    fn increment_cost_grows_slowly_with_the_number_of_increments() {
        // Lemma 4: expected O(log v) per increment. Compare the cost of the
        // first increment with the cost of the 64th: the ratio must stay far
        // below the linear-growth ratio of 64.
        let counter = MonotoneCounter::new();
        let mut ctx = ProcessCtx::new(ProcessId::new(0), 9);
        counter.increment(&mut ctx);
        let first_cost = ctx.stats().total();
        let mut before = ctx.stats().total();
        for _ in 0..63 {
            before = ctx.stats().total();
            counter.increment(&mut ctx);
        }
        let last_cost = ctx.stats().total() - before;
        assert!(
            last_cost < first_cost * 32,
            "cost grew from {first_cost} to {last_cost}; not logarithmic"
        );
    }
}
