//! Sharded long-lived renaming: loose bounds for shard-local throughput.
//!
//! A [`ShardedRecycler`] spreads leases over `N` independent
//! [`Recycler`]s, each owning a disjoint range of `span` names: shard `i`
//! grants global names `i·span + 1 ..= (i + 1)·span`. Every process has a
//! *home shard* (its identifier modulo `N`), so under balanced load each
//! shard's admission counter, free-list words and seqlock are touched by a
//! small subset of processes — the cache-line ping-pong of one shared
//! recycler, which dominates the lease hot path, disappears. When the home
//! shard's admission bound is reached the lease *overflows*, probing the
//! remaining shards round-robin (work stealing in reverse), so capacity is
//! only exhausted when every shard is.
//!
//! # The tight-vs-loose trade
//!
//! The price is a relaxed namespace guarantee, exactly the tight-vs-loose
//! spectrum the source paper quantifies (and the repo's
//! [`LooseRenaming`](crate::loose::LooseRenaming) occupies for the one-shot
//! problem). A single [`Recycler`] over a strong adaptive inner object is
//! *tight*: every name is bounded by the point contention of its grant. A
//! [`ShardedRecycler`] is *loose*: within each shard the localized names
//! stay tight against that shard's contention, so with per-shard point
//! contention at most `p` the set of names in use has size at most
//! `shards × p` — but the *largest* name can be as high as
//! `(shards − 1)·span + p`, because a low-contention process may live in a
//! high shard. [`assert_loose_lease_namespace`](crate::lease::assert_loose_lease_namespace)
//! is the property checker for exactly this bound.
//!
//! Choose sharding when lease/release throughput matters more than the last
//! factor of `shards` in namespace density — connection-slot pools, session
//! tables, per-core scratch indices. Stay with one tight recycler when the
//! names index a resource that must stay as dense as the contention allows.

use crate::error::RenamingError;
use crate::free_list::FreeListKind;
use crate::lease::{LongLivedRenaming, NameLease};
use crate::recycler::Recycler;
use crate::traits::Renaming;
use shmem::arena::{Arena, ArenaCell};
use shmem::process::ProcessCtx;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// `N` independent recyclers over disjoint name ranges, with per-process
/// home shards and overflow stealing. Implements [`LongLivedRenaming`] with
/// the documented **loose** bound: namespace size at most
/// `shards × per-shard point contention`.
///
/// # Example
///
/// ```
/// use adaptive_renaming::lease::LongLivedRenaming;
/// use adaptive_renaming::renaming_network::RenamingNetwork;
/// use adaptive_renaming::sharded::ShardedRecycler;
/// use shmem::process::{ProcessCtx, ProcessId};
/// use sortnet::batcher::odd_even_network;
/// use std::sync::Arc;
///
/// // Two shards of 8 names each, at most 2 concurrent leases per shard.
/// let sharded = Arc::new(ShardedRecycler::new(
///     (0..2)
///         .map(|_| RenamingNetwork::<_>::new(odd_even_network(8)))
///         .collect(),
///     2,
/// ));
/// let mut p0 = ProcessCtx::new(ProcessId::new(0), 1);
/// let mut p1 = ProcessCtx::new(ProcessId::new(1), 1);
///
/// // Each process leases from its home shard: names are shard-local.
/// let a = Arc::clone(&sharded).lease(&mut p0).unwrap();
/// let b = Arc::clone(&sharded).lease(&mut p1).unwrap();
/// assert_eq!(a.name(), 1, "process 0 is homed at shard 0");
/// assert_eq!(b.name(), 9, "process 1 is homed at shard 1 (names 9..=16)");
///
/// // Releases route back to the owning shard and recycle there.
/// b.release(&mut p1);
/// let c = Arc::clone(&sharded).lease(&mut p1).unwrap();
/// assert_eq!(c.name(), 9, "shard 1 recycles its own names");
/// ```
pub struct ShardedRecycler<R: Renaming> {
    shards: Box<[Recycler<R>]>,
    /// Names per shard: shard `i` owns global names `i·span+1 ..= (i+1)·span`.
    span: usize,
    per_shard_max: usize,
    /// Releases of names outside every shard's range (misuse; diagnostics).
    /// Arena-resident when built with [`ShardedRecycler::with_free_list_in`]
    /// so cross-process misuse is visible to every process.
    leaked: ArenaCell<AtomicUsize>,
}

impl<R: Renaming> ShardedRecycler<R> {
    /// Builds one shard per inner object, each allowing `per_shard_max`
    /// simultaneously live leases, with the default (hierarchical)
    /// free-list layout.
    ///
    /// # Panics
    ///
    /// Panics if `inners` is empty, if `per_shard_max` is zero or exceeds an
    /// inner object's capacity, or if the inner objects do not all yield the
    /// same per-shard name bound (the ranges could not be disjoint and
    /// uniform otherwise).
    pub fn new(inners: Vec<R>, per_shard_max: usize) -> Self {
        Self::with_free_list(inners, per_shard_max, FreeListKind::default())
    }

    /// Like [`ShardedRecycler::new`], with an explicit free-list layout for
    /// every shard.
    ///
    /// # Panics
    ///
    /// As [`ShardedRecycler::new`].
    pub fn with_free_list(inners: Vec<R>, per_shard_max: usize, kind: FreeListKind) -> Self {
        assert!(!inners.is_empty(), "a sharded recycler needs a shard");
        let shards: Box<[Recycler<R>]> = inners
            .into_iter()
            .map(|inner| Recycler::with_free_list(inner, per_shard_max, kind))
            .collect();
        Self::assemble(shards, per_shard_max, ArenaCell::default())
    }

    /// Like [`ShardedRecycler::with_free_list`], but places every shard's
    /// free list and header counters in the caller's `arena` — the
    /// cross-process constructor. Size the arena with
    /// [`ShardedRecycler::footprint`].
    pub fn with_free_list_in(
        inners: Vec<R>,
        per_shard_max: usize,
        kind: FreeListKind,
        arena: &Arc<Arena>,
    ) -> Self {
        assert!(!inners.is_empty(), "a sharded recycler needs a shard");
        let shards: Box<[Recycler<R>]> = inners
            .into_iter()
            .map(|inner| Recycler::with_free_list_in(inner, per_shard_max, kind, arena))
            .collect();
        Self::assemble(
            shards,
            per_shard_max,
            ArenaCell::new_in(arena, AtomicUsize::new(0)),
        )
    }

    /// The number of arena bytes the sharded recycler allocates when built
    /// with [`ShardedRecycler::with_free_list_in`]: one recycler footprint
    /// per inner object plus the shared misuse counter line.
    pub fn footprint(inners: &[R], per_shard_max: usize, kind: FreeListKind) -> usize {
        inners
            .iter()
            .map(|inner| Recycler::footprint(inner, per_shard_max, kind))
            .sum::<usize>()
            + 64
    }

    fn assemble(
        shards: Box<[Recycler<R>]>,
        per_shard_max: usize,
        leaked: ArenaCell<AtomicUsize>,
    ) -> Self {
        let span = shards[0].name_bound();
        assert!(
            shards.iter().all(|shard| shard.name_bound() == span),
            "every shard must span the same number of names"
        );
        ShardedRecycler {
            shards,
            span,
            per_shard_max,
            leaked,
        }
    }

    /// The number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Names per shard; shard `i` owns global names
    /// `i·span + 1 ..= (i + 1)·span`.
    pub fn span(&self) -> usize {
        self.span
    }

    /// The admission bound of each shard.
    pub fn per_shard_max(&self) -> usize {
        self.per_shard_max
    }

    /// The shards themselves, for per-shard diagnostics.
    pub fn shards(&self) -> &[Recycler<R>] {
        &self.shards
    }

    /// Names acquired fresh from the inner objects so far, summed over
    /// shards.
    pub fn fresh_names(&self) -> usize {
        self.shards.iter().map(Recycler::fresh_names).sum()
    }

    /// Leases served from the shards' free lists so far (diagnostics;
    /// momentarily stale while operations are in flight).
    pub fn recycled_names(&self) -> usize {
        self.shards.iter().map(Recycler::recycled_names).sum()
    }

    /// Names lost to recycling misuse: double releases (counted by the
    /// owning shard) plus releases outside every shard's range.
    pub fn leaked_names(&self) -> usize {
        self.leaked.get().load(Ordering::Relaxed) // lint: relaxed-ok(diagnostic counter; no ordering dependency)
            + self
                .shards
                .iter()
                .map(Recycler::leaked_names)
                .sum::<usize>()
    }

    /// The caller's home shard: its process identifier modulo the shard
    /// count.
    fn home_shard(&self, ctx: &ProcessCtx) -> usize {
        ctx.id().as_usize() % self.shards.len()
    }

    fn globalize(&self, shard: usize, local: usize) -> usize {
        shard * self.span + local
    }
}

impl<R: Renaming + 'static> LongLivedRenaming for ShardedRecycler<R> {
    fn lease(self: Arc<Self>, ctx: &mut ProcessCtx) -> Result<NameLease, RenamingError> {
        let name = self.lease_raw(ctx)?;
        Ok(NameLease::new(name, self))
    }

    fn lease_raw(&self, ctx: &mut ProcessCtx) -> Result<usize, RenamingError> {
        let count = self.shards.len();
        let home = self.home_shard(ctx);
        let mut first_error = None;
        for offset in 0..count {
            let shard = (home + offset) % count;
            match self.shards[shard].grant(ctx) {
                Ok(local) if local <= self.span => return Ok(self.globalize(shard, local)),
                Ok(_) => {
                    // A misbehaving inner produced a name beyond the shard's
                    // span; globalizing it would alias the next shard's
                    // range. Contain it: count the leak (the admission slot
                    // stays burned, matching the per-shard recycler's
                    // leaked-name stance) and keep sweeping.
                    self.leaked.get().fetch_add(1, Ordering::Relaxed); // lint: relaxed-ok(diagnostic counter; no ordering dependency)
                }
                // The home shard is full: overflow to the next one.
                Err(RenamingError::CapacityExceeded { .. }) => continue,
                // Any other shard failure — e.g. a home shard wedged by a
                // crashed process (its inner fresh path poisoned, its names
                // unreleased) — must not wedge the *stealer*: remember the
                // first cause and keep sweeping, exactly as for exhaustion.
                // Returning here used to let one dead shard deny the whole
                // object while healthy shards still had capacity.
                Err(error) => {
                    first_error.get_or_insert(error);
                    continue;
                }
            }
        }
        // Every shard failed. Surface the first non-capacity cause if one
        // cut the sweep short; plain exhaustion otherwise.
        Err(first_error.unwrap_or(RenamingError::CapacityExceeded {
            capacity: count * self.per_shard_max,
        }))
    }

    /// Batch form: fills the batch shard by shard starting at the caller's
    /// home shard (see [`ShardedRecycler`]'s `lease_many_raw` for the sweep
    /// and all-or-nothing rollback policy).
    fn lease_many(
        self: Arc<Self>,
        ctx: &mut ProcessCtx,
        count: usize,
    ) -> Result<Vec<NameLease>, RenamingError> {
        let mut names = Vec::with_capacity(count);
        self.lease_many_raw(ctx, count, &mut names)?;
        Ok(names
            .into_iter()
            .map(|name| NameLease::new(name, Arc::clone(&self) as Arc<dyn LongLivedRenaming>))
            .collect())
    }

    /// Raw batch form: sweeps the shards from the caller's home shard, each
    /// contributing what its amortized admission allows. All-or-nothing: if
    /// the shards cannot jointly supply `count` leases, everything acquired
    /// is released and the cause is returned — a shard's inner fresh-path
    /// error if one cut the sweep short, [`RenamingError::CapacityExceeded`]
    /// otherwise.
    fn lease_many_raw(
        &self,
        ctx: &mut ProcessCtx,
        count: usize,
        out: &mut Vec<usize>,
    ) -> Result<(), RenamingError> {
        let shard_count = self.shards.len();
        let home = self.home_shard(ctx);
        let start = out.len();
        let mut stop = None;
        for offset in 0..shard_count {
            let granted = out.len() - start;
            if granted == count {
                break;
            }
            let shard = (home + offset) % shard_count;
            let before = out.len();
            let (_, error) = self.shards[shard].grant_many(ctx, count - granted, out);
            // Globalize the shard's contribution, containing any local name
            // beyond the span (see `lease_raw`). `swap_remove` only moves a
            // not-yet-globalized name from this same batch into the slot,
            // which the loop then re-examines.
            let mut index = before;
            while index < out.len() {
                let local = out[index];
                if local <= self.span {
                    out[index] = self.globalize(shard, local);
                    index += 1;
                } else {
                    self.leaked.get().fetch_add(1, Ordering::Relaxed); // lint: relaxed-ok(diagnostic counter; no ordering dependency)
                    out.swap_remove(index);
                }
            }
            if error.is_some() {
                stop = error;
                break;
            }
        }
        if out.len() - start == count {
            return Ok(());
        }
        let partial = out.split_off(start);
        self.release_many_raw(&partial);
        Err(stop.unwrap_or(RenamingError::CapacityExceeded {
            capacity: shard_count * self.per_shard_max,
        }))
    }

    fn release_raw(&self, name: usize) {
        if name == 0 || name > self.shards.len() * self.span {
            // Unreachable through `NameLease`; count the misuse like the
            // per-shard recyclers do for their own ranges.
            self.leaked.get().fetch_add(1, Ordering::Relaxed); // lint: relaxed-ok(diagnostic counter; no ordering dependency)
            return;
        }
        let shard = (name - 1) / self.span;
        self.shards[shard].release_raw((name - 1) % self.span + 1);
    }

    fn max_concurrent(&self) -> Option<usize> {
        Some(self.shards.len() * self.per_shard_max)
    }

    fn live_leases(&self) -> usize {
        self.shards.iter().map(Recycler::live_leases).sum()
    }
}

impl<R: Renaming> fmt::Debug for ShardedRecycler<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedRecycler")
            .field("shards", &self.shards.len())
            .field("span", &self.span)
            .field("per_shard_max", &self.per_shard_max)
            .field("fresh_names", &self.fresh_names())
            .field("recycled_names", &self.recycled_names())
            .field("leaked_names", &self.leaked_names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::AdaptiveRenaming;
    use crate::renaming_network::RenamingNetwork;
    use shmem::adversary::ExecConfig;
    use shmem::executor::Executor;
    use shmem::process::ProcessId;
    use sortnet::batcher::odd_even_network;

    fn networks(
        shards: usize,
        width: usize,
    ) -> Vec<RenamingNetwork<sortnet::network::ComparatorNetwork>> {
        (0..shards)
            .map(|_| RenamingNetwork::<_>::new(odd_even_network(width)))
            .collect()
    }

    fn ctx(id: usize, seed: u64) -> ProcessCtx {
        ProcessCtx::new(ProcessId::new(id), seed)
    }

    #[test]
    fn processes_lease_from_their_home_shards() {
        let sharded = Arc::new(ShardedRecycler::new(networks(4, 8), 2));
        assert_eq!(sharded.shard_count(), 4);
        assert_eq!(sharded.span(), 8);
        assert_eq!(LongLivedRenaming::max_concurrent(&*sharded), Some(8));
        for id in 0..4 {
            let mut ctx = ctx(id, 3);
            let lease = Arc::clone(&sharded).lease(&mut ctx).unwrap();
            assert_eq!(
                lease.name(),
                id * 8 + 1,
                "process {id} gets the first name of shard {id}"
            );
            lease.release(&mut ctx);
        }
        // Identifiers wrap onto the same homes.
        let mut ctx = ctx(6, 3);
        let lease = Arc::clone(&sharded).lease(&mut ctx).unwrap();
        assert_eq!(lease.name(), 2 * 8 + 1, "process 6 is homed at shard 2");
        assert_eq!(sharded.live_leases(), 1);
        drop(lease);
        assert_eq!(sharded.live_leases(), 0);
    }

    #[test]
    fn shards_recycle_their_own_names_independently() {
        let sharded = Arc::new(ShardedRecycler::new(networks(2, 8), 2));
        let mut p0 = ctx(0, 5);
        let mut p1 = ctx(1, 5);
        for _ in 0..10 {
            let a = Arc::clone(&sharded).lease(&mut p0).unwrap();
            let b = Arc::clone(&sharded).lease(&mut p1).unwrap();
            assert_eq!(a.name(), 1);
            assert_eq!(b.name(), 9);
            a.release(&mut p0);
            b.release(&mut p1);
        }
        assert_eq!(
            sharded.fresh_names(),
            2,
            "one fresh name per shard serves all churn"
        );
        assert_eq!(sharded.recycled_names(), 18);
        assert_eq!(sharded.leaked_names(), 0);
    }

    #[test]
    fn a_full_home_shard_overflows_to_the_next() {
        let sharded = Arc::new(ShardedRecycler::new(networks(2, 8), 1));
        let mut p0 = ctx(0, 1);
        let held = Arc::clone(&sharded).lease(&mut p0).unwrap();
        assert_eq!(held.name(), 1);
        // Shard 0 is at its admission bound; the same process steals from
        // shard 1.
        let stolen = Arc::clone(&sharded).lease(&mut p0).unwrap();
        assert_eq!(stolen.name(), 9, "overflow steals from the next shard");
        // Both shards full: total capacity is reported.
        assert_eq!(
            Arc::clone(&sharded).lease(&mut p0).unwrap_err(),
            RenamingError::CapacityExceeded { capacity: 2 }
        );
        drop(stolen);
        drop(held);
        assert_eq!(sharded.live_leases(), 0);
    }

    #[test]
    fn lease_many_fills_across_shards_and_is_all_or_nothing() {
        let sharded = Arc::new(ShardedRecycler::new(networks(2, 8), 2));
        let mut p0 = ctx(0, 2);
        let batch = Arc::clone(&sharded).lease_many(&mut p0, 3).unwrap();
        let mut names: Vec<usize> = batch.iter().map(NameLease::name).collect();
        names.sort_unstable();
        assert_eq!(
            names,
            vec![1, 2, 9],
            "the batch drains the home shard before overflowing"
        );
        assert_eq!(sharded.live_leases(), 3);
        // Only one slot remains in total: a batch of two must fail cleanly.
        assert_eq!(
            Arc::clone(&sharded).lease_many(&mut p0, 2).unwrap_err(),
            RenamingError::CapacityExceeded { capacity: 4 }
        );
        assert_eq!(sharded.live_leases(), 3, "failed batch fully released");
        drop(batch);
        assert_eq!(sharded.live_leases(), 0);
    }

    #[test]
    fn releases_route_back_to_the_owning_shard() {
        let sharded = Arc::new(ShardedRecycler::new(networks(2, 8), 2));
        let mut p1 = ctx(1, 4);
        let name = Arc::clone(&sharded).lease(&mut p1).unwrap().forget();
        assert_eq!(name, 9);
        assert_eq!(sharded.shards()[1].live_leases(), 1);
        sharded.release_raw(name);
        assert_eq!(sharded.shards()[1].live_leases(), 0);
        // Misuse: out-of-range and double releases are counted, not applied.
        sharded.release_raw(0);
        sharded.release_raw(17);
        sharded.release_raw(name);
        assert_eq!(sharded.leaked_names(), 3);
        assert_eq!(sharded.live_leases(), 0);
    }

    #[test]
    fn concurrent_churn_stays_within_the_loose_bound() {
        // Shrunk under miri, whose interpreter runs the multi-threaded
        // network traversals ~1000× slower than native.
        let (seeds, workers, rounds) = if cfg!(miri) { (1, 4, 2) } else { (3, 8, 6) };
        for seed in 0..seeds {
            let shards = 4usize;
            let sharded = Arc::new(ShardedRecycler::new(networks(shards, 8), 2));
            let span = sharded.span();
            let outcome = Executor::new(ExecConfig::new(seed)).run(workers, {
                let sharded = Arc::clone(&sharded);
                move |ctx| {
                    let mut names = Vec::new();
                    for _ in 0..rounds {
                        let lease = Arc::clone(&sharded).lease(ctx).unwrap();
                        names.push(lease.name());
                        lease.release(ctx);
                    }
                    names
                }
            });
            let names = outcome.flattened();
            assert_eq!(names.len(), workers * rounds, "seed {seed}");
            assert!(
                names.iter().all(|&name| name >= 1 && name <= shards * span),
                "seed {seed}: names must stay within the loose bound, got {names:?}"
            );
            assert_eq!(sharded.live_leases(), 0, "seed {seed}");
            assert_eq!(sharded.leaked_names(), 0, "seed {seed}");
        }
    }

    #[test]
    fn unbounded_inners_share_a_uniform_span() {
        let sharded =
            ShardedRecycler::new((0..2).map(|_| AdaptiveRenaming::default()).collect(), 3);
        // Unbounded inner objects get the headroom-sized per-shard span.
        assert_eq!(sharded.span(), sharded.shards()[0].name_bound());
        assert!(format!("{sharded:?}").contains("ShardedRecycler"));
    }

    #[test]
    #[should_panic(expected = "needs a shard")]
    fn zero_shards_are_rejected() {
        let _ = ShardedRecycler::new(networks(0, 8), 1);
    }
}
