//! Common interfaces of the renaming objects.

use crate::error::RenamingError;
use shmem::process::ProcessCtx;

/// A one-shot-per-participant renaming object.
///
/// Every participating process calls [`Renaming::acquire`] and receives a
/// name. The guarantees, matching the paper's problem statement (§2):
///
/// * **Uniqueness** — no two acquisitions return the same name, in every
///   execution.
/// * **Termination** — every acquisition by a correct process returns, with
///   probability 1.
/// * **Namespace** — *tight* objects return names in `1..=n` where `n` is the
///   object's capacity; *adaptive tight* (strong adaptive) objects return
///   names in `1..=k` where `k` is the number of participants in the current
///   execution.
pub trait Renaming: Send + Sync {
    /// Acquires a unique name (1-based).
    ///
    /// # Errors
    ///
    /// Returns [`RenamingError::CapacityExceeded`] if more processes
    /// participate than the object supports, and
    /// [`RenamingError::IdentifierOutOfRange`] if the calling process's
    /// initial identifier does not fit the object's input namespace.
    fn acquire(&self, ctx: &mut ProcessCtx) -> Result<usize, RenamingError>;

    /// The maximum number of names this object can hand out, or `None` if it
    /// is unbounded (adaptive).
    fn capacity(&self) -> Option<usize>;

    /// Whether the size of the acquired namespace adapts to the contention
    /// `k` (as opposed to being fixed at `n`).
    fn is_adaptive(&self) -> bool;
}

/// Checks a set of acquired names for the *strong* (tight) renaming
/// guarantee: with `k` participants the names must be exactly `1..=k`.
///
/// Returns `Err` with a human-readable description of the violation.
///
/// # Example
///
/// ```
/// use adaptive_renaming::traits::assert_tight_namespace;
///
/// assert!(assert_tight_namespace(&[2, 1, 3]).is_ok());
/// assert!(assert_tight_namespace(&[1, 3]).is_err()); // hole at 2
/// assert!(assert_tight_namespace(&[1, 1]).is_err()); // duplicate
/// ```
pub fn assert_tight_namespace(names: &[usize]) -> Result<(), String> {
    let k = names.len();
    let mut seen = vec![false; k + 1];
    for &name in names {
        if name == 0 || name > k {
            return Err(format!(
                "name {name} outside the tight namespace 1..={k} ({k} participants)"
            ));
        }
        if seen[name] {
            return Err(format!("name {name} acquired twice"));
        }
        seen[name] = true;
    }
    Ok(())
}

/// Checks a set of acquired names for uniqueness only (the *loose* renaming
/// guarantee): duplicates are violations, holes are allowed.
pub fn assert_unique_names(names: &[usize]) -> Result<(), String> {
    let mut sorted = names.to_vec();
    sorted.sort_unstable();
    for pair in sorted.windows(2) {
        if pair[0] == pair[1] {
            return Err(format!("name {} acquired twice", pair[0]));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tight_namespace_accepts_permutations() {
        assert!(assert_tight_namespace(&[]).is_ok());
        assert!(assert_tight_namespace(&[1]).is_ok());
        assert!(assert_tight_namespace(&[3, 1, 2]).is_ok());
    }

    #[test]
    fn tight_namespace_rejects_holes_duplicates_and_zero() {
        assert!(assert_tight_namespace(&[1, 2, 4]).is_err());
        assert!(assert_tight_namespace(&[1, 2, 2]).is_err());
        assert!(assert_tight_namespace(&[0, 1]).is_err());
    }

    #[test]
    fn unique_names_allows_holes_but_not_duplicates() {
        assert!(assert_unique_names(&[10, 20, 30]).is_ok());
        assert!(assert_unique_names(&[7, 7]).is_err());
        assert!(assert_unique_names(&[]).is_ok());
    }
}
