//! Common interfaces of the renaming objects.

use crate::error::RenamingError;
use shmem::process::ProcessCtx;
use std::sync::Arc;

/// A one-shot-per-participant renaming object.
///
/// Every participating process calls [`Renaming::acquire`] and receives a
/// name. The guarantees, matching the paper's problem statement (§2):
///
/// * **Uniqueness** — no two acquisitions return the same name, in every
///   execution.
/// * **Termination** — every acquisition by a correct process returns, with
///   probability 1.
/// * **Namespace** — *tight* objects return names in `1..=n` where `n` is the
///   object's capacity; *adaptive tight* (strong adaptive) objects return
///   names in `1..=k` where `k` is the number of participants in the current
///   execution.
pub trait Renaming: Send + Sync {
    /// Acquires a unique name (1-based).
    ///
    /// # Errors
    ///
    /// Returns [`RenamingError::CapacityExceeded`] if more processes
    /// participate than the object supports, and
    /// [`RenamingError::IdentifierOutOfRange`] if the calling process's
    /// initial identifier does not fit the object's input namespace.
    fn acquire(&self, ctx: &mut ProcessCtx) -> Result<usize, RenamingError>;

    /// Acquires a unique name on behalf of the `participant`-th *virtual
    /// participant* (0-based).
    ///
    /// Long-lived wrappers such as [`Recycler`](crate::recycler::Recycler)
    /// route every fresh acquisition through a distinct virtual participant
    /// so that identity-sensitive objects — a renaming network enters the
    /// network on the wire given by the caller's identifier — keep working
    /// when one OS process acquires repeatedly. Identity-oblivious objects
    /// use the default implementation, which ignores `participant`.
    ///
    /// # Errors
    ///
    /// As [`Renaming::acquire`]; identity-sensitive objects additionally
    /// reject a `participant` index outside their input namespace.
    fn acquire_as(&self, ctx: &mut ProcessCtx, participant: usize) -> Result<usize, RenamingError> {
        let _ = participant;
        self.acquire(ctx)
    }

    /// The maximum number of names this object can hand out, or `None` if it
    /// is unbounded (adaptive).
    fn capacity(&self) -> Option<usize>;

    /// Whether the size of the acquired namespace adapts to the contention
    /// `k` (as opposed to being fixed at `n`).
    fn is_adaptive(&self) -> bool;
}

impl<T: Renaming + ?Sized> Renaming for Arc<T> {
    fn acquire(&self, ctx: &mut ProcessCtx) -> Result<usize, RenamingError> {
        (**self).acquire(ctx)
    }

    fn acquire_as(&self, ctx: &mut ProcessCtx, participant: usize) -> Result<usize, RenamingError> {
        (**self).acquire_as(ctx, participant)
    }

    fn capacity(&self) -> Option<usize> {
        (**self).capacity()
    }

    fn is_adaptive(&self) -> bool {
        (**self).is_adaptive()
    }
}

impl<T: Renaming + ?Sized> Renaming for Box<T> {
    fn acquire(&self, ctx: &mut ProcessCtx) -> Result<usize, RenamingError> {
        (**self).acquire(ctx)
    }

    fn acquire_as(&self, ctx: &mut ProcessCtx, participant: usize) -> Result<usize, RenamingError> {
        (**self).acquire_as(ctx, participant)
    }

    fn capacity(&self) -> Option<usize> {
        (**self).capacity()
    }

    fn is_adaptive(&self) -> bool {
        (**self).is_adaptive()
    }
}

/// Checks a set of acquired names for the *strong* (tight) renaming
/// guarantee: with `k` participants the names must be exactly `1..=k`.
///
/// Returns `Err` with a human-readable description of the violation.
///
/// # Example
///
/// ```
/// use adaptive_renaming::traits::assert_tight_namespace;
///
/// assert!(assert_tight_namespace(&[2, 1, 3]).is_ok());
/// assert!(assert_tight_namespace(&[1, 3]).is_err()); // hole at 2
/// assert!(assert_tight_namespace(&[1, 1]).is_err()); // duplicate
/// ```
pub fn assert_tight_namespace(names: &[usize]) -> Result<(), String> {
    let k = names.len();
    let mut seen = vec![false; k + 1];
    for &name in names {
        if name == 0 || name > k {
            return Err(format!(
                "name {name} outside the tight namespace 1..={k} ({k} participants)"
            ));
        }
        if seen[name] {
            return Err(format!("name {name} acquired twice"));
        }
        seen[name] = true;
    }
    Ok(())
}

/// Checks a set of acquired names for uniqueness only (the *loose* renaming
/// guarantee): duplicates are violations, holes are allowed.
///
/// The common case — names from a near-tight namespace, so `max(name)` is
/// within a small factor of the count — is handled with one linear pass over
/// a bitset instead of cloning and sorting; very sparse name sets fall back
/// to the sort-based check.
pub fn assert_unique_names(names: &[usize]) -> Result<(), String> {
    if names.len() < 2 {
        return Ok(());
    }
    let max = names.iter().copied().max().expect("len checked above");
    if max <= names.len().saturating_mul(4) {
        // Dense path: one u64-word bitset over 0..=max, linear time, no sort.
        let mut seen = vec![0u64; max / 64 + 1];
        for &name in names {
            let (word, bit) = (name / 64, 1u64 << (name % 64));
            if seen[word] & bit != 0 {
                return Err(format!("name {name} acquired twice"));
            }
            seen[word] |= bit;
        }
    } else {
        let mut sorted = names.to_vec();
        sorted.sort_unstable();
        for pair in sorted.windows(2) {
            if pair[0] == pair[1] {
                return Err(format!("name {} acquired twice", pair[0]));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tight_namespace_accepts_permutations() {
        assert!(assert_tight_namespace(&[]).is_ok());
        assert!(assert_tight_namespace(&[1]).is_ok());
        assert!(assert_tight_namespace(&[3, 1, 2]).is_ok());
    }

    #[test]
    fn tight_namespace_rejects_holes_duplicates_and_zero() {
        assert!(assert_tight_namespace(&[1, 2, 4]).is_err());
        assert!(assert_tight_namespace(&[1, 2, 2]).is_err());
        assert!(assert_tight_namespace(&[0, 1]).is_err());
    }

    #[test]
    fn unique_names_allows_holes_but_not_duplicates() {
        assert!(assert_unique_names(&[10, 20, 30]).is_ok());
        assert!(assert_unique_names(&[7, 7]).is_err());
        assert!(assert_unique_names(&[]).is_ok());
        assert!(assert_unique_names(&[5]).is_ok());
    }

    #[test]
    fn unique_names_dense_and_sparse_paths_agree() {
        // Dense path: max ≤ 4·len, checked via the bitset.
        assert!(assert_unique_names(&[4, 1, 3, 2]).is_ok());
        assert!(assert_unique_names(&[4, 1, 3, 1]).is_err());
        assert!(assert_unique_names(&[8, 2]).is_ok()); // boundary: 8 = 4·2
                                                       // Sparse path: max far above 4·len, checked via sorting.
        assert!(assert_unique_names(&[1_000_000, 2]).is_ok());
        assert!(assert_unique_names(&[1_000_000, 1_000_000, 2]).is_err());
    }
}
