//! Lock-free pop-minimum free lists of names, flat and hierarchical.
//!
//! A [`FreeList`] is the heart of the long-lived recycling layer
//! ([`Recycler`](crate::recycler::Recycler)): released names are parked in an
//! atomic bitmap, and a lease claims the **smallest** free name. Claiming the
//! minimum is what keeps recycling *adaptive* — for a lease to be granted
//! name `m`, every name below `m` must be held or in transit at the moment of
//! the scan, so the point contention is at least `m`. A LIFO stack would hand
//! a name granted at peak contention straight back out at low contention and
//! break that bound.
//!
//! Two layouts are provided, selected by [`FreeListKind`]:
//!
//! * **Flat** — one word per 64 names, scanned in order. Pop-minimum is
//!   `O(bound / 64)` in the worst case (an empty or top-heavy list scans the
//!   whole array). This was the only layout before the hierarchical one
//!   landed; it is kept as the bit-exact baseline.
//! * **Hierarchical** — the same data words plus a *summary* level: one
//!   summary bit per data word (so one summary word per 64 data words, i.e.
//!   per 4096 names). Pop-minimum reads the first non-zero summary word,
//!   jumps straight to its lowest flagged data word, and claims that word's
//!   lowest bit — `O(1)` expected instead of `O(bound / 64)`.
//!
//! # The summary protocol: monotone flags
//!
//! Summary bits are **monotone**: a push *ensures* its word's summary bit
//! is set (a plain load, plus one `fetch_or` only if the bit is still
//! clear) strictly before the push completes, and **nothing ever clears a
//! summary bit**. A flagged word may be empty (all its names claimed
//! again); an *unflagged* word carries an exact guarantee — **no push for
//! any of its names has ever completed**, i.e. no name in that word has
//! ever been free.
//!
//! That guarantee is what makes skipping unflagged words sound, where a
//! clearing protocol would not be:
//!
//! * **Minimality.** A pop may only skip a word it knows holds no free
//!   name. Flagged words the pop inspects itself (one load). Unflagged
//!   words have never held a free name at any point in time — a fact no
//!   concurrent interleaving can invalidate mid-scan, because the bits
//!   only ever go from 0 to 1. (Any protocol that *clears* summary bits
//!   opens a window in which a refilled word is hidden behind another
//!   thread's stale observation, letting a pop return a non-minimum name.)
//! * **Coherent misses.** A completed push ensured its summary bit before
//!   bumping the seqlock below, and the bit cannot have been cleared since
//!   — so any scan that starts after the bump is guaranteed to visit the
//!   word. In-flight pushes (bit ensured but seqlock not yet bumped) are
//!   exactly what the seqlock re-scan rule accounts for.
//!
//! The trade-off is that emptied words keep their flags: a pop pays one
//! load per *historically touched* word it passes, degenerating to the
//! flat scan plus summary overhead only when every word has held a free
//! name at some point. Under the recycling workloads the hierarchy is for
//! — free names dense at the bottom of the namespace — only the lowest
//! words are ever flagged, and pop-minimum (hits *and* misses) stays
//! `O(1)` expected regardless of the bound.
//!
//! # Coherent misses
//!
//! The word scan of [`FreeList::pop`] is not by itself an atomic emptiness
//! check: a name released into an already-scanned region would be missed,
//! and a miss wrongly reported as "no free names" would let a recycler
//! consume a fresh name it does not need — breaking the `1..=max_concurrent`
//! bound. The `pushes` counter closes that hole seqlock-style: every
//! successful push bumps it (after all bits land, before the releaser stops
//! counting as live), and [`FreeList::pop_coherent`] rescans whenever the
//! counter moved during a missing scan. A coherent miss therefore proves
//! that at its linearization point every name absent from the list was owned
//! by a still-live lease operation.
//!
//! # Name-to-bit mapping
//!
//! Names are 1-based; name `n` occupies bit `(n - 1) % 64` of data word
//! `(n - 1) / 64`, so a list of bound `b` allocates exactly `⌈b / 64⌉`
//! words. (An earlier revision mapped name `n` to bit `n % 64` of word
//! `n / 64`, which wasted bit 0 of word 0 and allocated one entire extra
//! word whenever `bound % 64 == 0` — e.g. 2 words for a 64-name list.)

use shmem::arena::{Arena, ArenaRef, ArenaSliceRef};
use shmem::pad::CachePadded;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// The layout of a [`FreeList`]'s bitmap.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum FreeListKind {
    /// Data words only; pop-minimum scans them in order (`O(bound / 64)`).
    Flat,
    /// Data words plus a summary word per 64 data words; pop-minimum is
    /// `O(1)` expected. The default.
    #[default]
    Hierarchical,
}

/// A lock-free pop-minimum set of names `1..=bound`, stored as an atomic
/// bitmap (optionally two-level, see [`FreeListKind`] and the
/// [module documentation](self)).
pub struct FreeList {
    /// The arena holding every mutable word below. Defaults to a private
    /// heap arena sized by [`FreeList::footprint`]; pass a `MAP_SHARED`
    /// arena to [`FreeList::with_kind_in`] to share the list across
    /// processes.
    arena: Arc<Arena>,
    /// The data words stay dense — the bitmap's density *is* the layout —
    /// and the allocation starts on its own 64-byte line, so no data word
    /// ever shares a line with foreign state (the old `Box<[AtomicU64]>`
    /// layout let word 0 share its line with whatever the allocator placed
    /// before it — the false-sharing hazard the arena placement retires).
    /// Pinned (resolved once) so every scan is a plain slice walk.
    words: ArenaSliceRef<AtomicU64>,
    /// One bit per data word; present only for the hierarchical layout.
    /// Each summary word is cache-padded: adjacent summary words cover
    /// disjoint 4096-name regions and are flagged concurrently.
    summary: Option<ArenaSliceRef<CachePadded<AtomicU64>>>,
    /// Successful pushes so far (seqlock for coherent-miss detection). An
    /// arena allocation owns its 64-byte line outright — it is the single
    /// most contended word in the structure.
    pushes: ArenaRef<AtomicUsize>,
    bound: usize,
}

impl FreeList {
    /// Creates an empty free list accepting names `1..=bound`, with the
    /// default (hierarchical) layout, in a private heap arena.
    pub fn new(bound: usize) -> Self {
        Self::with_kind(bound, FreeListKind::default())
    }

    /// Creates an empty free list accepting names `1..=bound` with the given
    /// layout, in a private heap arena (identical layout to the shared
    /// backend; see [`FreeList::with_kind_in`]).
    pub fn with_kind(bound: usize, kind: FreeListKind) -> Self {
        Self::with_kind_in(&Arena::heap(Self::footprint(bound, kind)), bound, kind)
    }

    /// Creates an empty free list whose words live in `arena` — the
    /// cross-process constructor. The caller must reserve at least
    /// [`FreeList::footprint`] bytes for it.
    pub fn with_kind_in(arena: &Arc<Arena>, bound: usize, kind: FreeListKind) -> Self {
        let word_count = bound.div_ceil(64).max(1);
        FreeList {
            words: arena.alloc_slice::<AtomicU64>(word_count).pin(arena),
            summary: match kind {
                FreeListKind::Flat => None,
                FreeListKind::Hierarchical => Some(
                    arena
                        .alloc_slice::<CachePadded<AtomicU64>>(word_count.div_ceil(64))
                        .pin(arena),
                ),
            },
            pushes: arena.alloc::<AtomicUsize>().pin(arena),
            bound,
            arena: Arc::clone(arena),
        }
    }

    /// The number of arena bytes a `FreeList` of this shape allocates
    /// (data words, summary words and the seqlock, each rounded to the
    /// arena's 64-byte allocation grain).
    pub fn footprint(bound: usize, kind: FreeListKind) -> usize {
        let word_count = bound.div_ceil(64).max(1);
        let round = |bytes: usize| bytes.div_ceil(64).max(1) * 64;
        let data = round(word_count * 8);
        let summary = match kind {
            FreeListKind::Flat => 0,
            FreeListKind::Hierarchical => word_count.div_ceil(64) * 64,
        };
        data + summary + 64
    }

    /// The arena backing this list.
    pub fn arena(&self) -> &Arc<Arena> {
        &self.arena
    }

    #[inline]
    fn data(&self) -> &[AtomicU64] {
        &self.words
    }

    #[inline]
    fn flags(&self) -> Option<&[CachePadded<AtomicU64>]> {
        self.summary.as_deref()
    }

    #[inline]
    fn push_counter(&self) -> &AtomicUsize {
        &self.pushes
    }

    /// The largest name the list can hold.
    pub fn bound(&self) -> usize {
        self.bound
    }

    /// The layout of this list.
    pub fn kind(&self) -> FreeListKind {
        match self.summary {
            None => FreeListKind::Flat,
            Some(_) => FreeListKind::Hierarchical,
        }
    }

    /// Successful pushes so far. Together with [`FreeList::len`] this yields
    /// the number of successful pops: `pushes() - len()`.
    pub fn pushes(&self) -> usize {
        self.push_counter().load(Ordering::SeqCst)
    }

    /// Marks `name` free; returns `false` (rejecting the push) if the name
    /// is out of range or already free.
    pub fn push(&self, name: usize) -> bool {
        if !self.set_bit(name) {
            return false;
        }
        self.push_counter().fetch_add(1, Ordering::SeqCst);
        obs::count(obs::Metric::FreeListPush);
        true
    }

    /// Marks every name in `names` free with a **single** seqlock bump at
    /// the end (after every bit has landed), amortizing the release-side
    /// counter update over the batch. Returns how many pushes were accepted;
    /// out-of-range and already-free names are rejected exactly as by
    /// [`FreeList::push`].
    ///
    /// Until the final bump the batch's names keep counting as in-flight
    /// (seqlock-wise they have not been released yet), which is the
    /// conservative direction for every coherence argument built on the
    /// counter.
    pub fn push_many(&self, names: &[usize]) -> usize {
        let pushed = names.iter().filter(|&&name| self.set_bit(name)).count();
        if pushed > 0 {
            self.push_counter().fetch_add(pushed, Ordering::SeqCst);
            obs::add(obs::Metric::FreeListPush, pushed as u64);
        }
        pushed
    }

    /// Sets `name`'s bit and ensures its word's (monotone) summary bit,
    /// without touching the seqlock. Returns `false` for out-of-range or
    /// already-free names.
    fn set_bit(&self, name: usize) -> bool {
        if name == 0 || name > self.bound {
            return false;
        }
        let (word, bit) = ((name - 1) / 64, 1u64 << ((name - 1) % 64));
        let previous = self.data()[word].fetch_or(bit, Ordering::SeqCst);
        if previous & bit != 0 {
            return false;
        }
        if let Some(summary) = self.flags() {
            // Ensure the summary flag before this push can complete. The
            // bits are monotone (never cleared), so an observed-set flag is
            // set forever and the common case is one plain load. Skipping
            // based on the *data* word being non-empty would be unsound:
            // the earlier pusher that made it non-empty may still be
            // in-flight before its own summary write.
            let flag = &summary[word / 64];
            let summary_bit = 1u64 << (word % 64);
            if flag.load(Ordering::SeqCst) & summary_bit == 0 {
                flag.fetch_or(summary_bit, Ordering::SeqCst);
            }
        }
        true
    }

    /// Re-derives the summary level from the data words, flagging any
    /// non-empty data word whose summary bit is clear. Returns the number
    /// of flags repaired; `0` for the flat layout.
    ///
    /// A crash between a push's data `fetch_or` and its summary ensure
    /// leaves exactly this inconsistency: the name's bit is set but
    /// hierarchical pops skip its word forever — lost capacity. Because
    /// summary flags are monotone (never cleared), repair is pure
    /// re-derivation: setting a flag that should be set cannot race any
    /// concurrent pusher or popper, so this is safe to run at any time, not
    /// only during restart recovery ([`crate::recovery::recover`] calls it
    /// on every win).
    pub fn repair_summary(&self) -> usize {
        let Some(summary) = self.flags() else {
            return 0;
        };
        let mut repaired = 0;
        for (index, word) in self.data().iter().enumerate() {
            if word.load(Ordering::SeqCst) == 0 {
                continue;
            }
            let flag = &summary[index / 64];
            let summary_bit = 1u64 << (index % 64);
            if flag.load(Ordering::SeqCst) & summary_bit == 0 {
                flag.fetch_or(summary_bit, Ordering::SeqCst);
                repaired += 1;
            }
        }
        repaired
    }

    /// Injects a torn push: sets `name`'s **data** bit without the summary
    /// ensure or the seqlock bump — the state a kill inside
    /// [`FreeList::push`] leaves behind, which [`FreeList::repair_summary`]
    /// exists to fix. Chaos-harness fault hook; returns whether the data
    /// bit was newly set. On the flat layout the data bit *is* the whole
    /// push minus the seqlock, so the injection degenerates to an
    /// uncounted push.
    pub fn inject_torn_push(&self, name: usize) -> bool {
        if name == 0 || name > self.bound {
            return false;
        }
        let (word, bit) = ((name - 1) / 64, 1u64 << ((name - 1) % 64));
        self.data()[word].fetch_or(bit, Ordering::SeqCst) & bit == 0
    }

    /// A flat copy of every shared word — data, summary (if any), then the
    /// push counter. Equal snapshots mean byte-identical list state; the
    /// recovery idempotence tests pin on it.
    pub fn snapshot_words(&self) -> Vec<u64> {
        self.data()
            .iter()
            .map(|word| word.load(Ordering::SeqCst))
            .chain(
                self.flags()
                    .unwrap_or(&[])
                    .iter()
                    .map(|flag| flag.load(Ordering::SeqCst)),
            )
            .chain(std::iter::once(self.pushes() as u64))
            .collect()
    }

    /// Claims the smallest free name in one scan, if any.
    ///
    /// A `None` from a single scan is **not** an atomic emptiness check; use
    /// [`FreeList::pop_coherent`] when a miss must mean "observably empty at
    /// one instant".
    pub fn pop(&self) -> Option<usize> {
        let popped = match self.flags() {
            None => self.pop_flat(),
            Some(summary) => self.pop_hierarchical(summary),
        };
        if popped.is_some() {
            obs::count(obs::Metric::FreeListPop);
        }
        popped
    }

    fn pop_flat(&self) -> Option<usize> {
        for (index, word) in self.data().iter().enumerate() {
            if let Some(bit) = Self::claim_lowest(word) {
                return Some(index * 64 + bit + 1);
            }
        }
        None
    }

    fn pop_hierarchical(&self, summary: &[CachePadded<AtomicU64>]) -> Option<usize> {
        for (summary_index, summary_word) in summary.iter().enumerate() {
            // One snapshot per summary word, visited lowest bit first. A
            // flag appearing behind the cursor belongs to a push that
            // overlaps this scan — the same race a flat scan has, covered
            // by the seqlock for coherent misses. Flags over emptied words
            // cost one data-word load each and are never cleared (see the
            // module docs for why clearing would be unsound).
            let mut flags = summary_word.load(Ordering::SeqCst);
            while flags != 0 {
                let summary_bit = flags.trailing_zeros() as usize;
                flags &= !(1u64 << summary_bit);
                let word_index = summary_index * 64 + summary_bit;
                if let Some(bit) = Self::claim_lowest(&self.data()[word_index]) {
                    return Some(word_index * 64 + bit + 1);
                }
            }
        }
        None
    }

    /// Claims the lowest set bit of `word`, returning its index.
    fn claim_lowest(word: &AtomicU64) -> Option<usize> {
        let mut current = word.load(Ordering::SeqCst);
        while current != 0 {
            let bit = current.trailing_zeros();
            match word.compare_exchange_weak(
                current,
                current & !(1u64 << bit),
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return Some(bit as usize),
                Err(now) => current = now,
            }
        }
        None
    }

    /// Claims the smallest free name; a miss is retried until no release
    /// landed during the scan, so `None` means the list was observably empty
    /// at a single instant. Lock-free: each retry is caused by another
    /// thread's completed release.
    pub fn pop_coherent(&self) -> Option<usize> {
        loop {
            let before = self.push_counter().load(Ordering::SeqCst);
            if let Some(name) = self.pop() {
                return Some(name);
            }
            if self.push_counter().load(Ordering::SeqCst) == before {
                return None;
            }
        }
    }

    /// The number of names currently free (`O(bound / 64)`; diagnostics).
    pub fn len(&self) -> usize {
        self.data()
            .iter()
            .map(|word| word.load(Ordering::Relaxed).count_ones() as usize)
            .sum()
    }

    /// Whether no names are currently free (diagnostics; racy by nature).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The number of data words allocated (exactly `⌈bound / 64⌉`, except
    /// that a zero-bound list still allocates one word).
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// The byte offsets (within the arena) of the data words, the summary
    /// words and the seqlock — exposed so tests can assert the layout
    /// (64-byte alignment, no line sharing between hot words).
    pub fn layout_offsets(&self) -> (usize, Option<usize>, usize) {
        (
            self.words.offset(),
            self.summary.as_ref().map(|s| s.offset()),
            self.pushes.offset(),
        )
    }
}

impl fmt::Debug for FreeList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FreeList")
            .field("kind", &self.kind())
            .field("bound", &self.bound)
            .field("len", &self.len())
            .field("pushes", &self.pushes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    const BOTH: [FreeListKind; 2] = [FreeListKind::Flat, FreeListKind::Hierarchical];

    /// Iterations of the multi-threaded churn tests; shrunk under miri,
    /// whose interpreter runs them ~1000× slower than native.
    const CHURN_OPS: usize = if cfg!(miri) { 200 } else { 10_000 };

    #[test]
    fn pops_the_minimum_and_rejects_duplicates() {
        for kind in BOTH {
            let list = FreeList::with_kind(200, kind);
            assert_eq!(list.kind(), kind);
            assert_eq!(list.pop(), None);
            assert!(list.push(5));
            assert!(list.push(3));
            assert!(list.push(130)); // third word of the bitmap
            assert!(!list.push(5), "duplicate push is rejected");
            assert!(!list.push(0), "name 0 is rejected");
            assert!(!list.push(201), "out-of-range name is rejected");
            assert_eq!(list.len(), 3);
            assert_eq!(list.pop(), Some(3), "the smallest free name comes first");
            assert_eq!(list.pop(), Some(5));
            assert_eq!(list.pop(), Some(130));
            assert_eq!(list.pop(), None);
            assert!(list.push(5), "popped names can be pushed again");
            assert_eq!(list.pop_coherent(), Some(5));
            assert_eq!(list.pop_coherent(), None);
        }
    }

    #[test]
    fn word_sizing_is_exact_at_the_64_boundaries() {
        // One word per 64 names, no extra word when the bound divides 64.
        for (bound, words) in [(1, 1), (63, 1), (64, 1), (65, 2), (127, 2), (128, 2)] {
            for kind in BOTH {
                let list = FreeList::with_kind(bound, kind);
                assert_eq!(list.word_count(), words, "bound {bound}, {kind:?}");
            }
        }
    }

    #[test]
    fn boundary_bounds_round_trip_every_name() {
        // Exhaustive push/pop/pop_coherent at the word-boundary bounds named
        // by the audit: every name in 1..=bound lands and comes back out in
        // ascending order; bound + 1 and 0 are rejected.
        for bound in [1usize, 63, 64, 65, 128] {
            for kind in BOTH {
                let list = FreeList::with_kind(bound, kind);
                for name in 1..=bound {
                    assert!(list.push(name), "bound {bound}, {kind:?}: push {name}");
                }
                assert!(!list.push(0), "bound {bound}, {kind:?}");
                assert!(
                    !list.push(bound + 1),
                    "bound {bound}, {kind:?}: name above the bound"
                );
                assert_eq!(list.len(), bound, "bound {bound}, {kind:?}");
                for name in 1..=bound {
                    assert_eq!(
                        list.pop_coherent(),
                        Some(name),
                        "bound {bound}, {kind:?}: pop-minimum order"
                    );
                }
                assert_eq!(list.pop_coherent(), None, "bound {bound}, {kind:?}");
                assert_eq!(list.pushes(), bound, "bound {bound}, {kind:?}");
            }
        }
    }

    #[test]
    fn the_highest_name_lives_in_the_last_word() {
        for kind in BOTH {
            let list = FreeList::with_kind(64, kind);
            assert!(list.push(64), "{kind:?}: name == bound is accepted");
            assert_eq!(list.len(), 1);
            assert_eq!(list.pop(), Some(64), "{kind:?}");
            let wide = FreeList::with_kind(128, kind);
            assert!(wide.push(128));
            assert_eq!(wide.pop(), Some(128), "{kind:?}");
        }
    }

    #[test]
    fn emptied_words_keep_their_flags_and_are_skipped_cheaply() {
        let list = FreeList::with_kind(8192, FreeListKind::Hierarchical);
        // Park a name far up the namespace, then cycle a low name: word 0's
        // monotone summary flag survives the pop that empties it, and later
        // pops walk past it (one load) to find name 5000.
        assert!(list.push(5000));
        assert!(list.push(1));
        assert_eq!(list.pop(), Some(1));
        assert_eq!(list.pop(), Some(5000), "flagged-but-empty words are passed");
        assert_eq!(list.pop(), None);
        // The flags stay set; correctness is unaffected across refills.
        assert!(list.push(8192));
        assert!(list.push(1));
        assert_eq!(list.pop_coherent(), Some(1), "pop-minimum across refills");
        assert_eq!(list.pop_coherent(), Some(8192));
        assert_eq!(list.pop_coherent(), None);
    }

    #[test]
    fn misses_are_coherent_under_concurrent_churn() {
        // Pushers cycle names through the list while poppers drain it; a
        // coherent miss must never coincide with an unclaimed name. The
        // accounting check: every popped name is pushed back, so at the end
        // all names are on the list again.
        for kind in BOTH {
            let list = Arc::new(FreeList::with_kind(8192, kind));
            assert!(list.push(1) && list.push(100) && list.push(8000));
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    let list = Arc::clone(&list);
                    scope.spawn(move || {
                        for _ in 0..CHURN_OPS {
                            if let Some(name) = list.pop_coherent() {
                                assert!(list.push(name), "claimed names push back cleanly");
                            }
                        }
                    });
                }
            });
            assert_eq!(list.len(), 3, "{kind:?}: all names survive the churn");
            assert_eq!(list.pop_coherent(), Some(1), "{kind:?}");
            assert_eq!(list.pop_coherent(), Some(100), "{kind:?}");
            assert_eq!(list.pop_coherent(), Some(8000), "{kind:?}");
            assert_eq!(list.pop_coherent(), None, "{kind:?}");
        }
    }

    #[test]
    fn hierarchical_and_flat_agree_on_sequential_scripts() {
        // A deterministic interleaving driven against both layouts must
        // produce identical results op for op (the property-based version
        // with random scripts lives in tests/lease_churn.rs).
        let flat = FreeList::with_kind(300, FreeListKind::Flat);
        let hier = FreeList::with_kind(300, FreeListKind::Hierarchical);
        let script: Vec<(usize, usize)> = (0..600usize)
            .map(|i| ((i * 7 + 3) % 4, (i * 131 + 17) % 302))
            .collect();
        for (op, name) in script {
            match op {
                0 | 1 => assert_eq!(flat.push(name), hier.push(name), "push {name}"),
                2 => assert_eq!(flat.pop(), hier.pop()),
                _ => assert_eq!(flat.pop_coherent(), hier.pop_coherent()),
            }
        }
        assert_eq!(flat.len(), hier.len());
        assert_eq!(flat.pushes(), hier.pushes());
    }

    #[test]
    fn push_many_batches_the_seqlock_and_rejects_like_push() {
        for kind in BOTH {
            let list = FreeList::with_kind(100, kind);
            assert!(list.push(7));
            // 7 is a duplicate, 0 and 101 are out of range: 3 of 6 land.
            let pushed = list.push_many(&[5, 7, 0, 70, 101, 9]);
            assert_eq!(pushed, 3, "{kind:?}");
            assert_eq!(list.pushes(), 4, "{kind:?}: one bump per landed name");
            assert_eq!(list.len(), 4, "{kind:?}");
            for expected in [5, 7, 9, 70] {
                assert_eq!(list.pop_coherent(), Some(expected), "{kind:?}");
            }
            assert_eq!(list.pop_coherent(), None, "{kind:?}");
            assert_eq!(list.push_many(&[]), 0, "{kind:?}");
        }
    }

    #[test]
    fn hot_words_are_cache_line_aligned_and_disjoint() {
        // The false-sharing hazard the arena placement retires: every hot
        // region (data words, each summary word, the pushes seqlock) starts
        // on its own 64-byte line, and no two of them share a line.
        for kind in BOTH {
            let list = FreeList::with_kind(8192, kind);
            let (words_off, summary_off, pushes_off) = list.layout_offsets();
            assert_eq!(words_off % 64, 0, "{kind:?}: data words line-aligned");
            assert_eq!(pushes_off % 64, 0, "{kind:?}: seqlock line-aligned");
            let data_bytes = list.word_count() * 8;
            assert!(
                pushes_off >= words_off + data_bytes.next_multiple_of(64)
                    || words_off >= pushes_off + 64,
                "{kind:?}: seqlock shares no line with data words"
            );
            if let Some(summary_off) = summary_off {
                assert_eq!(summary_off % 64, 0, "{kind:?}: summary line-aligned");
                assert_eq!(
                    std::mem::size_of::<CachePadded<AtomicU64>>(),
                    64,
                    "each summary word owns a full line"
                );
            }
            // The footprint helper really covers the allocation.
            assert!(list.arena().used() <= FreeList::footprint(8192, kind));
        }
    }

    #[test]
    fn arena_backed_list_behaves_identically_to_private() {
        use shmem::arena::Arena;

        let arena = Arena::heap(FreeList::footprint(300, FreeListKind::Hierarchical));
        let shared = FreeList::with_kind_in(&arena, 300, FreeListKind::Hierarchical);
        let private = FreeList::new(300);
        for name in [7usize, 1, 299, 64, 65] {
            assert_eq!(shared.push(name), private.push(name));
        }
        loop {
            let (a, b) = (shared.pop_coherent(), private.pop_coherent());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        assert_eq!(shared.pushes(), private.pushes());
    }

    #[test]
    fn debug_reports_layout_and_occupancy() {
        let list = FreeList::new(10);
        assert!(list.is_empty());
        assert!(list.push(2));
        let formatted = format!("{list:?}");
        assert!(formatted.contains("Hierarchical"), "{formatted}");
        assert!(formatted.contains("len: 1"), "{formatted}");
    }
}
