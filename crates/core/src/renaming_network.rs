//! Renaming networks over a fixed sorting network (§5).
//!
//! Take any sorting network with `M` input wires and replace every comparator
//! with a two-process test-and-set object. A process enters the network on the
//! input wire given by its (unique) initial name, and at every comparator it
//! meets it plays the test-and-set: winning moves it to the comparator's top
//! wire, losing to the bottom wire. The index of the output wire it reaches is
//! its new name. Theorem 1 shows this solves strong adaptive renaming — the
//! `k` participating processes obtain exactly the names `1..=k`, in every
//! execution — and the per-process cost is the network's depth in
//! test-and-set operations.
//!
//! # The compiled engine
//!
//! The paper's cost bounds count test-and-set operations, so the substrate
//! must not hide extra synchronization behind each one. [`RenamingNetwork`]
//! therefore lowers its schedule into a
//! [`CompiledSchedule`] at construction
//! — a flat wire map answering "which comparator touches my wire in the next
//! stage?" with one array load — and stores the comparator test-and-sets in a
//! [`ComparatorSlab`] indexed by the
//! compiled dense slot. The traversal hot path performs no hashing, no
//! reference-count traffic and no locking beyond each cell's one-time
//! initialization: per stage, one wire-map load plus the test-and-set
//! itself. Comparator objects are still created lazily on first touch
//! ([`RenamingNetwork::allocated_comparators`] observes this).
//!
//! The previous engine — a global `RwLock<HashMap<(stage, wire), Arc<T>>>`
//! interposed on every comparator play — is retained as
//! [`LockedRenamingNetwork`] so the benches can measure exactly what the
//! compilation buys (see `benches/renaming_network.rs` and
//! `BENCH_renaming_network.json`).

use crate::comparator_slab::ComparatorSlab;
use crate::error::RenamingError;
use crate::traits::Renaming;
use parking_lot::RwLock;
use shmem::process::ProcessCtx;
use sortnet::compiled::CompiledSchedule;
use sortnet::schedule::ComparatorSchedule;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use tas::two_process::TwoProcessTas;
use tas::{Side, TwoPartyTas};

/// Plays one process through a compiled schedule against its comparator
/// slab, entering at `wire`. Returns the exit wire together with the number
/// of comparators played and won. Shared by [`RenamingNetwork`] and the
/// compiled sections of [`AdaptiveRenaming`](crate::adaptive::AdaptiveRenaming),
/// so the traversal protocol cannot silently diverge between the two.
pub(crate) fn traverse_compiled<T: TwoPartyTas + Default>(
    schedule: &CompiledSchedule,
    slab: &ComparatorSlab<T>,
    ctx: &mut ProcessCtx,
    mut wire: usize,
) -> (usize, usize, usize) {
    let mut comparators_played = 0;
    let mut wins = 0;
    for stage in 0..ComparatorSchedule::depth(schedule) {
        if let Some((comparator, slot)) = schedule.pair_at(stage, wire) {
            let side = if wire == comparator.top {
                Side::Top
            } else {
                Side::Bottom
            };
            comparators_played += 1;
            if slab.get(slot).play(ctx, side) {
                wins += 1;
                wire = comparator.top;
            } else {
                wire = comparator.bottom;
            }
        }
    }
    (wire, comparators_played, wins)
}

/// Diagnostics of one traversal of a renaming network.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraversalReport {
    /// The name acquired (1-based output-port index).
    pub name: usize,
    /// How many comparators (two-process test-and-sets) the process played.
    pub comparators_played: usize,
    /// How many of those the process won (moves "up").
    pub wins: usize,
}

/// A renaming network over an arbitrary comparator schedule, running on the
/// compiled lock-free engine.
///
/// The type is generic in the two-process test-and-set used at the
/// comparators; the default is the randomized register-based
/// [`TwoProcessTas`], and [`tas::hardware::HardwareTas`] gives the
/// deterministic hardware-assisted variant the paper mentions in its
/// discussion section.
///
/// Construction compiles the schedule, which costs `O(width × depth)` time
/// and memory. Every materializable network qualifies; for the
/// astronomically wide analytic schedules of §6.1 use
/// [`AdaptiveRenaming`](crate::adaptive::AdaptiveRenaming), which compiles
/// only the sections processes actually reach.
///
/// # Example
///
/// ```
/// use adaptive_renaming::renaming_network::RenamingNetwork;
/// use adaptive_renaming::traits::{assert_tight_namespace, Renaming};
/// use shmem::adversary::ExecConfig;
/// use shmem::executor::Executor;
/// use shmem::process::ProcessId;
/// use sortnet::batcher::odd_even_network;
/// use std::sync::Arc;
///
/// // 16 possible initial names, 5 participants with scattered identities.
/// let network: Arc<RenamingNetwork<_>> = Arc::new(RenamingNetwork::new(odd_even_network(16)));
/// let ids: Vec<ProcessId> = [0usize, 3, 7, 11, 15].iter().copied().map(ProcessId::new).collect();
/// let outcome = Executor::new(ExecConfig::new(5)).run_with_ids(&ids, {
///     let network = Arc::clone(&network);
///     move |ctx| network.acquire(ctx).expect("identities fit the network")
/// });
/// assert!(assert_tight_namespace(&outcome.results()).is_ok());
/// ```
pub struct RenamingNetwork<S: ComparatorSchedule, T: TwoPartyTas + Default = TwoProcessTas> {
    /// The schedule lowered into flat arrays: O(1) wire-map queries and the
    /// dense comparator index space addressing the slab. The source schedule
    /// is not retained — every query goes through the compiled form.
    compiled: CompiledSchedule,
    /// One lazily created test-and-set per comparator, indexed by the
    /// compiled dense slot.
    slab: ComparatorSlab<T>,
    _schedule: std::marker::PhantomData<S>,
}

impl<S: ComparatorSchedule, T: TwoPartyTas + Default> RenamingNetwork<S, T> {
    /// Creates a renaming network over the given sorting network, compiling
    /// its schedule and pre-sizing the comparator slab (one empty cell per
    /// comparator; the objects themselves stay lazy).
    pub fn new(schedule: S) -> Self {
        let compiled = CompiledSchedule::compile(&schedule);
        let slab = ComparatorSlab::new(compiled.size());
        RenamingNetwork {
            compiled,
            slab,
            _schedule: std::marker::PhantomData,
        }
    }

    /// The size of the initial namespace (number of input ports).
    pub fn namespace(&self) -> usize {
        self.compiled.width()
    }

    /// The depth of the underlying sorting network — an upper bound on the
    /// number of test-and-set objects any process plays.
    pub fn depth(&self) -> usize {
        ComparatorSchedule::depth(&self.compiled)
    }

    /// The compiled form of the schedule (harness inspection).
    pub fn compiled(&self) -> &CompiledSchedule {
        &self.compiled
    }

    /// Total number of comparators — the slab's capacity.
    pub fn comparator_count(&self) -> usize {
        self.slab.len()
    }

    /// Number of comparator objects allocated so far (harness inspection).
    pub fn allocated_comparators(&self) -> usize {
        self.slab.allocated()
    }

    /// Runs the calling process through the network from the input port given
    /// by its initial name, returning detailed diagnostics.
    ///
    /// # Errors
    ///
    /// Returns [`RenamingError::IdentifierOutOfRange`] if the process's
    /// identifier is not a valid input port.
    pub fn acquire_with_report(
        &self,
        ctx: &mut ProcessCtx,
    ) -> Result<TraversalReport, RenamingError> {
        let port = ctx.id().as_usize();
        self.traverse_from(ctx, port)
    }

    /// Runs the calling process through the network from an explicit input
    /// port (0-based). Used by the adaptive algorithm, which enters on the
    /// port given by its temporary name rather than by its identifier.
    ///
    /// # Errors
    ///
    /// Returns [`RenamingError::IdentifierOutOfRange`] if `port` is not a
    /// valid input port.
    pub fn traverse_from(
        &self,
        ctx: &mut ProcessCtx,
        port: usize,
    ) -> Result<TraversalReport, RenamingError> {
        if port >= self.compiled.width() {
            return Err(RenamingError::IdentifierOutOfRange {
                identifier: port,
                namespace: self.compiled.width(),
            });
        }
        let (wire, comparators_played, wins) =
            traverse_compiled(&self.compiled, &self.slab, ctx, port);
        Ok(TraversalReport {
            name: wire + 1,
            comparators_played,
            wins,
        })
    }
}

impl<S: ComparatorSchedule, T: TwoPartyTas + Default> fmt::Debug for RenamingNetwork<S, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RenamingNetwork")
            .field("namespace", &self.namespace())
            .field("depth", &self.depth())
            .field("comparators", &self.comparator_count())
            .field("allocated_comparators", &self.allocated_comparators())
            .finish()
    }
}

impl<S: ComparatorSchedule, T: TwoPartyTas + Default> Renaming for RenamingNetwork<S, T> {
    fn acquire(&self, ctx: &mut ProcessCtx) -> Result<usize, RenamingError> {
        self.acquire_with_report(ctx).map(|report| report.name)
    }

    /// Enters the network on the wire given by the *virtual participant*
    /// index instead of the caller's identifier, so long-lived wrappers can
    /// route repeated fresh acquisitions through distinct input ports.
    fn acquire_as(&self, ctx: &mut ProcessCtx, participant: usize) -> Result<usize, RenamingError> {
        self.traverse_from(ctx, participant)
            .map(|report| report.name)
    }

    fn capacity(&self) -> Option<usize> {
        Some(self.compiled.width())
    }

    fn is_adaptive(&self) -> bool {
        true
    }
}

/// The pre-compilation renaming engine: comparator objects live in a global
/// `RwLock<HashMap<(stage, top wire), Arc<T>>>` that every comparator play
/// locks, hashes and clones out of.
///
/// Functionally equivalent to [`RenamingNetwork`]; kept so the benches and
/// experiments can quantify what the compiled engine saves. New code should
/// use [`RenamingNetwork`].
pub struct LockedRenamingNetwork<S: ComparatorSchedule, T: TwoPartyTas + Default = TwoProcessTas> {
    schedule: S,
    /// Lazily allocated comparator objects, keyed by `(stage, top wire)`.
    comparators: RwLock<HashMap<(usize, usize), Arc<T>>>,
}

impl<S: ComparatorSchedule, T: TwoPartyTas + Default> LockedRenamingNetwork<S, T> {
    /// Creates a renaming network over the given sorting network.
    pub fn new(schedule: S) -> Self {
        LockedRenamingNetwork {
            schedule,
            comparators: RwLock::new(HashMap::new()),
        }
    }

    /// The size of the initial namespace (number of input ports).
    pub fn namespace(&self) -> usize {
        self.schedule.width()
    }

    /// The depth of the underlying sorting network.
    pub fn depth(&self) -> usize {
        self.schedule.depth()
    }

    /// Number of comparator objects allocated so far (harness inspection).
    pub fn allocated_comparators(&self) -> usize {
        self.comparators.read().len()
    }

    fn comparator(&self, stage: usize, top: usize) -> Arc<T> {
        if let Some(game) = self.comparators.read().get(&(stage, top)) {
            return Arc::clone(game);
        }
        let mut games = self.comparators.write();
        Arc::clone(
            games
                .entry((stage, top))
                .or_insert_with(|| Arc::new(T::default())),
        )
    }

    /// Runs the calling process through the network from the input port given
    /// by its initial name.
    ///
    /// # Errors
    ///
    /// Returns [`RenamingError::IdentifierOutOfRange`] if the process's
    /// identifier is not a valid input port.
    pub fn acquire_with_report(
        &self,
        ctx: &mut ProcessCtx,
    ) -> Result<TraversalReport, RenamingError> {
        let port = ctx.id().as_usize();
        self.traverse_from(ctx, port)
    }

    /// Runs the calling process through the network from an explicit input
    /// port (0-based).
    ///
    /// # Errors
    ///
    /// Returns [`RenamingError::IdentifierOutOfRange`] if `port` is not a
    /// valid input port.
    pub fn traverse_from(
        &self,
        ctx: &mut ProcessCtx,
        port: usize,
    ) -> Result<TraversalReport, RenamingError> {
        if port >= self.schedule.width() {
            return Err(RenamingError::IdentifierOutOfRange {
                identifier: port,
                namespace: self.schedule.width(),
            });
        }
        let mut wire = port;
        let mut comparators_played = 0;
        let mut wins = 0;
        for stage in 0..self.schedule.depth() {
            if let Some(comparator) = self.schedule.comparator_at(stage, wire) {
                let game = self.comparator(stage, comparator.top);
                let side = if wire == comparator.top {
                    Side::Top
                } else {
                    Side::Bottom
                };
                comparators_played += 1;
                if game.play(ctx, side) {
                    wins += 1;
                    wire = comparator.top;
                } else {
                    wire = comparator.bottom;
                }
            }
        }
        Ok(TraversalReport {
            name: wire + 1,
            comparators_played,
            wins,
        })
    }
}

impl<S: ComparatorSchedule, T: TwoPartyTas + Default> fmt::Debug for LockedRenamingNetwork<S, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LockedRenamingNetwork")
            .field("namespace", &self.namespace())
            .field("depth", &self.depth())
            .field("allocated_comparators", &self.allocated_comparators())
            .finish()
    }
}

impl<S: ComparatorSchedule, T: TwoPartyTas + Default> Renaming for LockedRenamingNetwork<S, T> {
    fn acquire(&self, ctx: &mut ProcessCtx) -> Result<usize, RenamingError> {
        self.acquire_with_report(ctx).map(|report| report.name)
    }

    fn acquire_as(&self, ctx: &mut ProcessCtx, participant: usize) -> Result<usize, RenamingError> {
        self.traverse_from(ctx, participant)
            .map(|report| report.name)
    }

    fn capacity(&self) -> Option<usize> {
        Some(self.schedule.width())
    }

    fn is_adaptive(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{assert_tight_namespace, assert_unique_names};
    use shmem::adversary::{ArrivalSchedule, CrashPlan, ExecConfig, YieldPolicy};
    use shmem::executor::Executor;
    use shmem::process::ProcessId;
    use sortnet::batcher::odd_even_network;
    use sortnet::transposition::transposition_network;
    use std::sync::Arc;
    use tas::hardware::HardwareTas;

    fn scattered_ids(count: usize, namespace: usize, seed: u64) -> Vec<ProcessId> {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut all: Vec<usize> = (0..namespace).collect();
        all.shuffle(&mut rng);
        all.into_iter().take(count).map(ProcessId::new).collect()
    }

    #[test]
    fn solo_process_gets_name_one_from_any_port() {
        for port in [0usize, 3, 7, 12, 15] {
            let network = RenamingNetwork::<_, TwoProcessTas>::new(odd_even_network(16));
            let mut ctx = ProcessCtx::new(ProcessId::new(port), 3);
            let report = network.acquire_with_report(&mut ctx).unwrap();
            assert_eq!(report.name, 1, "port {port}");
            assert_eq!(report.wins, report.comparators_played);
        }
    }

    #[test]
    fn identifiers_outside_the_namespace_are_rejected() {
        let network = RenamingNetwork::<_, TwoProcessTas>::new(odd_even_network(8));
        let mut ctx = ProcessCtx::new(ProcessId::new(8), 0);
        assert_eq!(
            network.acquire(&mut ctx),
            Err(RenamingError::IdentifierOutOfRange {
                identifier: 8,
                namespace: 8
            })
        );
    }

    #[test]
    fn sequential_arrivals_get_a_tight_namespace() {
        let network = RenamingNetwork::<_, TwoProcessTas>::new(odd_even_network(16));
        let mut names = Vec::new();
        for port in [15usize, 2, 9, 0, 7] {
            let mut ctx = ProcessCtx::new(ProcessId::new(port), 5);
            names.push(network.acquire(&mut ctx).unwrap());
        }
        assert_tight_namespace(&names).unwrap();
    }

    #[test]
    fn concurrent_arrivals_get_a_tight_namespace() {
        for seed in 0..8 {
            let network = Arc::new(RenamingNetwork::<_, TwoProcessTas>::new(odd_even_network(
                32,
            )));
            let ids = scattered_ids(10, 32, seed);
            let config = ExecConfig::new(seed)
                .with_yield_policy(YieldPolicy::Probabilistic(0.2))
                .with_arrival(ArrivalSchedule::Simultaneous);
            let outcome = Executor::new(config).run_with_ids(&ids, {
                let network = Arc::clone(&network);
                move |ctx| network.acquire(ctx).unwrap()
            });
            assert_tight_namespace(&outcome.results())
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn full_load_is_a_permutation_of_the_namespace() {
        let namespace = 16;
        let network = Arc::new(RenamingNetwork::<_, TwoProcessTas>::new(odd_even_network(
            namespace,
        )));
        let ids: Vec<ProcessId> = (0..namespace).map(ProcessId::new).collect();
        let outcome = Executor::new(ExecConfig::new(3)).run_with_ids(&ids, {
            let network = Arc::clone(&network);
            move |ctx| network.acquire(ctx).unwrap()
        });
        assert_tight_namespace(&outcome.results()).unwrap();
    }

    #[test]
    fn hardware_comparators_give_the_deterministic_variant() {
        let network: Arc<RenamingNetwork<_, HardwareTas>> =
            Arc::new(RenamingNetwork::new(odd_even_network(16)));
        let ids = scattered_ids(6, 16, 99);
        let outcome = Executor::new(ExecConfig::new(4)).run_with_ids(&ids, {
            let network = Arc::clone(&network);
            move |ctx| network.acquire(ctx).unwrap()
        });
        assert_tight_namespace(&outcome.results()).unwrap();
    }

    #[test]
    fn crashed_processes_never_break_uniqueness() {
        for seed in 0..5 {
            let network = Arc::new(RenamingNetwork::<_, TwoProcessTas>::new(odd_even_network(
                32,
            )));
            let ids = scattered_ids(16, 32, seed + 100);
            let config = ExecConfig::new(seed).with_crash_plan(CrashPlan::Random {
                prob: 0.3,
                max_steps: 25,
            });
            let outcome = Executor::new(config).run_with_ids(&ids, {
                let network = Arc::clone(&network);
                move |ctx| network.acquire(ctx).unwrap()
            });
            // Crashed processes return nothing; survivors keep unique names
            // bounded by the number of participants that took steps.
            let names = outcome.results();
            assert_unique_names(&names).unwrap();
            assert!(names.iter().all(|&name| name <= ids.len()));
        }
    }

    #[test]
    fn comparators_played_is_bounded_by_the_network_depth() {
        let schedule = odd_even_network(64);
        let depth = sortnet::schedule::ComparatorSchedule::depth(&schedule);
        let network = Arc::new(RenamingNetwork::<_, TwoProcessTas>::new(schedule));
        let ids = scattered_ids(20, 64, 7);
        let outcome = Executor::new(ExecConfig::new(7)).run_with_ids(&ids, {
            let network = Arc::clone(&network);
            move |ctx| network.acquire_with_report(ctx).unwrap()
        });
        for report in outcome.results() {
            assert!(report.comparators_played <= depth);
            assert!(report.wins <= report.comparators_played);
        }
        assert!(network.allocated_comparators() > 0);
        assert!(format!("{network:?}").contains("RenamingNetwork"));
    }

    #[test]
    fn slower_networks_still_rename_correctly() {
        // The transposition network has Θ(n) depth but is still a sorting
        // network, so renaming over it must still be tight.
        let network = Arc::new(RenamingNetwork::<_, TwoProcessTas>::new(
            transposition_network(12),
        ));
        let ids = scattered_ids(12, 12, 42);
        let outcome = Executor::new(ExecConfig::new(6)).run_with_ids(&ids, {
            let network = Arc::clone(&network);
            move |ctx| network.acquire(ctx).unwrap()
        });
        assert_tight_namespace(&outcome.results()).unwrap();
    }

    #[test]
    fn comparator_allocation_stays_lazy_and_bounded() {
        let network = Arc::new(RenamingNetwork::<_, TwoProcessTas>::new(odd_even_network(
            64,
        )));
        assert_eq!(
            network.allocated_comparators(),
            0,
            "nothing allocated up front"
        );
        let total = network.comparator_count();
        assert_eq!(total, network.compiled().size());
        let ids = scattered_ids(8, 64, 11);
        let outcome = Executor::new(ExecConfig::new(11)).run_with_ids(&ids, {
            let network = Arc::clone(&network);
            move |ctx| network.acquire(ctx).unwrap()
        });
        assert_tight_namespace(&outcome.results()).unwrap();
        let allocated = network.allocated_comparators();
        assert!(
            allocated > 0,
            "traversals allocate the comparators they touch"
        );
        assert!(
            allocated < total,
            "8 of 64 ports must not touch the whole network ({allocated} of {total})"
        );
    }

    #[test]
    fn locked_engine_agrees_with_the_compiled_engine() {
        // The legacy engine must remain a correct renaming object (it is the
        // bench baseline), and both engines must see the same schedule.
        let compiled = RenamingNetwork::<_, TwoProcessTas>::new(odd_even_network(32));
        let locked = LockedRenamingNetwork::<_, TwoProcessTas>::new(odd_even_network(32));
        assert_eq!(compiled.namespace(), locked.namespace());
        assert_eq!(compiled.depth(), locked.depth());
        assert_eq!(Renaming::capacity(&compiled), Renaming::capacity(&locked));
        assert!(Renaming::is_adaptive(&locked));

        let locked = Arc::new(locked);
        let ids = scattered_ids(10, 32, 5);
        let outcome = Executor::new(ExecConfig::new(5)).run_with_ids(&ids, {
            let locked = Arc::clone(&locked);
            move |ctx| locked.acquire(ctx).unwrap()
        });
        assert_tight_namespace(&outcome.results()).unwrap();
        assert!(locked.allocated_comparators() > 0);
        assert!(format!("{locked:?}").contains("LockedRenamingNetwork"));

        let mut ctx = ProcessCtx::new(ProcessId::new(32), 0);
        assert_eq!(
            locked.acquire(&mut ctx),
            Err(RenamingError::IdentifierOutOfRange {
                identifier: 32,
                namespace: 32
            })
        );
    }
}
