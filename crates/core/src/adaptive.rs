//! Strong adaptive renaming (§6.2) — the paper's headline result.
//!
//! The algorithm has two stages:
//!
//! 1. [`TempName`]: a randomized splitter tree
//!    assigns each participant a unique temporary name that is polynomial in
//!    the contention `k` with high probability, in `O(log k)` steps.
//! 2. A renaming network built over the §6.1 *adaptive sorting network*
//!    ([`sortnet::adaptive::AdaptiveNetwork`]): the process enters the network
//!    at the input port given by its temporary name and plays a two-process
//!    test-and-set at every comparator it meets, returning the index of the
//!    output port it reaches.
//!
//! Because the adaptive network is a sorting network under every truncation
//! (Theorem 2), the outputs are exactly `1..=k` (Theorem 1), and because a
//! value entering port `n` traverses only `O(log^c max(n, m))` comparators,
//! the expected step complexity is `O(log k)` for a depth-`O(log n)` base
//! family — `O(log² k)` for the constructible Batcher family used here
//! (Theorem 3, adjusted for the constructible-network substitution recorded
//! in `DESIGN.md`).
//!
//! Comparator storage is hybrid, chosen per section of the sandwich: the
//! small inner sections (where virtually every traversal happens, because
//! temporary names are polynomial in the contention) are compiled into flat
//! wire maps with lock-free [`ComparatorSlab`] storage, while the huge outer
//! sections — reachable only through astronomically unlikely temporary names
//! — keep sharded sparse lazy storage.

use crate::comparator_slab::ComparatorSlab;
use crate::error::RenamingError;
use crate::renaming_network::traverse_compiled;
use crate::temp_name::{TempName, TempNameReport};
use crate::traits::Renaming;
use parking_lot::RwLock;
use shmem::process::ProcessCtx;
use sortnet::adaptive::{AdaptiveNetwork, Section};
use sortnet::compiled::CompiledSchedule;
use sortnet::family::{NetworkFamily, SortingFamily};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use tas::two_process::TwoProcessTas;
use tas::{Side, TwoPartyTas};

/// Upper bound on `width × depth` for a section to be compiled into a flat
/// wire map + comparator slab. Sections above the bound (the outer levels of
/// the §6.1 construction, with tens of thousands to billions of channels)
/// keep sparse lazy storage — processes reach them only through
/// astronomically unlikely temporary names, so pre-sizing would waste memory
/// for cells that are never touched.
const COMPILED_CELL_LIMIT: usize = 1 << 20;

/// Shard count of the sparse fallback store (power of two). Sharding keeps
/// the rare outer-section plays from serializing behind a single lock.
const SPARSE_SHARDS: usize = 16;

/// One shard of the sparse fallback store: lazily allocated comparator
/// objects keyed by `(stage, global top channel)`.
type SparseShard<T> = RwLock<HashMap<(usize, usize), Arc<T>>>;

/// Comparator storage of one section of the adaptive network.
enum SectionStore<T> {
    /// Small section: schedule lowered to flat arrays, test-and-sets in a
    /// lock-free slab indexed by the dense comparator slot.
    Compiled {
        /// The section's schedule in compiled (local-wire) form.
        schedule: CompiledSchedule,
        /// One lazily created test-and-set per comparator.
        slab: ComparatorSlab<T>,
    },
    /// Huge analytic section: lazily allocated comparator objects keyed by
    /// `(stage, global top channel)`, sharded to spread lock contention.
    Sparse { shards: Box<[SparseShard<T>]> },
}

impl<T: TwoPartyTas + Default> SectionStore<T> {
    fn for_section(section: &Section) -> Self {
        let cells = section.width().checked_mul(section.schedule.depth());
        match cells {
            Some(cells) if cells <= COMPILED_CELL_LIMIT => {
                let schedule = CompiledSchedule::compile(section.schedule.as_ref());
                let slab = ComparatorSlab::new(schedule.size());
                SectionStore::Compiled { schedule, slab }
            }
            _ => SectionStore::Sparse {
                shards: (0..SPARSE_SHARDS)
                    .map(|_| RwLock::new(HashMap::new()))
                    .collect::<Vec<_>>()
                    .into_boxed_slice(),
            },
        }
    }

    fn sparse_game(shards: &[SparseShard<T>], stage: usize, top: usize) -> Arc<T> {
        let shard = &shards[(stage.wrapping_mul(31).wrapping_add(top)) & (SPARSE_SHARDS - 1)];
        if let Some(game) = shard.read().get(&(stage, top)) {
            return Arc::clone(game);
        }
        let mut games = shard.write();
        Arc::clone(
            games
                .entry((stage, top))
                .or_insert_with(|| Arc::new(T::default())),
        )
    }

    fn allocated(&self) -> usize {
        match self {
            SectionStore::Compiled { slab, .. } => slab.allocated(),
            SectionStore::Sparse { shards } => shards.iter().map(|s| s.read().len()).sum(),
        }
    }
}

/// Diagnostics of one adaptive-renaming acquisition.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdaptiveReport {
    /// The final name (1-based; in `1..=k` in every execution).
    pub name: usize,
    /// The temporary name produced by the first stage.
    pub temp_name: usize,
    /// Depth at which the first stage acquired its splitter.
    pub splitter_depth: usize,
    /// Number of two-process test-and-set objects played in the second stage.
    pub comparators_played: usize,
    /// How many of those the process won.
    pub wins: usize,
}

/// The §6 adaptive strong renaming object.
///
/// The object is unbounded: it never needs to know `n`, `M` or `k`, and with
/// `k` participants it hands out exactly the names `1..=k`.
///
/// # Example
///
/// ```
/// use adaptive_renaming::adaptive::AdaptiveRenaming;
/// use adaptive_renaming::traits::{assert_tight_namespace, Renaming};
/// use shmem::adversary::ExecConfig;
/// use shmem::executor::Executor;
/// use shmem::process::ProcessId;
/// use std::sync::Arc;
///
/// // Identifiers are irrelevant: huge, scattered initial names still map to 1..=4.
/// let renaming = Arc::new(AdaptiveRenaming::default());
/// let ids: Vec<ProcessId> = [7usize, 123_456, 42, 999_999_999]
///     .iter().copied().map(ProcessId::new).collect();
/// let outcome = Executor::new(ExecConfig::new(11)).run_with_ids(&ids, {
///     let renaming = Arc::clone(&renaming);
///     move |ctx| renaming.acquire(ctx).expect("adaptive renaming never fails")
/// });
/// assert!(assert_tight_namespace(&outcome.results()).is_ok());
/// ```
pub struct AdaptiveRenaming<T: TwoPartyTas + Default = TwoProcessTas> {
    temp: TempName,
    network: AdaptiveNetwork,
    /// Per-section comparator storage, parallel to `network.sections()`:
    /// compiled slab for the small inner sections, sharded sparse maps for
    /// the huge outer ones.
    stores: Vec<SectionStore<T>>,
}

impl Default for AdaptiveRenaming<TwoProcessTas> {
    /// The default configuration: randomized two-process test-and-set
    /// comparators over the adaptive network based on Batcher's odd-even
    /// mergesort, truncated at the maximum supported level (2³² input
    /// ports). This is what `<dyn Renaming>::builder().build()` constructs.
    fn default() -> Self {
        Self::with_network(AdaptiveNetwork::new(
            NetworkFamily::OddEven,
            sortnet::adaptive::MAX_LEVEL,
        ))
    }
}

impl<T: TwoPartyTas + Default> AdaptiveRenaming<T> {
    /// Creates the object over an explicit adaptive network (choice of base
    /// family and truncation level).
    pub fn with_network(network: AdaptiveNetwork) -> Self {
        let stores = network
            .sections()
            .iter()
            .map(SectionStore::for_section)
            .collect();
        AdaptiveRenaming {
            temp: TempName::new(),
            network,
            stores,
        }
    }

    /// Creates the object over the adaptive network built from the given base
    /// family and truncation level. Materialized families should keep
    /// `max_level ≤ 3`; the analytic odd-even family supports the maximum
    /// level cheaply.
    pub fn with_family<F: SortingFamily + 'static>(family: F, max_level: usize) -> Self {
        Self::with_network(AdaptiveNetwork::new(family, max_level))
    }

    /// The underlying adaptive sorting network.
    pub fn network(&self) -> &AdaptiveNetwork {
        &self.network
    }

    /// The temporary-name stage (exposed for experiments).
    pub fn temp_name_stage(&self) -> &TempName {
        &self.temp
    }

    /// Number of comparator objects allocated so far (harness inspection).
    pub fn allocated_comparators(&self) -> usize {
        self.stores.iter().map(SectionStore::allocated).sum()
    }

    /// Number of sections running on the compiled slab engine (the rest use
    /// the sparse fallback store). Harness inspection.
    pub fn compiled_sections(&self) -> usize {
        self.stores
            .iter()
            .filter(|store| matches!(store, SectionStore::Compiled { .. }))
            .count()
    }

    /// Runs the second stage from an explicit input port (0-based channel),
    /// returning the output channel and traversal counts.
    fn traverse(
        &self,
        ctx: &mut ProcessCtx,
        port: usize,
    ) -> Result<(usize, usize, usize), RenamingError> {
        if port >= self.network.width() {
            return Err(RenamingError::IdentifierOutOfRange {
                identifier: port,
                namespace: self.network.width(),
            });
        }
        let mut channel = port;
        let mut comparators_played = 0;
        let mut wins = 0;
        for (section, store) in self.network.sections().iter().zip(&self.stores) {
            if !section.covers(channel) {
                continue;
            }
            match store {
                SectionStore::Compiled { schedule, slab } => {
                    // Hot path: O(1) wire-map lookups over local wires, plays
                    // against the lock-free slab.
                    let (local, played, won) =
                        traverse_compiled(schedule, slab, ctx, channel - section.offset);
                    channel = section.offset + local;
                    comparators_played += played;
                    wins += won;
                }
                SectionStore::Sparse { shards } => {
                    for stage in 0..section.schedule.depth() {
                        if let Some(comparator) = section.comparator_at(stage, channel) {
                            let game = SectionStore::sparse_game(shards, stage, comparator.top);
                            let side = if channel == comparator.top {
                                Side::Top
                            } else {
                                Side::Bottom
                            };
                            comparators_played += 1;
                            if game.play(ctx, side) {
                                wins += 1;
                                channel = comparator.top;
                            } else {
                                channel = comparator.bottom;
                            }
                        }
                    }
                }
            }
        }
        Ok((channel, comparators_played, wins))
    }

    /// Acquires a name, returning full diagnostics.
    ///
    /// # Errors
    ///
    /// Returns [`RenamingError::IdentifierOutOfRange`] in the astronomically
    /// unlikely event that the first stage produces a temporary name beyond
    /// the network's truncation width.
    pub fn acquire_with_report(
        &self,
        ctx: &mut ProcessCtx,
    ) -> Result<AdaptiveReport, RenamingError> {
        let TempNameReport {
            name: temp_name,
            depth: splitter_depth,
            ..
        } = self.temp.acquire_with_report(ctx);
        let (channel, comparators_played, wins) = self.traverse(ctx, temp_name - 1)?;
        Ok(AdaptiveReport {
            name: channel + 1,
            temp_name,
            splitter_depth,
            comparators_played,
            wins,
        })
    }
}

impl<T: TwoPartyTas + Default> fmt::Debug for AdaptiveRenaming<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AdaptiveRenaming")
            .field("network", &self.network)
            .field("allocated_comparators", &self.allocated_comparators())
            .finish()
    }
}

impl<T: TwoPartyTas + Default> Renaming for AdaptiveRenaming<T> {
    fn acquire(&self, ctx: &mut ProcessCtx) -> Result<usize, RenamingError> {
        self.acquire_with_report(ctx).map(|report| report.name)
    }

    fn capacity(&self) -> Option<usize> {
        None
    }

    fn is_adaptive(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{assert_tight_namespace, assert_unique_names};
    use shmem::adversary::{ArrivalSchedule, CrashPlan, ExecConfig, YieldPolicy};
    use shmem::executor::Executor;
    use shmem::process::ProcessId;
    use std::time::Duration;
    use tas::hardware::HardwareTas;

    #[test]
    fn solo_process_gets_name_one() {
        let renaming = AdaptiveRenaming::default();
        let mut ctx = ProcessCtx::new(ProcessId::new(123_456_789), 3);
        let report = renaming.acquire_with_report(&mut ctx).unwrap();
        assert_eq!(report.name, 1);
        assert_eq!(report.temp_name, 1);
        assert_eq!(report.wins, report.comparators_played);
    }

    #[test]
    fn sequential_processes_get_a_tight_namespace() {
        let renaming = AdaptiveRenaming::default();
        let mut names = Vec::new();
        for id in 0..12usize {
            let mut ctx = ProcessCtx::new(ProcessId::new(id * 1000 + 7), 5);
            names.push(renaming.acquire(&mut ctx).unwrap());
        }
        assert_tight_namespace(&names).unwrap();
    }

    #[test]
    fn concurrent_processes_get_a_tight_namespace() {
        for seed in 0..6 {
            let renaming = Arc::new(AdaptiveRenaming::default());
            let k = 12usize;
            let config = ExecConfig::new(seed)
                .with_yield_policy(YieldPolicy::Probabilistic(0.15))
                .with_arrival(ArrivalSchedule::Simultaneous);
            let outcome = Executor::new(config).run(k, {
                let renaming = Arc::clone(&renaming);
                move |ctx| renaming.acquire(ctx).unwrap()
            });
            assert_tight_namespace(&outcome.results())
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn namespace_is_independent_of_initial_identifiers() {
        let renaming = Arc::new(AdaptiveRenaming::default());
        let ids: Vec<ProcessId> = [5usize, 1_000_000, 77, 123_456_789, 31_337, 2]
            .iter()
            .copied()
            .map(ProcessId::new)
            .collect();
        let outcome = Executor::new(ExecConfig::new(21)).run_with_ids(&ids, {
            let renaming = Arc::clone(&renaming);
            move |ctx| renaming.acquire(ctx).unwrap()
        });
        assert_tight_namespace(&outcome.results()).unwrap();
    }

    #[test]
    fn staggered_arrivals_still_get_a_tight_namespace() {
        let renaming = Arc::new(AdaptiveRenaming::default());
        let config = ExecConfig::new(8).with_arrival(ArrivalSchedule::Staggered {
            gap: Duration::from_micros(300),
        });
        let outcome = Executor::new(config).run(10, {
            let renaming = Arc::clone(&renaming);
            move |ctx| renaming.acquire(ctx).unwrap()
        });
        assert_tight_namespace(&outcome.results()).unwrap();
    }

    #[test]
    fn crashed_processes_never_break_safety() {
        for seed in 0..5 {
            let renaming = Arc::new(AdaptiveRenaming::default());
            let k = 16usize;
            let config = ExecConfig::new(seed).with_crash_plan(CrashPlan::Random {
                prob: 0.3,
                max_steps: 60,
            });
            let outcome = Executor::new(config).run(k, {
                let renaming = Arc::clone(&renaming);
                move |ctx| renaming.acquire(ctx).unwrap()
            });
            let names = outcome.results();
            assert_unique_names(&names).unwrap();
            assert!(names.iter().all(|&name| name <= k));
        }
    }

    #[test]
    fn hardware_comparators_give_the_deterministic_variant() {
        let renaming: Arc<AdaptiveRenaming<HardwareTas>> = Arc::new(
            AdaptiveRenaming::with_network(AdaptiveNetwork::new(NetworkFamily::OddEven, 5)),
        );
        let outcome = Executor::new(ExecConfig::new(2)).run(8, {
            let renaming = Arc::clone(&renaming);
            move |ctx| renaming.acquire(ctx).unwrap()
        });
        assert_tight_namespace(&outcome.results()).unwrap();
    }

    #[test]
    fn comparators_played_grow_polylogarithmically_with_contention() {
        // Theorem 3's cost profile: the number of two-process test-and-sets a
        // process plays is bounded by the traversal-depth bound for its
        // temporary name, which is polylogarithmic in k.
        let renaming = Arc::new(AdaptiveRenaming::default());
        let k = 16usize;
        let outcome = Executor::new(ExecConfig::new(33)).run(k, {
            let renaming = Arc::clone(&renaming);
            move |ctx| renaming.acquire_with_report(ctx).unwrap()
        });
        for report in outcome.results() {
            let bound = renaming
                .network()
                .traversal_depth_bound(report.temp_name.max(report.name) - 1);
            assert!(
                report.comparators_played <= bound,
                "played {} > bound {bound} (temp name {})",
                report.comparators_played,
                report.temp_name
            );
        }
        assert!(renaming.allocated_comparators() > 0);
    }

    #[test]
    fn smaller_truncations_work_for_small_contention() {
        let renaming: Arc<AdaptiveRenaming> = Arc::new(AdaptiveRenaming::with_family(
            NetworkFamily::OddEven,
            3, // 256 input ports
        ));
        let outcome = Executor::new(ExecConfig::new(14)).run(6, {
            let renaming = Arc::clone(&renaming);
            move |ctx| renaming.acquire(ctx).unwrap()
        });
        assert_tight_namespace(&outcome.results()).unwrap();
    }

    #[test]
    fn inner_sections_compile_and_outer_sections_stay_sparse() {
        // Default instance: level 5, sections A5..A1, S0, C1..C5. Levels 1-3
        // fit the compiled-cell budget; levels 4 and 5 are analytic giants
        // that must stay sparse.
        let renaming = AdaptiveRenaming::default();
        assert_eq!(renaming.network().sections().len(), 11);
        assert_eq!(renaming.compiled_sections(), 7);

        // A small truncation compiles everything.
        let small: AdaptiveRenaming = AdaptiveRenaming::with_family(NetworkFamily::OddEven, 3);
        assert_eq!(small.compiled_sections(), small.network().sections().len());
    }

    #[test]
    fn metadata_is_reported() {
        let renaming = AdaptiveRenaming::default();
        assert_eq!(renaming.capacity(), None);
        assert!(renaming.is_adaptive());
        assert_eq!(renaming.temp_name_stage().allocated_splitters(), 0);
        assert!(format!("{renaming:?}").contains("AdaptiveRenaming"));
    }

    #[test]
    fn repeated_acquisitions_by_one_process_stay_unique() {
        // The counter increments by re-acquiring from the same object; each
        // acquisition acts as a fresh virtual participant.
        let renaming = AdaptiveRenaming::default();
        let mut ctx = ProcessCtx::new(ProcessId::new(4), 6);
        let mut names = Vec::new();
        for _ in 0..10 {
            names.push(renaming.acquire(&mut ctx).unwrap());
        }
        assert_tight_namespace(&names).unwrap();
    }
}
