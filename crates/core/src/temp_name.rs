//! The TempName first stage of adaptive renaming (§6.2).
//!
//! Each process descends a binary tree of randomized splitters of unbounded
//! height: at every node it tries to acquire the splitter, and if it fails it
//! moves to a uniformly random child. With `k` participating processes the
//! process acquires a node within `O(log k)` levels with high probability, and
//! the breadth-first index of that node — the temporary name — is polynomial
//! in `k` with high probability. Temporary names are unique in every
//! execution, which is all the second stage needs for safety; the polynomial
//! bound only affects the step complexity.

use parking_lot::RwLock;
use shmem::process::ProcessCtx;
use shmem::register::AtomicU64Register;
use shmem::steps::StepKind;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use tas::splitter::{Direction, RandomizedSplitter};

/// Maximum splitter-tree depth explored before falling back to the overflow
/// counter (an event of astronomically small probability, present only to
/// keep the object wait-free with a hard bound).
pub const MAX_DEPTH: usize = 60;

/// Diagnostics of one temporary-name acquisition.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TempNameReport {
    /// The temporary name (breadth-first index of the acquired splitter,
    /// 1-based; the root is 1).
    pub name: usize,
    /// The depth of the acquired splitter (the root has depth 0).
    pub depth: usize,
    /// Whether the overflow fallback was used instead of a splitter.
    pub used_overflow: bool,
}

/// A splitter-tree temporary-name object.
///
/// # Example
///
/// ```
/// use adaptive_renaming::temp_name::TempName;
/// use shmem::process::{ProcessCtx, ProcessId};
///
/// let temp = TempName::new();
/// let mut ctx = ProcessCtx::new(ProcessId::new(17), 3);
/// let report = temp.acquire_with_report(&mut ctx);
/// assert_eq!(report.name, 1, "a solo process stops at the root");
/// assert_eq!(report.depth, 0);
/// ```
pub struct TempName {
    /// Lazily allocated splitters, keyed by heap index (root = 1, children of
    /// `i` are `2i` and `2i + 1`).
    splitters: RwLock<HashMap<u64, Arc<RandomizedSplitter>>>,
    /// Overflow counter handing out unique names beyond the tree, used only
    /// if a process fails to acquire a splitter within [`MAX_DEPTH`] levels.
    overflow: AtomicU64Register,
}

impl TempName {
    /// Creates an empty temporary-name object.
    pub fn new() -> Self {
        TempName {
            splitters: RwLock::new(HashMap::new()),
            overflow: AtomicU64Register::new(1u64 << MAX_DEPTH),
        }
    }

    /// Number of splitters allocated so far (harness inspection hook).
    pub fn allocated_splitters(&self) -> usize {
        self.splitters.read().len()
    }

    fn splitter(&self, index: u64) -> Arc<RandomizedSplitter> {
        if let Some(splitter) = self.splitters.read().get(&index) {
            return Arc::clone(splitter);
        }
        let mut splitters = self.splitters.write();
        Arc::clone(
            splitters
                .entry(index)
                .or_insert_with(|| Arc::new(RandomizedSplitter::new())),
        )
    }

    /// Acquires a unique temporary name.
    pub fn acquire(&self, ctx: &mut ProcessCtx) -> usize {
        self.acquire_with_report(ctx).name
    }

    /// Acquires a unique temporary name, returning diagnostics.
    pub fn acquire_with_report(&self, ctx: &mut ProcessCtx) -> TempNameReport {
        let mut index: u64 = 1;
        for depth in 0..MAX_DEPTH {
            let splitter = self.splitter(index);
            if splitter.enter(ctx).is_acquired() {
                return TempNameReport {
                    name: index as usize,
                    depth,
                    used_overflow: false,
                };
            }
            index = match Direction::random(ctx) {
                Direction::Left => index * 2,
                Direction::Right => index * 2 + 1,
            };
        }
        // Overflow fallback: hand out a unique name beyond every possible
        // tree index. Reached with probability at most 2^-MAX_DEPTH.
        ctx.record(StepKind::ReadModifyWrite);
        let name = self.overflow.fetch_add(ctx, 1);
        TempNameReport {
            name: name as usize,
            depth: MAX_DEPTH,
            used_overflow: true,
        }
    }
}

impl Default for TempName {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for TempName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TempName")
            .field("allocated_splitters", &self.allocated_splitters())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::assert_unique_names;
    use shmem::adversary::{ArrivalSchedule, ExecConfig, YieldPolicy};
    use shmem::executor::Executor;
    use shmem::process::ProcessId;
    use std::sync::Arc;

    #[test]
    fn solo_process_acquires_the_root() {
        let temp = TempName::new();
        let mut ctx = ProcessCtx::new(ProcessId::new(0), 1);
        let report = temp.acquire_with_report(&mut ctx);
        assert_eq!(report.name, 1);
        assert_eq!(report.depth, 0);
        assert!(!report.used_overflow);
        assert_eq!(temp.allocated_splitters(), 1);
    }

    #[test]
    fn sequential_processes_get_unique_names() {
        let temp = TempName::new();
        let mut names = Vec::new();
        for id in 0..40 {
            let mut ctx = ProcessCtx::new(ProcessId::new(id), 9);
            names.push(temp.acquire(&mut ctx));
        }
        assert_unique_names(&names).unwrap();
    }

    #[test]
    fn concurrent_processes_get_unique_polynomially_bounded_names() {
        for seed in 0..6 {
            let temp = Arc::new(TempName::new());
            let k = 24usize;
            let config = ExecConfig::new(seed)
                .with_yield_policy(YieldPolicy::Probabilistic(0.2))
                .with_arrival(ArrivalSchedule::Simultaneous);
            let outcome = Executor::new(config).run(k, {
                let temp = Arc::clone(&temp);
                move |ctx| temp.acquire_with_report(ctx)
            });
            let reports = outcome.results();
            let names: Vec<usize> = reports.iter().map(|r| r.name).collect();
            assert_unique_names(&names).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            // Polynomial namespace: with k = 24 the names should be far below
            // k^3; the bound here is deliberately generous to avoid flakiness
            // while still catching linear-in-tree-size blowups.
            for report in &reports {
                assert!(!report.used_overflow, "seed {seed}");
                assert!(
                    report.name <= k * k * k,
                    "seed {seed}: name {} not polynomial in k={k}",
                    report.name
                );
            }
        }
    }

    #[test]
    fn depth_grows_logarithmically_with_contention() {
        let temp = Arc::new(TempName::new());
        let k = 32usize;
        let outcome = Executor::new(ExecConfig::new(17)).run(k, {
            let temp = Arc::clone(&temp);
            move |ctx| temp.acquire_with_report(ctx)
        });
        let max_depth = outcome.results().iter().map(|r| r.depth).max().unwrap_or(0);
        // With 32 processes the deepest acquisition should be well below
        // 6 * log2(32) = 30 levels.
        assert!(max_depth <= 30, "max splitter depth {max_depth}");
    }

    #[test]
    fn step_cost_tracks_the_acquisition_depth() {
        let temp = TempName::new();
        let mut ctx = ProcessCtx::new(ProcessId::new(3), 0);
        let report = temp.acquire_with_report(&mut ctx);
        // Each level costs at most 5 register steps plus a coin flip.
        assert!(ctx.stats().total() <= 6 * (report.depth as u64 + 1));
    }

    #[test]
    fn debug_output_is_nonempty() {
        assert!(format!("{:?}", TempName::new()).contains("TempName"));
    }
}
