//! The linearizable m-valued fetch-and-increment object (§8.2, Algorithm 2).
//!
//! An m-valued fetch-and-increment behaves like fetch-and-increment but
//! saturates: once the counter reaches `m − 1` every later operation keeps
//! returning `m − 1`. The paper builds it recursively: an ℓ-valued object is
//! an ℓ/2-test-and-set (built from adaptive renaming, Algorithm 1) steering
//! each operation either to a left ℓ/2-valued object (winners) or to a right
//! ℓ/2-valued object plus an offset of ℓ/2 (losers); the recursion bottoms out
//! at 0-valued objects that always return 0. Theorem 6 shows the construction
//! is linearizable with `O(log k · log m)` expected step complexity.

use crate::ltas::BoundedTas;
use crate::traits::Renaming;
use shmem::consistency::SequentialSpec;
use shmem::process::ProcessCtx;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// One node of the recursive construction, covering `span` values.
struct FaiNode {
    /// Number of values this node can hand out (a power of two, or 1 for the
    /// leaves).
    span: u64,
    /// The ℓ/2-test-and-set steering operations left (winners) or right;
    /// its inner renaming object is constructed through the builder facade.
    gate: OnceLock<BoundedTas<Arc<dyn Renaming>>>,
    left: OnceLock<Box<FaiNode>>,
    right: OnceLock<Box<FaiNode>>,
}

impl FaiNode {
    fn new(span: u64) -> Self {
        FaiNode {
            span,
            gate: OnceLock::new(),
            left: OnceLock::new(),
            right: OnceLock::new(),
        }
    }

    fn gate(&self) -> &BoundedTas<Arc<dyn Renaming>> {
        self.gate
            .get_or_init(|| BoundedTas::new((self.span / 2) as usize))
    }

    fn left(&self) -> &FaiNode {
        self.left
            .get_or_init(|| Box::new(FaiNode::new(self.span / 2)))
    }

    fn right(&self) -> &FaiNode {
        self.right
            .get_or_init(|| Box::new(FaiNode::new(self.span / 2)))
    }

    fn fetch_and_increment(&self, ctx: &mut ProcessCtx) -> u64 {
        if self.span <= 1 {
            // A 0/1-valued object always returns 0.
            return 0;
        }
        if self.gate().invoke(ctx) {
            self.left().fetch_and_increment(ctx)
        } else {
            self.span / 2 + self.right().fetch_and_increment(ctx)
        }
    }
}

/// The §8.2 m-valued linearizable fetch-and-increment.
///
/// Each participating process performs at most one operation per object in
/// the paper's model; like the renaming objects, performing several
/// operations from one OS thread is supported and each acts as a fresh
/// virtual participant.
///
/// # Example
///
/// ```
/// use adaptive_renaming::fetch_increment::BoundedFetchIncrement;
/// use shmem::adversary::ExecConfig;
/// use shmem::executor::Executor;
/// use std::sync::Arc;
///
/// let object = Arc::new(BoundedFetchIncrement::new(16));
/// let outcome = Executor::new(ExecConfig::new(2)).run(5, {
///     let object = Arc::clone(&object);
///     move |ctx| object.fetch_and_increment(ctx)
/// });
/// let mut values = outcome.results();
/// values.sort_unstable();
/// assert_eq!(values, vec![0, 1, 2, 3, 4]);
/// ```
pub struct BoundedFetchIncrement {
    limit: u64,
    root: FaiNode,
}

impl BoundedFetchIncrement {
    /// Creates an m-valued fetch-and-increment supporting values
    /// `0..=limit-1`.
    ///
    /// Internally the recursion uses the smallest power of two at least
    /// `limit`, and results are clamped to `limit − 1`, exactly as the paper
    /// prescribes for general `m`.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is zero.
    pub fn new(limit: u64) -> Self {
        assert!(limit > 0, "fetch-and-increment needs at least one value");
        BoundedFetchIncrement {
            limit,
            root: FaiNode::new(limit.next_power_of_two().max(2)),
        }
    }

    /// The number of distinct values the object hands out.
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Returns the current value and increments, saturating at
    /// `limit − 1`.
    pub fn fetch_and_increment(&self, ctx: &mut ProcessCtx) -> u64 {
        self.root.fetch_and_increment(ctx).min(self.limit - 1)
    }
}

impl fmt::Debug for BoundedFetchIncrement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BoundedFetchIncrement")
            .field("limit", &self.limit)
            .finish()
    }
}

/// Sequential specification of the m-valued fetch-and-increment, for the
/// linearizability checker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FetchIncrementSpec {
    /// The object's value bound `m`.
    pub limit: u64,
}

impl SequentialSpec for FetchIncrementSpec {
    type Op = ();
    type Ret = u64;
    type State = u64;

    fn initial(&self) -> u64 {
        0
    }

    fn apply(&self, state: &u64, _op: &()) -> (u64, u64) {
        ((*state + 1).min(self.limit), (*state).min(self.limit - 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmem::adversary::{ArrivalSchedule, ExecConfig, YieldPolicy};
    use shmem::consistency::check_linearizable;
    use shmem::executor::Executor;
    use shmem::history::Recorder;
    use shmem::process::ProcessId;
    use std::sync::Arc;

    #[test]
    fn sequential_operations_return_consecutive_values() {
        let object = BoundedFetchIncrement::new(32);
        assert_eq!(object.limit(), 32);
        for expected in 0..8u64 {
            let mut ctx = ProcessCtx::new(ProcessId::new(expected as usize), 4);
            assert_eq!(object.fetch_and_increment(&mut ctx), expected);
        }
        assert!(format!("{object:?}").contains("BoundedFetchIncrement"));
    }

    #[test]
    fn values_saturate_at_the_limit() {
        let object = BoundedFetchIncrement::new(3);
        let mut values = Vec::new();
        for id in 0..6usize {
            let mut ctx = ProcessCtx::new(ProcessId::new(id), 1);
            values.push(object.fetch_and_increment(&mut ctx));
        }
        assert_eq!(values[..3], [0, 1, 2]);
        assert!(values[3..].iter().all(|&v| v == 2), "{values:?}");
    }

    #[test]
    fn concurrent_operations_return_distinct_consecutive_values() {
        for seed in 0..5 {
            let object = Arc::new(BoundedFetchIncrement::new(64));
            let k = 10usize;
            let config = ExecConfig::new(seed)
                .with_yield_policy(YieldPolicy::Probabilistic(0.1))
                .with_arrival(ArrivalSchedule::Simultaneous);
            let outcome = Executor::new(config).run(k, {
                let object = Arc::clone(&object);
                move |ctx| object.fetch_and_increment(ctx)
            });
            let mut values = outcome.results();
            values.sort_unstable();
            assert_eq!(
                values,
                (0..k as u64).collect::<Vec<_>>(),
                "seed {seed}: k concurrent operations must receive 0..k"
            );
        }
    }

    #[test]
    fn recorded_histories_are_linearizable() {
        for seed in 0..3 {
            let limit = 16u64;
            let object = Arc::new(BoundedFetchIncrement::new(limit));
            let recorder: Arc<Recorder<(), u64>> = Arc::new(Recorder::new());
            let outcome = Executor::new(
                ExecConfig::new(seed).with_yield_policy(YieldPolicy::Probabilistic(0.25)),
            )
            .run(8, {
                let object = Arc::clone(&object);
                let recorder = Arc::clone(&recorder);
                move |ctx| {
                    let invoke = recorder.invoke();
                    let value = object.fetch_and_increment(ctx);
                    recorder.record(ctx.id(), (), value, invoke);
                }
            });
            assert_eq!(outcome.crashed_count(), 0);
            let history = recorder.take_history();
            check_linearizable(&FetchIncrementSpec { limit }, &history)
                .unwrap_or_else(|violation| panic!("seed {seed}: {violation}"));
        }
    }

    #[test]
    fn small_limits_work() {
        let object = BoundedFetchIncrement::new(1);
        let mut ctx = ProcessCtx::new(ProcessId::new(0), 0);
        assert_eq!(object.fetch_and_increment(&mut ctx), 0);
        assert_eq!(object.fetch_and_increment(&mut ctx), 0);

        let object = BoundedFetchIncrement::new(2);
        let mut a = ProcessCtx::new(ProcessId::new(0), 0);
        let mut b = ProcessCtx::new(ProcessId::new(1), 0);
        assert_eq!(object.fetch_and_increment(&mut a), 0);
        assert_eq!(object.fetch_and_increment(&mut b), 1);
    }

    #[test]
    fn cost_scales_with_log_m_not_with_m() {
        // Theorem 6: O(log k · log m). A solo process's cost for m = 2^10
        // should be far less than 2^10 steps and grow roughly linearly in
        // log m.
        let mut costs = Vec::new();
        for exponent in [4u32, 8, 12] {
            let object = BoundedFetchIncrement::new(1 << exponent);
            let mut ctx = ProcessCtx::new(ProcessId::new(0), 7);
            object.fetch_and_increment(&mut ctx);
            costs.push(ctx.stats().total());
        }
        assert!(
            costs[2] < 1 << 12,
            "cost {} is not polylogarithmic",
            costs[2]
        );
        // Tripling log m should not blow the cost up by more than ~6x.
        assert!(
            costs[2] <= costs[0] * 6 + 64,
            "costs {costs:?} grow faster than O(log m)"
        );
    }

    #[test]
    #[should_panic(expected = "at least one value")]
    fn zero_limits_are_rejected() {
        let _ = BoundedFetchIncrement::new(0);
    }
}
