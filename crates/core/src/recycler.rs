//! Adapting one-shot renaming objects to long-lived renaming.
//!
//! A [`Recycler`] layers a lock-free free list of released names over any
//! one-shot [`Renaming`] object. Leases are served from the free list when
//! possible; only when the list is empty — i.e. every name handed out so far
//! is still held — does the recycler fall back to a *fresh* acquisition from
//! the inner object, registered under a new virtual participant
//! ([`Renaming::acquire_as`]).
//!
//! # Tightness under churn
//!
//! Admission control bounds the number of simultaneously live leases by
//! `max_concurrent`. Because a fresh acquisition happens only when the free
//! list is empty, and every name absent from the list is attributable to a
//! distinct live lease, the inner object never sees more than
//! `max_concurrent` virtual participants. With a *strong adaptive* inner
//! object (names exactly `1..=k` for `k` participants — the compiled
//! [`RenamingNetwork`](crate::renaming_network::RenamingNetwork),
//! [`AdaptiveRenaming`](crate::adaptive::AdaptiveRenaming),
//! [`LinearProbeRenaming`](crate::linear_probe::LinearProbeRenaming)), every
//! name ever granted therefore stays in `1..=max_concurrent`, and moreover
//! within `1..=c` where `c` is the point contention at the grant — the
//! long-lived strong renaming guarantee checked by
//! [`assert_tight_lease_namespace`](crate::lease::assert_tight_lease_namespace).
//! Non-adaptive inner objects
//! ([`BitBatchingRenaming`](crate::bit_batching::BitBatchingRenaming)) keep
//! their own `1..=n` bound instead.
//!
//! # The free list
//!
//! Released names live in an atomic bitmap: release sets the name's bit
//! (one `fetch_or`), lease claims the **lowest** set bit (a scan of the
//! word array plus one CAS). Claiming the minimum free name is what keeps
//! recycling *adaptive*: for a lease to be granted name `m`, every name
//! below `m` must be held or in transit at the moment of the scan, so the
//! point contention is at least `m`. A plain LIFO stack would hand a name
//! granted at peak contention straight back out at low contention and break
//! that bound. Both operations are lock-free and allocation-free, and a
//! double release is detected by the `fetch_or` (the duplicate is rejected
//! and counted in [`Recycler::leaked_names`]).

use crate::error::RenamingError;
use crate::lease::{LongLivedRenaming, NameLease};
use crate::traits::Renaming;
use shmem::process::ProcessCtx;
use shmem::steps::StepKind;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Headroom multiplier used to size the free list of a recycler over an
/// unbounded (adaptive) inner object, where no hard namespace bound exists.
/// Names above the sized bound are never produced in well-formed executions
/// (they would exceed the admission limit); if one appears it is leaked, not
/// lost.
const UNBOUNDED_FREELIST_HEADROOM: usize = 4;

/// A lock-free pop-minimum set of small integers (names), stored as an
/// atomic bitmap. Bit `name` of word `name / 64` is set while the name is
/// free.
///
/// The word-by-word scan of [`FreeList::pop`] is not by itself an atomic
/// emptiness check: a name released into an already-scanned word would be
/// missed, and a miss wrongly reported as "no free names" would let the
/// recycler consume a fresh name it does not need — breaking the
/// `1..=max_concurrent` bound. The `pushes` counter closes that hole
/// seqlock-style: every successful push bumps it (after the bit lands, before
/// the releaser stops counting as live), and [`FreeList::pop_coherent`]
/// rescans whenever the counter moved during a missing scan. A coherent miss
/// therefore proves that at its linearization point every name absent from
/// the list was owned by a still-live lease operation.
struct FreeList {
    words: Box<[AtomicU64]>,
    /// Successful pushes so far (seqlock for coherent-miss detection).
    pushes: AtomicUsize,
    bound: usize,
}

impl FreeList {
    /// Creates an empty free list accepting names `1..=bound`.
    fn new(bound: usize) -> Self {
        FreeList {
            words: (0..=bound / 64).map(|_| AtomicU64::new(0)).collect(),
            pushes: AtomicUsize::new(0),
            bound,
        }
    }

    /// The largest name the list can hold.
    fn bound(&self) -> usize {
        self.bound
    }

    /// Marks `name` free; returns `false` (rejecting the push) if the name
    /// is out of range or already free.
    fn push(&self, name: usize) -> bool {
        if name == 0 || name > self.bound {
            return false;
        }
        let bit = 1u64 << (name % 64);
        let previous = self.words[name / 64].fetch_or(bit, Ordering::SeqCst);
        if previous & bit != 0 {
            return false;
        }
        self.pushes.fetch_add(1, Ordering::SeqCst);
        true
    }

    /// Claims the smallest free name in one scan, if any.
    fn pop(&self) -> Option<usize> {
        for (index, word) in self.words.iter().enumerate() {
            let mut current = word.load(Ordering::SeqCst);
            while current != 0 {
                let bit = current.trailing_zeros() as u64;
                match word.compare_exchange_weak(
                    current,
                    current & !(1u64 << bit),
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                ) {
                    Ok(_) => return Some(index * 64 + bit as usize),
                    Err(now) => current = now,
                }
            }
        }
        None
    }

    /// Claims the smallest free name; a miss is retried until no release
    /// landed during the scan, so `None` means the list was observably empty
    /// at a single instant. Lock-free: each retry is caused by another
    /// thread's completed release.
    fn pop_coherent(&self) -> Option<usize> {
        loop {
            let before = self.pushes.load(Ordering::SeqCst);
            if let Some(name) = self.pop() {
                return Some(name);
            }
            if self.pushes.load(Ordering::SeqCst) == before {
                return None;
            }
        }
    }

    /// The number of names currently free (O(bound / 64); diagnostics).
    fn len(&self) -> usize {
        self.words
            .iter()
            .map(|word| word.load(Ordering::Relaxed).count_ones() as usize)
            .sum()
    }
}

/// Adapts a one-shot [`Renaming`] object into a [`LongLivedRenaming`] object
/// by recycling released names through a lock-free free list.
///
/// # Example
///
/// ```
/// use adaptive_renaming::lease::LongLivedRenaming;
/// use adaptive_renaming::recycler::Recycler;
/// use adaptive_renaming::renaming_network::RenamingNetwork;
/// use shmem::process::{ProcessCtx, ProcessId};
/// use sortnet::batcher::odd_even_network;
/// use std::sync::Arc;
///
/// // A compiled renaming network over 16 wires, recycled for at most 4
/// // concurrent holders.
/// let recycler = Arc::new(Recycler::new(
///     RenamingNetwork::<_>::new(odd_even_network(16)),
///     4,
/// ));
/// let mut ctx = ProcessCtx::new(ProcessId::new(0), 1);
///
/// let a = Arc::clone(&recycler).lease(&mut ctx).unwrap();
/// let b = Arc::clone(&recycler).lease(&mut ctx).unwrap();
/// assert_eq!((a.name(), b.name()), (1, 2));
/// b.release(&mut ctx);
/// let c = Arc::clone(&recycler).lease(&mut ctx).unwrap();
/// assert_eq!(c.name(), 2, "the released name is recycled, not name 3");
/// assert_eq!(recycler.fresh_names(), 2);
/// assert_eq!(recycler.recycled_names(), 1);
/// ```
pub struct Recycler<R: Renaming> {
    inner: R,
    free: FreeList,
    /// Next virtual participant index for fresh acquisitions.
    tickets: AtomicUsize,
    max_concurrent: usize,
    /// Leases granted (or attempted) and not yet fully released; includes
    /// in-flight releases and crashed attempts, which never decrement.
    live: AtomicUsize,
    peak: AtomicUsize,
    recycled: AtomicUsize,
    leaked: AtomicUsize,
}

impl<R: Renaming> Recycler<R> {
    /// Wraps `inner`, allowing at most `max_concurrent` simultaneously live
    /// leases.
    ///
    /// # Panics
    ///
    /// Panics if `max_concurrent` is zero or exceeds the inner object's
    /// capacity (a bounded object cannot serve more concurrent holders than
    /// it has names).
    pub fn new(inner: R, max_concurrent: usize) -> Self {
        assert!(
            max_concurrent >= 1,
            "a recycler needs at least one concurrent lease"
        );
        let bound = match inner.capacity() {
            Some(capacity) => {
                assert!(
                    max_concurrent <= capacity,
                    "max_concurrent ({max_concurrent}) exceeds the inner \
                     object's capacity ({capacity})"
                );
                capacity
            }
            None => max_concurrent.saturating_mul(UNBOUNDED_FREELIST_HEADROOM),
        };
        Recycler {
            inner,
            free: FreeList::new(bound),
            tickets: AtomicUsize::new(0),
            max_concurrent,
            live: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
            recycled: AtomicUsize::new(0),
            leaked: AtomicUsize::new(0),
        }
    }

    /// The wrapped one-shot object.
    pub fn inner(&self) -> &R {
        &self.inner
    }

    /// Names acquired fresh from the inner object so far.
    pub fn fresh_names(&self) -> usize {
        self.tickets.load(Ordering::Relaxed)
    }

    /// Leases served from the free list (recycled names) so far.
    pub fn recycled_names(&self) -> usize {
        self.recycled.load(Ordering::Relaxed)
    }

    /// Peak number of simultaneously live leases observed so far.
    pub fn peak_leases(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Names lost to the recycling discipline (double releases or releases
    /// of out-of-range names). Zero in well-formed executions.
    pub fn leaked_names(&self) -> usize {
        self.leaked.load(Ordering::Relaxed)
    }

    /// Names currently waiting on the free list (O(capacity); diagnostics).
    pub fn free_names(&self) -> usize {
        self.free.len()
    }
}

impl<R: Renaming + 'static> LongLivedRenaming for Recycler<R> {
    fn lease(self: Arc<Self>, ctx: &mut ProcessCtx) -> Result<NameLease, RenamingError> {
        // Admission control: bound the simultaneously live leases. The slot
        // is reserved before touching shared state and returned on failure.
        let live = self.live.fetch_add(1, Ordering::AcqRel) + 1;
        if live > self.max_concurrent {
            self.live.fetch_sub(1, Ordering::AcqRel);
            return Err(RenamingError::CapacityExceeded {
                capacity: self.max_concurrent,
            });
        }
        self.peak.fetch_max(live, Ordering::AcqRel);

        // Fast path: recycle a released name. The coherent pop only reports
        // a miss when the list was empty at a single instant, so a miss
        // proves every issued ticket still has a live owner.
        ctx.record(StepKind::ReadModifyWrite);
        if let Some(name) = self.free.pop_coherent() {
            self.recycled.fetch_add(1, Ordering::Relaxed);
            return Ok(NameLease::new(name, self));
        }

        // Slow path: every name handed out so far is still held — acquire a
        // fresh one as a new virtual participant. An error rolls back the
        // admission slot; the consumed ticket is not reused (it can only be
        // burned by genuine inner-object exhaustion, since the coherent miss
        // above bounds issued tickets by `max_concurrent ≤ capacity`).
        let participant = self.tickets.fetch_add(1, Ordering::AcqRel);
        match self.inner.acquire_as(ctx, participant) {
            Ok(name) => Ok(NameLease::new(name, self)),
            Err(error) => {
                self.live.fetch_sub(1, Ordering::AcqRel);
                Err(error)
            }
        }
    }

    fn release_raw(&self, name: usize) {
        if !self.free.push(name) {
            // A rejected push is a double release (or an out-of-range name,
            // unreachable through `NameLease`). The admission slot was
            // already returned by the first release, so decrementing again
            // would over-admit and break the namespace bound — count the
            // misuse and otherwise treat the call as a no-op.
            self.leaked.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // Decrement strictly after the push (and after the push's seqlock
        // bump) so in-flight releases keep counting as live — the invariant
        // that makes fresh names contention-bounded.
        let _ = self
            .live
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |live| {
                live.checked_sub(1)
            });
    }

    fn max_concurrent(&self) -> Option<usize> {
        Some(self.max_concurrent)
    }

    fn live_leases(&self) -> usize {
        self.live.load(Ordering::Acquire)
    }
}

impl<R: Renaming> fmt::Debug for Recycler<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Recycler")
            .field("max_concurrent", &self.max_concurrent)
            .field("live", &self.live.load(Ordering::Relaxed))
            .field("fresh_names", &self.fresh_names())
            .field("recycled_names", &self.recycled_names())
            .field("leaked_names", &self.leaked_names())
            .field("free_list_bound", &self.free.bound())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::AdaptiveRenaming;
    use crate::linear_probe::LinearProbeRenaming;
    use crate::renaming_network::RenamingNetwork;
    use shmem::adversary::ExecConfig;
    use shmem::executor::Executor;
    use shmem::process::ProcessId;
    use sortnet::batcher::odd_even_network;
    use tas::ratrace::RatRaceTas;

    fn ctx(id: usize, seed: u64) -> ProcessCtx {
        ProcessCtx::new(ProcessId::new(id), seed)
    }

    #[test]
    fn free_list_pops_the_minimum_and_rejects_duplicates() {
        let list = FreeList::new(200);
        assert_eq!(list.pop(), None);
        assert!(list.push(5));
        assert!(list.push(3));
        assert!(list.push(130)); // second word of the bitmap
        assert!(!list.push(5), "duplicate push is rejected");
        assert!(!list.push(0), "name 0 is rejected");
        assert!(!list.push(201), "out-of-range name is rejected");
        assert_eq!(list.len(), 3);
        assert_eq!(list.pop(), Some(3), "the smallest free name comes first");
        assert_eq!(list.pop(), Some(5));
        assert_eq!(list.pop(), Some(130));
        assert_eq!(list.pop(), None);
        assert!(list.push(5), "popped names can be pushed again");
        assert_eq!(list.pop_coherent(), Some(5));
        assert_eq!(list.pop_coherent(), None);
    }

    #[test]
    fn free_list_misses_are_coherent_under_concurrent_churn() {
        // Two pushers cycle names through the list while poppers drain it;
        // a coherent miss must never coincide with an unclaimed name. The
        // accounting check: every popped name is pushed back, so at the end
        // all names are on the list again.
        let list = Arc::new(FreeList::new(128));
        assert!(list.push(1) && list.push(100));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let list = Arc::clone(&list);
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        if let Some(name) = list.pop_coherent() {
                            assert!(list.push(name), "claimed names push back cleanly");
                        }
                    }
                });
            }
        });
        assert_eq!(list.len(), 2, "both names survive the churn");
        assert_eq!(list.pop_coherent(), Some(1));
        assert_eq!(list.pop_coherent(), Some(100));
        assert_eq!(list.pop_coherent(), None);
    }

    #[test]
    fn sequential_churn_recycles_instead_of_growing() {
        let recycler = Arc::new(Recycler::new(
            RenamingNetwork::<_>::new(odd_even_network(32)),
            4,
        ));
        let mut ctx = ctx(0, 9);
        for round in 0..20 {
            let lease = Arc::clone(&recycler).lease(&mut ctx).unwrap();
            assert_eq!(lease.name(), 1, "round {round}");
            lease.release(&mut ctx);
        }
        assert_eq!(recycler.fresh_names(), 1, "one fresh name serves all churn");
        assert_eq!(recycler.recycled_names(), 19);
        assert_eq!(recycler.leaked_names(), 0);
        assert_eq!(recycler.live_leases(), 0);
        assert!(ctx.stats().releases >= 19);
    }

    #[test]
    fn names_stay_within_max_concurrent_under_staircase_churn() {
        let recycler = Arc::new(Recycler::new(AdaptiveRenaming::default(), 3));
        let mut ctx = ctx(7, 2);
        for _ in 0..5 {
            let a = Arc::clone(&recycler).lease(&mut ctx).unwrap();
            let b = Arc::clone(&recycler).lease(&mut ctx).unwrap();
            let c = Arc::clone(&recycler).lease(&mut ctx).unwrap();
            for lease in [&a, &b, &c] {
                assert!((1..=3).contains(&lease.name()), "name {}", lease.name());
            }
            drop(c);
            drop(b);
            drop(a);
        }
        assert!(recycler.fresh_names() <= 3);
        assert_eq!(recycler.peak_leases(), 3);
    }

    #[test]
    fn admission_control_rejects_excess_concurrency() {
        let recycler = Arc::new(Recycler::new(
            LinearProbeRenaming::with_slots((0..4).map(|_| RatRaceTas::new()).collect::<Vec<_>>()),
            2,
        ));
        let mut ctx = ctx(0, 0);
        let a = Arc::clone(&recycler).lease(&mut ctx).unwrap();
        let _b = Arc::clone(&recycler).lease(&mut ctx).unwrap();
        assert_eq!(
            Arc::clone(&recycler).lease(&mut ctx).unwrap_err(),
            RenamingError::CapacityExceeded { capacity: 2 }
        );
        drop(a);
        let c = Arc::clone(&recycler).lease(&mut ctx).unwrap();
        assert_eq!(c.name(), 1, "releasing re-opens admission with recycling");
    }

    #[test]
    fn forget_detaches_the_name_and_release_raw_returns_it() {
        let recycler = Arc::new(Recycler::new(AdaptiveRenaming::default(), 2));
        let mut ctx = ctx(1, 4);
        let lease = Arc::clone(&recycler).lease(&mut ctx).unwrap();
        let name = lease.forget();
        assert_eq!(recycler.live_leases(), 1, "a forgotten name stays live");
        recycler.release_raw(name);
        assert_eq!(recycler.live_leases(), 0);
        let again = Arc::clone(&recycler).lease(&mut ctx).unwrap();
        assert_eq!(again.name(), name);
    }

    #[test]
    fn double_release_raw_is_rejected_and_counted() {
        let recycler = Arc::new(Recycler::new(AdaptiveRenaming::default(), 2));
        let mut ctx = ctx(0, 5);
        let name = Arc::clone(&recycler).lease(&mut ctx).unwrap().forget();
        let held = Arc::clone(&recycler).lease(&mut ctx).unwrap();
        recycler.release_raw(name);
        assert_eq!(recycler.live_leases(), 1, "one lease is still held");
        recycler.release_raw(name); // misuse: the duplicate is leaked
        assert_eq!(recycler.leaked_names(), 1);
        assert_eq!(
            recycler.live_leases(),
            1,
            "a rejected release must not return an admission slot twice"
        );
        drop(held);
        assert_eq!(recycler.live_leases(), 0);
    }

    #[test]
    fn concurrent_churn_yields_unique_live_names_in_bound() {
        for seed in 0..4 {
            let recycler = Arc::new(Recycler::new(
                RenamingNetwork::<_>::new(odd_even_network(64)),
                8,
            ));
            let outcome = Executor::new(ExecConfig::new(seed)).run(8, {
                let recycler = Arc::clone(&recycler);
                move |ctx| {
                    let mut names = Vec::new();
                    for _ in 0..6 {
                        let lease = Arc::clone(&recycler).lease(ctx).unwrap();
                        names.push(lease.name());
                        lease.release(ctx);
                    }
                    names
                }
            });
            let names = outcome.flattened();
            assert_eq!(names.len(), 48, "seed {seed}");
            assert!(
                names.iter().all(|&name| (1..=8).contains(&name)),
                "seed {seed}: names must stay in 1..=max_concurrent, got {names:?}"
            );
            assert!(recycler.fresh_names() <= 8, "seed {seed}");
            assert_eq!(recycler.live_leases(), 0, "seed {seed}");
            assert_eq!(recycler.leaked_names(), 0, "seed {seed}");
        }
    }

    #[test]
    fn debug_reports_the_counters() {
        let recycler = Recycler::new(AdaptiveRenaming::default(), 2);
        let formatted = format!("{recycler:?}");
        assert!(formatted.contains("Recycler"));
        assert!(formatted.contains("max_concurrent"));
        assert_eq!(LongLivedRenaming::max_concurrent(&recycler), Some(2));
    }

    #[test]
    #[should_panic(expected = "at least one concurrent lease")]
    fn zero_concurrency_is_rejected() {
        let _ = Recycler::new(AdaptiveRenaming::default(), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds the inner")]
    fn max_concurrent_above_capacity_is_rejected() {
        let _ = Recycler::new(
            LinearProbeRenaming::with_slots((0..2).map(|_| RatRaceTas::new()).collect::<Vec<_>>()),
            3,
        );
    }
}
